//! Umbrella crate for the ADORE reproduction: re-exports every
//! subsystem so integration tests and examples can use one dependency.
//!
//! See the workspace [`README`](https://example.com/adore-rs) and the
//! individual crates: [`isa`], [`sim`], [`perfmon`], [`compiler`],
//! [`adore`], [`workloads`].

pub use adore;
pub use compiler;
pub use isa;
pub use perfmon;
pub use sim;
pub use workloads;
