#!/usr/bin/env bash
# The tier-1 gate, runnable fully offline (the workspace has zero
# external dependencies — see README.md "Zero-dependency policy").
#
#   tools/ci.sh
#
# Steps:
#   1. release build of every crate, warnings denied
#   2. full test suite (unit + integration + doc tests), wall-clock
#      logged
#   3. release run of the ignored slow tiers: the quick-scale golden
#      cycle-exactness pass and the full-scale (ADORE_FULL_E2E=1)
#      end-to-end tier
#   4. smoke experiments through the sharded service engine: the same
#      `lab fig7 --quick` grid twice against one persistent baseline
#      store — cold at --jobs 1, warm at --jobs 2 — must produce
#      byte-identical reports (modulo the timestamp and the volatile
#      engine.scheduling / engine.baseline_store subsections); the warm
#      run must hit the store for every baseline (zero recomputes) and
#      beat the cold run's wall-clock (both are logged)
#   4b. resident-service smoke: two spec cells piped into `lab serve`
#      must stream byte-identical responses at --jobs 1 and --jobs 4,
#      and each streamed row must equal the batch engine's row for the
#      same (tool, section, workload) cell, modulo the batch grid's
#      paper_speedup_pct merge extra
#   4c. scenario-family smoke: the `lab families --quick` grid (server /
#      graph / gc) run at --jobs 1 and --jobs 2 must produce
#      byte-identical reports modulo the volatile engine fields, and the
#      gc family must actually plant jump-pointer prefetches
#   4d. adaptive-policy smoke: the `lab policy --quick` grid run at
#      --jobs 1 and --jobs 2 must produce byte-identical reports
#      (including every per-phase decision log), the decision-log
#      schema is validated, and the default-off contract is checked:
#      reports from the default-config grids must carry no policy
#      section (the golden tiers of step 3, which run the default
#      config, prove cycle-level identity). ADORE_NIGHTLY=1 adds the
#      full-scale 20-workload grid and requires a controller win on at
#      least one scenario family.
#   5. differential fuzz smoke: 512 fixed-seed cases through the
#      three-way oracle, once per simulator execution path
#      (--exec-path=fast, reference, then threaded — the compile tier
#      is held to the same architectural-state bar as the cycle-exact
#      paths); any semantic mismatch, undecided or budget-capped
#      (inconclusive) case fails the gate;
#      then 512 more with the ADORE leg restricted to the
#      pattern_analyze pass alone (the jump-pointer classification
#      probe), and 512 more restricted to prefetch_schedule with the
#      adaptive policy controller forced on
#   5b. coverage-guided campaign smoke: a fixed-seed campaign (mutation
#      and coverage scheduling on) run at --jobs 1 and --jobs 4 must
#      produce byte-identical reports and corpus directories; the
#      campaign report schema (coverage keys, mutation/origin ledgers,
#      inconclusive counter) is validated, and the snapshot path is
#      A/B-timed against --campaign-no-snapshot. ADORE_NIGHTLY=1
#      additionally runs a >=100k-case campaign sweep.
#   6. per-pass ablation smoke: every optimizer pass disabled once on
#      one workload, then schema validation of the per-pass overhead
#      ledger, rejection taxonomy and event stream in
#      results/ablation.json
#   7. simulator benchmark + throughput gate: the predecoded fast path
#      must stay at least 2x the reference path on the quick suite, and
#      the threaded compile tier at least 2x the fast path
#   8. schema validation of the emitted JSON, including the engine's
#      merged sections
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export CARGO_NET_OFFLINE="true"

ms_since() { echo $(( ($(date +%s%N) - $1) / 1000000 )); }

echo "== build (release, -D warnings) =="
cargo build --release --workspace --benches

echo "== test (default quick tiers) =="
t0=$(date +%s%N)
cargo test -q --workspace
echo "wall-clock: workspace test suite $(ms_since "$t0")ms"

echo "== test (release, ignored tiers: quick-scale golden + full-scale e2e) =="
t0=$(date +%s%N)
ADORE_FULL_E2E=1 cargo test --release -q --test golden_cycles --test end_to_end -- --ignored
echo "wall-clock: release ignored tiers $(ms_since "$t0")ms"

# The golden pass above must *compare*, never rewrite: if a stray
# ADORE_BLESS leaked into the environment the snapshots would have been
# silently regenerated, so pin them byte-identical to the checked-in
# files.
git diff --exit-code -- tests/golden_cycles_tiny.txt tests/golden_cycles_quick.txt \
    || { echo "golden snapshot files changed during the CI run" >&2; exit 1; }

echo "== smoke: lab fig7 --quick, same grid twice against one baseline store =="
store_dir=$(mktemp -d)
t0=$(date +%s%N)
ADORE_BASELINE_DIR="$store_dir" cargo run --release -q -p adore-bench --bin lab -- \
    fig7 --quick --jobs 1
cold_ms=$(ms_since "$t0")
cp results/fig7.json results/fig7.cold.json
t0=$(date +%s%N)
ADORE_BASELINE_DIR="$store_dir" cargo run --release -q -p adore-bench --bin lab -- \
    fig7 --quick --jobs 2
warm_ms=$(ms_since "$t0")
echo "wall-clock: cold store + jobs=1 ${cold_ms}ms, warm store + jobs=2 ${warm_ms}ms" \
     "(speedup $(python3 -c "print(f'{$cold_ms/max($warm_ms,1):.2f}x')") on $(nproc) cores)"

echo "== determinism + store reuse: reports byte-identical modulo volatile fields =="
python3 - "$cold_ms" "$warm_ms" <<'EOF'
import json, sys
a = json.load(open("results/fig7.cold.json"))
b = json.load(open("results/fig7.json"))
# The warm run must have resolved every baseline from the persistent
# store: zero recomputes, and strictly faster than the cold run.
sa_store, sb_store = a["engine"]["baseline_store"], b["engine"]["baseline_store"]
assert sa_store["enabled"] and sb_store["enabled"], "smoke must exercise the store"
assert sa_store["hits"] == 0 and sa_store["misses"] > 0, "first run must start cold"
assert sb_store["misses"] == 0, "warm run recomputed a baseline the store held"
assert sb_store["hits"] == sa_store["misses"], "warm run must hit every stored baseline"
cold_ms, warm_ms = int(sys.argv[1]), int(sys.argv[2])
assert warm_ms < cold_ms, f"store reuse did not pay off: cold {cold_ms}ms, warm {warm_ms}ms"
# Everything else is byte-identical once the volatile fields are
# zeroed: the timestamp, plus the scheduling / store subsections that
# describe how (not what) the engine executed.
for doc in (a, b):
    doc["generated_unix_s"] = 0
    doc["engine"]["scheduling"] = {}
    doc["engine"]["baseline_store"] = {}
sa, sb = (json.dumps(x, indent=1) for x in (a, b))
assert sa == sb, "warm/parallel report differs from cold/serial report"
print(f"  ok: {len(sa)} canonical bytes identical across --jobs and store state;"
      f" {sb_store['hits']} baselines served from the store")
EOF
rm -f results/fig7.cold.json
rm -rf "$store_dir"

echo "== smoke: lab serve, two cells streamed at --jobs 1 vs --jobs 4 =="
serve_req='{"workload":"mcf","tool":"fig7","section":"part_a","opts":"o2","measure":"comparison"}
{"workload":"art","tool":"fig7","section":"part_a","opts":"o2","measure":"comparison"}'
t0=$(date +%s%N)
printf '%s\n' "$serve_req" | cargo run --release -q -p adore-bench --bin lab -- \
    serve --quick --jobs 1 --no-baseline-store > results/serve.jobs1.jsonl
serve1_ms=$(ms_since "$t0")
t0=$(date +%s%N)
printf '%s\n' "$serve_req" | cargo run --release -q -p adore-bench --bin lab -- \
    serve --quick --jobs 4 --no-baseline-store > results/serve.jobs4.jsonl
serve4_ms=$(ms_since "$t0")
echo "wall-clock: serve jobs=1 ${serve1_ms}ms, jobs=4 ${serve4_ms}ms"
cmp results/serve.jobs1.jsonl results/serve.jobs4.jsonl \
    || { echo "serve streams differ across --jobs" >&2; exit 1; }
echo "  ok: serve stream byte-identical across --jobs ($(wc -c < results/serve.jobs1.jsonl) bytes)"

echo "== serve rows match the batch engine's rows =="
python3 - <<'EOF'
import json
# results/fig7.json is the warm engine run above; the serve cells name
# the same (tool=fig7, section=part_a, workload) identities, so their
# rows must be equal except for the grid-only paper_speedup_pct extra.
batch = {r["bench"]: r for r in json.load(open("results/fig7.json"))["part_a"]}
served = [json.loads(line) for line in open("results/serve.jobs1.jsonl")]
assert [s["index"] for s in served] == [0, 1], "stream must be in submission order"
for s in served:
    assert s["section"] == "part_a"
    row = s["row"]
    want = dict(batch[row["bench"]])
    del want["paper_speedup_pct"]
    assert row == want, f"serve row for {row['bench']} differs from the batch engine row"
print(f"  ok: {len(served)} streamed rows identical to batch engine rows")
EOF
rm -f results/serve.jobs1.jsonl results/serve.jobs4.jsonl

echo "== smoke: lab families --quick, --jobs 1 vs --jobs 2 =="
t0=$(date +%s%N)
cargo run --release -q -p adore-bench --bin lab -- families --quick --jobs 1
fam1_ms=$(ms_since "$t0")
cp results/families.json results/families.jobs1.json
t0=$(date +%s%N)
cargo run --release -q -p adore-bench --bin lab -- families --quick --jobs 2
fam2_ms=$(ms_since "$t0")
echo "wall-clock: families jobs=1 ${fam1_ms}ms, jobs=2 ${fam2_ms}ms"
python3 - <<'EOF'
import json
a = json.load(open("results/families.jobs1.json"))
b = json.load(open("results/families.json"))
for doc in (a, b):
    doc["generated_unix_s"] = 0
    doc["engine"]["scheduling"] = {}
    doc["engine"]["baseline_store"] = {}
sa, sb = (json.dumps(x, indent=1) for x in (a, b))
assert sa == sb, "families report differs between --jobs 1 and --jobs 2"
rows = {r["bench"]: r for r in b["families"]}
assert set(rows) == {"server", "graph", "gc"}, f"family set changed: {sorted(rows)}"
for name, row in rows.items():
    assert "error" not in row, f"{name}: cell failed: {row.get('error')}"
    assert row["traces_patched"] > 0, f"{name}: ADORE never patched a trace"
assert rows["gc"]["streams"]["jump"] > 0, \
    "gc family planted no jump-pointer prefetch: the dependence-based arm is dead"
assert rows["server"]["phases_optimized"] >= 2, \
    "server family's load spikes produced fewer than 2 optimized phases"
print(f"  ok: {len(sa)} canonical bytes identical across --jobs;"
      f" gc planted {rows['gc']['streams']['jump']} jump prefetches,"
      f" server optimized {rows['server']['phases_optimized']} phases")
EOF
rm -f results/families.jobs1.json

echo "== smoke: lab policy --quick, --jobs 1 vs --jobs 2 =="
t0=$(date +%s%N)
cargo run --release -q -p adore-bench --bin lab -- policy --quick --jobs 1
pol1_ms=$(ms_since "$t0")
cp results/policy.json results/policy.jobs1.json
t0=$(date +%s%N)
cargo run --release -q -p adore-bench --bin lab -- policy --quick --jobs 2
pol2_ms=$(ms_since "$t0")
echo "wall-clock: policy jobs=1 ${pol1_ms}ms, jobs=2 ${pol2_ms}ms"

echo "== validate policy report: determinism, decision-log schema, default-off contract =="
python3 - <<'EOF'
import json
a = json.load(open("results/policy.jobs1.json"))
b = json.load(open("results/policy.json"))
for doc in (a, b):
    doc["generated_unix_s"] = 0
    doc["engine"]["scheduling"] = {}
    doc["engine"]["baseline_store"] = {}
sa, sb = (json.dumps(x, indent=1) for x in (a, b))
assert sa == sb, \
    "policy report (including decision logs) differs between --jobs 1 and --jobs 2"

ACTIONS = {"trial", "score", "commit", "fallback", "redeploy"}
ARMS = {"static", "wide", "near", "lean"}
decisions = commits = 0
for row in b["grid"]:
    name = row["bench"]
    assert "error" not in row, f"{name}: cell failed: {row.get('error')}"
    for key in ("base_cycles", "static_cycles", "adaptive_cycles", "win"):
        assert key in row, f"{name}: row lacks `{key}`"
    assert row["win"] == (row["adaptive_cycles"] < row["static_cycles"]), \
        f"{name}: `win` disagrees with the cycle counts"
    pol = row["policy"]
    assert pol["enabled"] is True, f"{name}: adaptive leg ran with the controller off"
    for c in pol["committed"]:
        assert c["arm"] in ARMS, f"{name}: committed unknown arm {c['arm']!r}"
        commits += 1
    for d in pol["decisions"]:
        for key in ("window", "phase", "action", "arm", "score", "cpi"):
            assert key in d, f"{name}: decision lacks `{key}`: {d}"
        assert d["action"] in ACTIONS, f"{name}: unknown action {d['action']!r}"
        assert d["arm"] in ARMS, f"{name}: decision names unknown arm {d['arm']!r}"
        decisions += 1
assert decisions > 0, "no workload logged a single policy decision: the controller is dead"
assert commits > 0, "no workload committed a policy: every arm walk stalled"

# Default-off contract: grids run with the paper-default config must not
# carry a policy section at all (the golden tiers of step 3 already
# re-proved cycle-level identity on the default path).
fig7 = json.load(open("results/fig7.json"))
for section in ("part_a", "part_b"):
    for row in fig7[section]:
        assert "policy" not in row, \
            f"fig7 {row['bench']}: default-config row grew a policy section"
print(f"  ok: {len(sa)} canonical bytes identical across --jobs;"
      f" {decisions} decisions / {commits} commits schema-valid over"
      f" {len(b['grid'])} workloads; fig7 rows stay policy-free")
EOF
rm -f results/policy.jobs1.json

for path in fast reference threaded; do
    echo "== smoke: differential fuzz oracle, 512 cases, exec-path=$path =="
    cargo run --release -q -p adore-bench --bin lab -- fuzz \
        --cases=512 --seed=1 "--exec-path=$path"

    echo "== validate fuzz report ($path) =="
    python3 - "$path" <<'EOF'
import json, sys
doc = json.load(open("results/fuzz.json"))
assert doc["schema_version"] == 2, "schema_version must be 2"
assert doc["tool"] == "fuzz", "tool must be fuzz"
assert doc["exec_path"] == sys.argv[1], "report must record the exec path under test"
assert doc["mode"] == "fuzz", "classic smoke must run in classic mode"
assert doc["cases"] >= 512, "CI smoke must run at least 512 cases"
assert doc["mismatches"] == 0, "semantic mismatch: ADORE changed program behavior"
assert doc["undecided"] == 0, "every smoke case must reach a verdict"
assert doc["inconclusive"] == 0, "no smoke case may exhaust a hang-safety budget"
assert doc["cases_with_patches"] > 0, "no case was patched: the oracle tested nothing"
assert sum(doc["outcomes"].values()) == doc["cases"], "outcome counts must cover all cases"
cov = doc["coverage"]
for key in ("ld1", "ld2", "ld4", "ld8", "st1", "st2", "st4", "st8", "ldf", "stf",
            "spec_ld", "lfetch", "predicated", "flushes", "hot_loops", "jump_loops",
            "calls"):
    assert cov.get(key, 0) > 0, f"coverage hole: {key} never generated"
print(f"  ok: {doc['cases']} cases on the {doc['exec_path']} path, 0 mismatches,"
      f" {doc['cases_with_patches']} cases patched"
      f" ({doc['traces_patched_total']} traces)")
EOF
done

echo "== smoke: differential fuzz oracle, 512 cases, ADORE leg = pattern_analyze only =="
cargo run --release -q -p adore-bench --bin lab -- fuzz \
    --cases=512 --seed=1 --exec-path=fast --pass=pattern_analyze

echo "== validate pattern_analyze-only fuzz report =="
python3 - <<'EOF'
import json
doc = json.load(open("results/fuzz.json"))
assert doc["only_pass"] == "pattern_analyze", "report must record the pass restriction"
assert doc["cases"] >= 512, "pass smoke must run at least 512 cases"
assert doc["mismatches"] == 0, \
    "semantic mismatch: pattern_analyze alone changed program behavior"
assert doc["undecided"] == 0 and doc["inconclusive"] == 0
assert doc["coverage"]["jump_loops"] > 0, \
    "no jump-chase segment generated: the pass probe missed its target shape"
print(f"  ok: {doc['cases']} pattern_analyze-only cases, 0 mismatches,"
      f" {doc['coverage']['jump_loops']} jump-chase loops generated")
EOF

echo "== smoke: differential fuzz oracle, 512 cases, --pass=prefetch_schedule --policy=on =="
cargo run --release -q -p adore-bench --bin lab -- fuzz \
    --cases=512 --seed=1 --exec-path=fast --pass=prefetch_schedule --policy=on

echo "== validate policy-on prefetch_schedule fuzz report =="
python3 - <<'EOF'
import json
doc = json.load(open("results/fuzz.json"))
assert doc["only_pass"] == "prefetch_schedule", "report must record the pass restriction"
assert doc["policy"] == "on", "report must record the forced-on controller"
assert doc["cases"] >= 512, "policy smoke must run at least 512 cases"
assert doc["mismatches"] == 0, \
    "semantic mismatch: the adaptive controller changed program behavior"
assert doc["undecided"] == 0 and doc["inconclusive"] == 0
print(f"  ok: {doc['cases']} policy-on schedule-only cases, 0 mismatches")
EOF

echo "== smoke: coverage-guided campaign, --jobs 1 vs --jobs 4 =="
campaign_args=(--campaign --rounds=3 --batch=48 --seed=11 --minimize-evals=8)
cdir1=$(mktemp -d) cdir2=$(mktemp -d)
t0=$(date +%s%N)
ADORE_CAMPAIGN_DIR="$cdir1" cargo run --release -q -p adore-bench --bin lab -- fuzz \
    "${campaign_args[@]}" --jobs 1
campaign1_ms=$(ms_since "$t0")
cp results/fuzz.json results/fuzz.campaign.jobs1.json
t0=$(date +%s%N)
ADORE_CAMPAIGN_DIR="$cdir2" cargo run --release -q -p adore-bench --bin lab -- fuzz \
    "${campaign_args[@]}" --jobs 4
campaign4_ms=$(ms_since "$t0")
echo "wall-clock: campaign jobs=1 ${campaign1_ms}ms, jobs=4 ${campaign4_ms}ms"

echo "== determinism: campaign report byte-identical across --jobs =="
python3 - <<'EOF'
import json
a = json.load(open("results/fuzz.campaign.jobs1.json"))
b = json.load(open("results/fuzz.json"))
a["generated_unix_s"] = b["generated_unix_s"] = 0
sa, sb = (json.dumps(x, indent=1) for x in (a, b))
assert sa == sb, "campaign report differs between --jobs 1 and --jobs 4"
print(f"  ok: {len(sa)} canonical bytes identical across --jobs")
EOF
diff -r "$cdir1" "$cdir2" \
    || { echo "campaign corpus directories differ across --jobs" >&2; exit 1; }
echo "  ok: corpus directories identical ($(ls "$cdir1" | wc -l) minimized entries)"
rm -f results/fuzz.campaign.jobs1.json

echo "== validate campaign report schema =="
python3 - <<'EOF'
import json
doc = json.load(open("results/fuzz.json"))
assert doc["schema_version"] == 2, "schema_version must be 2"
assert doc["tool"] == "fuzz", "tool must be fuzz"
assert doc["mode"] == "campaign", "campaign smoke must record campaign mode"
assert doc["mismatches"] == 0, "semantic mismatch: ADORE changed program behavior"
assert doc["undecided"] == 0, "every campaign case must assemble"
assert doc["inconclusive"] >= 0, "inconclusive counter must be present"
assert sum(doc["outcomes"].values()) + doc["inconclusive"] + doc["undecided"] \
    + doc["mismatches"] == doc["cases"], "verdict counts must cover all cases"
c = doc["campaign"]
for key in ("rounds", "batch", "snapshot", "corpus_imported", "corpus_added",
            "corpus_len", "new_key_events", "coverage_keys", "coverage_hits",
            "mutations", "origins"):
    assert key in c, f"campaign section missing {key!r}"
assert c["rounds"] == 3 and c["batch"] == 48, "campaign geometry must match the flags"
assert c["corpus_added"] > 0, "no case earned corpus admission: coverage is dead"
assert c["corpus_len"] == c["corpus_added"] + c["corpus_imported"]
assert c["coverage_keys"] >= 20, f"coverage key space too small: {c['coverage_keys']}"
assert c["coverage_keys"] == len(c["coverage_hits"])
hits = c["coverage_hits"]
for prefix in ("feat:", "outcome:", "pass:"):
    assert any(k.startswith(prefix) for k in hits), f"no {prefix}* coverage key observed"
assert c["origins"].get("gen", 0) > 0, "fresh generation must contribute cases"
assert c["origins"].get("mutate", 0) > 0, "corpus mutation must contribute cases"
assert sum(c["origins"].values()) == doc["cases"]
assert sum(c["mutations"].values()) > 0, "no mutation operator ever applied"
print(f"  ok: {doc['cases']} campaign cases, corpus +{c['corpus_added']},"
      f" {c['coverage_keys']} coverage keys,"
      f" origins {dict(c['origins'])}, {doc['inconclusive']} inconclusive")
EOF
rm -rf "$cdir1" "$cdir2"

echo "== A/B: snapshot-reset machines vs fresh machines per case =="
cdir3=$(mktemp -d)
t0=$(date +%s%N)
ADORE_CAMPAIGN_DIR="$cdir3" cargo run --release -q -p adore-bench --bin lab -- fuzz \
    --campaign --rounds=2 --batch=32 --seed=11 --minimize-evals=0 --jobs 2 \
    --campaign-no-snapshot
nosnap_ms=$(ms_since "$t0")
rm -rf "$cdir3"; cdir3=$(mktemp -d)
t0=$(date +%s%N)
ADORE_CAMPAIGN_DIR="$cdir3" cargo run --release -q -p adore-bench --bin lab -- fuzz \
    --campaign --rounds=2 --batch=32 --seed=11 --minimize-evals=0 --jobs 2
snap_ms=$(ms_since "$t0")
rm -rf "$cdir3"
echo "wall-clock: fresh-machines ${nosnap_ms}ms, snapshot-reset ${snap_ms}ms" \
     "(ratio $(python3 -c "print(f'{$nosnap_ms/max($snap_ms,1):.2f}x')"))"

if [ "${ADORE_NIGHTLY:-0}" = "1" ]; then
    echo "== nightly: campaign sweep (>=100k cases) =="
    cdirn=$(mktemp -d)
    t0=$(date +%s%N)
    ADORE_CAMPAIGN_DIR="$cdirn" cargo run --release -q -p adore-bench --bin lab -- fuzz \
        --campaign --rounds=128 --batch=800 --seed=1 --minimize-evals=8 --jobs "$(nproc)"
    echo "wall-clock: nightly campaign $(ms_since "$t0")ms"
    python3 - <<'EOF'
import json
doc = json.load(open("results/fuzz.json"))
assert doc["cases"] >= 100_000, f"nightly sweep ran only {doc['cases']} cases"
assert doc["mismatches"] == 0, "semantic mismatch in the nightly sweep"
print(f"  ok: {doc['cases']} nightly cases, 0 mismatches")
EOF
    rm -rf "$cdirn"

    echo "== nightly: scenario families at full scale =="
    t0=$(date +%s%N)
    cargo run --release -q -p adore-bench --bin lab -- families --jobs "$(nproc)"
    echo "wall-clock: full-scale families $(ms_since "$t0")ms"

    echo "== nightly: adaptive policy grid at full scale =="
    t0=$(date +%s%N)
    cargo run --release -q -p adore-bench --bin lab -- policy --jobs "$(nproc)"
    echo "wall-clock: full-scale policy $(ms_since "$t0")ms"
    python3 - <<'EOF'
import json
doc = json.load(open("results/policy.json"))
rows = {r["bench"]: r for r in doc["grid"]}
assert len(rows) == 20, f"full policy grid must cover 20 workloads, got {len(rows)}"
family_wins = [n for n in ("server", "graph", "gc") if rows[n]["win"]]
assert family_wins, \
    "no scenario family beat the static policy at full scale: the controller lost its edge"
wins = sum(r["win"] for r in rows.values())
print(f"  ok: {wins} adaptive wins over 20 workloads; family wins: {family_wins}")
EOF
fi

echo "== smoke: per-pass ablation (each pass disabled once) =="
t0=$(date +%s%N)
cargo run --release -q -p adore-bench --bin lab -- ablation --quick --jobs 2 --pass-smoke
echo "wall-clock: pass-smoke ablation $(ms_since "$t0")ms"

echo "== validate pass-pipeline ledger schema (results/ablation.json) =="
python3 - <<'EOF'
import json
doc = json.load(open("results/ablation.json"))
assert doc["schema_version"] == 2, "schema_version must be 2"
assert doc["tool"] == "ablation", "tool must be ablation"
ALL_PASSES = ["instr_promote", "phase_gate", "unpatch_monitor", "reopt_gate",
              "trace_select", "delinq_filter", "pattern_analyze",
              "prefetch_schedule", "patch_deploy"]
EVENT_KINDS = {"deploy", "instrument", "promote", "unpatch"}
LEDGER_KEYS = {"name", "invocations", "charged_cycles", "accepted", "rejections"}
for off in ALL_PASSES:
    key = f"pass_off_{off}"
    rows = doc.get(key)
    assert rows, f"missing pass-smoke section: {key}"
    for row in rows:
        assert {"bench", "base_cycles", "adore_cycles", "speedup_pct",
                "pipeline", "sampling_overhead_cycles", "events"} <= row.keys()
        passes = row["pipeline"]["passes"]
        names = [p["name"] for p in passes]
        assert off not in names, f"{key}: disabled pass {off} still in ledger"
        assert len(passes) == len(ALL_PASSES) - 1, f"{key}: ledger must cover the 8 enabled passes"
        assert names == [p for p in ALL_PASSES if p != off], f"{key}: ledger order must match pipeline order"
        for p in passes:
            assert LEDGER_KEYS <= p.keys(), f"{key}: pass entry missing keys: {p.keys()}"
            assert isinstance(p["rejections"], dict), f"{key}: rejections must map label -> count"
        assert row["sampling_overhead_cycles"] >= 0
        for ev in row["events"]:
            assert ev["kind"] in EVENT_KINDS, f"{key}: unknown event kind {ev['kind']!r}"
charged = sum(p["charged_cycles"]
              for off in ALL_PASSES
              for row in doc[f"pass_off_{off}"]
              for p in row["pipeline"]["passes"])
print(f"  ok: 9 single-pass-off sections, ledger schema valid,"
      f" {charged} total charged cycles on the books")
EOF

echo "== smoke: bench simulator --quick =="
cargo bench -q -p adore-bench --bench simulator -- --quick

echo "== gate: predecoded fast path throughput vs reference =="
python3 - <<'EOF'
import json
doc = json.load(open("results/bench_simulator.json"))
rows = {b["name"]: b for b in doc["benchmarks"]}
fast = rows["machine/suite_insns_fast"]["ns_per_element"]
ref = rows["machine/suite_insns_reference"]["ns_per_element"]
ratio = ref / fast
assert ratio >= 2.0, (
    f"fast-path throughput regressed: {ratio:.2f}x reference (gate: >= 2x); "
    f"{fast:.2f} vs {ref:.2f} ns per simulated instruction")
print(f"  ok: fast path {ratio:.2f}x reference"
      f" ({fast:.2f} vs {ref:.2f} ns per simulated instruction)")
threaded = rows["machine/suite_insns_threaded"]["ns_per_element"]
tratio = fast / threaded
assert tratio >= 2.0, (
    f"threaded-tier throughput regressed: {tratio:.2f}x fast (gate: >= 2x); "
    f"{threaded:.2f} vs {fast:.2f} ns per simulated instruction")
print(f"  ok: threaded tier {tratio:.2f}x fast"
      f" ({threaded:.2f} vs {fast:.2f} ns per simulated instruction)")
EOF

echo "== validate JSON reports =="
for f in results/fig7.json results/families.json results/policy.json results/bench_simulator.json; do
    [ -f "$f" ] || { echo "missing report: $f" >&2; exit 1; }
    python3 -m json.tool "$f" > /dev/null
    python3 - "$f" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 2, "schema_version must be 2"
assert "tool" in doc and "generated_unix_s" in doc, "missing envelope keys"
if doc["tool"] == "fig7":  # engine-merged report: check grid metadata
    eng = doc["engine"]
    cells = eng["cells"]
    assert cells == len(eng["cell_labels"]), "cell label per cell"
    cache = eng["baseline_cache"]
    assert cache["hits"] == cache["lookups"] - cache["computes"]
    assert eng["errors"] == 0, "no cell may fail in the smoke grid"
    rows = doc["part_a"] + doc["part_b"]
    assert cells == len(rows), "one merged row per cell"
    for row in rows:
        assert {"bench", "base_cycles", "adore_cycles", "speedup_pct"} <= row.keys()
print(f"  ok: {sys.argv[1]} (tool={doc['tool']})")
EOF
done

echo "CI gate passed."
