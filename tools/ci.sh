#!/usr/bin/env bash
# The tier-1 gate, runnable fully offline (the workspace has zero
# external dependencies — see README.md "Zero-dependency policy").
#
#   tools/ci.sh
#
# Steps:
#   1. release build of every crate, warnings denied
#   2. full test suite (unit + integration + doc tests)
#   3. one smoke experiment + one smoke microbenchmark, each of which
#      must emit schema-valid JSON under results/
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export CARGO_NET_OFFLINE="true"

echo "== build (release, -D warnings) =="
cargo build --release --workspace --benches

echo "== test =="
cargo test -q --workspace

echo "== smoke: fig7 --quick =="
cargo run --release -q -p adore-bench --bin fig7 -- --quick

echo "== smoke: bench simulator --quick =="
cargo bench -q -p adore-bench --bench simulator -- --quick

echo "== validate JSON reports =="
for f in results/fig7.json results/bench_simulator.json; do
    [ -f "$f" ] || { echo "missing report: $f" >&2; exit 1; }
    python3 -m json.tool "$f" > /dev/null
    python3 - "$f" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, "schema_version must be 1"
assert "tool" in doc and "generated_unix_s" in doc, "missing envelope keys"
print(f"  ok: {sys.argv[1]} (tool={doc['tool']})")
EOF
done

echo "CI gate passed."
