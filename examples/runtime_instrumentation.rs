//! The paper's §6 future work, implemented: selective runtime
//! instrumentation.
//!
//! vpr- and lucas-like loops compute their addresses through fp↔int
//! conversions, so ADORE's dependence slicer cannot recover a stride
//! and the paper reports no gain for them (§4.3). With instrumentation
//! enabled, ADORE patches in a bounded, `p6`-guarded recording store,
//! reads the address stream back a few windows later, finds the
//! dominant stride (Wu-style), and promotes the instrumentation to a
//! real prefetch stream.
//!
//! Run with: `cargo run --release --example runtime_instrumentation`

use adore::{run, AdoreConfig};
use compiler::{compile, CompileOptions};
use sim::MachineConfig;

fn main() {
    let suite = workloads::suite(0.5);
    let w = suite.iter().find(|w| w.name == "lucas").unwrap();
    let bin = compile(&w.kernel, &CompileOptions::o2()).expect("compiles");

    let mut base = w.prepare(&bin, MachineConfig::default());
    base.run_to_halt();
    println!("plain run:                {:>12} cycles", base.cycles());

    // Stock ADORE: the slices are unanalyzable, nothing is inserted.
    let config = AdoreConfig::enabled();
    let mut m = w.prepare(&bin, config.machine_config(MachineConfig::default()));
    let stock = run(&mut m, &config);
    println!(
        "ADORE (paper config):     {:>12} cycles — {} streams, {} unanalyzable skips",
        stock.cycles,
        stock.stats.total(),
        stock
            .skips
            .iter()
            .filter(|(_, r)| matches!(r, adore::Rejection::UnanalyzableSlice))
            .count()
    );

    // With instrumentation: record → analyze → promote.
    let mut config = AdoreConfig::enabled();
    config.instrument_unanalyzable = true;
    let mut m = w.prepare(&bin, config.machine_config(MachineConfig::default()));
    let instr = run(&mut m, &config);
    println!(
        "ADORE + instrumentation:  {:>12} cycles — {} loads instrumented, {} promoted",
        instr.cycles, instr.instrumented, instr.promoted
    );
    println!(
        "\nspeedup without instrumentation: {:+.1}%",
        (base.cycles() as f64 / stock.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "speedup with instrumentation:    {:+.1}%",
        (base.cycles() as f64 / instr.cycles as f64 - 1.0) * 100.0
    );
}
