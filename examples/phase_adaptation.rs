//! The §1.2 story: Gaussian elimination generates heavy misses early
//! (the sub-matrix exceeds the caches) and almost none late (it fits).
//! No single static binary prefetches correctly for both ends; ADORE's
//! phase detector sees the two regimes and optimizes only the one that
//! misses.
//!
//! Run with: `cargo run --release --example phase_adaptation`

use adore::{run, AdoreConfig};
use compiler::{compile, CompileOptions};
use sim::MachineConfig;
use workloads::micro::gaussian;

fn main() {
    // Early passes sweep 32 K elements (2 MB, beyond L3); late passes
    // sweep 2 K (16 KB, cache-resident).
    let w = gaussian(256 << 10, 2 << 10, 40);
    let bin = compile(&w.kernel, &CompileOptions::o2()).expect("compiles");

    let mut plain = w.prepare(&bin, MachineConfig::default());
    plain.run_to_halt();
    println!("plain run: {:>12} cycles", plain.cycles());

    let mut config = AdoreConfig::enabled();
    config.sampling.interval_cycles = 2_000;
    let mut machine = w.prepare(&bin, config.machine_config(MachineConfig::default()));
    let report = run(&mut machine, &config);

    println!("ADORE run: {:>12} cycles", report.cycles);
    println!(
        "phases optimized: {} (the missy early phase), streams: {:?}",
        report.phases_optimized, report.stats
    );
    println!("\nper-window miss rate (DEAR misses / 1000 instructions):");
    for t in report.timeline.iter().step_by(2) {
        let bar = "#".repeat((t.dear_per_kinsn * 4.0).min(60.0) as usize);
        println!("  {:>12} {:>7.2} {bar}", t.cycles, t.dear_per_kinsn);
    }
    println!(
        "\nThe early windows miss heavily and get prefetched; the late,\n\
         cache-resident phase is detected as low-miss and left alone —\n\
         the adaptation a static binary cannot perform (§1.2)."
    );
}
