//! The paper's Fig. 1 story: a matrix multiply whose arrays are passed
//! as (possibly aliased) parameters. The static compiler cannot prove
//! independence, so `O3` generates **no** prefetches — while the runtime
//! optimizer, which sees actual miss addresses instead of alias sets,
//! prefetches happily.
//!
//! Run with: `cargo run --release --example matrix_multiply`

use adore::{run, AdoreConfig};
use compiler::{compile, CompileOptions};
use sim::MachineConfig;
use workloads::micro::matrix_multiply;

fn main() {
    let n = 512;
    let w = matrix_multiply(n, 40);

    // Static compilation: O2 (no prefetch) and O3 (prefetch pass on).
    let o2 = compile(&w.kernel, &CompileOptions::o2()).expect("compiles");
    let o3 = compile(&w.kernel, &CompileOptions::o3()).expect("compiles");
    println!(
        "O3 scheduled prefetches for {} loop(s) — the arrays are passed as \
         parameters, so alias analysis blocks the static prefetcher (Fig. 1)",
        o3.prefetched_loops
    );
    assert_eq!(o3.prefetched_loops, 0);

    let mut m2 = w.prepare(&o2, MachineConfig::default());
    m2.run_to_halt();
    println!("O2 binary:        {:>12} cycles", m2.cycles());

    let mut m3 = w.prepare(&o3, MachineConfig::default());
    m3.run_to_halt();
    println!("O3 binary:        {:>12} cycles (no better: nothing was prefetched)", m3.cycles());

    // Runtime prefetching does not care about aliasing: the DEAR gives
    // it real miss addresses.
    let mut config = AdoreConfig::enabled();
    config.sampling.interval_cycles = 2_000;
    let mut ma = w.prepare(&o2, config.machine_config(MachineConfig::default()));
    let report = run(&mut ma, &config);
    println!(
        "O2 + ADORE:       {:>12} cycles ({} stream(s) inserted)",
        report.cycles,
        report.stats.total()
    );
    let speedup = m2.cycles() as f64 / report.cycles as f64;
    println!("runtime prefetching speedup over both static builds: {speedup:.2}x");
}
