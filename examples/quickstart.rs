//! Quickstart: assemble a hot loop with heavy cache misses, run it on
//! the Itanium-2-like simulator, then run it again under ADORE and watch
//! runtime prefetching cut the cycle count.
//!
//! Run with: `cargo run --release --example quickstart`

use adore::{run, AdoreConfig};
use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};
use sim::{Machine, MachineConfig};

fn program() -> isa::Program {
    // for rep in 0..60 { for i in 0..40_000 { sum += a[i * 8] } }
    // — a strided walk whose stride (64 B) touches a new cache line
    // every iteration.
    let mut a = Asm::new();
    a.global("main");
    a.movl(Gr(8), 60);
    a.label("outer");
    a.movl(Gr(14), 0x1000_0000);
    a.movl(Gr(9), 40_000);
    a.label("loop");
    a.ld(AccessSize::U8, Gr(20), Gr(14), 64);
    a.add(Gr(21), Gr(20), Gr(21));
    a.addi(Gr(9), Gr(9), -1);
    a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
    a.br_cond(Pr(1), "loop");
    a.addi(Gr(8), Gr(8), -1);
    a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(8), 0);
    a.br_cond(Pr(1), "outer");
    a.halt();
    a.finish(CODE_BASE).expect("assembles")
}

fn main() {
    let arena = 40_016u64 * 64;

    // 1. Plain run: every iteration stalls on a memory miss.
    let mut plain = Machine::new(program(), MachineConfig::default());
    plain.mem_mut().alloc(arena, 64);
    plain.run(u64::MAX);
    println!("plain run:  {:>12} cycles  (CPI {:.2})",
        plain.cycles(), plain.cycles() as f64 / plain.retired() as f64);

    // 2. The same binary under ADORE: the PMU samples cache misses, the
    //    phase detector finds the stable loop, the optimizer builds a
    //    trace, classifies the delinquent load as a direct array
    //    reference, inserts an `lfetch` stream and patches the binary.
    let mut config = AdoreConfig::enabled();
    config.sampling.interval_cycles = 2_000;
    let mut machine = Machine::new(program(), config.machine_config(MachineConfig::default()));
    machine.mem_mut().alloc(arena, 64);
    let report = run(&mut machine, &config);

    println!("under ADORE:{:>12} cycles  (CPI {:.2})",
        report.cycles, report.cycles as f64 / report.retired as f64);
    println!(
        "  phases optimized: {}, traces patched: {}, prefetch streams: {:?}",
        report.phases_optimized, report.traces_patched, report.stats
    );
    let speedup = plain.cycles() as f64 / report.cycles as f64;
    println!("  speedup: {:.2}x", speedup);
    assert!(speedup > 1.1, "runtime prefetching should win here");
}
