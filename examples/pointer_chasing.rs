//! Pointer chasing à la 181.mcf (the paper's Fig. 5 C / Fig. 6 C): a
//! linked list allocated mostly in traversal order. Static prefetching
//! is helpless; ADORE's induction-pointer scheme — snapshot the
//! recurrent pointer, measure the per-iteration delta, extrapolate a
//! few nodes ahead — hides most of the miss latency.
//!
//! Run with: `cargo run --release --example pointer_chasing`

use adore::{run, AdoreConfig};
use compiler::{compile, CompileOptions, Kernel, ListDecl, LoopSpec, RefSpec};
use sim::{MachineConfig, Memory};

fn main() {
    // A 6 MB circular list, nodes 128 bytes apart in traversal order
    // except for an occasional discontinuity (allocation order ≈
    // traversal order, as in mcf's arc arrays).
    let nodes: u64 = 48_000;
    let node_bytes: u64 = 128;
    let head: u64 = sim::DATA_BASE;

    let mut k = Kernel::new("chase-example");
    let list = k.add_list(ListDecl {
        head,
        node_bytes,
        next_offset: 0,
        payload_offset: 8,
        nodes,
    });
    let l = k.add_loop(
        LoopSpec::new("walk", 800, vec![RefSpec::PointerChase { list }])
            .with_compute(4, 0)
            .with_resume(),
    );
    k.add_phase(120, vec![l]);

    let bin = compile(&k, &CompileOptions::o2()).expect("compiles");
    // O3 would schedule nothing for this loop:
    let o3 = compile(&k, &CompileOptions::o3()).expect("compiles");
    assert_eq!(o3.prefetched_loops, 0, "static prefetching cannot handle pointer chasing");

    let init_list = |mem: &mut Memory| {
        // Mostly-sequential layout: runs of 64 nodes, runs shuffled by a
        // fixed stride permutation.
        let run_len = 64u64;
        let n_runs = nodes / run_len;
        let order: Vec<u64> = (0..n_runs)
            .map(|r| (r * 7 + 3) % n_runs) // simple run permutation
            .flat_map(|r| r * run_len..(r + 1) * run_len)
            .collect();
        for i in 0..order.len() {
            let node = head + order[i] * node_bytes;
            let next = head + order[(i + 1) % order.len()] * node_bytes;
            mem.write(node, 8, next);
            mem.write(node + 8, 8, order[i]);
        }
    };

    let mut cfg = MachineConfig::default();
    cfg.mem_capacity = (nodes * node_bytes + 4096) as usize;
    let mut plain = sim::Machine::new(bin.program.clone(), cfg.clone());
    init_list(plain.mem_mut());
    plain.run(u64::MAX);
    println!("plain chase:   {:>12} cycles", plain.cycles());

    let mut aconfig = AdoreConfig::enabled();
    aconfig.sampling.interval_cycles = 2_000;
    let mut machine = sim::Machine::new(bin.program, aconfig.machine_config(cfg));
    init_list(machine.mem_mut());
    let report = run(&mut machine, &aconfig);
    println!(
        "under ADORE:   {:>12} cycles ({} pointer-chasing stream(s))",
        report.cycles, report.stats.pointer
    );
    assert!(report.stats.pointer >= 1, "the chase should be detected and prefetched");
    println!("speedup: {:.2}x", plain.cycles() as f64 / report.cycles as f64);
}
