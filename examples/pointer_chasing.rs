//! Pointer chasing à la 181.mcf (the paper's Fig. 5 C / Fig. 6 C): a
//! linked list allocated mostly in traversal order. Static prefetching
//! is helpless; ADORE's induction-pointer scheme — snapshot the
//! recurrent pointer, measure the per-iteration delta, extrapolate a
//! few nodes ahead — hides most of the miss latency.
//!
//! The second phase is the harder, dependence-based variant: each node
//! also stores a *jump pointer* to a node several hops ahead, and the
//! payload is read through that pointer (`q = p->jump; use
//! q->payload; p = p->next`). The delinquent load's address comes from
//! an intermediate load, so induction-pointer extrapolation does not
//! apply either — ADORE classifies it as `Pattern::JumpPointer` and
//! prefetches through the jump pointer itself.
//!
//! Run with: `cargo run --release --example pointer_chasing`

use adore::{run, AdoreConfig};
use compiler::{compile, CompileOptions, Kernel, ListDecl, LoopSpec, RefSpec};
use sim::{MachineConfig, Memory};

fn main() {
    // A 6 MB circular list, nodes 128 bytes apart in traversal order
    // except for an occasional discontinuity (allocation order ≈
    // traversal order, as in mcf's arc arrays).
    let nodes: u64 = 48_000;
    let node_bytes: u64 = 128;
    let head: u64 = sim::DATA_BASE;
    // A second pool right behind the first for the jump-pointer phase.
    let jhead: u64 = head + nodes * node_bytes;
    let hops: u64 = 12;

    let mut k = Kernel::new("chase-example");
    let list = k.add_list(ListDecl {
        head,
        node_bytes,
        next_offset: 0,
        payload_offset: 8,
        nodes,
    });
    let l = k.add_loop(
        LoopSpec::new("walk", 800, vec![RefSpec::PointerChase { list }])
            .with_compute(4, 0)
            .with_resume(),
    );
    k.add_phase(120, vec![l]);

    // Jump-pointer mark loop: next at offset 0, jump pointer at 8,
    // payload read through the jump pointer at offset 24.
    let jlist = k.add_list(ListDecl {
        head: jhead,
        node_bytes,
        next_offset: 0,
        payload_offset: 24,
        nodes,
    });
    let jl = k.add_loop(
        LoopSpec::new("mark", 800, vec![RefSpec::JumpPointer { list: jlist, jump_offset: 8 }])
            .with_compute(4, 0)
            .with_resume(),
    );
    k.add_phase(120, vec![jl]);

    let bin = compile(&k, &CompileOptions::o2()).expect("compiles");
    // O3 would schedule nothing for either loop:
    let o3 = compile(&k, &CompileOptions::o3()).expect("compiles");
    assert_eq!(o3.prefetched_loops, 0, "static prefetching cannot handle pointer chasing");

    let init_lists = |mem: &mut Memory| {
        // Mostly-sequential layout: runs of 64 nodes, runs shuffled by a
        // fixed stride permutation.
        let run_len = 64u64;
        let n_runs = nodes / run_len;
        let order: Vec<u64> = (0..n_runs)
            .map(|r| (r * 7 + 3) % n_runs) // simple run permutation
            .flat_map(|r| r * run_len..(r + 1) * run_len)
            .collect();
        let n = order.len();
        for i in 0..n {
            let node = head + order[i] * node_bytes;
            let next = head + order[(i + 1) % n] * node_bytes;
            mem.write(node, 8, next);
            mem.write(node + 8, 8, order[i]);

            let jnode = jhead + order[i] * node_bytes;
            let jnext = jhead + order[(i + 1) % n] * node_bytes;
            let jump = jhead + order[(i + hops as usize) % n] * node_bytes;
            mem.write(jnode, 8, jnext);
            mem.write(jnode + 8, 8, jump);
            mem.write(jnode + 24, 8, order[i]);
        }
    };

    let mut cfg = MachineConfig::default();
    cfg.mem_capacity = (2 * nodes * node_bytes + 4096) as usize;
    let mut plain = sim::Machine::new(bin.program.clone(), cfg.clone());
    init_lists(plain.mem_mut());
    plain.run(u64::MAX);
    println!("plain chase:   {:>12} cycles", plain.cycles());

    let mut aconfig = AdoreConfig::enabled();
    aconfig.sampling.interval_cycles = 2_000;
    let mut machine = sim::Machine::new(bin.program, aconfig.machine_config(cfg));
    init_lists(machine.mem_mut());
    let report = run(&mut machine, &aconfig);
    println!(
        "under ADORE:   {:>12} cycles ({} pointer-chasing, {} jump-pointer stream(s))",
        report.cycles, report.stats.pointer, report.stats.jump
    );
    assert!(report.stats.pointer >= 1, "the chase should be detected and prefetched");
    assert!(report.stats.jump >= 1, "the jump-pointer loop should be detected and prefetched");
    println!("speedup: {:.2}x", plain.cycles() as f64 / report.cycles as f64);
}
