//! Service-level guarantees the `lab` redesign is sold on: the
//! `lab serve` response stream is byte-identical for any worker count
//! and row-for-row identical to the batch engine; the persistent
//! baseline store round-trips across runs (second run recomputes
//! nothing) and recovers from corrupted entries by recomputing them.

use std::fs;
use std::path::PathBuf;

use bench_harness::lab::serve::serve_io;
use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;

/// A unique per-test scratch directory (fresh on every invocation).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adore-service-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A `Cli` for `serve_io` with the persistent store disabled, so the
/// stream depends on nothing outside the request lines.
fn serve_cli(jobs: usize) -> Cli {
    let mut c = Cli::fixed(0.05, jobs);
    c.values.push(("no-baseline-store".into(), None));
    c
}

const REQUESTS: &str = concat!(
    r#"{"workload":"swim","tool":"unit","section":"comparison","measure":"comparison"}"#,
    "\n",
    r#"{"workload":"art","tool":"unit","section":"comparison","measure":"comparison"}"#,
    "\n",
);

fn serve_stream(jobs: usize) -> (String, usize, usize) {
    let mut out = Vec::new();
    let summary = serve_io(&serve_cli(jobs), REQUESTS.as_bytes(), &mut out);
    (String::from_utf8(out).expect("utf8 stream"), summary.cells, summary.errors)
}

#[test]
fn serve_stream_is_byte_identical_across_worker_counts() {
    let (serial, cells, errors) = serve_stream(1);
    let (parallel, _, _) = serve_stream(4);
    assert_eq!(serial, parallel, "stream must not depend on --jobs");
    assert_eq!((cells, errors), (2, 0));

    // Each response line is a well-formed envelope in submission order.
    for (i, line) in serial.lines().enumerate() {
        let env = Json::parse(line).expect("envelope parses");
        assert_eq!(env.get("index").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(env.get("section").and_then(Json::as_str), Some("comparison"));
        assert!(env.get("row").and_then(|r| r.get("bench")).is_some());
    }
}

#[test]
fn serve_rows_match_the_batch_engine() {
    // The same (tool, section, workload) triple must produce the same
    // bytes whether it arrives as a request line or as a grid cell —
    // the serve path derives its per-cell seed identically.
    let (stream, _, _) = serve_stream(2);
    let served: Vec<Json> = stream
        .lines()
        .map(|l| Json::parse(l).unwrap().get("row").expect("row").clone())
        .collect();

    let batch = ExperimentSpec::paper_defaults("unit", &Cli::fixed(0.05, 2))
        .baseline_dir(None)
        .section(
            "comparison",
            &["swim", "art"],
            CompileOptions::o2(),
            Measure::Comparison,
        )
        .run();
    let rows = batch.rows("comparison");
    assert_eq!(served.len(), rows.len());
    for (served, batch) in served.iter().zip(rows) {
        assert_eq!(served.to_string(), batch.to_string());
    }
}

fn store_spec(dir: &PathBuf) -> ExperimentSpec {
    ExperimentSpec::paper_defaults("unit_store", &Cli::fixed(0.05, 2))
        .baseline_dir(Some(dir.clone()))
        .section(
            "comparison",
            &["swim", "art"],
            CompileOptions::o2(),
            Measure::Comparison,
        )
        .section(
            "overhead",
            &["swim", "art"],
            CompileOptions::o2(),
            Measure::Overhead,
        )
}

fn comparison_rows(r: &EngineResult) -> String {
    r.rows("comparison").iter().map(Json::to_string).collect::<Vec<_>>().join("\n")
}

#[test]
fn persistent_store_is_reused_on_a_second_run() {
    let dir = scratch("reuse");

    let first = store_spec(&dir).run();
    assert_eq!(first.failed, 0);
    // Cold store: both unique baselines (swim, art) were computed and
    // persisted; the overhead section reuses them in memory.
    assert_eq!((first.store_hits, first.store_misses), (0, 2));
    assert_eq!(fs::read_dir(&dir).unwrap().count(), 2, "one entry per baseline");

    let second = store_spec(&dir).run();
    assert_eq!(second.failed, 0);
    // Warm store: zero recomputed baselines, and the rows are the same
    // bytes the cold run produced.
    assert_eq!((second.store_hits, second.store_misses), (2, 0));
    assert_eq!(comparison_rows(&first), comparison_rows(&second));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_entry_is_recomputed_not_trusted() {
    let dir = scratch("corrupt");

    let first = store_spec(&dir).run();
    assert_eq!(first.store_misses, 2);

    // Tamper with one persisted entry. The store must treat it as a
    // miss (checksum mismatch) and recompute — never serve bad data.
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    fs::write(&entries[0], b"{\"store_version\": 1, \"cycles\": 12345").unwrap();

    let second = store_spec(&dir).run();
    assert_eq!(second.failed, 0);
    assert_eq!(
        (second.store_hits, second.store_misses),
        (1, 1),
        "intact entry hits, corrupted entry recomputes"
    );
    assert_eq!(comparison_rows(&first), comparison_rows(&second));

    // The recompute re-persisted a good entry: a third run is all hits.
    let third = store_spec(&dir).run();
    assert_eq!((third.store_hits, third.store_misses), (2, 0));

    let _ = fs::remove_dir_all(&dir);
}
