//! Guarantees the `lab policy` grid is sold on: the policy report —
//! including every cell's per-phase decision log — is byte-identical
//! for any worker count, and a `"policy"` request through `lab serve`
//! produces the same row bytes as the batch engine.

use bench_harness::lab::serve::serve_io;
use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;

fn cli(scale: f64, jobs: usize) -> Cli {
    let mut c = Cli::fixed(scale, jobs);
    c.report_args = vec!["--unit".into()];
    c
}

/// A small policy grid: one suite kernel plus one scenario family, so
/// the jobs-invariance claim covers both workload sources.
fn spec(jobs: usize) -> ExperimentSpec {
    ExperimentSpec::paper_defaults("policy", &cli(0.05, jobs))
        .baseline_dir(None)
        .section("grid", &["mcf", "server"], CompileOptions::o2(), Measure::Policy)
}

/// The report with its volatile fields zeroed (same canonicalization
/// as the engine determinism tier: envelope timestamp plus the
/// `engine.scheduling` / `engine.baseline_store` subsections).
fn canonical(result: &EngineResult) -> String {
    let mut j = result.report().json().clone();
    j.set("generated_unix_s", 0u64);
    let mut engine = j.get("engine").expect("engine section").clone();
    engine.set("scheduling", Json::object());
    engine.set("baseline_store", Json::object());
    j.set("engine", engine);
    j.pretty()
}

#[test]
fn policy_report_is_byte_identical_across_worker_counts() {
    let serial = spec(1).run();
    let parallel = spec(4).run();
    assert_eq!(serial.failed, 0);
    assert_eq!(canonical(&serial), canonical(&parallel));

    // Schema of a policy row: the three-leg cycle columns, the verdict
    // column, and the controller section with its decision log.
    for row in serial.rows("grid") {
        assert!(row.get("base_cycles").and_then(Json::as_u64).is_some());
        assert!(row.get("static_cycles").and_then(Json::as_u64).is_some());
        assert!(row.get("adaptive_cycles").and_then(Json::as_u64).is_some());
        assert!(row.get("delta_pct").and_then(Json::as_f64).is_some());
        assert!(row.get("win").is_some());
        let policy = row.get("policy").expect("policy section");
        assert_eq!(policy.get("enabled"), Some(&Json::Bool(true)));
        assert!(policy.get("decisions").and_then(Json::as_array).is_some());
        assert!(policy.get("committed").and_then(Json::as_array).is_some());
    }
}

#[test]
fn serve_policy_rows_match_the_batch_engine() {
    let requests = concat!(
        r#"{"workload":"mcf","tool":"policy","section":"grid","measure":"policy"}"#,
        "\n",
        r#"{"workload":"server","tool":"policy","section":"grid","measure":"policy"}"#,
        "\n",
    );
    let mut served_cli = Cli::fixed(0.05, 2);
    served_cli.values.push(("no-baseline-store".into(), None));
    let mut out = Vec::new();
    let summary = serve_io(&served_cli, requests.as_bytes(), &mut out);
    assert_eq!((summary.cells, summary.errors), (2, 0));
    let served: Vec<Json> = String::from_utf8(out)
        .expect("utf8 stream")
        .lines()
        .map(|l| Json::parse(l).unwrap().get("row").expect("row").clone())
        .collect();

    let batch = spec(2).run();
    let rows = batch.rows("grid");
    assert_eq!(served.len(), rows.len());
    for (served, batch) in served.iter().zip(rows) {
        assert_eq!(served.to_string(), batch.to_string());
    }
}
