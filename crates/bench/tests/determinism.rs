//! Engine-level guarantees the redesign is sold on: a parallel run's
//! report is byte-identical to a serial run's, the baseline cache
//! computes each key exactly once, and a failing cell ruins only its
//! own row.

use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;

fn cli(scale: f64, jobs: usize) -> Cli {
    let mut c = Cli::fixed(scale, jobs);
    c.report_args = vec!["--unit".into()];
    c
}

fn spec(jobs: usize) -> ExperimentSpec {
    // `baseline_dir(None)` keeps the test hermetic: no on-disk store,
    // so a previous run (or a workspace-level cache) cannot change the
    // in-memory cache arithmetic asserted below.
    ExperimentSpec::paper_defaults("unit", &cli(0.05, jobs))
        .baseline_dir(None)
        .section(
            "comparison",
            &["swim", "art"],
            CompileOptions::o2(),
            Measure::Comparison,
        )
        .section(
            "overhead",
            &["swim", "art"],
            CompileOptions::o2(),
            Measure::Overhead,
        )
}

/// The report with its volatile fields zeroed — everything else must
/// be reproducible. Volatile: the envelope timestamp, plus the
/// `engine.scheduling` and `engine.baseline_store` subsections, which
/// describe *how* the run executed (shard count, steal counts, disk
/// state) and legitimately vary with `--jobs` and the environment.
fn canonical(result: &EngineResult) -> String {
    let mut j = result.report().json().clone();
    j.set("generated_unix_s", 0u64);
    let mut engine = j.get("engine").expect("engine section").clone();
    engine.set("scheduling", Json::object());
    engine.set("baseline_store", Json::object());
    j.set("engine", engine);
    j.pretty()
}

#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let serial = spec(1).run();
    let parallel = spec(4).run();
    assert_eq!(canonical(&serial), canonical(&parallel));
    assert_eq!(serial.failed, 0);

    // Schema of a comparison row (what fig7-style consumers read).
    let row = &serial.rows("comparison")[0];
    assert_eq!(row.get("bench").and_then(Json::as_str), Some("swim"));
    assert!(row.get("speedup_pct").and_then(Json::as_f64).is_some());
    assert!(row.get("streams").and_then(|s| s.get("direct")).is_some());
    let caches = row
        .get("base")
        .and_then(|b| b.get("caches"))
        .expect("cache stats");
    assert!(caches.get("l1d").and_then(|l| l.get("misses")).is_some());

    // The overhead section reused both comparison baselines: 4 lookups,
    // 2 computes — and that arithmetic is jobs-independent.
    let engine = serial
        .report()
        .json()
        .get("engine")
        .expect("engine section");
    let cache = engine.get("baseline_cache").expect("cache stats");
    assert_eq!(cache.get("lookups").and_then(Json::as_u64), Some(4));
    assert_eq!(cache.get("computes").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(2));
    assert_eq!(engine.get("cells").and_then(Json::as_u64), Some(4));
}

#[test]
fn baseline_cache_counts_hits_and_distinguishes_machines() {
    let suite = workloads::suite(0.05);
    let w = suite.iter().find(|w| w.name == "swim").unwrap();
    let cache = BaselineCache::new();
    let mcfg = experiment_machine_config();
    let a = cache.plain(w, &CompileOptions::o2(), &mcfg).unwrap();
    let b = cache.plain(w, &CompileOptions::o2(), &mcfg).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(cache.stats(), (2, 1), "second lookup must hit");

    // A different machine configuration (the ablation's uncapped-bus
    // variant) is a different key — sharing would corrupt the study.
    let mut uncapped = experiment_machine_config();
    uncapped.cache.mem_service_interval = 0;
    cache.plain(w, &CompileOptions::o2(), &uncapped).unwrap();
    assert_eq!(cache.stats(), (3, 2));

    // Different compile options likewise.
    cache
        .plain(w, &CompileOptions::o2_original(), &mcfg)
        .unwrap();
    assert_eq!(cache.stats(), (4, 3));
}

#[test]
fn compile_failure_fails_only_its_row() {
    let suite = workloads::suite(0.05);
    let mut bad = suite.iter().find(|w| w.name == "swim").unwrap().clone();
    bad.name = "badloop";
    bad.kernel.loops[0].trip = 0;
    let result = ExperimentSpec::paper_defaults("unit_bad", &cli(0.05, 2))
        .baseline_dir(None)
        .with_workload(bad)
        .section(
            "rows",
            &["swim", "badloop", "nosuch"],
            CompileOptions::o2(),
            Measure::Comparison,
        )
        .run();
    assert_eq!(result.failed, 2);
    let rows = result.rows("rows");
    assert_eq!(rows.len(), 3, "failed cells still occupy their slots");
    assert!(je(&rows[0]).is_none(), "healthy cell unaffected");
    assert!(rows[0].get("speedup_pct").is_some());
    let msg = je(&rows[1]).expect("compile-failure row");
    assert!(msg.contains("zero trip count"), "{msg}");
    assert!(je(&rows[2])
        .expect("unknown-workload row")
        .contains("unknown workload"));
}
