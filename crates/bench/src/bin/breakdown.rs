//! Workload characterization — the paper's first PMU usage model
//! (§2.1): the overall runtime cycle breakdown per benchmark, before
//! and after runtime prefetching. Memory stalls are exactly what the
//! optimizer converts into busy (or at least shorter) time.
//!
//! Emits `results/breakdown.json` alongside the printed table.
//!
//! Usage: `breakdown [--quick]`

use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;
use sim::Counters;

fn pct(part: u64, total: u64) -> f64 {
    100.0 * part as f64 / total.max(1) as f64
}

fn row(label: &str, c: &Counters, cycles: u64) {
    let accounted =
        c.stall_mem + c.stall_fp + c.stall_branch + c.stall_icache + c.overhead_cycles;
    println!(
        "  {label:<8} {cycles:>13} cycles | mem {:>5.1}% | fp {:>4.1}% | br {:>4.1}% | i$ {:>4.1}% | ovh {:>4.1}% | busy {:>5.1}%",
        pct(c.stall_mem, cycles),
        pct(c.stall_fp, cycles),
        pct(c.stall_branch, cycles),
        pct(c.stall_icache, cycles),
        pct(c.overhead_cycles, cycles),
        pct(cycles.saturating_sub(accounted), cycles),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let suite = workloads::suite(scale);
    let config = experiment_adore_config();

    println!("== Cycle breakdown (workload characterization, §2.1) ==");
    let side = |c: &Counters, cycles: u64| {
        let accounted =
            c.stall_mem + c.stall_fp + c.stall_branch + c.stall_icache + c.overhead_cycles;
        Json::object()
            .with("cycles", cycles)
            .with("counters", c)
            .with("mem_stall_pct", pct(c.stall_mem, cycles))
            .with("busy_pct", pct(cycles.saturating_sub(accounted), cycles))
    };
    let mut rows = Json::array();
    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let bin = build(w, &CompileOptions::o2());
        println!("{name}:");
        let mut base = w.prepare(&bin, experiment_machine_config());
        base.run_to_halt();
        row("O2", &base.pmu().counters, base.cycles());
        let (report, m) = run_adore_with_machine(w, &bin, &config);
        row("+ADORE", &m.pmu().counters, report.cycles);
        rows.push(
            Json::object()
                .with("bench", name)
                .with("o2", side(&base.pmu().counters, base.cycles()))
                .with("adore", side(&m.pmu().counters, report.cycles)),
        );
    }
    let mut report = experiment_report("breakdown", &args, scale);
    report.set("rows", rows);
    report.save().expect("write results/breakdown.json");
}
