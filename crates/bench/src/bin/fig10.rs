//! Fig. 10: the cost of the restricted compilation — original `O2`
//! (software pipelining on, no registers reserved) versus the
//! restricted `O2` used for runtime prefetching (SWP off, `r27`–`r30`
//! and `p6` reserved).
//!
//! Emits `results/fig10.json` alongside the printed table.
//!
//! Usage: `fig10 [--quick]`

use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let suite = workloads::suite(scale);

    println!("== Fig. 10: original O2 (SWP, no reservation) vs restricted O2 ==");
    println!(
        "{:<10} {:>16} {:>16} {:>10}  (paper: >3% only for equake, mcf, facerec, swim)",
        "bench", "restricted O2", "original O2", "speedup%"
    );
    let mut rows = Json::array();
    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let restricted = build(w, &CompileOptions::o2());
        let original = build(w, &CompileOptions::o2_original());
        let rc = run_plain(w, &restricted);
        let oc = run_plain(w, &original);
        println!("{:<10} {:>16} {:>16} {:>9.1}%", name, rc, oc, speedup_pct(rc, oc));
        rows.push(
            Json::object()
                .with("bench", name)
                .with("restricted_cycles", rc)
                .with("original_cycles", oc)
                .with("speedup_pct", speedup_pct(rc, oc)),
        );
    }
    let mut report = experiment_report("fig10", &args, scale);
    report.set("rows", rows);
    report.save().expect("write results/fig10.json");
}
