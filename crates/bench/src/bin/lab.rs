//! The `lab` multiplexed experiment binary — see `bench_harness::lab`.

fn main() {
    bench_harness::lab::main();
}
