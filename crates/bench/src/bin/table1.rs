//! Table 1: profile-guided static prefetching.
//!
//! For each benchmark: compile at `O3` (every analyzable loop gets
//! prefetches), collect a sampling miss profile from a training run,
//! build the 90 %-latency-coverage delinquent-loop list, recompile with
//! prefetching restricted to those loops, and report loops scheduled /
//! normalized execution time / normalized binary size — the three
//! column groups of the paper's Table 1.
//!
//! Emits `results/table1.json` alongside the printed table.
//!
//! Usage: `table1 [--quick]`

use bench_harness::*;
use compiler::{delinquent_loop_filter, CompileOptions};
use obs::Json;
use perfmon::{MissProfile, Perfmon};
use sim::Sample;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let suite = workloads::suite(scale);
    let config = experiment_adore_config();
    let mut rows = Json::array();

    println!("== Table 1: profile-guided static prefetching ==");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}  (paper: loops {:>4}->{:>3}, time, size)",
        "bench", "O3 loops", "prof loops", "norm time", "norm size", "p.time", "p.size", "O3", "pf"
    );

    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let o3 = build(w, &CompileOptions::o3());

        // Training run: plain sampling on the *unprefetched* binary —
        // a profile collected under static prefetching would hide
        // exactly the loads the filter must keep.
        let o2 = build(w, &CompileOptions::o2());
        let mcfg = config.machine_config(experiment_machine_config());
        let mut m = w.prepare(&o2, mcfg);
        let mut pm = Perfmon::new(config.perfmon.clone());
        let mut samples: Vec<Sample> = Vec::new();
        pm.run_with_windows(&mut m, |_, w, _| samples.extend(w.samples.iter().cloned()));
        let o3_cycles = run_plain(w, &o3);

        let profile = MissProfile::from_samples(samples.iter());

        let mut opts = CompileOptions::o3();
        // An empty training profile (the run was too short to fill a
        // single sample buffer, e.g. gzip) gives no guidance: keep the
        // default prefetching rather than filtering everything out.
        if !profile.is_empty() {
            opts.prefetch_filter = Some(delinquent_loop_filter(&profile, &o2, 0.9));
        }
        let guided = build(w, &opts);
        let guided_cycles = run_plain(w, &guided);

        let norm_time = guided_cycles as f64 / o3_cycles as f64;
        let norm_size = guided.program.size_bytes() as f64 / o3.program.size_bytes() as f64;
        let (p_o3, p_pf, p_time, p_size) = paper_table1(name).unwrap();
        println!(
            "{:<10} {:>8} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  (paper: {:>4}->{:>3})",
            name,
            o3.prefetched_loops,
            guided.prefetched_loops,
            norm_time,
            norm_size,
            p_time,
            p_size,
            p_o3,
            p_pf
        );
        rows.push(
            Json::object()
                .with("bench", name)
                .with("o3_loops", o3.prefetched_loops)
                .with("profiled_loops", guided.prefetched_loops)
                .with("o3_cycles", o3_cycles)
                .with("guided_cycles", guided_cycles)
                .with("norm_time", norm_time)
                .with("norm_size", norm_size)
                .with("profile", &profile)
                .with(
                    "paper",
                    Json::object()
                        .with("o3_loops", p_o3)
                        .with("profiled_loops", p_pf)
                        .with("norm_time", p_time)
                        .with("norm_size", p_size),
                ),
        );
    }
    let mut report = experiment_report("table1", &args, scale);
    report.set("rows", rows);
    report.save().expect("write results/table1.json");
}
