//! Fig. 7: performance of runtime prefetching over `O2` (a) and `O3`
//! (b) binaries, all 17 benchmarks.
//!
//! Emits `results/fig7.json` alongside the printed table.
//!
//! Usage: `fig7 [a|b|both] [--quick]`

use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;

fn run_part(part: char, scale: f64) -> Json {
    let base_opts = match part {
        'a' => CompileOptions::o2(),
        _ => CompileOptions::o3(),
    };
    let paper: fn(&str) -> f64 = match part {
        'a' => paper_fig7a,
        _ => paper_fig7b,
    };
    println!("== Fig. 7({part}): {} + runtime prefetching ==", if part == 'a' { "O2" } else { "O3" });
    println!(
        "{:<10} {:>14} {:>14} {:>10} {:>10}  {:>8} {:>8}",
        "bench", "base cycles", "adore cycles", "speedup%", "paper%", "patched", "phases"
    );
    let suite = workloads::suite(scale);
    let mut rows = Json::array();
    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let bin = build(w, &base_opts);
        let (base, base_machine) = run_plain_with_machine(w, &bin);
        let (report, adore_machine) = run_adore_with_machine(w, &bin, &experiment_adore_config());
        let s = speedup_pct(base, report.cycles);
        println!(
            "{:<10} {:>14} {:>14} {:>9.1}% {:>9.1}%  {:>8} {:>8}",
            name, base, report.cycles, s, paper(name), report.traces_patched,
            report.phases_optimized
        );
        rows.push(
            comparison_row(name, base, &base_machine, &report, &adore_machine)
                .with("paper_speedup_pct", paper(name)),
        );
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let part = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("both");
    let mut report = experiment_report("fig7", &args, scale);
    match part {
        "a" => report.set("part_a", run_part('a', scale)),
        "b" => report.set("part_b", run_part('b', scale)),
        _ => {
            report.set("part_a", run_part('a', scale));
            println!();
            report.set("part_b", run_part('b', scale));
        }
    }
    report.save().expect("write results/fig7.json");
}
