//! Fig. 7: performance of runtime prefetching over `O2` (a) and `O3`
//! (b) binaries, all 17 benchmarks.
//!
//! Usage: `fig7 [a|b|both] [--quick]`

use bench_harness::*;
use compiler::CompileOptions;

fn run_part(part: char, scale: f64) {
    let base_opts = match part {
        'a' => CompileOptions::o2(),
        _ => CompileOptions::o3(),
    };
    let paper: fn(&str) -> f64 = match part {
        'a' => paper_fig7a,
        _ => paper_fig7b,
    };
    println!("== Fig. 7({part}): {} + runtime prefetching ==", if part == 'a' { "O2" } else { "O3" });
    println!(
        "{:<10} {:>14} {:>14} {:>10} {:>10}  {:>8} {:>8}",
        "bench", "base cycles", "adore cycles", "speedup%", "paper%", "patched", "phases"
    );
    let suite = workloads::suite(scale);
    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let bin = build(w, &base_opts);
        let base = run_plain(w, &bin);
        let report = run_adore(w, &bin, &experiment_adore_config());
        let s = speedup_pct(base, report.cycles);
        println!(
            "{:<10} {:>14} {:>14} {:>9.1}% {:>9.1}%  {:>8} {:>8}",
            name, base, report.cycles, s, paper(name), report.traces_patched,
            report.phases_optimized
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let part = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("both");
    match part {
        "a" => run_part('a', scale),
        "b" => run_part('b', scale),
        _ => {
            run_part('a', scale);
            println!();
            run_part('b', scale);
        }
    }
}
