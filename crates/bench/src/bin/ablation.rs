//! Ablation study over the design choices DESIGN.md calls out: what
//! happens to representative benchmarks when individual mechanisms are
//! switched off (or, for the §6 instrumentation extension, on).
//!
//! Emits `results/ablation.json` alongside the printed table: one
//! report section of comparison rows per variant, keyed by variant.
//!
//! Usage: `ablation [--quick] [--jobs N]`

use bench_harness::*;
use compiler::CompileOptions;

const BENCHES: [&str; 4] = ["mcf", "art", "swim", "lucas"];

const VARIANTS: [(&str, &str, fn(&mut Cell)); 7] = [
    ("full", "full system", |_| {}),
    ("no_jitter", "no sampling-period jitter", |c| {
        c.adore.sampling.jitter = 0.0
    }),
    ("no_pointer", "no pointer-chase prefetching", |c| {
        c.adore.prefetch.enable_pointer = false
    }),
    ("no_indirect", "no indirect prefetching", |c| {
        c.adore.prefetch.enable_indirect = false
    }),
    ("no_direct", "no direct prefetching", |c| {
        c.adore.prefetch.enable_direct = false
    }),
    ("no_bw_cap", "no memory-bandwidth cap", |c| {
        c.machine.cache.mem_service_interval = 0
    }),
    ("instrumentation", "+ runtime instrumentation (§6)", |c| {
        c.adore.instrument_unanalyzable = true
    }),
];

fn main() {
    let cli = cli::parse();
    let mut spec = ExperimentSpec::paper_defaults("ablation", &cli);
    for (key, _, tweak) in VARIANTS {
        spec = spec.section_with(
            key,
            &BENCHES,
            CompileOptions::o2(),
            Measure::Comparison,
            tweak,
        );
    }
    let result = spec.run();
    println!("== Ablation of design choices (speedup % under O2 + ADORE) ==\n");
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>8}",
        "configuration", "mcf", "art", "swim", "lucas"
    );
    for (key, label, _) in VARIANTS {
        let v: Vec<f64> = result
            .rows(key)
            .iter()
            .map(|r| jf(r, "speedup_pct"))
            .collect();
        println!(
            "{label:<34} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            v[0], v[1], v[2], v[3]
        );
    }
    result.save().expect("write results/ablation.json");
    println!(
        "\nReading the rows: each pattern toggle hits the benchmark that\n\
         depends on it (mcf=pointer, art=indirect+direct, swim=direct).\n\
         Jitter off narrows first-pass DEAR diversity (incremental\n\
         re-optimization partly compensates). Removing the bandwidth cap\n\
         lets the *baseline* overlap misses freely, shrinking the\n\
         prefetch headroom the paper's bus-limited machine actually had.\n\
         Instrumentation (off in the paper's evaluation) unlocks the\n\
         fp-conversion benchmark (lucas) the paper could not improve."
    );
}
