//! Ablation study over the design choices DESIGN.md calls out: what
//! happens to representative benchmarks when individual mechanisms are
//! switched off (or, for the §6 instrumentation extension, on).
//!
//! Emits `results/ablation.json` alongside the printed table.
//!
//! Usage: `ablation [--quick]`

use adore::AdoreConfig;
use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;
use sim::MachineConfig;
use workloads::Workload;

fn speedup(w: &Workload, config: &AdoreConfig, mcfg: MachineConfig) -> f64 {
    let bin = build(w, &CompileOptions::o2());
    let mut base = w.prepare(&bin, mcfg.clone());
    base.run_to_halt();
    let mut m = w.prepare(&bin, config.machine_config(mcfg));
    let report = adore::run(&mut m, config);
    speedup_pct(base.cycles(), report.cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let suite = workloads::suite(scale);
    let by = |n: &str| suite.iter().find(|w| w.name == n).unwrap();

    println!("== Ablation of design choices (speedup % under O2 + ADORE) ==\n");
    println!("{:<34} {:>8} {:>8} {:>8} {:>8}", "configuration", "mcf", "art", "swim", "lucas");

    let mut rows = Json::array();
    let mut row = |label: &str, config: &AdoreConfig, mcfg: MachineConfig| {
        let names = ["mcf", "art", "swim", "lucas"];
        let vals: Vec<f64> = names.iter().map(|n| speedup(by(n), config, mcfg.clone())).collect();
        println!(
            "{:<34} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            label, vals[0], vals[1], vals[2], vals[3]
        );
        let mut speedups = Json::object();
        for (n, v) in names.iter().zip(&vals) {
            speedups.set(n, *v);
        }
        rows.push(Json::object().with("configuration", label).with("speedup_pct", speedups));
    };

    let full = experiment_adore_config();
    row("full system", &full, experiment_machine_config());

    let mut c = experiment_adore_config();
    c.sampling.jitter = 0.0;
    row("no sampling-period jitter", &c, experiment_machine_config());

    let mut c = experiment_adore_config();
    c.prefetch.enable_pointer = false;
    row("no pointer-chase prefetching", &c, experiment_machine_config());

    let mut c = experiment_adore_config();
    c.prefetch.enable_indirect = false;
    row("no indirect prefetching", &c, experiment_machine_config());

    let mut c = experiment_adore_config();
    c.prefetch.enable_direct = false;
    row("no direct prefetching", &c, experiment_machine_config());

    let mut mcfg = experiment_machine_config();
    mcfg.cache.mem_service_interval = 0;
    row("no memory-bandwidth cap", &full, mcfg);

    let mut c = experiment_adore_config();
    c.instrument_unanalyzable = true;
    row("+ runtime instrumentation (§6)", &c, experiment_machine_config());

    let mut report = experiment_report("ablation", &args, scale);
    report.set("rows", rows);
    report.save().expect("write results/ablation.json");

    println!(
        "\nReading the rows: each pattern toggle hits the benchmark that\n\
         depends on it (mcf=pointer, art=indirect+direct, swim=direct).\n\
         Jitter off narrows first-pass DEAR diversity (incremental\n\
         re-optimization partly compensates). Removing the bandwidth cap\n\
         lets the *baseline* overlap misses freely, shrinking the\n\
         prefetch headroom the paper's bus-limited machine actually had.\n\
         Instrumentation (off in the paper's evaluation) unlocks the\n\
         fp-conversion benchmark (lucas) the paper could not improve."
    );
}
