//! Fig. 8 (179.art) and Fig. 9 (181.mcf): runtime CPI and
//! DEAR-qualifying misses per 1000 instructions over execution time,
//! with and without runtime prefetching.
//!
//! Emits `results/fig8_9.json` with both series per workload.
//!
//! Usage: `fig8_9 [art|mcf|both] [--quick] [--csv]`

use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;
use perfmon::Perfmon;

fn series_without(w: &workloads::Workload) -> Vec<(u64, f64, f64)> {
    // Sampling only (monitoring without optimization), like the paper's
    // "No Runtime Prefetching" curves, which were also measured via the
    // PMU.
    let config = experiment_adore_config();
    let bin = build(w, &CompileOptions::o2());
    let mcfg = config.machine_config(experiment_machine_config());
    let mut m = w.prepare(&bin, mcfg);
    let mut pm = Perfmon::new(config.perfmon.clone());
    let mut out = Vec::new();
    pm.run_with_windows(&mut m, |_, win, _| {
        let t = win.samples.last().map(|s| s.cycles).unwrap_or(0);
        out.push((t, win.cpi, win.dear_per_kinsn));
    });
    out
}

fn series_with(w: &workloads::Workload) -> Vec<(u64, f64, f64)> {
    let config = experiment_adore_config();
    let bin = build(w, &CompileOptions::o2());
    let report = run_adore(w, &bin, &config);
    report.timeline.iter().map(|t| (t.cycles, t.cpi, t.dear_per_kinsn)).collect()
}

fn run_one_csv(name: &str, scale: f64) {
    let suite = workloads::suite(scale);
    let w = suite.iter().find(|w| w.name == name).expect("known workload");
    println!("series,cycles,cpi,dear_per_kinsn");
    for (t, cpi, dpk) in series_without(w) {
        println!("baseline,{t},{cpi:.4},{dpk:.4}");
    }
    for (t, cpi, dpk) in series_with(w) {
        println!("adore,{t},{cpi:.4},{dpk:.4}");
    }
}

fn run_one(name: &str, scale: f64) {
    let suite = workloads::suite(scale);
    let w = suite.iter().find(|w| w.name == name).expect("known workload");
    let figure = if name == "art" { "Fig. 8 (179.art)" } else { "Fig. 9 (181.mcf)" };
    println!("== {figure}: CPI and DEAR_CACHE_LAT8/1000-instructions over time ==");
    let without = series_without(w);
    let with = series_with(w);
    println!("-- no runtime prefetching --");
    println!("{:>14} {:>8} {:>12}", "cycles", "CPI", "miss/kinsn");
    for (t, cpi, dpk) in &without {
        println!("{t:>14} {cpi:>8.3} {dpk:>12.3}");
    }
    println!("-- with runtime prefetching --");
    println!("{:>14} {:>8} {:>12}", "cycles", "CPI", "miss/kinsn");
    for (t, cpi, dpk) in &with {
        println!("{t:>14} {cpi:>8.3} {dpk:>12.3}");
    }
    let avg = |v: &[(u64, f64, f64)], f: fn(&(u64, f64, f64)) -> f64| {
        v.iter().map(f).sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "summary: CPI {:.3} -> {:.3}; miss/kinsn {:.3} -> {:.3}; end-time {} -> {} cycles",
        avg(&without, |x| x.1),
        avg(&with, |x| x.1),
        avg(&without, |x| x.2),
        avg(&with, |x| x.2),
        without.last().map(|x| x.0).unwrap_or(0),
        with.last().map(|x| x.0).unwrap_or(0),
    );
}

/// Both series of one workload as the report's per-benchmark entry.
fn series_json(name: &str, scale: f64) -> Json {
    let suite = workloads::suite(scale);
    let w = suite.iter().find(|w| w.name == name).expect("known workload");
    let point = |(cycles, cpi, dpk): &(u64, f64, f64)| {
        Json::object().with("cycles", *cycles).with("cpi", *cpi).with("dear_per_kinsn", *dpk)
    };
    let without = series_without(w);
    let with = series_with(w);
    Json::object()
        .with("bench", name)
        .with("baseline_end_cycles", without.last().map(|x| x.0).unwrap_or(0))
        .with("adore_end_cycles", with.last().map(|x| x.0).unwrap_or(0))
        .with("baseline", without.iter().map(point).collect::<Vec<Json>>())
        .with("adore", with.iter().map(point).collect::<Vec<Json>>())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let pick = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("both");
    let csv = args.iter().any(|a| a == "--csv");
    match (pick, csv) {
        ("art", false) => run_one("art", scale),
        ("mcf", false) => run_one("mcf", scale),
        ("art", true) => run_one_csv("art", scale),
        ("mcf", true) => run_one_csv("mcf", scale),
        (_, true) => run_one_csv("art", scale),
        _ => {
            run_one("art", scale);
            println!();
            run_one("mcf", scale);
        }
    }
    let picks: &[&str] = match pick {
        "art" => &["art"],
        "mcf" => &["mcf"],
        _ => &["art", "mcf"],
    };
    let mut report = experiment_report("fig8_9", &args, scale);
    report.set("series", picks.iter().map(|n| series_json(n, scale)).collect::<Vec<Json>>());
    report.save().expect("write results/fig8_9.json");
}
