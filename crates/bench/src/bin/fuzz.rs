//! Differential fuzzing driver: proves ADORE preserves program
//! semantics (see `crates/oracle` and DESIGN.md §"Differential
//! oracle").
//!
//! Generates seeded random programs and runs each through the
//! three-way oracle — reference interpreter, plain machine, ADORE
//! machine — failing (exit code 1) on any architectural divergence.
//! Mismatching cases are shrunk and written to `tests/corpus/`, where
//! the `corpus_replay` test re-checks them on every `cargo test`.
//!
//! Emits `results/fuzz.json`.
//!
//! Usage: `fuzz [--cases=N] [--seed=N] [--quick] [--jobs N]
//! [--exec-path=fast|reference] [--pass=NAME]`
//!
//! `--pass=NAME` restricts the ADORE leg to a pipeline with that single
//! pass active (see `adore::PassKind` for names) — a targeted probe
//! that any pass alone, run against an otherwise empty pipeline, still
//! preserves semantics.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bench_harness::cli;
use obs::{Json, Report};
use oracle::{check, generate, shrink, CaseResult, Coverage, DiffConfig, GenConfig};

/// Value of a `--name=value` flag.
fn flag_value(flags: &[String], name: &str) -> Option<u64> {
    let prefix = format!("--{name}=");
    flags
        .iter()
        .find_map(|f| f.strip_prefix(&prefix))
        .and_then(|v| v.parse().ok())
}

/// Simulator execution path selected by `--exec-path=fast|reference`
/// (default: fast, the path normal runs use).
fn exec_path_flag(flags: &[String]) -> sim::ExecPath {
    match flags.iter().find_map(|f| f.strip_prefix("--exec-path=")) {
        None => sim::ExecPath::Fast,
        Some(v) => v.parse().unwrap_or_else(|e: String| {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }),
    }
}

/// `tests/corpus/` under the workspace root (the directory holding
/// `Cargo.lock`), overridable with `ADORE_CORPUS_DIR`.
fn corpus_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("ADORE_CORPUS_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(mut at) = std::env::current_dir() {
        loop {
            if at.join("Cargo.lock").is_file() {
                return at.join("tests").join("corpus");
            }
            if !at.pop() {
                break;
            }
        }
    }
    PathBuf::from("tests/corpus")
}

enum CaseReport {
    Agree {
        outcome_label: &'static str,
        traces_patched: usize,
    },
    Undecided {
        why: String,
    },
    Mismatch {
        stage: &'static str,
        detail: String,
        shrunk_items: usize,
        file: PathBuf,
    },
}

fn main() {
    let cli = cli::parse();
    let cases =
        flag_value(&cli.flags, "cases").unwrap_or(if cli.flag("--quick") { 128 } else { 512 })
            as usize;
    let base_seed = flag_value(&cli.flags, "seed").unwrap_or(1);
    let exec_path = exec_path_flag(&cli.flags);
    let only_pass: Option<adore::PassKind> =
        cli.flags.iter().find_map(|f| f.strip_prefix("--pass=")).map(|name| {
            name.parse().unwrap_or_else(|e: String| {
                eprintln!("fuzz: --pass: {e}");
                std::process::exit(2);
            })
        });
    let gen_cfg = GenConfig::default();
    let diff_cfg = DiffConfig {
        exec_path,
        pipeline: only_pass.map(adore::PipelineConfig::only),
        ..DiffConfig::default()
    };

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, u64, Coverage, CaseReport)>> =
        Mutex::new(Vec::with_capacity(cases));
    let done = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..cli.jobs.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cases {
                    return;
                }
                let case_seed = base_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let (spec, cov) = generate(case_seed, &gen_cfg);
                let report = match check(&spec, &diff_cfg) {
                    CaseResult::Agree {
                        outcome,
                        traces_patched,
                        ..
                    } => CaseReport::Agree {
                        outcome_label: outcome.label(),
                        traces_patched,
                    },
                    CaseResult::Undecided(why) => CaseReport::Undecided { why },
                    CaseResult::Mismatch(m) => {
                        eprintln!(
                            "[fuzz] MISMATCH seed {case_seed:#x} at {}: {} — shrinking",
                            m.stage, m.detail
                        );
                        let small = shrink(&spec, &diff_cfg);
                        let dir = corpus_dir();
                        std::fs::create_dir_all(&dir).expect("create corpus dir");
                        let file = dir.join(format!("fuzz_{case_seed:016x}.txt"));
                        std::fs::write(&file, oracle::serialize_repro(&small))
                            .expect("write reproducer");
                        CaseReport::Mismatch {
                            stage: m.stage,
                            detail: m.detail,
                            shrunk_items: small.items.len(),
                            file,
                        }
                    }
                };
                results.lock().unwrap().push((i, case_seed, cov, report));
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if d % 64 == 0 || d == cases {
                    eprintln!("[fuzz] {d}/{cases} cases");
                }
            });
        }
    });

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|(i, ..)| *i);

    let mut coverage = Coverage::default();
    let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut mismatches = 0u64;
    let mut undecided = 0u64;
    let mut cases_with_patches = 0u64;
    let mut traces_patched_total = 0u64;
    let mut mismatch_rows = Json::array();
    for (_, case_seed, cov, report) in &results {
        coverage.absorb(cov);
        match report {
            CaseReport::Agree {
                outcome_label,
                traces_patched,
            } => {
                *outcomes.entry(outcome_label).or_insert(0) += 1;
                if *traces_patched > 0 {
                    cases_with_patches += 1;
                }
                traces_patched_total += *traces_patched as u64;
            }
            CaseReport::Undecided { why } => {
                undecided += 1;
                eprintln!("[fuzz] undecided seed {case_seed:#x}: {why}");
            }
            CaseReport::Mismatch {
                stage,
                detail,
                shrunk_items,
                file,
            } => {
                mismatches += 1;
                mismatch_rows.push(
                    Json::object()
                        .with("seed", *case_seed)
                        .with("stage", *stage)
                        .with("detail", detail.as_str())
                        .with("shrunk_items", *shrunk_items as u64)
                        .with("corpus_file", file.display().to_string()),
                );
            }
        }
    }

    let mut outcome_obj = Json::object();
    for (label, count) in &outcomes {
        outcome_obj.set(label, *count);
    }
    let mut coverage_obj = Json::object();
    for (name, count) in coverage.fields() {
        coverage_obj.set(name, count);
    }

    let mut report = Report::new("fuzz");
    report.set("args", cli.report_args.clone());
    report.set("seed", base_seed);
    report.set("exec_path", exec_path.to_string());
    report.set("only_pass", only_pass.map(|k| k.name().to_string()));
    report.set("cases", cases as u64);
    report.set("mismatches", mismatches);
    report.set("undecided", undecided);
    report.set("outcomes", outcome_obj);
    report.set("coverage", coverage_obj);
    report.set("cases_with_patches", cases_with_patches);
    report.set("traces_patched_total", traces_patched_total);
    report.set("mismatch_details", mismatch_rows);
    report.save().expect("write results/fuzz.json");

    println!(
        "fuzz[{exec_path}]: {cases} cases, {mismatches} mismatches, {undecided} undecided, \
         {cases_with_patches} cases patched ({traces_patched_total} traces)"
    );
    for (label, count) in &outcomes {
        println!("  {label}: {count}");
    }
    if mismatches > 0 {
        eprintln!("[fuzz] FAIL: {mismatches} semantic mismatches (reproducers in tests/corpus/)");
        std::process::exit(1);
    }
}
