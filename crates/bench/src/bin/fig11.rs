//! Fig. 11: the overhead of the ADORE machinery — execution time of the
//! O2 binary alone versus O2 + runtime system with prefetch *insertion
//! disabled* (sampling, phase detection and trace selection still run).
//!
//! Emits `results/fig11.json` alongside the printed table.
//!
//! Usage: `fig11 [--quick]`

use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let suite = workloads::suite(scale);
    let mut config = experiment_adore_config();
    config.insert_prefetches = false;

    println!("== Fig. 11: overhead of runtime machinery without prefetch insertion ==");
    println!(
        "{:<10} {:>14} {:>22} {:>10}  (paper: 1-2% overhead)",
        "bench", "O2 cycles", "O2+sampling cycles", "overhead%"
    );
    let mut rows = Json::array();
    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let bin = build(w, &CompileOptions::o2());
        let base = run_plain(w, &bin);
        let report = run_adore(w, &bin, &config);
        let overhead = (report.cycles as f64 / base as f64 - 1.0) * 100.0;
        println!("{:<10} {:>14} {:>22} {:>9.2}%", name, base, report.cycles, overhead);
        rows.push(
            Json::object()
                .with("bench", name)
                .with("o2_cycles", base)
                .with("sampling_cycles", report.cycles)
                .with("overhead_pct", overhead)
                .with("windows", report.windows),
        );
    }
    let mut report = experiment_report("fig11", &args, scale);
    report.set("rows", rows);
    report.save().expect("write results/fig11.json");
}
