//! Table 2: runtime prefetching data analysis — the number of inserted
//! prefetch streams by reference pattern (direct / indirect / pointer
//! chasing) and the number of optimized phases, per benchmark (O2
//! binaries).
//!
//! Usage: `table2 [--quick]`

use bench_harness::*;
use compiler::CompileOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let suite = workloads::suite(scale);
    let config = experiment_adore_config();

    println!("== Table 2: prefetching data analysis (O2 + ADORE) ==");
    println!(
        "{:<10} {:>7} {:>9} {:>8} {:>7}   paper: (dir, ind, ptr, phases)",
        "bench", "direct", "indirect", "pointer", "phases"
    );
    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let bin = build(w, &CompileOptions::o2());
        let report = run_adore(w, &bin, &config);
        let (pd, pi, pp, pph) = paper_table2(name).unwrap();
        println!(
            "{:<10} {:>7} {:>9} {:>8} {:>7}   paper: ({pd:>3}, {pi:>3}, {pp:>3}, {pph:>3})",
            name,
            report.stats.direct,
            report.stats.indirect,
            report.stats.pointer,
            report.phases_optimized,
        );
    }
}
