//! Table 2: runtime prefetching data analysis — the number of inserted
//! prefetch streams by reference pattern (direct / indirect / pointer
//! chasing) and the number of optimized phases, per benchmark (O2
//! binaries).
//!
//! Emits `results/table2.json` alongside the printed table.
//!
//! Usage: `table2 [--quick]`

use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let suite = workloads::suite(scale);
    let config = experiment_adore_config();

    println!("== Table 2: prefetching data analysis (O2 + ADORE) ==");
    println!(
        "{:<10} {:>7} {:>9} {:>8} {:>7}   paper: (dir, ind, ptr, phases)",
        "bench", "direct", "indirect", "pointer", "phases"
    );
    let mut rows = Json::array();
    for name in PAPER_ORDER {
        let w = suite.iter().find(|w| w.name == name).expect("known workload");
        let bin = build(w, &CompileOptions::o2());
        let report = run_adore(w, &bin, &config);
        let (pd, pi, pp, pph) = paper_table2(name).unwrap();
        println!(
            "{:<10} {:>7} {:>9} {:>8} {:>7}   paper: ({pd:>3}, {pi:>3}, {pp:>3}, {pph:>3})",
            name,
            report.stats.direct,
            report.stats.indirect,
            report.stats.pointer,
            report.phases_optimized,
        );
        rows.push(
            Json::object()
                .with("bench", name)
                .with("streams", report.stats)
                .with("phases_optimized", report.phases_optimized)
                .with("traces_patched", report.traces_patched)
                .with(
                    "paper",
                    Json::object()
                        .with("direct", pd)
                        .with("indirect", pi)
                        .with("pointer", pp)
                        .with("phases", pph),
                ),
        );
    }
    let mut report = experiment_report("table2", &args, scale);
    report.set("rows", rows);
    report.save().expect("write results/table2.json");
}
