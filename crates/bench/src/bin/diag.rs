//! Diagnostic: per-workload phase-detection and optimization trace.
//!
//! Emits `results/diag.json` alongside the printed trace.
//!
//! Usage: `diag [workload ...] [--quick] [--profile] [--adore]`

use adore::{PhaseDecision, PhaseDetector};
use bench_harness::*;
use compiler::CompileOptions;
use obs::Json;
use perfmon::{Perfmon, UserEventBuffer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let picks: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let suite = workloads::suite(scale);
    let config = experiment_adore_config();
    let mut entries = Json::array();

    for w in &suite {
        if !picks.is_empty() && !picks.contains(&w.name) {
            continue;
        }
        println!("=== {} ===", w.name);
        let bin = build(w, &CompileOptions::o2());
        let mcfg = config.machine_config(experiment_machine_config());
        let mut m = w.prepare(&bin, mcfg);
        let mut pm = Perfmon::new(config.perfmon.clone());
        let mut detector = PhaseDetector::new(config.phase.clone());
        let mut decisions: Vec<String> = Vec::new();
        let mut window_stats: Vec<(f64, f64, f64)> = Vec::new();
        pm.run_with_windows(&mut m, |_, w, ueb: &UserEventBuffer| {
            window_stats.push((w.cpi, w.dpi * 1000.0, w.pc_center));
            let d = detector.evaluate(ueb);
            decisions.push(match d {
                PhaseDecision::Unstable => "U".into(),
                PhaseDecision::Stable(s) => format!("S(cpi={:.2},dpi{:.2}/k)", s.cpi, s.dpi * 1000.0),
                PhaseDecision::InTracePool(_) => "P".into(),
                PhaseDecision::LowMissRate => "L".into(),
            });
        });
        println!("cycles={} windows={}", m.cycles(), window_stats.len());
        let count = |tag: char| decisions.iter().filter(|d| d.starts_with(tag)).count();
        let mut entry = Json::object()
            .with("workload", w.name)
            .with("cycles", m.cycles())
            .with("windows", window_stats.len())
            .with(
                "decisions",
                Json::object()
                    .with("unstable", count('U'))
                    .with("stable", count('S'))
                    .with("in_trace_pool", count('P'))
                    .with("low_miss_rate", count('L')),
            );
        for (i, ((cpi, dpk, pc), d)) in window_stats.iter().zip(&decisions).enumerate() {
            if i < 24 || d.starts_with('S') {
                println!(
                    "  w{i:>3}: cpi={cpi:>6.2} dear/kinsn={dpk:>7.3} pc={pc:>14.0} -> {d}"
                );
            }
        }
        if args.iter().any(|a| a == "--profile") {
            // Aggregate a miss profile over the whole run and print it.
            let bin2 = build(w, &CompileOptions::o2());
            let mcfg2 = config.machine_config(experiment_machine_config());
            let mut m2 = w.prepare(&bin2, mcfg2);
            let mut pm2 = perfmon::Perfmon::new(config.perfmon.clone());
            let mut all_samples: Vec<sim::Sample> = Vec::new();
            pm2.run_with_windows(&mut m2, |_, w, _| {
                all_samples.extend(w.samples.iter().cloned());
            });
            let profile = perfmon::MissProfile::from_samples(all_samples.iter());
            entry.set("profile", &profile);
            println!("miss profile: {} entries, total latency {}", profile.entries().len(), profile.total_latency());
            for e in profile.entries().iter().take(16) {
                let name = bin2
                    .loop_containing(isa::Addr(e.addr))
                    .map(|l| l.name.as_str())
                    .unwrap_or("?");
                println!(
                    "  pc={:#x}+{} `{}` count={} total_lat={} avg={:.0}",
                    e.addr, e.slot, name, e.count, e.total_latency,
                    e.total_latency as f64 / e.count as f64
                );
            }
        }
        if args.iter().any(|a| a == "--adore") {
            let mut config = config.clone();
            if args.iter().any(|a| a == "--no-pointer") {
                config.prefetch.enable_pointer = false;
            }
            if args.iter().any(|a| a == "--no-direct") {
                config.prefetch.enable_direct = false;
            }
            let bin2 = build(w, &CompileOptions::o2());
            let mcfg2 = config.machine_config(experiment_machine_config());
            let mut m2 = w.prepare(&bin2, mcfg2);
            let report = adore::run(&mut m2, &config);
            entry.set("adore", Json::object().with("run", &report).with("caches", m2.caches()));
            let (lf_issued, lf_dropped) = m2.caches().lfetch_stats();
            println!(
                "ADORE: cycles={} patched={} phases={} stats={:?} lfetch={}/{} dropped",
                report.cycles, report.traces_patched, report.phases_optimized, report.stats,
                lf_dropped, lf_issued
            );
            for (pc, reason) in &report.skips {
                let loop_name = bin2
                    .loop_containing(pc.addr)
                    .map(|l| l.name.as_str())
                    .unwrap_or("?");
                println!("  skip {pc} in `{loop_name}`: {reason:?}");
            }
            for e in &report.events {
                println!("  opt-event at {} cycles:", e.at_cycles);
                for (start, is_loop, len, loads, ins) in &e.traces {
                    let name = bin2
                        .loop_containing(*start)
                        .map(|l| l.name.as_str())
                        .unwrap_or("?");
                    println!(
                        "    trace@{start} `{name}` loop={is_loop} bundles={len} loads={loads} inserted={ins:?}"
                    );
                }
            }
            for t in report.timeline.iter().step_by(4) {
                println!("  t={:>12} cpi={:>6.2} dear/kinsn={:>7.3}", t.cycles, t.cpi, t.dear_per_kinsn);
            }
        }
        entries.push(entry);
    }
    let mut out = experiment_report("diag", &args, scale);
    out.set("workloads", entries);
    out.save().expect("write results/diag.json");
}

// Appended: deep-dive ADORE run report (invoked for each selected
// workload after the phase trace when --adore is passed).
