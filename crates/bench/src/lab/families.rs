//! `lab families` — the pointer-rich scenario families beyond the
//! 17-benchmark paper suite: `server` (Zipfian request serving with
//! load spikes), `graph` (BFS + pagerank over a CSR graph), and `gc`
//! (mark/sweep over a jump-pointer heap). The gc family's marking loop
//! is the dependence-based jump-pointer shape, so its row is where the
//! `jump` prefetch column is expected to be non-zero.
//!
//! Emits `results/families.json` alongside the printed table.

use compiler::CompileOptions;

use crate::cli::{Cli, Registry};
use crate::{je, jf, js, ju, ExperimentSpec, Measure, FAMILY_ORDER};

pub(crate) const ABOUT: &str =
    "runtime prefetching on the server / graph / gc scenario families";

pub(crate) fn registry() -> Registry {
    Registry::new("families", ABOUT)
        .picks("server | graph | gc | all — which family to run (default: all)")
}

pub(crate) fn run(cli: Cli) {
    let pick = cli.pick().unwrap_or("all").to_string();
    let names: Vec<&'static str> = FAMILY_ORDER
        .iter()
        .copied()
        .filter(|n| pick == "all" || pick == *n)
        .collect();
    if names.is_empty() {
        eprintln!("error: unknown family `{pick}` (expected server, graph, gc or all)");
        std::process::exit(2);
    }
    let result = ExperimentSpec::paper_defaults("families", &cli)
        .section("families", &names, CompileOptions::o2(), Measure::Comparison)
        .run();

    println!("== Scenario families: O2 + runtime prefetching ==");
    println!(
        "{:<8} {:>14} {:>14} {:>10}  {:>8} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "family", "base cycles", "adore cycles", "speedup%", "patched", "phases", "direct",
        "indir", "ptr", "jump"
    );
    for r in result.rows("families") {
        match je(r) {
            Some(e) => println!("{:<8} ERROR: {e}", js(r, "bench")),
            None => {
                let streams = r.get("streams");
                let stream = |key: &str| streams.map(|s| ju(s, key)).unwrap_or(0);
                println!(
                    "{:<8} {:>14} {:>14} {:>9.1}%  {:>8} {:>8} {:>7} {:>7} {:>7} {:>7}",
                    js(r, "bench"),
                    ju(r, "base_cycles"),
                    ju(r, "adore_cycles"),
                    jf(r, "speedup_pct"),
                    ju(r, "traces_patched"),
                    ju(r, "phases_optimized"),
                    stream("direct"),
                    stream("indirect"),
                    stream("pointer"),
                    stream("jump"),
                );
            }
        }
    }
    result.save().expect("write results/families.json");
}
