//! `lab serve` — the resident experiment service: `ExperimentSpec`
//! cells arrive as JSON lines on stdin and result rows stream back out
//! on stdout, in submission order, as soon as each row (and all its
//! predecessors) completes.
//!
//! Request lines:
//!
//! ```text
//! {"workload":"mcf","tool":"fig7","section":"part_a","opts":"o2","measure":"comparison"}
//! ```
//!
//! * `workload` (required) — a suite or scenario-family workload name;
//! * `tool` / `section` (default `serve` / `cells`) — the identity the
//!   cell's deterministic sampling seed derives from, exactly as in
//!   the batch engine: a serve cell with the same tool/section/workload
//!   triple produces byte-identical row fields to its batch
//!   counterpart;
//! * `opts` — `o2` (default) | `o3` | `o2_original`;
//! * `measure` — `plain` | `comparison` (default) |
//!   `pipeline_comparison` | `overhead` | `streams` | `timeline` |
//!   `breakdown` | `policy` | `guided` (with optional `coverage`,
//!   default 0.9);
//! * `compare` — for `measure:"compare_compile"`, the other options
//!   preset.
//!
//! Response lines (stdout, one per request, strict submission order):
//!
//! ```text
//! {"index":0,"section":"part_a","row":{...}}
//! ```
//!
//! A malformed request still produces its response line, with an
//! `error` field inside the row. Volatile statistics (persistent-store
//! hits, steal counts) go to stderr only, so the stdout stream is
//! byte-identical for any `--jobs` value.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;

use compiler::CompileOptions;
use obs::Json;
use workloads::Workload;

use crate::cli::{Cli, Registry};
use crate::engine::{cell_seed, run_cell};
use crate::store::{resolve_default_dir, BaselineStore};
use crate::{BaselineCache, Cell, ExperimentSpec, Measure};

pub(crate) const ABOUT: &str = "resident service: spec cells as JSON lines in, rows streamed out";

pub(crate) fn registry() -> Registry {
    Registry::new("serve", ABOUT)
        .value("baseline-dir", None, "persistent baseline store directory (env ADORE_BASELINE_DIR)")
        .flag("no-baseline-store", "disable the persistent baseline store")
}

/// What one `serve` session did — returned by [`serve_io`] so tests
/// and the summary line share one source.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Cells processed (rows emitted).
    pub cells: usize,
    /// Rows that carry an `error` field.
    pub errors: usize,
    /// Persistent-store hits (0 when the store is disabled).
    pub store_hits: usize,
    /// Persistent-store misses (0 when the store is disabled).
    pub store_misses: usize,
}

/// One accepted request: the section key for the response envelope and
/// either a runnable cell or the error message to embed.
struct Task {
    section: String,
    bench: String,
    cell: Result<Cell, String>,
}

fn parse_opts(name: &str) -> Result<CompileOptions, String> {
    match name {
        "o2" => Ok(CompileOptions::o2()),
        "o3" => Ok(CompileOptions::o3()),
        "o2_original" => Ok(CompileOptions::o2_original()),
        other => Err(format!("unknown opts `{other}` (expected o2 | o3 | o2_original)")),
    }
}

fn parse_measure(req: &Json) -> Result<Measure, String> {
    let name = req.get("measure").and_then(Json::as_str).unwrap_or("comparison");
    match name {
        "plain" => Ok(Measure::Plain),
        "comparison" => Ok(Measure::Comparison),
        "pipeline_comparison" => Ok(Measure::PipelineComparison),
        "overhead" => Ok(Measure::Overhead),
        "streams" => Ok(Measure::Streams),
        "timeline" => Ok(Measure::Timeline),
        "breakdown" => Ok(Measure::Breakdown),
        "policy" => Ok(Measure::Policy),
        "guided" => {
            let coverage = req.get("coverage").and_then(Json::as_f64).unwrap_or(0.9);
            Ok(Measure::GuidedPrefetch { coverage })
        }
        "compare_compile" => {
            let other = req.get("compare").and_then(Json::as_str).unwrap_or("o2_original");
            Ok(Measure::CompareCompile(Box::new(parse_opts(other)?)))
        }
        other => Err(format!("unknown measure `{other}`")),
    }
}

/// Parses one request line into a [`Task`]. The suite lookup resolves
/// the workload's `'static` name; the cell seed derives from
/// (tool, section, workload) exactly like [`ExperimentSpec`] grids.
fn parse_request(line: &str, suite: &[Workload]) -> Task {
    let parsed: Result<Json, String> = Json::parse(line).map_err(|e| format!("bad request: {e}"));
    let req = match parsed {
        Ok(req) => req,
        Err(e) => {
            return Task { section: "cells".into(), bench: "?".into(), cell: Err(e) };
        }
    };
    let section = req.get("section").and_then(Json::as_str).unwrap_or("cells").to_string();
    let tool = req.get("tool").and_then(Json::as_str).unwrap_or("serve").to_string();
    let bench = req.get("workload").and_then(Json::as_str).unwrap_or("?").to_string();
    let cell = (|| {
        let name = req
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| "request is missing `workload`".to_string())?;
        let w = suite
            .iter()
            .find(|w| w.name == name)
            .ok_or_else(|| format!("unknown workload `{name}`"))?;
        let opts = parse_opts(req.get("opts").and_then(Json::as_str).unwrap_or("o2"))?;
        let measure = parse_measure(&req)?;
        let mut adore = ExperimentSpec::paper_adore_config();
        adore.sampling.seed = cell_seed(&[&tool, &section, w.name]);
        Ok(Cell {
            workload: w.name,
            opts,
            adore,
            machine: ExperimentSpec::paper_machine_config(),
            measure,
            extra: Json::object(),
        })
    })();
    Task { section, bench, cell }
}

fn open_store(cli: &Cli) -> Option<Arc<BaselineStore>> {
    if cli.flag("no-baseline-store") {
        return None;
    }
    let dir = match cli.flag_value("baseline-dir") {
        Some(d) => PathBuf::from(d),
        None => resolve_default_dir()?,
    };
    match BaselineStore::open(dir) {
        Ok(s) => Some(Arc::new(s)),
        Err(e) => {
            eprintln!("[serve] baseline store disabled: {e}");
            None
        }
    }
}

/// The testable core: requests from `input`, response lines to `out`.
/// Requests run on the work-stealing pool while the feeder keeps
/// reading, and responses flush line-by-line so a consumer sees a
/// stable, byte-deterministic prefix even mid-stream.
pub fn serve_io(cli: &Cli, input: impl BufRead + Send, out: &mut impl Write) -> ServeSummary {
    let suite = workloads::all(cli.scale);
    let store = open_store(cli);
    let cache = BaselineCache::with_store(store.clone());

    let mut cells = 0usize;
    let mut errors = 0usize;
    let (suite_ref, cache_ref) = (&suite, &cache);
    obs::pool::service_scope(
        cli.jobs.max(1),
        |_| (),
        |_: &mut (), _i, task: Task| {
            let row = match &task.cell {
                Ok(cell) => match run_cell(cell, suite_ref, cache_ref) {
                    Ok(row) => row,
                    Err(e) => {
                        Json::object().with("bench", task.bench.as_str()).with("error", e.to_string())
                    }
                },
                Err(e) => {
                    Json::object().with("bench", task.bench.as_str()).with("error", e.as_str())
                }
            };
            (task.section, row)
        },
        move |sub| {
            for line in input.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                sub.push(parse_request(&line, suite_ref));
            }
        },
        |i, (section, row): (String, Json)| {
            cells += 1;
            if row.get("error").is_some() {
                errors += 1;
            }
            let envelope = Json::object().with("index", i).with("section", section).with("row", row);
            let _ = writeln!(out, "{envelope}");
            let _ = out.flush();
        },
    );

    let (store_hits, store_misses) = store.as_ref().map(|s| s.stats()).unwrap_or((0, 0));
    ServeSummary { cells, errors, store_hits, store_misses }
}

pub(crate) fn run(cli: Cli) {
    // StdinLock is not Send (the feeder runs on its own thread), so
    // wrap the Send-able handle in a fresh BufReader instead.
    let stdin = std::io::BufReader::new(std::io::stdin());
    let mut stdout = std::io::stdout();
    let s = serve_io(&cli, stdin, &mut stdout);
    // Volatile statistics stay on stderr: the stdout stream must be
    // byte-identical for any --jobs value and any prior store state.
    eprintln!(
        "[serve] {} cells ({} errors), store {} hits / {} misses",
        s.cells, s.errors, s.store_hits, s.store_misses
    );
    if s.errors > 0 {
        std::process::exit(1);
    }
}
