//! `lab table2` — Table 2: runtime prefetching data analysis — the
//! number of inserted prefetch streams by reference pattern (direct /
//! indirect / pointer chasing) and the number of optimized phases, per
//! benchmark (O2 binaries).
//!
//! Emits `results/table2.json` alongside the printed table.

use compiler::CompileOptions;
use obs::Json;

use crate::cli::{Cli, Registry};
use crate::{je, js, ju, paper_table2, ExperimentSpec, Measure, PAPER_ORDER};

pub(crate) const ABOUT: &str = "inserted prefetch streams by pattern (Table 2)";

pub(crate) fn registry() -> Registry {
    Registry::new("table2", ABOUT)
}

pub(crate) fn run(cli: Cli) {
    let result = ExperimentSpec::paper_defaults("table2", &cli)
        .section_with(
            "rows",
            &PAPER_ORDER,
            CompileOptions::o2(),
            Measure::Streams,
            |c| {
                let (pd, pi, pp, pph) = paper_table2(c.workload).unwrap();
                c.extra(
                    "paper",
                    Json::object()
                        .with("direct", pd)
                        .with("indirect", pi)
                        .with("pointer", pp)
                        .with("phases", pph),
                );
            },
        )
        .run();
    println!("== Table 2: prefetching data analysis (O2 + ADORE) ==");
    println!(
        "{:<10} {:>7} {:>9} {:>8} {:>7}   paper: (dir, ind, ptr, phases)",
        "bench", "direct", "indirect", "pointer", "phases"
    );
    for r in result.rows("rows") {
        if let Some(e) = je(r) {
            println!("{:<10} ERROR: {e}", js(r, "bench"));
            continue;
        }
        let s = r.get("streams").expect("streams present");
        let p = r.get("paper").expect("paper present");
        println!(
            "{:<10} {:>7} {:>9} {:>8} {:>7}   paper: ({:>3}, {:>3}, {:>3}, {:>3})",
            js(r, "bench"),
            ju(s, "direct"),
            ju(s, "indirect"),
            ju(s, "pointer"),
            ju(r, "phases_optimized"),
            ju(p, "direct"),
            ju(p, "indirect"),
            ju(p, "pointer"),
            ju(p, "phases")
        );
    }
    result.save().expect("write results/table2.json");
}
