//! `lab breakdown` — workload characterization, the paper's first PMU
//! usage model (§2.1): the overall runtime cycle breakdown per
//! benchmark, before and after runtime prefetching. Memory stalls are
//! exactly what the optimizer converts into busy (or at least shorter)
//! time.
//!
//! Emits `results/breakdown.json` alongside the printed table.

use compiler::CompileOptions;
use obs::Json;

use crate::cli::{Cli, Registry};
use crate::{jf, je, js, ju, ExperimentSpec, Measure, PAPER_ORDER};

pub(crate) const ABOUT: &str = "cycle-accounting breakdown before and after ADORE (§2.1)";

pub(crate) fn registry() -> Registry {
    Registry::new("breakdown", ABOUT)
}

fn print_side(label: &str, s: &Json) {
    println!(
        "  {label:<8} {:>13} cycles | mem {:>5.1}% | fp {:>4.1}% | br {:>4.1}% | i$ {:>4.1}% | ovh {:>4.1}% | busy {:>5.1}%",
        ju(s, "cycles"), jf(s, "mem_stall_pct"), jf(s, "fp_stall_pct"), jf(s, "branch_stall_pct"),
        jf(s, "icache_stall_pct"), jf(s, "overhead_pct"), jf(s, "busy_pct"),
    );
}

pub(crate) fn run(cli: Cli) {
    let result = ExperimentSpec::paper_defaults("breakdown", &cli)
        .section("rows", &PAPER_ORDER, CompileOptions::o2(), Measure::Breakdown)
        .run();
    println!("== Cycle breakdown (workload characterization, §2.1) ==");
    for r in result.rows("rows") {
        println!("{}:", js(r, "bench"));
        match je(r) {
            Some(e) => println!("  ERROR: {e}"),
            None => {
                print_side("O2", r.get("o2").expect("o2 side"));
                print_side("+ADORE", r.get("adore").expect("adore side"));
            }
        }
    }
    result.save().expect("write results/breakdown.json");
}
