//! `lab table1` — Table 1: profile-guided static prefetching.
//!
//! For each benchmark: compile at `O3` (every analyzable loop gets
//! prefetches), collect a sampling miss profile from a training run,
//! build the 90 %-latency-coverage delinquent-loop list, recompile with
//! prefetching restricted to those loops, and report loops scheduled /
//! normalized execution time / normalized binary size — the three
//! column groups of the paper's Table 1.
//!
//! Emits `results/table1.json` alongside the printed table.

use compiler::CompileOptions;
use obs::Json;

use crate::cli::{Cli, Registry};
use crate::{jf, je, js, ju, paper_table1, ExperimentSpec, Measure, PAPER_ORDER};

pub(crate) const ABOUT: &str = "profile-guided static prefetching (Table 1)";

pub(crate) fn registry() -> Registry {
    Registry::new("table1", ABOUT)
}

pub(crate) fn run(cli: Cli) {
    let result = ExperimentSpec::paper_defaults("table1", &cli)
        .section_with(
            "rows",
            &PAPER_ORDER,
            CompileOptions::o3(),
            Measure::GuidedPrefetch { coverage: 0.9 },
            |c| {
                let (o3, pf, time, size) = paper_table1(c.workload).unwrap();
                c.extra(
                    "paper",
                    Json::object()
                        .with("o3_loops", o3)
                        .with("profiled_loops", pf)
                        .with("norm_time", time)
                        .with("norm_size", size),
                );
            },
        )
        .run();
    println!("== Table 1: profile-guided static prefetching ==");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}  (paper: loops {:>4}->{:>3}, time, size)",
        "bench", "O3 loops", "prof loops", "norm time", "norm size", "p.time", "p.size", "O3", "pf"
    );
    for r in result.rows("rows") {
        if let Some(e) = je(r) {
            println!("{:<10} ERROR: {e}", js(r, "bench"));
            continue;
        }
        let p = r.get("paper").expect("paper present");
        println!(
            "{:<10} {:>8} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  (paper: {:>4}->{:>3})",
            js(r, "bench"),
            ju(r, "o3_loops"),
            ju(r, "profiled_loops"),
            jf(r, "norm_time"),
            jf(r, "norm_size"),
            jf(p, "norm_time"),
            jf(p, "norm_size"),
            ju(p, "o3_loops"),
            ju(p, "profiled_loops")
        );
    }
    result.save().expect("write results/table1.json");
}
