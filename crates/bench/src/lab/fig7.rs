//! `lab fig7` — Fig. 7: performance of runtime prefetching over `O2`
//! (a) and `O3` (b) binaries, all 17 benchmarks.
//!
//! Emits `results/fig7.json` alongside the printed table.

use compiler::CompileOptions;

use crate::cli::{Cli, Registry};
use crate::{jf, je, js, ju, paper_fig7a, paper_fig7b, ExperimentSpec, Measure, PAPER_ORDER};

pub(crate) const ABOUT: &str = "runtime prefetching speedups over O2 (a) and O3 (b) binaries";

pub(crate) fn registry() -> Registry {
    Registry::new("fig7", ABOUT).picks("a | b | both — which part to run (default: both)")
}

pub(crate) fn run(cli: Cli) {
    let part = cli.pick().unwrap_or("both").to_string();
    let mut spec = ExperimentSpec::paper_defaults("fig7", &cli);
    if part != "b" {
        spec = spec.section_with(
            "part_a",
            &PAPER_ORDER,
            CompileOptions::o2(),
            Measure::Comparison,
            |c| c.extra("paper_speedup_pct", paper_fig7a(c.workload)),
        );
    }
    if part != "a" {
        spec = spec.section_with(
            "part_b",
            &PAPER_ORDER,
            CompileOptions::o3(),
            Measure::Comparison,
            |c| c.extra("paper_speedup_pct", paper_fig7b(c.workload)),
        );
    }
    let result = spec.run();
    for (tag, key, opt) in [('a', "part_a", "O2"), ('b', "part_b", "O3")] {
        let rows = result.rows(key);
        if rows.is_empty() {
            continue;
        }
        println!("== Fig. 7({tag}): {opt} + runtime prefetching ==");
        println!(
            "{:<10} {:>14} {:>14} {:>10} {:>10}  {:>8} {:>8}",
            "bench", "base cycles", "adore cycles", "speedup%", "paper%", "patched", "phases"
        );
        for r in rows {
            match je(r) {
                Some(e) => println!("{:<10} ERROR: {e}", js(r, "bench")),
                None => println!(
                    "{:<10} {:>14} {:>14} {:>9.1}% {:>9.1}%  {:>8} {:>8}",
                    js(r, "bench"),
                    ju(r, "base_cycles"),
                    ju(r, "adore_cycles"),
                    jf(r, "speedup_pct"),
                    jf(r, "paper_speedup_pct"),
                    ju(r, "traces_patched"),
                    ju(r, "phases_optimized")
                ),
            }
        }
    }
    result.save().expect("write results/fig7.json");
}
