//! The `lab` multiplexed front-end: one binary, one subcommand per
//! experiment.
//!
//! Every former `crates/bench/src/bin/*.rs` binary is now a thin
//! module here — an [`crate::cli::Registry`] declaring its flag
//! surface plus a `run(Cli)` that builds an
//! [`crate::ExperimentSpec`] (or drives the fuzzer / the resident
//! [`serve`] loop) — and [`SUBCOMMANDS`] is the single registry the
//! dispatcher, the generated help and the flag round-trip test all
//! share.
//!
//! ```text
//! lab <command> [picks ...] [--flags ...]
//! lab help | lab --help      # list subcommands
//! lab <command> --help       # per-command flag table
//! ```

pub mod ablation;
pub mod breakdown;
pub mod diag;
pub mod families;
pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig8_9;
pub mod fuzz;
pub mod objdump;
pub mod policy;
pub mod serve;
pub mod table1;
pub mod table2;

use crate::cli::{Cli, Registry};

/// One `lab` subcommand: its name, summary, declared flag surface and
/// entry point.
pub struct Subcommand {
    /// Subcommand name (`lab <name>`).
    pub name: &'static str,
    /// One-line summary shown by `lab help`.
    pub about: &'static str,
    /// Constructs the subcommand's flag registry.
    pub registry: fn() -> Registry,
    /// Runs the subcommand with its parsed command line.
    pub run: fn(Cli),
}

/// Every subcommand, in `lab help` display order.
pub const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand { name: "fig7", about: fig7::ABOUT, registry: fig7::registry, run: fig7::run },
    Subcommand {
        name: "fig8_9",
        about: fig8_9::ABOUT,
        registry: fig8_9::registry,
        run: fig8_9::run,
    },
    Subcommand { name: "fig10", about: fig10::ABOUT, registry: fig10::registry, run: fig10::run },
    Subcommand { name: "fig11", about: fig11::ABOUT, registry: fig11::registry, run: fig11::run },
    Subcommand {
        name: "table1",
        about: table1::ABOUT,
        registry: table1::registry,
        run: table1::run,
    },
    Subcommand {
        name: "table2",
        about: table2::ABOUT,
        registry: table2::registry,
        run: table2::run,
    },
    Subcommand {
        name: "families",
        about: families::ABOUT,
        registry: families::registry,
        run: families::run,
    },
    Subcommand {
        name: "breakdown",
        about: breakdown::ABOUT,
        registry: breakdown::registry,
        run: breakdown::run,
    },
    Subcommand {
        name: "ablation",
        about: ablation::ABOUT,
        registry: ablation::registry,
        run: ablation::run,
    },
    Subcommand {
        name: "policy",
        about: policy::ABOUT,
        registry: policy::registry,
        run: policy::run,
    },
    Subcommand { name: "diag", about: diag::ABOUT, registry: diag::registry, run: diag::run },
    Subcommand {
        name: "objdump",
        about: objdump::ABOUT,
        registry: objdump::registry,
        run: objdump::run,
    },
    Subcommand { name: "fuzz", about: fuzz::ABOUT, registry: fuzz::registry, run: fuzz::run },
    Subcommand { name: "serve", about: serve::ABOUT, registry: serve::registry, run: serve::run },
];

/// Looks up a subcommand by name.
pub fn find(name: &str) -> Option<&'static Subcommand> {
    SUBCOMMANDS.iter().find(|s| s.name == name)
}

/// The `lab help` text: one row per subcommand.
pub fn overview() -> String {
    let mut out = String::from(
        "lab — ADORE experiment service front-end\n\nusage: lab <command> [picks ...] [--flags ...]\n\ncommands:\n",
    );
    let width = SUBCOMMANDS.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in SUBCOMMANDS {
        out.push_str(&format!("  {:<width$}  {}\n", s.name, s.about));
    }
    out.push_str("\nrun `lab <command> --help` for a command's flag table\n");
    out
}

/// The `lab` binary entry point: dispatches argv[1] to its subcommand.
pub fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = if args.is_empty() { "help".to_string() } else { args.remove(0) };
    match cmd.as_str() {
        "help" | "--help" | "-h" => print!("{}", overview()),
        name => match find(name) {
            Some(sub) => {
                let cli = (sub.registry)().parse(args);
                (sub.run)(cli);
            }
            None => {
                eprintln!("error: unknown command `{name}`\n\n{}", overview());
                std::process::exit(2);
            }
        },
    }
}

/// `rel` under the workspace root (the directory holding `Cargo.lock`),
/// falling back to a relative path when no root is found.
pub(crate) fn workspace_path(rel: &str) -> std::path::PathBuf {
    if let Ok(mut at) = std::env::current_dir() {
        loop {
            if at.join("Cargo.lock").is_file() {
                return at.join(rel);
            }
            if !at.pop() {
                break;
            }
        }
    }
    std::path::PathBuf::from(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcommand_names_are_unique_and_resolvable() {
        for (i, s) in SUBCOMMANDS.iter().enumerate() {
            assert!(find(s.name).is_some());
            assert!(
                !SUBCOMMANDS[..i].iter().any(|o| o.name == s.name),
                "duplicate subcommand {}",
                s.name
            );
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn overview_lists_every_subcommand() {
        let o = overview();
        for s in SUBCOMMANDS {
            assert!(o.contains(s.name), "overview must mention {}", s.name);
        }
    }

    /// The satellite guarantee: every flag of every subcommand
    /// round-trips through its registry — parse a synthesized
    /// occurrence, read it back, find it recorded.
    #[test]
    fn every_subcommand_flag_round_trips() {
        for s in SUBCOMMANDS {
            let r = (s.registry)();
            assert_eq!(r.command(), s.name, "registry/command name mismatch");
            crate::cli::tests::assert_registry_round_trips(&r);
        }
    }

    /// Generated help must render every registered flag of every
    /// subcommand.
    #[test]
    fn every_subcommand_help_lists_its_flags() {
        for s in SUBCOMMANDS {
            let r = (s.registry)();
            let h = r.help_text();
            for f in r.defs() {
                assert!(
                    h.contains(&format!("--{}", f.name)),
                    "lab {} --help must mention --{}",
                    s.name,
                    f.name
                );
            }
        }
    }
}
