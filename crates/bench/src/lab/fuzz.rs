//! `lab fuzz` — differential fuzzing driver: proves ADORE preserves
//! program semantics (see `crates/oracle` and DESIGN.md §"Differential
//! oracle").
//!
//! Two modes share the three-way oracle (reference interpreter, plain
//! machine, ADORE machine) and the `results/fuzz.json` report:
//!
//! * **classic** (default): generates `--cases` independent seeded
//!   programs and checks each once, fanned out over
//!   [`obs::pool::run_indexed`] with one snapshot-reset
//!   [`CaseRunner`] per worker shard;
//! * **campaign** (`--campaign`): the coverage-guided engine from
//!   `oracle::campaign` — corpus scheduling, bundle-level mutation,
//!   snapshot-reset machines, and a persistent minimized corpus
//!   directory.
//!
//! Either way, any architectural divergence fails the run (exit 1);
//! mismatching cases are shrunk and written to `tests/corpus/`, where
//! the `corpus_replay` test re-checks them on every `cargo test`.
//!
//! `--pass=NAME` restricts the ADORE leg to a pipeline with that single
//! pass active (see `adore::PassKind` for names) — a targeted probe
//! that any pass alone, run against an otherwise empty pipeline, still
//! preserves semantics.
//!
//! The campaign corpus directory resolves from `--campaign-dir=`, then
//! the `ADORE_CAMPAIGN_DIR` environment variable, then
//! `corpus/campaign/` under the workspace root.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use obs::{Json, Report};
use oracle::{
    check_case, generate, run_campaign, shrink, CampaignConfig, CaseResult, CaseRunner, Coverage,
    DiffConfig, GenConfig,
};

use crate::cli::{Cli, Registry};
use crate::lab::workspace_path;

pub(crate) const ABOUT: &str = "differential fuzzing of ADORE semantics (classic or campaign)";

pub(crate) fn registry() -> Registry {
    Registry::new("fuzz", ABOUT)
        .uint("cases", None, "classic mode: case count (default: 512, or 128 with --quick)")
        .uint("seed", Some("1"), "base RNG seed")
        .value(
            "exec-path",
            Some("fast"),
            format!(
                "simulator execution path: {}; campaign mode alternates \
                 fast/threaded per case when unset",
                sim::ExecPath::VALUE_LIST
            ),
        )
        .value("pass", None, "restrict the ADORE leg to this single pipeline pass")
        .value("policy", None, "force the adaptive policy controller: on | off (default: alternate by seed)")
        .flag("campaign", "run the coverage-guided campaign instead of classic mode")
        .uint("rounds", None, "campaign: mutation rounds")
        .uint("batch", None, "campaign: cases per round")
        .uint("minimize-evals", None, "campaign: shrink budget per mismatch")
        .value("campaign-dir", None, "campaign: corpus directory (env ADORE_CAMPAIGN_DIR)")
        .flag("campaign-no-snapshot", "campaign: rebuild machines instead of snapshot-reset")
        .flag("progress", "campaign: per-round progress on stderr")
}

/// Simulator execution path selected by `--exec-path=...` (any of
/// [`sim::ExecPath::VALUE_LIST`]). `None` when the flag is absent:
/// classic mode then defaults to the fast path, campaign mode
/// alternates fast/threaded per case seed.
fn exec_path_flag(cli: &Cli) -> Option<sim::ExecPath> {
    cli.flag_value("exec-path").map(|v| {
        v.parse().unwrap_or_else(|e: String| {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        })
    })
}

/// `--policy=on|off` controller override for the ADORE leg; absent
/// keeps the oracle's seed-derived alternation.
fn policy_flag(cli: &Cli) -> Option<bool> {
    cli.flag_value("policy").map(|v| match v {
        "on" => true,
        "off" => false,
        other => {
            eprintln!("fuzz: --policy: expected on|off, got {other:?}");
            std::process::exit(2);
        }
    })
}

/// `--pass=NAME` pipeline restriction for the ADORE leg.
fn only_pass_flag(cli: &Cli) -> Option<adore::PassKind> {
    cli.flag_value("pass").map(|name| {
        name.parse().unwrap_or_else(|e: String| {
            eprintln!("fuzz: --pass: {e}");
            std::process::exit(2);
        })
    })
}

/// `tests/corpus/` (mismatch reproducers), overridable with
/// `ADORE_CORPUS_DIR`.
fn corpus_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("ADORE_CORPUS_DIR") {
        return PathBuf::from(dir);
    }
    workspace_path("tests/corpus")
}

/// Shrinks a mismatching spec and writes its reproducer to
/// `tests/corpus/`, returning the file path and shrunk size.
fn write_reproducer(spec: &oracle::ProgSpec, case_seed: u64) -> (PathBuf, usize) {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let file = dir.join(format!("fuzz_{case_seed:016x}.txt"));
    std::fs::write(&file, oracle::serialize_repro(spec)).expect("write reproducer");
    (file, spec.items.len())
}

enum CaseReport {
    Agree { outcome_label: &'static str, traces_patched: usize },
    Inconclusive { leg: &'static str, why: String },
    Undecided { why: String },
    Mismatch { stage: &'static str, detail: String, shrunk_items: usize, file: PathBuf },
}

pub(crate) fn run(cli: Cli) {
    if cli.flag("campaign") {
        campaign_main(&cli);
        return;
    }
    classic_main(&cli);
}

/// The coverage-guided campaign mode (`--campaign`).
fn campaign_main(cli: &Cli) {
    let exec_path = exec_path_flag(cli);
    let only_pass = only_pass_flag(cli);
    let campaign_dir = cli
        .flag_value("campaign-dir")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("ADORE_CAMPAIGN_DIR").map(PathBuf::from))
        .unwrap_or_else(|| workspace_path("corpus/campaign"));
    // An explicit --exec-path pins every case to that tier; leaving it
    // unset lets the campaign alternate fast/threaded by case seed so
    // one run exercises both the cycle-exact loop and the compile tier.
    let path_label =
        exec_path.map_or_else(|| "alternate".to_string(), |p| p.to_string());
    let defaults = CampaignConfig::default();
    let cfg = CampaignConfig {
        rounds: cli.flag_uint("rounds").unwrap_or(defaults.rounds as u64) as usize,
        batch: cli.flag_uint("batch").unwrap_or(defaults.batch as u64) as usize,
        seed: cli.flag_uint("seed").unwrap_or(1),
        jobs: cli.jobs.max(1),
        alternate_exec: exec_path.is_none(),
        diff: DiffConfig {
            exec_path: exec_path.unwrap_or(sim::ExecPath::Fast),
            pipeline: only_pass.map(adore::PipelineConfig::only),
            policy: policy_flag(cli),
            ..DiffConfig::default()
        },
        corpus_dir: Some(campaign_dir),
        reuse_machines: !cli.flag("campaign-no-snapshot"),
        minimize_evals: cli
            .flag_uint("minimize-evals")
            .unwrap_or(defaults.minimize_evals as u64) as usize,
        progress: cli.flag("progress"),
        ..defaults
    };

    let started = Instant::now();
    let stats = run_campaign(&cfg);
    let wall = started.elapsed();

    let mut mismatch_rows = Json::array();
    for m in &stats.mismatches {
        let (file, shrunk_items) = write_reproducer(&m.spec, m.case_seed);
        eprintln!(
            "[fuzz] MISMATCH seed {:#x} at {}: {} — reproducer {}",
            m.case_seed,
            m.stage,
            m.detail,
            file.display()
        );
        mismatch_rows.push(
            Json::object()
                .with("seed", m.case_seed)
                .with("stage", m.stage)
                .with("detail", m.detail.as_str())
                .with("shrunk_items", shrunk_items as u64)
                .with("corpus_file", file.display().to_string()),
        );
    }

    let mut outcome_obj = Json::object();
    for (label, count) in &stats.outcomes {
        outcome_obj.set(label, *count);
    }
    let mut coverage_obj = Json::object();
    for (name, count) in stats.features.fields() {
        coverage_obj.set(name, count);
    }
    let mut hits_obj = Json::object();
    for (key, count) in &stats.coverage {
        hits_obj.set(key, *count);
    }
    let mut mutations_obj = Json::object();
    for (op, count) in &stats.mutations {
        mutations_obj.set(op, *count);
    }
    let mut origins_obj = Json::object();
    for (origin, count) in &stats.origins {
        origins_obj.set(origin, *count);
    }
    let campaign_obj = Json::object()
        .with("rounds", stats.rounds as u64)
        .with("batch", cfg.batch as u64)
        .with("snapshot", cfg.reuse_machines)
        .with("corpus_imported", stats.corpus_imported)
        .with("corpus_added", stats.corpus_added)
        .with("corpus_len", stats.corpus.len() as u64)
        .with("new_key_events", stats.new_key_events)
        .with("coverage_keys", stats.coverage.len() as u64)
        .with("coverage_hits", hits_obj)
        .with("mutations", mutations_obj)
        .with("origins", origins_obj);

    let mismatches = stats.mismatches.len() as u64;
    let mut report = Report::new("fuzz");
    report.set("args", cli.report_args.clone());
    report.set("mode", "campaign");
    report.set("seed", cfg.seed);
    report.set("exec_path", path_label.clone());
    report.set("only_pass", only_pass.map(|k| k.name().to_string()));
    report.set("policy", policy_flag(cli).map(|on| if on { "on" } else { "off" }.to_string()));
    report.set("cases", stats.cases);
    report.set("mismatches", mismatches);
    report.set("inconclusive", stats.inconclusive);
    report.set("undecided", stats.undecided);
    report.set("outcomes", outcome_obj);
    report.set("coverage", coverage_obj);
    report.set("campaign", campaign_obj);
    report.set("cases_with_patches", stats.cases_with_patches);
    report.set("traces_patched_total", stats.traces_patched_total);
    report.set("mismatch_details", mismatch_rows);
    report.save().expect("write results/fuzz.json");

    // Machine build/reset counters are per-worker and therefore
    // jobs-dependent: stderr only, never in the report.
    eprintln!(
        "[fuzz] campaign wall {:.2}s, machines built {} / reset {}",
        wall.as_secs_f64(),
        stats.machine_builds,
        stats.machine_resets
    );
    println!(
        "fuzz[{path_label}] campaign: {} cases over {} rounds, {mismatches} mismatches, \
         {} inconclusive, {} undecided, corpus +{} (now {}), {} coverage keys",
        stats.cases,
        stats.rounds,
        stats.inconclusive,
        stats.undecided,
        stats.corpus_added,
        stats.corpus.len(),
        stats.coverage.len()
    );
    for (label, count) in &stats.outcomes {
        println!("  {label}: {count}");
    }
    if mismatches > 0 {
        eprintln!("[fuzz] FAIL: {mismatches} semantic mismatches (reproducers in tests/corpus/)");
        std::process::exit(1);
    }
}

/// The classic fixed-case mode: independent seeded cases, one check
/// each, fanned out over the shared work-stealing pool. Each worker
/// shard leases snapshot-reset machines from its own [`CaseRunner`]
/// state, harvested at the end for the build/reset totals.
fn classic_main(cli: &Cli) {
    let cases =
        cli.flag_uint("cases").unwrap_or(if cli.flag("quick") { 128 } else { 512 }) as usize;
    let base_seed = cli.flag_uint("seed").unwrap_or(1);
    let exec_path = exec_path_flag(cli).unwrap_or(sim::ExecPath::Fast);
    let only_pass = only_pass_flag(cli);
    let gen_cfg = GenConfig::default();
    let diff_cfg = DiffConfig {
        exec_path,
        pipeline: only_pass.map(adore::PipelineConfig::only),
        policy: policy_flag(cli),
        ..DiffConfig::default()
    };

    let done = AtomicUsize::new(0);
    let (results, runners, _stats) = obs::pool::run_indexed(
        cli.jobs.max(1),
        (0..cases).collect(),
        |_| CaseRunner::new(),
        |runner: &mut CaseRunner, _i, case: usize| {
            let case_seed = base_seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let (spec, cov) = generate(case_seed, &gen_cfg);
            let report = match check_case(&spec, &diff_cfg, runner).0 {
                CaseResult::Agree { outcome, traces_patched, .. } => {
                    CaseReport::Agree { outcome_label: outcome.label(), traces_patched }
                }
                CaseResult::Inconclusive { leg, why } => CaseReport::Inconclusive { leg, why },
                CaseResult::Undecided(why) => CaseReport::Undecided { why },
                CaseResult::Mismatch(m) => {
                    eprintln!(
                        "[fuzz] MISMATCH seed {case_seed:#x} at {}: {} — shrinking",
                        m.stage, m.detail
                    );
                    let small = shrink(&spec, &diff_cfg);
                    let (file, shrunk_items) = write_reproducer(&small, case_seed);
                    CaseReport::Mismatch { stage: m.stage, detail: m.detail, shrunk_items, file }
                }
            };
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            if d % 64 == 0 || d == cases {
                eprintln!("[fuzz] {d}/{cases} cases");
            }
            (case_seed, cov, report)
        },
    );
    let (builds, resets) = runners
        .iter()
        .fold((0u64, 0u64), |(b, r), runner| (b + runner.builds, r + runner.resets));

    let mut coverage = Coverage::default();
    let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut mismatches = 0u64;
    let mut inconclusive = 0u64;
    let mut undecided = 0u64;
    let mut cases_with_patches = 0u64;
    let mut traces_patched_total = 0u64;
    let mut mismatch_rows = Json::array();
    for (case_seed, cov, report) in &results {
        coverage.absorb(cov);
        match report {
            CaseReport::Agree { outcome_label, traces_patched } => {
                *outcomes.entry(outcome_label).or_insert(0) += 1;
                if *traces_patched > 0 {
                    cases_with_patches += 1;
                }
                traces_patched_total += *traces_patched as u64;
            }
            CaseReport::Inconclusive { leg, why } => {
                inconclusive += 1;
                eprintln!("[fuzz] inconclusive seed {case_seed:#x} ({leg} leg): {why}");
            }
            CaseReport::Undecided { why } => {
                undecided += 1;
                eprintln!("[fuzz] undecided seed {case_seed:#x}: {why}");
            }
            CaseReport::Mismatch { stage, detail, shrunk_items, file } => {
                mismatches += 1;
                mismatch_rows.push(
                    Json::object()
                        .with("seed", *case_seed)
                        .with("stage", *stage)
                        .with("detail", detail.as_str())
                        .with("shrunk_items", *shrunk_items as u64)
                        .with("corpus_file", file.display().to_string()),
                );
            }
        }
    }

    let mut outcome_obj = Json::object();
    for (label, count) in &outcomes {
        outcome_obj.set(label, *count);
    }
    let mut coverage_obj = Json::object();
    for (name, count) in coverage.fields() {
        coverage_obj.set(name, count);
    }

    let mut report = Report::new("fuzz");
    report.set("args", cli.report_args.clone());
    report.set("mode", "fuzz");
    report.set("seed", base_seed);
    report.set("exec_path", exec_path.to_string());
    report.set("only_pass", only_pass.map(|k| k.name().to_string()));
    report.set("policy", policy_flag(cli).map(|on| if on { "on" } else { "off" }.to_string()));
    report.set("cases", cases as u64);
    report.set("mismatches", mismatches);
    report.set("inconclusive", inconclusive);
    report.set("undecided", undecided);
    report.set("outcomes", outcome_obj);
    report.set("coverage", coverage_obj);
    report.set("cases_with_patches", cases_with_patches);
    report.set("traces_patched_total", traces_patched_total);
    report.set("mismatch_details", mismatch_rows);
    report.save().expect("write results/fuzz.json");

    eprintln!("[fuzz] machines built {builds} / reset {resets}");
    println!(
        "fuzz[{exec_path}]: {cases} cases, {mismatches} mismatches, {inconclusive} inconclusive, \
         {undecided} undecided, {cases_with_patches} cases patched ({traces_patched_total} traces)"
    );
    for (label, count) in &outcomes {
        println!("  {label}: {count}");
    }
    if mismatches > 0 {
        eprintln!("[fuzz] FAIL: {mismatches} semantic mismatches (reproducers in tests/corpus/)");
        std::process::exit(1);
    }
}
