//! `lab objdump` — minimal object-file tool for the toolchain's binary
//! format: compile a workload (or micro-kernel), save it with
//! `isa::encode_program`, reload it, and print the disassembly
//! listing.

use compiler::{compile, CompileOptions};

use crate::cli::{Cli, Registry};

pub(crate) const ABOUT: &str = "compile a workload and dump its encoded binary listing";

pub(crate) fn registry() -> Registry {
    Registry::new("objdump", ABOUT)
        .picks("<workload|matmul|daxpy|memcpy> [output path] (default: daxpy)")
}

pub(crate) fn run(cli: Cli) {
    let name = cli.pick().unwrap_or("daxpy");

    let kernel = match name {
        "matmul" => workloads::micro::matrix_multiply(64, 2).kernel,
        "daxpy" => workloads::micro::daxpy(4096, 2).kernel,
        "memcpy" => workloads::micro::memcpy(1 << 16, 2).kernel,
        other => match workloads::by_name(other, 0.05) {
            Some(w) => w.kernel,
            None => {
                eprintln!("unknown workload `{other}`");
                std::process::exit(1);
            }
        },
    };
    let bin = compile(&kernel, &CompileOptions::o3()).expect("compiles");

    let bytes = isa::encode_program(&bin.program);
    if let Some(path) = cli.picks.get(1) {
        std::fs::write(path, &bytes).expect("write object file");
        eprintln!("wrote {} bytes to {path}", bytes.len());
    }

    // Round-trip through the binary format, then list.
    let program = isa::decode_program(&bytes).expect("decodes");
    println!(
        "; {} — {} bundles, {} bytes encoded, entry {}",
        kernel.name,
        program.len(),
        bytes.len(),
        program.entry()
    );
    for info in &bin.loops {
        println!(
            "; loop `{}` [{} .. {}) trip={}{}",
            info.name,
            info.head,
            info.end,
            info.trip,
            if info.has_static_prefetch { " +prefetch" } else { "" }
        );
    }
    print!("{program}");
}
