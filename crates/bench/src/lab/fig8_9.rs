//! `lab fig8_9` — Fig. 8 (179.art) and Fig. 9 (181.mcf): runtime CPI
//! and DEAR-qualifying misses per 1000 instructions over execution
//! time, with and without runtime prefetching.
//!
//! Emits `results/fig8_9.json` with both series per workload.

use compiler::CompileOptions;
use obs::Json;

use crate::cli::{Cli, Registry};
use crate::{jf, je, js, ju, ExperimentSpec, Measure};

pub(crate) const ABOUT: &str = "CPI and miss-rate timelines for art (Fig. 8) and mcf (Fig. 9)";

pub(crate) fn registry() -> Registry {
    Registry::new("fig8_9", ABOUT)
        .picks("art | mcf | both — which series to run (default: both)")
        .flag("csv", "emit the series as CSV instead of tables")
}

fn series<'a>(r: &'a Json, key: &str) -> &'a [Json] {
    r.get(key).and_then(Json::as_array).unwrap_or(&[])
}

fn print_table(r: &Json) {
    let name = js(r, "bench");
    let figure = if name == "art" { "Fig. 8 (179.art)" } else { "Fig. 9 (181.mcf)" };
    println!("== {figure}: CPI and DEAR_CACHE_LAT8/1000-instructions over time ==");
    for (label, key) in [("no", "baseline"), ("with", "adore")] {
        println!("-- {label} runtime prefetching --");
        println!("{:>14} {:>8} {:>12}", "cycles", "CPI", "miss/kinsn");
        for p in series(r, key) {
            println!(
                "{:>14} {:>8.3} {:>12.3}",
                ju(p, "cycles"),
                jf(p, "cpi"),
                jf(p, "dear_per_kinsn")
            );
        }
    }
    let avg = |key: &str, f: &str| {
        let s = series(r, key);
        s.iter().map(|p| jf(p, f)).sum::<f64>() / s.len().max(1) as f64
    };
    println!(
        "summary: CPI {:.3} -> {:.3}; miss/kinsn {:.3} -> {:.3}; end-time {} -> {} cycles",
        avg("baseline", "cpi"),
        avg("adore", "cpi"),
        avg("baseline", "dear_per_kinsn"),
        avg("adore", "dear_per_kinsn"),
        ju(r, "baseline_end_cycles"),
        ju(r, "adore_end_cycles")
    );
}

fn print_csv(r: &Json) {
    println!("series,cycles,cpi,dear_per_kinsn");
    for (label, key) in [("baseline", "baseline"), ("adore", "adore")] {
        for p in series(r, key) {
            println!(
                "{label},{},{:.4},{:.4}",
                ju(p, "cycles"),
                jf(p, "cpi"),
                jf(p, "dear_per_kinsn")
            );
        }
    }
}

pub(crate) fn run(cli: Cli) {
    let csv = cli.flag("csv");
    let picks: &[&'static str] = match cli.pick() {
        Some("art") => &["art"],
        Some("mcf") => &["mcf"],
        _ if csv => &["art"],
        _ => &["art", "mcf"],
    };
    let result = ExperimentSpec::paper_defaults("fig8_9", &cli)
        .section("series", picks, CompileOptions::o2(), Measure::Timeline)
        .run();
    for (i, r) in result.rows("series").iter().enumerate() {
        match je(r) {
            Some(e) => println!("{}: ERROR: {e}", js(r, "bench")),
            None if csv => print_csv(r),
            None => {
                if i > 0 {
                    println!();
                }
                print_table(r);
            }
        }
    }
    result.save().expect("write results/fig8_9.json");
}
