//! `lab diag` — diagnostic: per-workload phase-detection and
//! optimization trace.
//!
//! Emits `results/diag.json` alongside the printed trace.

use compiler::CompileOptions;
use obs::Json;

use crate::cli::{Cli, Registry};
use crate::{je, ju, ExperimentSpec, Measure, PAPER_ORDER};

pub(crate) const ABOUT: &str = "per-workload phase-detection and optimization trace";

pub(crate) fn registry() -> Registry {
    Registry::new("diag", ABOUT)
        .picks("workload names — subset to trace (default: all)")
        .flag("profile", "also collect an aggregate miss profile")
        .flag("adore", "also run ADORE and record its decisions")
        .flag("no-pointer", "disable pointer-chase prefetching")
        .flag("no-direct", "disable direct prefetching")
}

fn print_lines(r: &Json, key: &str) {
    for l in r.get(key).and_then(Json::as_array).unwrap_or(&[]) {
        println!("{}", l.as_str().unwrap_or(""));
    }
}

pub(crate) fn run(cli: Cli) {
    let names: Vec<&'static str> = PAPER_ORDER
        .iter()
        .copied()
        .filter(|n| cli.picks.is_empty() || cli.picks.iter().any(|p| p == n))
        .collect();
    let measure = Measure::Diag { profile: cli.flag("profile"), adore: cli.flag("adore") };
    let (no_ptr, no_dir) = (cli.flag("no-pointer"), cli.flag("no-direct"));
    let result = ExperimentSpec::paper_defaults("diag", &cli)
        .section_with("workloads", &names, CompileOptions::o2(), measure, move |c| {
            c.adore.prefetch.enable_pointer &= !no_ptr;
            c.adore.prefetch.enable_direct &= !no_dir;
        })
        .run();
    for r in result.rows("workloads") {
        let name = r.get("workload").or_else(|| r.get("bench")).and_then(Json::as_str);
        println!("=== {} ===", name.unwrap_or("?"));
        if let Some(e) = je(r) {
            println!("ERROR: {e}");
            continue;
        }
        println!("cycles={} windows={}", ju(r, "cycles"), ju(r, "windows"));
        print_lines(r, "lines");
        if let Some(p) = r.get("profile") {
            println!(
                "miss profile: {} entries, total latency {}",
                p.get("entries").and_then(Json::as_array).map(<[Json]>::len).unwrap_or(0),
                ju(p, "total_latency")
            );
            print_lines(r, "profile_lines");
        }
        print_lines(r, "adore_lines");
    }
    result.save().expect("write results/diag.json");
}
