//! `lab policy` — the adaptive policy controller versus the paper's
//! static policy, per workload.
//!
//! Every cell runs three legs from one cached baseline: the plain
//! (no-prefetch) run, a static-policy ADORE run, and an ADORE run with
//! the per-phase policy controller enabled ([`Measure::Policy`] turns
//! the controller on itself — the spec-wide config keeps the paper
//! default, so every other experiment is untouched). The printed table
//! is the win/loss grid; `results/policy.json` carries the full rows
//! including each cell's per-phase decision log, byte-identical for
//! any `--jobs` value and to the `lab serve` `"policy"` measure.

use compiler::CompileOptions;

use crate::cli::{Cli, Registry};
use crate::{je, jf, js, ju, ExperimentSpec, Measure, FAMILY_ORDER, PAPER_ORDER};

pub(crate) const ABOUT: &str =
    "adaptive policy controller vs the static policy, per workload";

pub(crate) fn registry() -> Registry {
    Registry::new("policy", ABOUT)
        .picks("<workload> | suite | families | all — which grid to run (default: all)")
}

/// The workload grid for a pick: the 17-benchmark suite, the scenario
/// families, both, or a single named workload.
fn grid(pick: &str) -> Vec<&'static str> {
    match pick {
        "all" => PAPER_ORDER.iter().chain(FAMILY_ORDER.iter()).copied().collect(),
        "suite" => PAPER_ORDER.to_vec(),
        "families" => FAMILY_ORDER.to_vec(),
        name => PAPER_ORDER
            .iter()
            .chain(FAMILY_ORDER.iter())
            .copied()
            .filter(|n| *n == name)
            .collect(),
    }
}

pub(crate) fn run(cli: Cli) {
    let pick = cli.pick().unwrap_or("all").to_string();
    let names = grid(&pick);
    if names.is_empty() {
        eprintln!("error: unknown pick `{pick}` (expected a workload name, suite, families or all)");
        std::process::exit(2);
    }
    let result = ExperimentSpec::paper_defaults("policy", &cli)
        .section("grid", &names, CompileOptions::o2(), Measure::Policy)
        .run();

    println!("== Adaptive policy controller vs static policy (O2) ==");
    println!(
        "{:<8} {:>14} {:>13} {:>13}  {:>8} {:>8} {:>7}  {:>6} {:<7} {}",
        "bench", "base cycles", "static", "adaptive", "static%", "adapt%", "delta", "fback",
        "result", "committed"
    );
    let (mut wins, mut losses, mut ties) = (0usize, 0usize, 0usize);
    for r in result.rows("grid") {
        if let Some(e) = je(r) {
            println!("{:<8} ERROR: {e}", js(r, "bench"));
            continue;
        }
        let static_cycles = ju(r, "static_cycles");
        let adaptive_cycles = ju(r, "adaptive_cycles");
        let verdict = match adaptive_cycles.cmp(&static_cycles) {
            std::cmp::Ordering::Less => {
                wins += 1;
                "win"
            }
            std::cmp::Ordering::Greater => {
                losses += 1;
                "loss"
            }
            std::cmp::Ordering::Equal => {
                ties += 1;
                "tie"
            }
        };
        let policy = r.get("policy");
        let fallbacks = policy.map(|p| ju(p, "fallbacks")).unwrap_or(0);
        let committed = policy
            .and_then(|p| p.get("committed"))
            .and_then(obs::Json::as_array)
            .map(|arms| {
                let mut names: Vec<&str> =
                    arms.iter().map(|a| js(a, "arm")).collect();
                names.sort_unstable();
                names.dedup();
                names.join(",")
            })
            .unwrap_or_default();
        println!(
            "{:<8} {:>14} {:>13} {:>13}  {:>7.1}% {:>7.1}% {:>+6.1}%  {:>6} {:<7} {}",
            js(r, "bench"),
            ju(r, "base_cycles"),
            static_cycles,
            adaptive_cycles,
            jf(r, "static_speedup_pct"),
            jf(r, "adaptive_speedup_pct"),
            jf(r, "delta_pct"),
            fallbacks,
            verdict,
            if committed.is_empty() { "-" } else { &committed },
        );
    }
    println!(
        "summary: {wins} wins / {losses} losses / {ties} ties over {} workloads",
        result.rows("grid").len()
    );
    result.save().expect("write results/policy.json");
}
