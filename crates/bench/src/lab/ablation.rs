//! `lab ablation` — ablation study over the design choices DESIGN.md
//! calls out: what happens to representative benchmarks when
//! individual mechanisms are switched off (or, for the §6
//! instrumentation extension, on) — and, since the optimizer became a
//! pass pipeline, what happens when any single *pass* is disabled.
//!
//! Emits `results/ablation.json` alongside the printed table: one
//! report section of pipeline-comparison rows per variant, keyed by
//! variant. Every row carries the per-pass overhead ledger and
//! rejection counts (unified `Rejection` taxonomy).

use adore::{PassKind, PipelineConfig};
use compiler::CompileOptions;

use crate::cli::{Cli, Registry};
use crate::{jf, Cell, ExperimentSpec, Measure};

pub(crate) const ABOUT: &str = "mechanism and per-pass ablations on representative benchmarks";

pub(crate) fn registry() -> Registry {
    Registry::new("ablation", ABOUT)
        .flag("pass-smoke", "run only the per-pass sections, one workload each (the CI smoke)")
        .repeated("disable-pass", "add a section with the named pass disabled on every benchmark")
}

const BENCHES: [&str; 4] = ["mcf", "art", "swim", "lucas"];

/// Single workload for the per-pass smoke sections: cheap even at quick
/// scale, and `art`'s mixed direct+indirect streams still get patched
/// there, so disabling a load-bearing pass visibly changes the row.
const SMOKE_BENCH: [&str; 1] = ["art"];

const VARIANTS: [(&str, &str, fn(&mut Cell)); 8] = [
    ("full", "full system", |_| {}),
    ("no_jitter", "no sampling-period jitter", |c| c.adore.sampling.jitter = 0.0),
    ("no_pointer", "no pointer-chase prefetching", |c| c.adore.prefetch.enable_pointer = false),
    ("no_jump", "no jump-pointer prefetching", |c| c.adore.prefetch.enable_jump = false),
    ("no_indirect", "no indirect prefetching", |c| c.adore.prefetch.enable_indirect = false),
    ("no_direct", "no direct prefetching", |c| c.adore.prefetch.enable_direct = false),
    ("no_bw_cap", "no memory-bandwidth cap", |c| c.machine.cache.mem_service_interval = 0),
    ("instrumentation", "+ runtime instrumentation (§6)", |c| {
        c.adore.instrument_unanalyzable = true
    }),
];

fn pass_section_key(kind: PassKind) -> String {
    format!("pass_off_{}", kind.name())
}

pub(crate) fn run(cli: Cli) {
    let pass_smoke = cli.flag("pass-smoke");
    let disabled: Vec<PassKind> = cli
        .flag_values("disable-pass")
        .map(|name| name.parse().unwrap_or_else(|e| panic!("--disable-pass: {e}")))
        .collect();

    let mut spec = ExperimentSpec::paper_defaults("ablation", &cli);
    if !pass_smoke {
        for (key, _, tweak) in VARIANTS {
            spec = spec.section_with(
                key,
                &BENCHES,
                CompileOptions::o2(),
                Measure::PipelineComparison,
                tweak,
            );
        }
        for &kind in &disabled {
            spec = spec.section_with(
                &pass_section_key(kind),
                &BENCHES,
                CompileOptions::o2(),
                Measure::PipelineComparison,
                move |c| c.adore.pipeline = PipelineConfig::default().disable(kind),
            );
        }
    } else {
        // CI smoke: each pass disabled once, one workload each.
        for kind in PassKind::ALL {
            spec = spec.section_with(
                &pass_section_key(kind),
                &SMOKE_BENCH,
                CompileOptions::o2(),
                Measure::PipelineComparison,
                move |c| c.adore.pipeline = PipelineConfig::default().disable(kind),
            );
        }
    }
    let result = spec.run();

    if !pass_smoke {
        println!("== Ablation of design choices (speedup % under O2 + ADORE) ==\n");
        println!("{:<34} {:>8} {:>8} {:>8} {:>8}", "configuration", "mcf", "art", "swim", "lucas");
        for (key, label, _) in VARIANTS {
            let v: Vec<f64> = result.rows(key).iter().map(|r| jf(r, "speedup_pct")).collect();
            println!("{label:<34} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%", v[0], v[1], v[2], v[3]);
        }
        for &kind in &disabled {
            let v: Vec<f64> = result
                .rows(&pass_section_key(kind))
                .iter()
                .map(|r| jf(r, "speedup_pct"))
                .collect();
            let label = format!("pass `{kind}` disabled");
            println!("{label:<34} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%", v[0], v[1], v[2], v[3]);
        }
    } else {
        println!("== Per-pass ablation smoke ({}) ==\n", SMOKE_BENCH[0]);
        println!("{:<34} {:>9} {:>9} {:>9}", "pipeline", "speedup", "patched", "ledger-cyc");
        for kind in PassKind::ALL {
            for r in result.rows(&pass_section_key(kind)) {
                let ledger_cycles: f64 = r
                    .get("pipeline")
                    .and_then(|p| p.get("passes"))
                    .and_then(|p| p.as_array())
                    .map(|passes| {
                        passes
                            .iter()
                            .filter_map(|p| p.get("charged_cycles").and_then(|c| c.as_u64()))
                            .sum::<u64>() as f64
                    })
                    .unwrap_or(0.0);
                println!(
                    "without {:<26} {:>8.1}% {:>9.0} {:>9.0}",
                    kind.name(),
                    jf(r, "speedup_pct"),
                    jf(r, "traces_patched"),
                    ledger_cycles
                );
            }
        }
    }
    result.save().expect("write results/ablation.json");
    if !pass_smoke {
        println!(
            "\nReading the rows: each pattern toggle hits the benchmark that\n\
             depends on it (mcf=pointer, art=indirect+direct, swim=direct).\n\
             Jitter off narrows first-pass DEAR diversity (incremental\n\
             re-optimization partly compensates). Removing the bandwidth cap\n\
             lets the *baseline* overlap misses freely, shrinking the\n\
             prefetch headroom the paper's bus-limited machine actually had.\n\
             Instrumentation (off in the paper's evaluation) unlocks the\n\
             fp-conversion benchmark (lucas) the paper could not improve.\n\
             Every row embeds the per-pass overhead ledger (`pipeline`)\n\
             and the unified rejection counts; disable any single pass\n\
             with `--disable-pass=NAME`."
        );
    }
}
