//! `lab fig10` — Fig. 10: the cost of the restricted compilation —
//! original `O2` (software pipelining on, no registers reserved)
//! versus the restricted `O2` used for runtime prefetching (SWP off,
//! `r27`–`r30` and `p6` reserved).
//!
//! Emits `results/fig10.json` alongside the printed table.

use compiler::CompileOptions;

use crate::cli::{Cli, Registry};
use crate::{jf, je, js, ju, ExperimentSpec, Measure, PAPER_ORDER};

pub(crate) const ABOUT: &str = "compilation cost: original O2 vs the restricted O2";

pub(crate) fn registry() -> Registry {
    Registry::new("fig10", ABOUT)
}

pub(crate) fn run(cli: Cli) {
    let result = ExperimentSpec::paper_defaults("fig10", &cli)
        .section(
            "rows",
            &PAPER_ORDER,
            CompileOptions::o2(),
            Measure::CompareCompile(Box::new(CompileOptions::o2_original())),
        )
        .run();
    println!("== Fig. 10: original O2 (SWP, no reservation) vs restricted O2 ==");
    println!(
        "{:<10} {:>16} {:>16} {:>10}  (paper: >3% only for equake, mcf, facerec, swim)",
        "bench", "restricted O2", "original O2", "speedup%"
    );
    for r in result.rows("rows") {
        match je(r) {
            Some(e) => println!("{:<10} ERROR: {e}", js(r, "bench")),
            None => println!(
                "{:<10} {:>16} {:>16} {:>9.1}%",
                js(r, "bench"),
                ju(r, "restricted_cycles"),
                ju(r, "original_cycles"),
                jf(r, "speedup_pct")
            ),
        }
    }
    result.save().expect("write results/fig10.json");
}
