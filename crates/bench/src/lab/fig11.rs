//! `lab fig11` — Fig. 11: the overhead of the ADORE machinery —
//! execution time of the O2 binary alone versus O2 + runtime system
//! with prefetch *insertion disabled* (sampling, phase detection and
//! trace selection still run).
//!
//! Emits `results/fig11.json` alongside the printed table.

use compiler::CompileOptions;

use crate::cli::{Cli, Registry};
use crate::{jf, je, js, ju, ExperimentSpec, Measure, PAPER_ORDER};

pub(crate) const ABOUT: &str = "runtime-system overhead with prefetch insertion disabled";

pub(crate) fn registry() -> Registry {
    Registry::new("fig11", ABOUT)
}

pub(crate) fn run(cli: Cli) {
    let result = ExperimentSpec::paper_defaults("fig11", &cli)
        .section("rows", &PAPER_ORDER, CompileOptions::o2(), Measure::Overhead)
        .run();
    println!("== Fig. 11: overhead of runtime machinery without prefetch insertion ==");
    println!(
        "{:<10} {:>14} {:>22} {:>10}  (paper: 1-2% overhead)",
        "bench", "O2 cycles", "O2+sampling cycles", "overhead%"
    );
    for r in result.rows("rows") {
        match je(r) {
            Some(e) => println!("{:<10} ERROR: {e}", js(r, "bench")),
            None => println!(
                "{:<10} {:>14} {:>22} {:>9.2}%",
                js(r, "bench"),
                ju(r, "o2_cycles"),
                ju(r, "sampling_cycles"),
                jf(r, "overhead_pct")
            ),
        }
    }
    result.save().expect("write results/fig11.json");
}
