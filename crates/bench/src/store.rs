//! Persistent content-addressed baseline store.
//!
//! The in-memory [`crate::engine::BaselineCache`] deduplicates plain
//! (no-prefetch, unmonitored) runs *within* one grid; this store
//! persists those runs *across* processes, so re-running the same grid
//! — or a different binary that shares cells — skips the expensive
//! simulation and only re-pays compilation.
//!
//! **Key derivation.** An entry is addressed by an FNV-1a hash over
//! everything the plain run's outcome depends on:
//!
//! * [`STORE_VERSION`] (bump whenever simulator timing changes);
//! * the workload identity: name, `Debug` rendering of the kernel IR,
//!   arena size, and `Debug` rendering of the init actions — the
//!   kernel content varies with `--scale`, so two scales never
//!   collide;
//! * the compile options (via the same deterministic
//!   [`crate::engine::opts_key`] string the in-memory cache uses);
//! * the `Debug` rendering of the [`MachineConfig`].
//!
//! The `AdoreConfig` is deliberately **excluded**: a plain baseline
//! never runs ADORE, and every ablation variant of a cell must share
//! one stored baseline (that sharing is the point of the cache).
//!
//! **Size cap.** The store grows forever by default (every scale /
//! config / workload combination adds entries and nothing ever deletes
//! them). Setting `ADORE_BASELINE_CAP_BYTES` to a positive byte count
//! bounds it: after each save, entries are evicted oldest-modified
//! first until the directory's `*.json` payload fits the cap. The
//! just-written entry is never evicted — a cap smaller than one entry
//! still keeps the newest — so a hit for the current run's hottest key
//! survives. Unset, empty, `0` or unparsable values leave the store
//! unbounded.
//!
//! **Entry format.** One JSON file per key, named `<key-hex>.json`,
//! holding the plain run's cycles, final PMU counters and stats row,
//! plus a `checksum` over the payload. A missing, unparsable,
//! version-mismatched or checksum-mismatched entry is treated as a
//! miss and recomputed — never trusted — then atomically rewritten
//! (unique temp file + rename), so concurrent writers and torn writes
//! cannot corrupt readers.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use compiler::CompileOptions;
use obs::Json;
use sim::{Counters, MachineConfig};
use workloads::Workload;

use crate::engine::opts_key;

/// Version of the stored-entry semantics. Bump whenever simulator
/// timing, workload generation or the entry layout changes: stale
/// entries from older versions then miss instead of poisoning results.
pub const STORE_VERSION: u64 = 1;

/// A content-addressed on-disk store of plain-run baselines.
///
/// Hit/miss counters are *volatile* observability (they depend on what
/// previous processes left in the directory), so the engine reports
/// them under the canonicalized-away `engine.baseline_store` section,
/// never next to the deterministic in-memory cache statistics.
pub struct BaselineStore {
    dir: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Total-size cap in bytes (`None` = unbounded).
    cap_bytes: Option<u64>,
    evictions: AtomicUsize,
}

/// The persisted outcome of one plain run — everything
/// [`crate::engine::Baseline`] needs except the compiled binary, which
/// is cheap to rebuild and is reproduced by recompiling.
#[derive(Debug, Clone)]
pub struct StoredBaseline {
    /// Total cycles of the plain run.
    pub cycles: u64,
    /// Final PMU counters.
    pub counters: Counters,
    /// Cache/PMU statistics row.
    pub stats: Json,
}

impl BaselineStore {
    /// Opens (creating if necessary) a store rooted at `dir`, with the
    /// size cap resolved from `ADORE_BASELINE_CAP_BYTES` (see the
    /// module docs).
    pub fn open(dir: PathBuf) -> std::io::Result<BaselineStore> {
        BaselineStore::open_with_cap(dir, cap_from_env())
    }

    /// Opens a store with an explicit size cap (`None` = unbounded);
    /// [`BaselineStore::open`] resolves the cap from the environment.
    pub fn open_with_cap(dir: PathBuf, cap_bytes: Option<u64>) -> std::io::Result<BaselineStore> {
        std::fs::create_dir_all(&dir)?;
        Ok(BaselineStore {
            dir,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            cap_bytes,
            evictions: AtomicUsize::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content-addressed key of a (workload, options, machine)
    /// triple. See the module docs for what the hash covers and why
    /// `AdoreConfig` is excluded.
    pub fn key(w: &Workload, opts: &CompileOptions, machine: &MachineConfig) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(STORE_VERSION);
        h.write_str(w.name);
        h.write_str(&format!("{:?}", w.kernel));
        h.write_u64(w.arena_bytes);
        h.write_str(&format!("{:?}", w.inits));
        h.write_str(&opts_key(opts));
        h.write_str(&format!("{machine:?}"));
        h.finish()
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Loads the entry for `key`, or `None` (counted as a miss) if it
    /// is absent or fails any integrity check.
    pub fn load(&self, key: u64) -> Option<StoredBaseline> {
        let loaded = self.try_load(key);
        if loaded.is_some() {
            self.hits.fetch_add(1, Ordering::SeqCst);
        } else {
            self.misses.fetch_add(1, Ordering::SeqCst);
        }
        loaded
    }

    fn try_load(&self, key: u64) -> Option<StoredBaseline> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let entry = Json::parse(&text).ok()?;
        if entry.get("store_version").and_then(Json::as_u64) != Some(STORE_VERSION) {
            return None;
        }
        if entry.get("key").and_then(Json::as_str) != Some(format!("{key:016x}").as_str()) {
            return None;
        }
        let payload = payload_of(&entry)?;
        let checksum = entry.get("checksum").and_then(Json::as_str)?;
        if checksum != payload_checksum(&payload) {
            return None;
        }
        let cycles = payload.get("cycles").and_then(Json::as_u64)?;
        let counters = counters_from_json(payload.get("counters")?)?;
        let stats = payload.get("stats")?.clone();
        Some(StoredBaseline { cycles, counters, stats })
    }

    /// Persists `entry` under `key`, then evicts oldest-modified
    /// entries as needed to honor the size cap. Write failures only
    /// cost future hits, so they are reported to stderr and otherwise
    /// ignored.
    pub fn save(&self, key: u64, entry: &StoredBaseline) {
        let payload = Json::object()
            .with("cycles", entry.cycles)
            .with("counters", entry.counters)
            .with("stats", entry.stats.clone());
        let body = Json::object()
            .with("store_version", STORE_VERSION)
            .with("key", format!("{key:016x}"))
            .with("cycles", entry.cycles)
            .with("counters", entry.counters)
            .with("stats", entry.stats.clone())
            .with("checksum", payload_checksum(&payload));
        if let Err(e) = self.write_atomic(key, &body.pretty()) {
            eprintln!("[baseline-store] write {:016x} failed: {e}", key);
        }
        self.evict_to_cap(key);
    }

    /// Deletes oldest-modified `*.json` entries until the directory
    /// fits `cap_bytes`. The entry just written (`keep_key`) is exempt:
    /// evicting the newest write would make a small cap equivalent to
    /// disabling the store, and the most recently computed baseline is
    /// precisely the one the next run of the same grid wants. Ties on
    /// mtime break by file name so eviction order is deterministic.
    fn evict_to_cap(&self, keep_key: u64) {
        let Some(cap) = self.cap_bytes else { return };
        let Ok(dir) = std::fs::read_dir(&self.dir) else { return };
        let keep = format!("{keep_key:016x}.json");
        let mut entries: Vec<(std::time::SystemTime, String, u64, PathBuf)> = Vec::new();
        let mut total = 0u64;
        for e in dir.flatten() {
            let path = e.path();
            let name = e.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".json") {
                continue;
            }
            let Ok(meta) = e.metadata() else { continue };
            total += meta.len();
            if name != keep {
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                entries.push((mtime, name, meta.len(), path));
            }
        }
        entries.sort();
        for (_, _, len, path) in entries {
            if total <= cap {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                self.evictions.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    fn write_atomic(&self, key: u64, text: &str) -> std::io::Result<()> {
        // Unique temp name per (process, thread) so concurrent writers
        // of the same key never interleave; rename is atomic and both
        // writers produce identical content anyway (determinism).
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{:?}.tmp",
            key,
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, self.entry_path(key))
    }

    /// `(hits, misses)` so far. Volatile: depends on prior processes.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::SeqCst), self.misses.load(Ordering::SeqCst))
    }

    /// Entries evicted by this process to honor the size cap.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::SeqCst)
    }
}

/// Resolves the size cap from `ADORE_BASELINE_CAP_BYTES`: a positive
/// byte count caps the store; unset, empty, `0` or unparsable values
/// mean unbounded (misconfiguration must not silently delete entries).
fn cap_from_env() -> Option<u64> {
    let raw = std::env::var("ADORE_BASELINE_CAP_BYTES").ok()?;
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Re-derives the checksummed payload subset of a stored entry.
fn payload_of(entry: &Json) -> Option<Json> {
    Some(
        Json::object()
            .with("cycles", entry.get("cycles")?.clone())
            .with("counters", entry.get("counters")?.clone())
            .with("stats", entry.get("stats")?.clone()),
    )
}

fn payload_checksum(payload: &Json) -> String {
    let mut h = Fnv::new();
    h.write_str(&payload.to_string());
    format!("{:016x}", h.finish())
}

/// Lossless reconstruction of [`Counters`] from its `ToJson` form; any
/// missing field fails the whole entry (treated as corruption).
fn counters_from_json(j: &Json) -> Option<Counters> {
    let f = |name: &str| j.get(name).and_then(Json::as_u64);
    Some(Counters {
        cycles: f("cycles")?,
        retired: f("retired")?,
        l1d_misses: f("l1d_misses")?,
        dear_misses: f("dear_misses")?,
        dear_latency: f("dear_latency")?,
        l1i_misses: f("l1i_misses")?,
        loads: f("loads")?,
        dtlb_misses: f("dtlb_misses")?,
        branches: f("branches")?,
        stall_mem: f("stall_mem")?,
        stall_fp: f("stall_fp")?,
        stall_branch: f("stall_branch")?,
        stall_icache: f("stall_icache")?,
        overhead_cycles: f("overhead_cycles")?,
    })
}

/// Resolves the default store directory:
///
/// * `ADORE_BASELINE_DIR` set and non-empty — use that path;
/// * `ADORE_BASELINE_DIR` set but empty — store disabled (`None`);
/// * unset — `cache/baselines/` under the workspace root (the nearest
///   ancestor holding `Cargo.lock`), or disabled if none is found.
pub fn resolve_default_dir() -> Option<PathBuf> {
    match std::env::var("ADORE_BASELINE_DIR") {
        Ok(dir) if dir.is_empty() => None,
        Ok(dir) => Some(PathBuf::from(dir)),
        Err(_) => {
            let mut at = std::env::current_dir().ok()?;
            loop {
                if at.join("Cargo.lock").is_file() {
                    return Some(at.join("cache").join("baselines"));
                }
                if !at.pop() {
                    return None;
                }
            }
        }
    }
}

/// Incremental FNV-1a (64-bit), shared by key derivation and entry
/// checksums.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Field separator so adjacent fields cannot alias.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn finish(&self) -> u64 {
        // Splitmix-style finalizer to spread FNV's weak low bits.
        let mut h = self.0;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "adore-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_entry() -> StoredBaseline {
        StoredBaseline {
            cycles: 12_345,
            counters: Counters { cycles: 12_345, retired: 678, ..Default::default() },
            stats: Json::object().with("l1d_miss_rate", 0.25),
        }
    }

    #[test]
    fn round_trips_an_entry() {
        let store = BaselineStore::open(temp_dir("roundtrip")).unwrap();
        store.save(7, &sample_entry());
        let back = store.load(7).expect("entry round-trips");
        assert_eq!(back.cycles, 12_345);
        assert_eq!(back.counters.retired, 678);
        assert_eq!(back.stats.get("l1d_miss_rate").and_then(Json::as_f64), Some(0.25));
        assert_eq!(store.stats(), (1, 0));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let store = BaselineStore::open(temp_dir("miss")).unwrap();
        assert!(store.load(99).is_none());
        assert_eq!(store.stats(), (0, 1));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_entry_is_rejected() {
        let store = BaselineStore::open(temp_dir("corrupt")).unwrap();
        store.save(3, &sample_entry());
        let path = store.dir().join(format!("{:016x}.json", 3));
        let tampered = std::fs::read_to_string(&path).unwrap().replace("12345", "99999");
        std::fs::write(&path, tampered).unwrap();
        assert!(store.load(3).is_none(), "tampered cycles must fail the checksum");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let store = BaselineStore::open(temp_dir("version")).unwrap();
        store.save(4, &sample_entry());
        let path = store.dir().join(format!("{:016x}.json", 4));
        let old = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"store_version\": 1", "\"store_version\": 0");
        std::fs::write(&path, old).unwrap();
        assert!(store.load(4).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn size_cap_evicts_oldest_entries_first_and_keeps_hits_working() {
        let store = BaselineStore::open_with_cap(temp_dir("cap"), Some(1)).unwrap();
        // Cap of 1 byte: after every save only the just-written entry
        // may survive (the newest write is exempt from eviction).
        let entry_len = {
            store.save(1, &sample_entry());
            std::fs::metadata(store.dir().join(format!("{:016x}.json", 1u64))).unwrap().len()
        };
        for key in 2..=4u64 {
            store.save(key, &sample_entry());
        }
        let total: u64 = std::fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert_eq!(total, entry_len, "only the newest entry may survive a 1-byte cap");
        assert_eq!(store.evictions(), 3, "the three older entries were evicted");
        assert!(store.load(4).is_some(), "the surviving entry must still hit");
        assert!(store.load(1).is_none(), "evicted entries miss and get recomputed");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn generous_cap_evicts_nothing() {
        let store = BaselineStore::open_with_cap(temp_dir("cap-roomy"), Some(1 << 20)).unwrap();
        for key in 1..=4u64 {
            store.save(key, &sample_entry());
        }
        assert_eq!(store.evictions(), 0);
        for key in 1..=4u64 {
            assert!(store.load(key).is_some(), "entry {key} must survive under a roomy cap");
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn key_separates_workload_options_and_machine() {
        let suite = workloads::suite(0.05);
        let (a, b) = (&suite[0], &suite[1]);
        let o2 = CompileOptions::o2();
        let o3 = CompileOptions::o3();
        let m = MachineConfig::default();
        let k = |w, o| BaselineStore::key(w, o, &m);
        assert_ne!(k(a, &o2), k(b, &o2), "different workloads must not collide");
        assert_ne!(k(a, &o2), k(a, &o3), "different options must not collide");
        assert_eq!(k(a, &o2), k(a, &o2), "key is a pure function");
    }
}
