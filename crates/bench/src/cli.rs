//! Declarative command-line parsing for every `lab` subcommand.
//!
//! Each subcommand declares its surface as a [`Registry`] — a list of
//! typed [`FlagDef`]s (name, kind, default, help) on top of the shared
//! base flags — and parsing, validation, `--help` generation and
//! report-argument recording all derive from that one declaration.
//! Every subcommand accepts the same base surface:
//!
//! ```text
//! lab <command> [picks ...] [--quick] [--jobs N] [--<flag> ...]
//! ```
//!
//! * positional *picks* select a subset (a part, a workload list);
//! * `--quick` switches to the reduced workload scale;
//! * `--jobs N` (or the `ADORE_JOBS` environment variable) sets the
//!   engine worker count; the default is the machine's available
//!   parallelism. An invalid count is a hard error, never a silent
//!   fallback;
//! * `--help` prints the generated flag table and exits.
//!
//! Unregistered `--flags` are rejected (typo detection — the old
//! stringly parser silently accepted anything). `--jobs` is
//! deliberately stripped from [`Cli::report_args`]: the JSON report
//! must be byte-identical for any worker count, so the recorded
//! argument list cannot mention it.

use crate::{FULL_SCALE, QUICK_SCALE};

/// The type of value a registered flag carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagKind {
    /// Presence-only (`--quick`).
    Bool,
    /// An unsigned integer (`--rounds=40`).
    UInt,
    /// A free-form string (`--pass=trace_select`).
    Str,
}

/// One declared flag: everything the parser, the validator and the
/// generated `--help` need to know about it.
#[derive(Debug, Clone)]
pub struct FlagDef {
    /// Flag name without the leading `--`.
    pub name: &'static str,
    /// Value type.
    pub kind: FlagKind,
    /// Default rendered in `--help` (`None` for "unset").
    pub default: Option<&'static str>,
    /// One-line help text. Owned so registries can interpolate value
    /// lists that live elsewhere (e.g. `sim::ExecPath::VALUE_LIST`)
    /// instead of hand-copying them into string literals that drift.
    pub help: String,
    /// Whether the flag may repeat (`--disable-pass=a --disable-pass=b`).
    pub repeatable: bool,
}

/// A subcommand's declared command-line surface.
#[derive(Debug, Clone)]
pub struct Registry {
    command: &'static str,
    about: &'static str,
    picks_help: Option<&'static str>,
    flags: Vec<FlagDef>,
}

impl Registry {
    /// A registry for `lab <command>` pre-seeded with the shared base
    /// flags (`--quick`, `--jobs`, `--help`).
    pub fn new(command: &'static str, about: &'static str) -> Registry {
        Registry { command, about, picks_help: None, flags: Vec::new() }
            .flag("quick", "use the reduced workload scale")
            .uint("jobs", None, "engine worker count (env ADORE_JOBS; default: available cores)")
            .flag("help", "print this help and exit")
    }

    /// Documents what the positional picks select.
    pub fn picks(mut self, help: &'static str) -> Registry {
        self.picks_help = Some(help);
        self
    }

    /// Registers a presence-only flag.
    pub fn flag(mut self, name: &'static str, help: impl Into<String>) -> Registry {
        self.flags.push(FlagDef {
            name,
            kind: FlagKind::Bool,
            default: None,
            help: help.into(),
            repeatable: false,
        });
        self
    }

    /// Registers an unsigned-integer flag.
    pub fn uint(
        mut self,
        name: &'static str,
        default: Option<&'static str>,
        help: impl Into<String>,
    ) -> Registry {
        self.flags.push(FlagDef {
            name,
            kind: FlagKind::UInt,
            default,
            help: help.into(),
            repeatable: false,
        });
        self
    }

    /// Registers a string-valued flag.
    pub fn value(
        mut self,
        name: &'static str,
        default: Option<&'static str>,
        help: impl Into<String>,
    ) -> Registry {
        self.flags.push(FlagDef {
            name,
            kind: FlagKind::Str,
            default,
            help: help.into(),
            repeatable: false,
        });
        self
    }

    /// Registers a repeatable string-valued flag.
    pub fn repeated(mut self, name: &'static str, help: impl Into<String>) -> Registry {
        self.flags.push(FlagDef {
            name,
            kind: FlagKind::Str,
            default: None,
            help: help.into(),
            repeatable: true,
        });
        self
    }

    /// The declared flags, base flags included.
    pub fn defs(&self) -> &[FlagDef] {
        &self.flags
    }

    /// The subcommand this registry describes.
    pub fn command(&self) -> &'static str {
        self.command
    }

    /// Generated help text: usage line, pick description, one row per
    /// registered flag with its default.
    pub fn help_text(&self) -> String {
        let mut out = format!("lab {} — {}\n\n", self.command, self.about);
        out.push_str(&format!("usage: lab {} [picks ...] [--flag ...]\n", self.command));
        if let Some(p) = self.picks_help {
            out.push_str(&format!("\npicks: {p}\n"));
        }
        out.push_str("\nflags:\n");
        let rows: Vec<(String, String)> = self
            .flags
            .iter()
            .map(|f| {
                let lhs = match f.kind {
                    FlagKind::Bool => format!("--{}", f.name),
                    FlagKind::UInt => format!("--{} N", f.name),
                    FlagKind::Str => format!("--{}=V", f.name),
                };
                let mut rhs = f.help.to_string();
                if let Some(d) = f.default {
                    rhs.push_str(&format!(" (default: {d})"));
                }
                if f.repeatable {
                    rhs.push_str(" (repeatable)");
                }
                (lhs, rhs)
            })
            .collect();
        let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (lhs, rhs) in rows {
            out.push_str(&format!("  {lhs:<width$}  {rhs}\n"));
        }
        out
    }

    fn def(&self, name: &str) -> Option<&FlagDef> {
        self.flags.iter().find(|f| f.name == name)
    }

    /// Parses `args` (argv with the program and subcommand names
    /// already stripped), handling `--help` (print and exit 0) and
    /// errors (print and exit 2).
    pub fn parse(&self, args: Vec<String>) -> Cli {
        match self.try_parse_from(args, std::env::var("ADORE_JOBS").ok()) {
            Ok(cli) if cli.flag("help") => {
                print!("{}", self.help_text());
                std::process::exit(0);
            }
            Ok(cli) => cli,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `lab {} --help` for the flag table", self.command);
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list and `ADORE_JOBS` value.
    ///
    /// Worker-count resolution: `--jobs` wins over `ADORE_JOBS`, which
    /// wins over the machine's available parallelism. An **empty** (or
    /// whitespace-only) `ADORE_JOBS` is treated as unset — the
    /// documented fallback for `ADORE_JOBS= cmd`-style invocations.
    /// Any other value that is not a positive integer is an error, as
    /// is any invalid `--jobs` argument; nothing falls back silently.
    pub fn try_parse_from(
        &self,
        args: Vec<String>,
        env_jobs: Option<String>,
    ) -> Result<Cli, String> {
        let mut jobs: Option<usize> = None;
        let mut picks = Vec::new();
        let mut values: Vec<(String, Option<String>)> = Vec::new();
        let mut report_args = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let Some(body) = a.strip_prefix("--") else {
                picks.push(a.clone());
                report_args.push(a);
                continue;
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (body.to_string(), None),
            };
            let def = self
                .def(&name)
                .ok_or_else(|| format!("unknown flag --{name} (see `lab {} --help`)", self.command))?;
            let value = match def.kind {
                FlagKind::Bool => {
                    if inline.is_some() {
                        return Err(format!("--{name} does not take a value"));
                    }
                    None
                }
                FlagKind::UInt | FlagKind::Str => {
                    let v = match inline {
                        Some(v) => v,
                        None => it.next().ok_or_else(|| format!("--{name}: missing value"))?,
                    };
                    if def.kind == FlagKind::UInt && name != "jobs" {
                        v.trim().parse::<u64>().map_err(|_| {
                            format!("--{name}: invalid value {v:?} (expected an unsigned integer)")
                        })?;
                    }
                    Some(v)
                }
            };
            if !def.repeatable && values.iter().any(|(n, _)| *n == name) {
                return Err(format!("--{name} given more than once"));
            }
            if name == "jobs" {
                // Validated and resolved here; stripped from the
                // recorded arguments so the report stays byte-identical
                // for any worker count.
                jobs = Some(parse_jobs("--jobs", value.as_deref().unwrap_or(""))?);
                continue;
            }
            match &value {
                Some(v) => report_args.push(format!("--{name}={v}")),
                None => report_args.push(format!("--{name}")),
            }
            values.push((name, value));
        }
        if jobs.is_none() {
            if let Some(env) = env_jobs.filter(|v| !v.trim().is_empty()) {
                jobs = Some(parse_jobs("ADORE_JOBS", &env)?);
            }
        }
        let jobs = jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
        let scale = if values.iter().any(|(n, _)| n == "quick") { QUICK_SCALE } else { FULL_SCALE };
        Ok(Cli { scale, jobs, picks, values, report_args })
    }
}

/// Parsed command line shared by all `lab` subcommands.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale derived from `--quick`.
    pub scale: f64,
    /// Engine worker count (`--jobs` > `ADORE_JOBS` > available cores).
    pub jobs: usize,
    /// Positional (non-flag) arguments, in order.
    pub picks: Vec<String>,
    /// Parsed flags in argument order: `(name, value)` with the value
    /// `None` for presence-only flags. `--jobs` never appears here.
    pub values: Vec<(String, Option<String>)>,
    /// Arguments as recorded in the report: everything except `--jobs`,
    /// which must not influence report bytes. Valued flags normalize to
    /// `--name=value` regardless of which spelling was typed.
    pub report_args: Vec<String>,
}

/// Strips an optional leading `--` so accessors take either spelling.
fn norm(name: &str) -> &str {
    name.strip_prefix("--").unwrap_or(name)
}

impl Cli {
    /// A `Cli` with explicit scale and jobs and nothing else — the
    /// entry point for tests that drive [`crate::ExperimentSpec`]
    /// directly without a registry.
    pub fn fixed(scale: f64, jobs: usize) -> Cli {
        Cli { scale, jobs, picks: Vec::new(), values: Vec::new(), report_args: Vec::new() }
    }

    /// True when `--<name>` was passed (with or without the dashes).
    pub fn flag(&self, name: &str) -> bool {
        let name = norm(name);
        self.values.iter().any(|(n, _)| n == name)
    }

    /// First positional argument, if any.
    pub fn pick(&self) -> Option<&str> {
        self.picks.first().map(String::as_str)
    }

    /// Values of every `--<name>=VALUE` occurrence, in order.
    pub fn flag_values<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a str> + 'a {
        let name = norm(name).to_string();
        self.values
            .iter()
            .filter_map(move |(n, v)| if *n == name { v.as_deref() } else { None })
    }

    /// Value of the first `--<name>=VALUE` occurrence, if any.
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        self.flag_values(name).next()
    }

    /// Value of `--<name>` parsed as an unsigned integer (validated at
    /// parse time for registered `UInt` flags).
    pub fn flag_uint(&self, name: &str) -> Option<u64> {
        self.flag_value(name).and_then(|v| v.trim().parse().ok())
    }
}

/// Parses a worker count that has already been determined to be
/// user-supplied: only a positive integer is acceptable.
fn parse_jobs(source: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("{source}: worker count must be at least 1, got {value:?}")),
        Err(_) => {
            Err(format!("{source}: invalid worker count {value:?} (expected a positive integer)"))
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn reg() -> Registry {
        Registry::new("test", "unit surface")
            .flag("csv", "emit CSV")
            .value("pass", None, "run one pass")
            .repeated("disable-pass", "drop a pass")
            .uint("rounds", Some("40"), "round count")
    }

    fn parse(args: &[&str]) -> Cli {
        reg().try_parse_from(v(args), None).expect("valid args")
    }

    #[test]
    fn jobs_is_parsed_and_stripped_from_report_args() {
        let c = parse(&["a", "--quick", "--jobs", "4"]);
        assert_eq!(c.jobs, 4);
        assert_eq!(c.scale, QUICK_SCALE);
        assert_eq!(c.picks, vec!["a"]);
        assert_eq!(c.report_args, v(&["a", "--quick"]));

        let c = parse(&["--jobs=2", "mcf"]);
        assert_eq!(c.jobs, 2);
        assert_eq!(c.report_args, v(&["mcf"]));
    }

    #[test]
    fn flag_values_parse_assignments_and_two_token_forms() {
        let c = parse(&["--disable-pass=phase_gate", "--disable-pass", "reopt_gate", "--pass=trace_select"]);
        let d: Vec<&str> = c.flag_values("disable-pass").collect();
        assert_eq!(d, vec!["phase_gate", "reopt_gate"]);
        assert_eq!(c.flag_value("pass"), Some("trace_select"));
        assert_eq!(c.flag_value("--pass"), Some("trace_select"), "accessors take either spelling");
        assert_eq!(c.flag_value("missing"), None);
        // report_args normalizes to --name=value.
        assert!(c.report_args.contains(&"--disable-pass=reopt_gate".to_string()));
    }

    #[test]
    fn unknown_and_malformed_flags_are_rejected() {
        assert!(reg().try_parse_from(v(&["--tyop"]), None).unwrap_err().contains("unknown flag"));
        assert!(reg().try_parse_from(v(&["--csv=1"]), None).unwrap_err().contains("does not take"));
        assert!(reg().try_parse_from(v(&["--pass"]), None).unwrap_err().contains("missing value"));
        assert!(reg().try_parse_from(v(&["--rounds=abc"]), None).unwrap_err().contains("unsigned"));
        assert!(reg()
            .try_parse_from(v(&["--pass=a", "--pass=b"]), None)
            .unwrap_err()
            .contains("more than once"));
    }

    #[test]
    fn invalid_jobs_arguments_are_hard_errors() {
        // Before this was typed, every one of these silently fell back
        // to the machine's core count.
        for bad in [
            v(&["--jobs", "0"]),
            v(&["--jobs=0"]),
            v(&["--jobs", "abc"]),
            v(&["--jobs=abc"]),
            v(&["--jobs="]),
            v(&["--jobs", "-2"]),
            v(&["--jobs"]), // missing value
        ] {
            let err = reg()
                .try_parse_from(bad.clone(), None)
                .expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.starts_with("--jobs"), "error must name the flag: {err}");
        }
    }

    #[test]
    fn adore_jobs_env_is_validated_with_empty_meaning_unset() {
        // A set-but-invalid ADORE_JOBS is a hard error...
        for bad in ["0", "abc", "-1", "1.5"] {
            let err = reg()
                .try_parse_from(v(&[]), Some(bad.to_string()))
                .expect_err(&format!("ADORE_JOBS={bad:?} must be rejected"));
            assert!(err.starts_with("ADORE_JOBS"), "error must name the variable: {err}");
        }
        // ...but empty/whitespace means unset (the `ADORE_JOBS= cmd`
        // idiom), falling back to available parallelism.
        for unset in ["", "   "] {
            let c = reg()
                .try_parse_from(v(&[]), Some(unset.to_string()))
                .expect("empty env is unset");
            assert!(c.jobs >= 1);
        }
        // A valid value is used, and --jobs still wins over it.
        let c = reg().try_parse_from(v(&[]), Some("3".to_string())).unwrap();
        assert_eq!(c.jobs, 3);
        let c = reg().try_parse_from(v(&["--jobs", "2"]), Some("3".to_string())).unwrap();
        assert_eq!(c.jobs, 2);
    }

    #[test]
    fn defaults_without_flags() {
        let c = parse(&[]);
        assert_eq!(c.scale, FULL_SCALE);
        assert!(c.jobs >= 1);
        assert!(c.pick().is_none());
        assert!(!c.flag("--csv"));
    }

    #[test]
    fn help_text_lists_every_flag_with_defaults() {
        let h = reg().help_text();
        for f in reg().defs() {
            assert!(h.contains(&format!("--{}", f.name)), "help must mention --{}: \n{h}", f.name);
        }
        assert!(h.contains("(default: 40)"), "uint default rendered: \n{h}");
        assert!(h.contains("(repeatable)"), "repeatable marker rendered: \n{h}");
    }

    /// Every registered flag round-trips through the parser: feed a
    /// synthesized occurrence, read it back through the accessors, and
    /// find it in `report_args` (except `jobs`/`help`, which are
    /// stripped or terminal by design). The `lab` registry test runs
    /// this same check over every real subcommand surface.
    #[test]
    fn every_registered_flag_round_trips() {
        assert_registry_round_trips(&reg());
    }

    /// Shared with the `lab` module's per-subcommand test.
    pub(crate) fn assert_registry_round_trips(r: &Registry) {
        for f in r.defs() {
            if f.name == "help" {
                continue;
            }
            let (token, want): (String, Option<&str>) = match f.kind {
                FlagKind::Bool => (format!("--{}", f.name), None),
                FlagKind::UInt => (format!("--{}=7", f.name), Some("7")),
                FlagKind::Str => (format!("--{}=probe", f.name), Some("probe")),
            };
            let c = r
                .try_parse_from(vec![token.clone()], None)
                .unwrap_or_else(|e| panic!("--{} failed to parse its own synthesis: {e}", f.name));
            if f.name == "jobs" {
                assert_eq!(c.jobs, 7, "--jobs value must be honored");
                assert!(c.report_args.is_empty(), "--jobs must be stripped from report args");
                continue;
            }
            assert!(c.flag(f.name), "--{} must register as present", f.name);
            assert_eq!(c.flag_value(f.name), want, "--{} value must round-trip", f.name);
            assert_eq!(
                c.report_args,
                vec![token],
                "--{} must be recorded in normalized form",
                f.name
            );
        }
    }
}
