//! Shared command-line parsing for every experiment binary.
//!
//! All nine binaries accept the same surface:
//!
//! ```text
//! <bin> [picks ...] [--quick] [--jobs N] [--<flag> ...]
//! ```
//!
//! * positional *picks* select a subset (a part, a workload list);
//! * `--quick` switches to the reduced workload scale;
//! * `--jobs N` (or the `ADORE_JOBS` environment variable) sets the
//!   engine worker count; the default is the machine's available
//!   parallelism.
//!
//! `--jobs` is deliberately stripped from [`Cli::report_args`]: the JSON
//! report must be byte-identical for any worker count, so the recorded
//! argument list cannot mention it.

use crate::{FULL_SCALE, QUICK_SCALE};

/// Parsed command line shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale derived from `--quick`.
    pub scale: f64,
    /// Engine worker count (`--jobs` > `ADORE_JOBS` > available cores).
    pub jobs: usize,
    /// Positional (non-flag) arguments, in order.
    pub picks: Vec<String>,
    /// `--`-prefixed flags (minus `--jobs`), in order.
    pub flags: Vec<String>,
    /// Arguments as recorded in the report: everything except `--jobs`,
    /// which must not influence report bytes.
    pub report_args: Vec<String>,
}

impl Cli {
    /// True when `--<name>` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// First positional argument, if any.
    pub fn pick(&self) -> Option<&str> {
        self.picks.first().map(String::as_str)
    }

    /// Values of every `--<name>=VALUE` flag, in order (e.g.
    /// `flag_values("disable-pass")` for `--disable-pass=phase_gate`).
    pub fn flag_values<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a str> + 'a {
        let prefix = format!("--{name}=");
        self.flags.iter().filter_map(move |f| f.strip_prefix(&prefix))
    }

    /// Value of the first `--<name>=VALUE` flag, if any.
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        self.flag_values(name).next()
    }
}

/// Parses the process arguments (skipping argv[0]).
pub fn parse() -> Cli {
    parse_from(std::env::args().skip(1).collect())
}

/// Parses an explicit argument list (used by tests).
pub fn parse_from(args: Vec<String>) -> Cli {
    let mut jobs: Option<usize> = None;
    let mut picks = Vec::new();
    let mut flags = Vec::new();
    let mut report_args = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = it.next().and_then(|n| n.parse().ok()).or(jobs);
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            jobs = n.parse().ok().or(jobs);
        } else if a.starts_with("--") {
            flags.push(a.clone());
            report_args.push(a);
        } else {
            picks.push(a.clone());
            report_args.push(a);
        }
    }
    let jobs = jobs
        .or_else(|| {
            std::env::var("ADORE_JOBS")
                .ok()
                .and_then(|n| n.parse().ok())
        })
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let scale = if flags.iter().any(|f| f == "--quick") {
        QUICK_SCALE
    } else {
        FULL_SCALE
    };
    Cli {
        scale,
        jobs,
        picks,
        flags,
        report_args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jobs_is_parsed_and_stripped_from_report_args() {
        let c = parse_from(v(&["a", "--quick", "--jobs", "4"]));
        assert_eq!(c.jobs, 4);
        assert_eq!(c.scale, QUICK_SCALE);
        assert_eq!(c.picks, vec!["a"]);
        assert_eq!(c.report_args, v(&["a", "--quick"]));

        let c = parse_from(v(&["--jobs=2", "mcf"]));
        assert_eq!(c.jobs, 2);
        assert_eq!(c.report_args, v(&["mcf"]));
    }

    #[test]
    fn flag_values_parse_assignments() {
        let c = parse_from(v(&["--disable-pass=phase_gate", "--disable-pass=reopt_gate", "--pass=trace_select"]));
        let d: Vec<&str> = c.flag_values("disable-pass").collect();
        assert_eq!(d, vec!["phase_gate", "reopt_gate"]);
        assert_eq!(c.flag_value("pass"), Some("trace_select"));
        assert_eq!(c.flag_value("missing"), None);
    }

    #[test]
    fn defaults_without_flags() {
        let c = parse_from(v(&[]));
        assert_eq!(c.scale, FULL_SCALE);
        assert!(c.jobs >= 1);
        assert!(c.pick().is_none());
        assert!(!c.flag("--csv"));
    }
}
