//! Shared command-line parsing for every experiment binary.
//!
//! All nine binaries accept the same surface:
//!
//! ```text
//! <bin> [picks ...] [--quick] [--jobs N] [--<flag> ...]
//! ```
//!
//! * positional *picks* select a subset (a part, a workload list);
//! * `--quick` switches to the reduced workload scale;
//! * `--jobs N` (or the `ADORE_JOBS` environment variable) sets the
//!   engine worker count; the default is the machine's available
//!   parallelism.
//!
//! `--jobs` is deliberately stripped from [`Cli::report_args`]: the JSON
//! report must be byte-identical for any worker count, so the recorded
//! argument list cannot mention it.

use crate::{FULL_SCALE, QUICK_SCALE};

/// Parsed command line shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Workload scale derived from `--quick`.
    pub scale: f64,
    /// Engine worker count (`--jobs` > `ADORE_JOBS` > available cores).
    pub jobs: usize,
    /// Positional (non-flag) arguments, in order.
    pub picks: Vec<String>,
    /// `--`-prefixed flags (minus `--jobs`), in order.
    pub flags: Vec<String>,
    /// Arguments as recorded in the report: everything except `--jobs`,
    /// which must not influence report bytes.
    pub report_args: Vec<String>,
}

impl Cli {
    /// True when `--<name>` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// First positional argument, if any.
    pub fn pick(&self) -> Option<&str> {
        self.picks.first().map(String::as_str)
    }

    /// Values of every `--<name>=VALUE` flag, in order (e.g.
    /// `flag_values("disable-pass")` for `--disable-pass=phase_gate`).
    pub fn flag_values<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a str> + 'a {
        let prefix = format!("--{name}=");
        self.flags.iter().filter_map(move |f| f.strip_prefix(&prefix))
    }

    /// Value of the first `--<name>=VALUE` flag, if any.
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        self.flag_values(name).next()
    }
}

/// Parses the process arguments (skipping argv[0]). An invalid worker
/// count — `--jobs 0`, `--jobs=abc`, a missing value, or a non-empty
/// `ADORE_JOBS` that is not a positive integer — prints a clear error
/// and exits with status 2 instead of silently falling back.
pub fn parse() -> Cli {
    match try_parse_from(std::env::args().skip(1).collect(), std::env::var("ADORE_JOBS").ok()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Parses an explicit argument list with the process environment's
/// `ADORE_JOBS` (used by tests that only exercise valid inputs).
///
/// # Panics
///
/// Panics on an invalid worker count; use [`try_parse_from`] to handle
/// the error.
pub fn parse_from(args: Vec<String>) -> Cli {
    try_parse_from(args, std::env::var("ADORE_JOBS").ok())
        .unwrap_or_else(|e| panic!("parse_from: {e}"))
}

/// Parses a worker count that has already been determined to be
/// user-supplied: only a positive integer is acceptable.
fn parse_jobs(source: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!("{source}: worker count must be at least 1, got {value:?}")),
        Err(_) => Err(format!("{source}: invalid worker count {value:?} (expected a positive integer)")),
    }
}

/// Parses an explicit argument list and `ADORE_JOBS` value.
///
/// Worker-count resolution: `--jobs` wins over `ADORE_JOBS`, which
/// wins over the machine's available parallelism. An **empty** (or
/// whitespace-only) `ADORE_JOBS` is treated as unset — the documented
/// fallback for `ADORE_JOBS= cmd`-style invocations. Any other value
/// that is not a positive integer is an error, as is any invalid
/// `--jobs` argument; nothing falls back silently.
pub fn try_parse_from(args: Vec<String>, env_jobs: Option<String>) -> Result<Cli, String> {
    let mut jobs: Option<usize> = None;
    let mut picks = Vec::new();
    let mut flags = Vec::new();
    let mut report_args = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let value = it.next().ok_or("--jobs: missing worker count")?;
            jobs = Some(parse_jobs("--jobs", &value)?);
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs("--jobs", n)?);
        } else if a.starts_with("--") {
            flags.push(a.clone());
            report_args.push(a);
        } else {
            picks.push(a.clone());
            report_args.push(a);
        }
    }
    if jobs.is_none() {
        if let Some(env) = env_jobs.filter(|v| !v.trim().is_empty()) {
            jobs = Some(parse_jobs("ADORE_JOBS", &env)?);
        }
    }
    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let scale = if flags.iter().any(|f| f == "--quick") {
        QUICK_SCALE
    } else {
        FULL_SCALE
    };
    Ok(Cli {
        scale,
        jobs,
        picks,
        flags,
        report_args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jobs_is_parsed_and_stripped_from_report_args() {
        let c = parse_from(v(&["a", "--quick", "--jobs", "4"]));
        assert_eq!(c.jobs, 4);
        assert_eq!(c.scale, QUICK_SCALE);
        assert_eq!(c.picks, vec!["a"]);
        assert_eq!(c.report_args, v(&["a", "--quick"]));

        let c = parse_from(v(&["--jobs=2", "mcf"]));
        assert_eq!(c.jobs, 2);
        assert_eq!(c.report_args, v(&["mcf"]));
    }

    #[test]
    fn flag_values_parse_assignments() {
        let c = parse_from(v(&["--disable-pass=phase_gate", "--disable-pass=reopt_gate", "--pass=trace_select"]));
        let d: Vec<&str> = c.flag_values("disable-pass").collect();
        assert_eq!(d, vec!["phase_gate", "reopt_gate"]);
        assert_eq!(c.flag_value("pass"), Some("trace_select"));
        assert_eq!(c.flag_value("missing"), None);
    }

    #[test]
    fn invalid_jobs_arguments_are_hard_errors() {
        // Before this was typed, every one of these silently fell back
        // to the machine's core count.
        for bad in [
            v(&["--jobs", "0"]),
            v(&["--jobs=0"]),
            v(&["--jobs", "abc"]),
            v(&["--jobs=abc"]),
            v(&["--jobs="]),
            v(&["--jobs", "-2"]),
            v(&["--jobs"]), // missing value
        ] {
            let err = try_parse_from(bad.clone(), None)
                .expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.starts_with("--jobs"), "error must name the flag: {err}");
        }
    }

    #[test]
    fn adore_jobs_env_is_validated_with_empty_meaning_unset() {
        // A set-but-invalid ADORE_JOBS is a hard error...
        for bad in ["0", "abc", "-1", "1.5"] {
            let err = try_parse_from(v(&[]), Some(bad.to_string()))
                .expect_err(&format!("ADORE_JOBS={bad:?} must be rejected"));
            assert!(err.starts_with("ADORE_JOBS"), "error must name the variable: {err}");
        }
        // ...but empty/whitespace means unset (the `ADORE_JOBS= cmd`
        // idiom), falling back to available parallelism.
        for unset in ["", "   "] {
            let c = try_parse_from(v(&[]), Some(unset.to_string())).expect("empty env is unset");
            assert!(c.jobs >= 1);
        }
        // A valid value is used, and --jobs still wins over it.
        let c = try_parse_from(v(&[]), Some("3".to_string())).unwrap();
        assert_eq!(c.jobs, 3);
        let c = try_parse_from(v(&["--jobs", "2"]), Some("3".to_string())).unwrap();
        assert_eq!(c.jobs, 2);
    }

    #[test]
    fn defaults_without_flags() {
        let c = parse_from(v(&[]));
        assert_eq!(c.scale, FULL_SCALE);
        assert!(c.jobs >= 1);
        assert!(c.pick().is_none());
        assert!(!c.flag("--csv"));
    }
}
