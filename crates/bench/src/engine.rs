//! The parallel experiment engine.
//!
//! Every figure and table of the paper is a grid of *cells*: one
//! (workload × [`CompileOptions`] × [`AdoreConfig`]) point measured in
//! a particular way. An [`ExperimentSpec`] declares the grid — sections
//! of cells plus which report columns each cell emits — and
//! [`ExperimentSpec::run`] executes it on the work-stealing shard pool
//! from [`obs::pool`]:
//!
//! * **work distribution** — cells are fed through per-shard deques
//!   ([`obs::pool::service_scope`]); an idle worker steals from the
//!   back of a busy shard, so one slow cell cannot strand a backlog;
//! * **determinism** — each cell's sampling seed derives from its
//!   identity (tool/section/workload), never from thread or timing
//!   state, and rows are emitted in strict submission order by the
//!   pool's reorder buffer, so the merged report is byte-identical for
//!   any `--jobs` value (the envelope timestamp and the volatile
//!   `engine.scheduling` / `engine.baseline_store` observability
//!   subsections are the exceptions);
//! * **streaming** — [`ExperimentSpec::run_streaming`] hands each row
//!   to a sink the moment it and all its predecessors are done, so
//!   partial results survive interruption (`lab serve` pipes them out
//!   as JSON lines);
//! * **baseline cache** — the no-prefetch run of each
//!   (workload, options, machine) triple is memoized behind a per-key
//!   [`OnceLock`], so a baseline shared by many cells (every ablation
//!   variant, the overhead and comparison measures) executes once; a
//!   persistent content-addressed store ([`crate::store`]) extends the
//!   memo across processes, skipping the simulation (but not the cheap
//!   recompile) on a disk hit;
//! * **failure isolation** — a cell that fails to compile produces an
//!   `error` row and the rest of the grid completes (previously one bad
//!   workload panicked the whole binary);
//! * **observability** — per-cell timing goes to stderr through
//!   [`obs::Progress`] while the deterministic cell labels and cache
//!   statistics are embedded in the report's `engine` section,
//!   alongside the volatile scheduling and store counters.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use adore::{AdoreConfig, PhaseDecision, PhaseDetector};
use compiler::{compile, delinquent_loop_filter, CompileOptions, CompiledBinary};
use obs::{Json, Progress, Report, ToJson};
use sim::{Counters, MachineConfig, SamplingConfig};
use workloads::Workload;

use crate::cli::Cli;
use crate::store::{resolve_default_dir, BaselineStore, StoredBaseline};
use crate::{experiment_report_with, machine_stats_json, speedup_pct};

// ---------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------

/// How a cell is measured — which runs it performs and which row
/// columns it emits.
#[derive(Debug, Clone)]
pub enum Measure {
    /// One plain (unmonitored) run of the cell's options.
    Plain,
    /// Plain run of the cell's options versus a plain run of `other`
    /// (Fig. 10: restricted vs original `O2`).
    CompareCompile(Box<CompileOptions>),
    /// Cached baseline versus a full ADORE run (Fig. 7, ablation).
    Comparison,
    /// Like [`Measure::Comparison`], plus the per-pass overhead ledger,
    /// the structured event stream, and the sampling-handler overhead
    /// split out from the pipeline's own charges (pass-ablation cells).
    PipelineComparison,
    /// Cached baseline versus sampling-only ADORE — prefetch insertion
    /// forced off (Fig. 11).
    Overhead,
    /// ADORE run only; stream/phase statistics (Table 2).
    Streams,
    /// Per-window CPI / miss-rate series with and without runtime
    /// prefetching (Fig. 8/9).
    Timeline,
    /// Profile-guided static prefetching: train on the unprefetched
    /// binary, filter `O3`'s prefetch set to the delinquent loops
    /// covering `coverage` of sampled latency (Table 1).
    GuidedPrefetch {
        /// Fraction of sampled miss latency the kept loops must cover.
        coverage: f64,
    },
    /// Cycle-accounting breakdown before and after ADORE (§2.1).
    Breakdown,
    /// Adaptive-policy evaluation: cached baseline, a static-policy
    /// ADORE run, and an adaptive-controller ADORE run (the measure
    /// enables `policy` itself), with the per-phase decision log
    /// (`lab policy`).
    Policy,
    /// Phase-detection / optimization diagnostic trace.
    Diag {
        /// Also collect an aggregate miss profile.
        profile: bool,
        /// Also run ADORE and record its decisions.
        adore: bool,
    },
}

/// One grid cell: a workload measured under one configuration.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload name (must resolve in the suite or the spec's extra
    /// workloads).
    pub workload: &'static str,
    /// Compilation options of the primary binary.
    pub opts: CompileOptions,
    /// ADORE configuration (sampling seed is overwritten per cell).
    pub adore: AdoreConfig,
    /// Machine configuration for every run of this cell.
    pub machine: MachineConfig,
    /// What to measure.
    pub measure: Measure,
    /// Extra columns merged into the finished row (paper numbers etc.).
    pub extra: Json,
}

impl Cell {
    /// Adds an extra column to the cell's row.
    pub fn extra(&mut self, key: &str, value: impl ToJson) {
        self.extra.set(key, value);
    }
}

struct Section {
    key: String,
    cells: Vec<Cell>,
}

/// A declarative experiment: the grid plus shared configuration.
///
/// The paper-wide ADORE and machine configurations live *on the spec*
/// ([`ExperimentSpec::paper_adore_config`] /
/// [`ExperimentSpec::paper_machine_config`] seed them;
/// [`ExperimentSpec::tune_adore`] / [`ExperimentSpec::tune_machine`]
/// override them), so a config tweak in one binary cannot silently
/// diverge from the others.
pub struct ExperimentSpec {
    tool: String,
    scale: f64,
    jobs: usize,
    report_args: Vec<String>,
    adore: AdoreConfig,
    machine: MachineConfig,
    sections: Vec<Section>,
    extra_workloads: Vec<Workload>,
    baseline: BaselineChoice,
}

/// Where persistent baselines live for one run.
enum BaselineChoice {
    /// Environment-resolved ([`resolve_default_dir`]).
    Default,
    /// No on-disk store (hermetic tests, `--no-baseline-store`).
    Disabled,
    /// An explicit directory.
    Dir(PathBuf),
}

impl ExperimentSpec {
    /// The ADORE configuration used by all experiments: paper-like
    /// ratios (sampling interval ≥ the equivalent of 100k cycles at the
    /// paper's machine scale, scaled to our shorter runs — see
    /// DESIGN.md).
    pub fn paper_adore_config() -> AdoreConfig {
        let mut c = AdoreConfig::enabled();
        c.sampling = SamplingConfig {
            interval_cycles: 2_500,
            buffer_capacity: 500,
            per_sample_cost: 20,
            jitter: 0.3,
            ..Default::default()
        };
        c
    }

    /// Machine configuration used by all experiments (Itanium 2
    /// defaults).
    pub fn paper_machine_config() -> MachineConfig {
        MachineConfig::default()
    }

    /// A spec seeded with the paper configurations and the shared CLI
    /// surface (scale, jobs, recorded arguments).
    pub fn paper_defaults(tool: &str, cli: &Cli) -> ExperimentSpec {
        ExperimentSpec {
            tool: tool.to_string(),
            scale: cli.scale,
            jobs: cli.jobs,
            report_args: cli.report_args.clone(),
            adore: ExperimentSpec::paper_adore_config(),
            machine: ExperimentSpec::paper_machine_config(),
            sections: Vec::new(),
            extra_workloads: Vec::new(),
            baseline: BaselineChoice::Default,
        }
    }

    /// The spec's ADORE configuration (cells inherit it).
    pub fn adore_config(&self) -> &AdoreConfig {
        &self.adore
    }

    /// The spec's machine configuration (cells inherit it).
    pub fn machine_config(&self) -> &MachineConfig {
        &self.machine
    }

    /// Overrides the spec-wide ADORE configuration for all *subsequent*
    /// sections.
    pub fn tune_adore(mut self, f: impl FnOnce(&mut AdoreConfig)) -> ExperimentSpec {
        f(&mut self.adore);
        self
    }

    /// Overrides the spec-wide machine configuration for all
    /// *subsequent* sections.
    pub fn tune_machine(mut self, f: impl FnOnce(&mut MachineConfig)) -> ExperimentSpec {
        f(&mut self.machine);
        self
    }

    /// Overrides the worker count (tests pin this; binaries get it from
    /// the CLI).
    pub fn jobs(mut self, n: usize) -> ExperimentSpec {
        self.jobs = n.max(1);
        self
    }

    /// Adds a workload that is not part of the standard suite.
    pub fn with_workload(mut self, w: Workload) -> ExperimentSpec {
        self.extra_workloads.push(w);
        self
    }

    /// Overrides where persistent baselines live: `Some(dir)` uses
    /// `dir`, `None` disables the on-disk store entirely (hermetic
    /// tests). Without an override the store resolves from the
    /// environment — see [`resolve_default_dir`].
    pub fn baseline_dir(mut self, dir: Option<PathBuf>) -> ExperimentSpec {
        self.baseline = match dir {
            Some(d) => BaselineChoice::Dir(d),
            None => BaselineChoice::Disabled,
        };
        self
    }

    /// Adds a section: one cell per workload, all sharing `opts` and
    /// `measure`, emitted under report key `key` in workload order.
    pub fn section(
        self,
        key: &str,
        benches: &[&'static str],
        opts: CompileOptions,
        measure: Measure,
    ) -> ExperimentSpec {
        self.section_with(key, benches, opts, measure, |_| {})
    }

    /// Like [`ExperimentSpec::section`], with a per-cell tweak applied
    /// at spec-build time (config variants, paper-number columns).
    pub fn section_with(
        mut self,
        key: &str,
        benches: &[&'static str],
        opts: CompileOptions,
        measure: Measure,
        tweak: impl Fn(&mut Cell),
    ) -> ExperimentSpec {
        let cells = benches
            .iter()
            .map(|&workload| {
                let mut cell = Cell {
                    workload,
                    opts: opts.clone(),
                    adore: self.adore.clone(),
                    machine: self.machine.clone(),
                    measure: measure.clone(),
                    extra: Json::object(),
                };
                tweak(&mut cell);
                cell
            })
            .collect();
        self.sections.push(Section {
            key: key.to_string(),
            cells,
        });
        self
    }

    /// Executes the grid and returns the merged result.
    pub fn run(self) -> EngineResult {
        self.run_streaming(|_, _, _| {})
    }

    /// Executes the grid, handing each finished row to `on_row` as
    /// `(cell index, section key, row)` the moment it and all earlier
    /// cells are complete — strict submission order, incrementally, so
    /// a consumer sees a stable prefix even if the process dies
    /// mid-grid. `on_row` runs on the calling thread.
    pub fn run_streaming(self, mut on_row: impl FnMut(usize, &str, &Json)) -> EngineResult {
        let mut suite = workloads::all(self.scale);
        suite.extend(self.extra_workloads.iter().cloned());

        // Flatten the grid; fix each cell's sampling seed from its
        // identity so results do not depend on scheduling.
        let mut cells: Vec<(usize, Cell)> = Vec::new();
        for (si, section) in self.sections.iter().enumerate() {
            for cell in &section.cells {
                // Every engine measure reports cycle counts (speedups,
                // overheads, CPI timelines); a tier with unmodeled
                // timing would silently corrupt them, so the grid
                // refuses to run on one. Tier-correctness coverage
                // lives in the differential oracle instead.
                assert!(
                    cell.machine.exec_path.is_cycle_exact(),
                    "{}/{}: experiment cells need a cycle-exact execution path, got {}",
                    section.key,
                    cell.workload,
                    cell.machine.exec_path
                );
                let mut cell = cell.clone();
                cell.adore.sampling.seed = cell_seed(&[&self.tool, &section.key, cell.workload]);
                cells.push((si, cell));
            }
        }

        let n = cells.len();
        let progress = Progress::new(&self.tool, n);
        let store = self.open_store();
        let cache = BaselineCache::with_store(store.clone());
        let jobs = self.jobs.clamp(1, n.max(1));

        let mut ordered: Vec<Json> = Vec::with_capacity(n);
        let (cells_ref, suite_ref, cache_ref) = (&cells, &suite, &cache);
        let (sections_ref, progress_ref) = (&self.sections, &progress);
        let (_, pool_stats) = obs::pool::service_scope(
            jobs,
            |_| (),
            |_: &mut (), i: usize, (): ()| {
                let (si, cell) = &cells_ref[i];
                let t = Instant::now();
                let row = match run_cell(cell, suite_ref, cache_ref) {
                    Ok(row) => row,
                    Err(e) => Json::object()
                        .with("bench", cell.workload)
                        .with("error", e.to_string()),
                };
                let row = merge_extra(row, &cell.extra);
                let label = format!("{}/{}", sections_ref[*si].key, cell.workload);
                progress_ref.item_done(i, &label, t.elapsed());
                row
            },
            |sub| {
                for _ in 0..n {
                    sub.push(());
                }
            },
            |i, row| {
                let (si, _) = &cells_ref[i];
                on_row(i, &sections_ref[*si].key, &row);
                ordered.push(row);
            },
        );

        // Ordered merge: rows in spec order, untouched by scheduling.
        let mut rows: Vec<Vec<Json>> = self.sections.iter().map(|_| Vec::new()).collect();
        let mut failed = 0usize;
        for ((si, _), row) in cells.iter().zip(ordered) {
            if row.get("error").is_some() {
                failed += 1;
            }
            rows[*si].push(row);
        }

        let (lookups, computes) = cache.stats();
        let mut report = experiment_report_with(
            &self.tool,
            &self.report_args,
            self.scale,
            &self.adore.sampling,
        );
        let mut sections_out = Vec::new();
        for (section, rows) in self.sections.iter().zip(rows) {
            report.set(&section.key, rows.as_slice());
            sections_out.push((section.key.clone(), rows));
        }
        let (store_hits, store_misses) = store.as_ref().map(|s| s.stats()).unwrap_or((0, 0));
        // Deterministic keys first (byte-identical to schema v1), then
        // the volatile observability subsections new in schema v2:
        // `baseline_store` depends on what prior processes left on
        // disk, `scheduling` on thread timing. Jobs-invariance diffs
        // canonicalize both away.
        let store_json = match &store {
            Some(s) => Json::object()
                .with("enabled", true)
                .with("dir", s.dir().display().to_string())
                .with("hits", store_hits)
                .with("misses", store_misses),
            None => Json::object().with("enabled", false),
        };
        report.set(
            "engine",
            Json::object()
                .with("cells", n)
                .with("cell_labels", progress.labels())
                .with("errors", failed)
                .with(
                    "baseline_cache",
                    Json::object()
                        .with("lookups", lookups)
                        .with("computes", computes)
                        .with("hits", lookups - computes),
                )
                .with("baseline_store", store_json)
                .with(
                    "scheduling",
                    Json::object()
                        .with("shards", pool_stats.shards)
                        .with("stolen_tasks", pool_stats.stolen)
                        .with("queue_depth_hwm", pool_stats.queue_hwm),
                ),
        );

        let wall = progress.wall();
        eprintln!(
            "[{}] {} cells in {}ms (jobs={}, baseline cache {} hits / {} lookups, store {} hits / {} misses)",
            self.tool,
            n,
            wall.as_millis(),
            jobs,
            lookups - computes,
            lookups,
            store_hits,
            store_misses
        );
        EngineResult {
            report,
            sections: sections_out,
            wall,
            failed,
            store_hits,
            store_misses,
        }
    }

    /// Opens the persistent baseline store per the spec's
    /// [`BaselineChoice`]; open failures disable the store (with a
    /// stderr note) rather than failing the run.
    fn open_store(&self) -> Option<Arc<BaselineStore>> {
        let dir = match &self.baseline {
            BaselineChoice::Disabled => return None,
            BaselineChoice::Dir(d) => d.clone(),
            BaselineChoice::Default => resolve_default_dir()?,
        };
        match BaselineStore::open(dir) {
            Ok(s) => Some(Arc::new(s)),
            Err(e) => {
                eprintln!("[{}] baseline store disabled: {e}", self.tool);
                None
            }
        }
    }
}

/// The merged output of a grid run.
pub struct EngineResult {
    report: Report,
    sections: Vec<(String, Vec<Json>)>,
    /// Wall-clock duration of the grid.
    pub wall: Duration,
    /// Number of cells that produced an `error` row.
    pub failed: usize,
    /// Baselines served from the persistent store (0 when disabled).
    pub store_hits: usize,
    /// Baselines the persistent store had to recompute (0 when
    /// disabled).
    pub store_misses: usize,
}

impl EngineResult {
    /// Rows of a section, in spec order (empty for unknown keys).
    pub fn rows(&self, key: &str) -> &[Json] {
        self.sections
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, rows)| rows.as_slice())
            .unwrap_or(&[])
    }

    /// The assembled report.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Writes the report to `results/<tool>.json`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        self.report.save()
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a cell failed. The grid keeps running; the failed cell's row
/// carries the message.
#[derive(Debug, Clone)]
pub enum CellError {
    /// The workload name resolves neither in the suite nor in the
    /// spec's extra workloads.
    UnknownWorkload(String),
    /// Compilation failed (`run_plain`'s old panic path, made a value).
    Compile {
        /// Workload whose kernel failed to compile.
        workload: String,
        /// Rendered compiler error.
        message: String,
    },
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::UnknownWorkload(w) => write!(f, "unknown workload `{w}`"),
            CellError::Compile { workload, message } => {
                write!(f, "compiling {workload}: {message}")
            }
        }
    }
}

impl std::error::Error for CellError {}

/// Compiles a workload, turning failure into a [`CellError`] instead of
/// a panic, so one bad cell fails its row rather than the whole grid.
pub fn try_build(w: &Workload, opts: &CompileOptions) -> Result<CompiledBinary, CellError> {
    compile(&w.kernel, opts).map_err(|e| CellError::Compile {
        workload: w.name.to_string(),
        message: e.to_string(),
    })
}

// ---------------------------------------------------------------------
// Baseline cache
// ---------------------------------------------------------------------

/// A memoized plain (no-prefetch, unmonitored) run.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The compiled binary (reused by the monitored run of the cell).
    pub bin: CompiledBinary,
    /// Total cycles of the plain run.
    pub cycles: u64,
    /// Final PMU counters.
    pub counters: Counters,
    /// Cache/PMU statistics row ([`machine_stats_json`]).
    pub stats: Json,
}

type BaselineSlot = Arc<OnceLock<Result<Baseline, String>>>;

/// Concurrent memo of baseline runs keyed by
/// (workload, compile options, machine config). Each key is computed
/// exactly once — concurrent requesters block on the key's `OnceLock` —
/// so hit counts are deterministic for a given grid.
///
/// An optional persistent [`BaselineStore`] sits *behind* the memo: a
/// key's single in-process compute first consults the store and, on a
/// disk hit, only recompiles the binary (cheap) instead of simulating
/// the run (expensive). The in-memory `lookups`/`computes` statistics
/// are unaffected by the store and stay deterministic for a fixed
/// grid; disk hit/miss counts live on the store itself.
pub struct BaselineCache {
    map: Mutex<HashMap<String, BaselineSlot>>,
    lookups: AtomicUsize,
    computes: AtomicUsize,
    store: Option<Arc<BaselineStore>>,
}

impl Default for BaselineCache {
    fn default() -> Self {
        BaselineCache::new()
    }
}

impl BaselineCache {
    /// An empty cache with no persistent store behind it.
    pub fn new() -> BaselineCache {
        BaselineCache::with_store(None)
    }

    /// An empty cache backed by `store` (when `Some`): misses fall
    /// through to disk before simulating.
    pub fn with_store(store: Option<Arc<BaselineStore>>) -> BaselineCache {
        BaselineCache {
            map: Mutex::new(HashMap::new()),
            lookups: AtomicUsize::new(0),
            computes: AtomicUsize::new(0),
            store,
        }
    }

    /// The plain run of `w` under `opts` on `machine`, computed at most
    /// once per distinct key.
    pub fn plain(
        &self,
        w: &Workload,
        opts: &CompileOptions,
        machine: &MachineConfig,
    ) -> Result<Baseline, CellError> {
        self.lookups.fetch_add(1, Ordering::SeqCst);
        let key = format!("{}|{}|{:?}", w.name, opts_key(opts), machine);
        let slot = {
            let mut map = self.map.lock().expect("baseline cache lock");
            map.entry(key).or_default().clone()
        };
        let out = slot.get_or_init(|| {
            self.computes.fetch_add(1, Ordering::SeqCst);
            let bin = match try_build(w, opts) {
                Ok(bin) => bin,
                Err(e) => return Err(e.to_string()),
            };
            if let Some(store) = &self.store {
                let disk_key = BaselineStore::key(w, opts, machine);
                if let Some(hit) = store.load(disk_key) {
                    return Ok(Baseline {
                        cycles: hit.cycles,
                        counters: hit.counters,
                        stats: hit.stats,
                        bin,
                    });
                }
                let mut m = w.prepare(&bin, machine.clone());
                let cycles = m.run_to_halt();
                let counters = m.pmu().counters;
                let stats = machine_stats_json(&m);
                store.save(disk_key, &StoredBaseline { cycles, counters, stats: stats.clone() });
                return Ok(Baseline { cycles, counters, stats, bin });
            }
            let mut m = w.prepare(&bin, machine.clone());
            let cycles = m.run_to_halt();
            Ok(Baseline {
                cycles,
                counters: m.pmu().counters,
                stats: machine_stats_json(&m),
                bin,
            })
        });
        out.clone().map_err(|message| CellError::Compile {
            workload: w.name.to_string(),
            message,
        })
    }

    /// `(lookups, computes)` so far; hits are the difference. Both are
    /// deterministic for a fixed grid, independent of the worker count.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.lookups.load(Ordering::SeqCst),
            self.computes.load(Ordering::SeqCst),
        )
    }
}

/// Deterministic key for compile options (the `Debug` form of the
/// filter set would depend on hash order). Shared with the persistent
/// store's content hash, so the two layers agree on identity.
pub(crate) fn opts_key(o: &CompileOptions) -> String {
    let filter = o.prefetch_filter.as_ref().map(|s| {
        let mut v: Vec<&str> = s.iter().map(String::as_str).collect();
        v.sort_unstable();
        v.join(",")
    });
    format!(
        "{:?}/res={}/swp={}/filter={:?}",
        o.opt_level, o.reserve_registers, o.software_pipelining, filter
    )
}

/// FNV-1a over the cell identity, finalized splitmix-style: stable
/// across runs, platforms and scheduling. `lab serve` uses the same
/// derivation so a streamed cell's rows byte-match the batch engine's.
pub(crate) fn cell_seed(parts: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in parts {
        for b in p.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn merge_extra(mut row: Json, extra: &Json) -> Json {
    if let Json::Object(fields) = extra {
        for (k, v) in fields {
            row.set(k, v.clone());
        }
    }
    row
}

// ---------------------------------------------------------------------
// Measures
// ---------------------------------------------------------------------

pub(crate) fn run_cell(
    cell: &Cell,
    suite: &[Workload],
    cache: &BaselineCache,
) -> Result<Json, CellError> {
    let w = suite
        .iter()
        .find(|w| w.name == cell.workload)
        .ok_or_else(|| CellError::UnknownWorkload(cell.workload.to_string()))?;
    match &cell.measure {
        Measure::Plain => plain_cell(w, cell, cache),
        Measure::CompareCompile(other) => compare_compile_cell(w, cell, other, cache),
        Measure::Comparison => comparison_cell(w, cell, cache),
        Measure::PipelineComparison => pipeline_comparison_cell(w, cell, cache),
        Measure::Overhead => overhead_cell(w, cell, cache),
        Measure::Streams => streams_cell(w, cell),
        Measure::Timeline => timeline_cell(w, cell),
        Measure::GuidedPrefetch { coverage } => guided_cell(w, cell, *coverage, cache),
        Measure::Breakdown => breakdown_cell(w, cell, cache),
        Measure::Policy => policy_cell(w, cell, cache),
        Measure::Diag { profile, adore } => diag_cell(w, cell, *profile, *adore),
    }
}

fn run_adore_in(
    cell: &Cell,
    w: &Workload,
    bin: &CompiledBinary,
) -> (adore::RunReport, sim::Machine) {
    let mcfg = cell.adore.machine_config(cell.machine.clone());
    let mut m = w.prepare(bin, mcfg);
    let r = adore::run(&mut m, &cell.adore);
    (r, m)
}

fn plain_cell(w: &Workload, cell: &Cell, cache: &BaselineCache) -> Result<Json, CellError> {
    let base = cache.plain(w, &cell.opts, &cell.machine)?;
    Ok(Json::object()
        .with("bench", w.name)
        .with("cycles", base.cycles)
        .with("stats", base.stats))
}

fn compare_compile_cell(
    w: &Workload,
    cell: &Cell,
    other: &CompileOptions,
    cache: &BaselineCache,
) -> Result<Json, CellError> {
    let restricted = cache.plain(w, &cell.opts, &cell.machine)?;
    let original = cache.plain(w, other, &cell.machine)?;
    Ok(Json::object()
        .with("bench", w.name)
        .with("restricted_cycles", restricted.cycles)
        .with("original_cycles", original.cycles)
        .with(
            "speedup_pct",
            speedup_pct(restricted.cycles, original.cycles),
        ))
}

fn comparison_cell(w: &Workload, cell: &Cell, cache: &BaselineCache) -> Result<Json, CellError> {
    let base = cache.plain(w, &cell.opts, &cell.machine)?;
    let (report, m) = run_adore_in(cell, w, &base.bin);
    Ok(Json::object()
        .with("bench", w.name)
        .with("base_cycles", base.cycles)
        .with("adore_cycles", report.cycles)
        .with("speedup_pct", speedup_pct(base.cycles, report.cycles))
        .with("traces_patched", report.traces_patched)
        .with("phases_optimized", report.phases_optimized)
        .with("streams", report.stats)
        .with("base", base.stats)
        .with("adore", machine_stats_json(&m)))
}

fn pipeline_comparison_cell(
    w: &Workload,
    cell: &Cell,
    cache: &BaselineCache,
) -> Result<Json, CellError> {
    let base = cache.plain(w, &cell.opts, &cell.machine)?;
    let (report, m) = run_adore_in(cell, w, &base.bin);
    // The PMU's overhead counter accumulates *every* charge to the main
    // thread; the pipeline ledger knows which part the optimizer passes
    // charged, so the remainder is the sampling/copy-handler share.
    let sampling_overhead =
        m.pmu().counters.overhead_cycles.saturating_sub(report.ledger.total_charged());
    Ok(Json::object()
        .with("bench", w.name)
        .with("base_cycles", base.cycles)
        .with("adore_cycles", report.cycles)
        .with("speedup_pct", speedup_pct(base.cycles, report.cycles))
        .with("traces_patched", report.traces_patched)
        .with("traces_unpatched", report.traces_unpatched)
        .with("phases_optimized", report.phases_optimized)
        .with("streams", report.stats)
        .with("pipeline", &report.ledger)
        .with("sampling_overhead_cycles", sampling_overhead)
        .with("events", &report.event_log))
}

fn overhead_cell(w: &Workload, cell: &Cell, cache: &BaselineCache) -> Result<Json, CellError> {
    let base = cache.plain(w, &cell.opts, &cell.machine)?;
    let mut cell = cell.clone();
    cell.adore.insert_prefetches = false;
    let (report, _) = run_adore_in(&cell, w, &base.bin);
    let overhead = (report.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
    Ok(Json::object()
        .with("bench", w.name)
        .with("o2_cycles", base.cycles)
        .with("sampling_cycles", report.cycles)
        .with("overhead_pct", overhead)
        .with("windows", report.windows))
}

fn streams_cell(w: &Workload, cell: &Cell) -> Result<Json, CellError> {
    let bin = try_build(w, &cell.opts)?;
    let (report, _) = run_adore_in(cell, w, &bin);
    Ok(Json::object()
        .with("bench", w.name)
        .with("streams", report.stats)
        .with("phases_optimized", report.phases_optimized)
        .with("traces_patched", report.traces_patched))
}

fn timeline_cell(w: &Workload, cell: &Cell) -> Result<Json, CellError> {
    let bin = try_build(w, &cell.opts)?;
    // "No runtime prefetching" series: monitoring without optimization,
    // measured through the PMU exactly like the paper's curves.
    let mcfg = cell.adore.machine_config(cell.machine.clone());
    let mut m = w.prepare(&bin, mcfg);
    let mut pm = perfmon::Perfmon::new(cell.adore.perfmon.clone());
    let mut without: Vec<Json> = Vec::new();
    let mut without_end = 0u64;
    pm.run_with_windows(&mut m, |_, win, _| {
        let t = win.samples.last().map(|s| s.cycles).unwrap_or(0);
        without_end = t;
        without.push(point(t, win.cpi, win.dear_per_kinsn));
    });
    let (report, _) = run_adore_in(cell, w, &bin);
    let with: Vec<Json> = report
        .timeline
        .iter()
        .map(|t| point(t.cycles, t.cpi, t.dear_per_kinsn))
        .collect();
    Ok(Json::object()
        .with("bench", w.name)
        .with("baseline_end_cycles", without_end)
        .with(
            "adore_end_cycles",
            report.timeline.last().map(|t| t.cycles).unwrap_or(0),
        )
        .with("baseline", without)
        .with("adore", with))
}

fn point(cycles: u64, cpi: f64, dpk: f64) -> Json {
    Json::object()
        .with("cycles", cycles)
        .with("cpi", cpi)
        .with("dear_per_kinsn", dpk)
}

fn guided_cell(
    w: &Workload,
    cell: &Cell,
    coverage: f64,
    cache: &BaselineCache,
) -> Result<Json, CellError> {
    let o3 = cache.plain(w, &cell.opts, &cell.machine)?;
    // Training run: plain sampling on the *unprefetched* binary — a
    // profile collected under static prefetching would hide exactly the
    // loads the filter must keep.
    let o2 = try_build(w, &CompileOptions::o2())?;
    let mut m = w.prepare(&o2, cell.adore.machine_config(cell.machine.clone()));
    let mut pm = perfmon::Perfmon::new(cell.adore.perfmon.clone());
    let mut samples: Vec<sim::Sample> = Vec::new();
    pm.run_with_windows(&mut m, |_, win, _| {
        samples.extend(win.samples.iter().cloned())
    });
    let profile = perfmon::MissProfile::from_samples(samples.iter());

    let mut guided_opts = cell.opts.clone();
    // An empty training profile (run too short to fill one sample
    // buffer, e.g. gzip) gives no guidance: keep default prefetching
    // rather than filtering everything out.
    if !profile.is_empty() {
        guided_opts.prefetch_filter = Some(delinquent_loop_filter(&profile, &o2, coverage));
    }
    let guided = try_build(w, &guided_opts)?;
    let mut gm = w.prepare(&guided, cell.machine.clone());
    let guided_cycles = gm.run_to_halt();

    Ok(Json::object()
        .with("bench", w.name)
        .with("o3_loops", o3.bin.prefetched_loops)
        .with("profiled_loops", guided.prefetched_loops)
        .with("o3_cycles", o3.cycles)
        .with("guided_cycles", guided_cycles)
        .with("norm_time", guided_cycles as f64 / o3.cycles as f64)
        .with(
            "norm_size",
            guided.program.size_bytes() as f64 / o3.bin.program.size_bytes() as f64,
        )
        .with("profile", &profile))
}

fn breakdown_cell(w: &Workload, cell: &Cell, cache: &BaselineCache) -> Result<Json, CellError> {
    let base = cache.plain(w, &cell.opts, &cell.machine)?;
    let (report, m) = run_adore_in(cell, w, &base.bin);
    Ok(Json::object()
        .with("bench", w.name)
        .with("o2", breakdown_side(&base.counters, base.cycles))
        .with("adore", breakdown_side(&m.pmu().counters, report.cycles)))
}

/// One side of the §2.1 cycle-accounting row.
pub fn breakdown_side(c: &Counters, cycles: u64) -> Json {
    let pct = |part: u64| 100.0 * part as f64 / cycles.max(1) as f64;
    let accounted = c.stall_mem + c.stall_fp + c.stall_branch + c.stall_icache + c.overhead_cycles;
    Json::object()
        .with("cycles", cycles)
        .with("counters", c)
        .with("mem_stall_pct", pct(c.stall_mem))
        .with("fp_stall_pct", pct(c.stall_fp))
        .with("branch_stall_pct", pct(c.stall_branch))
        .with("icache_stall_pct", pct(c.stall_icache))
        .with("overhead_pct", pct(c.overhead_cycles))
        .with("busy_pct", pct(cycles.saturating_sub(accounted)))
}

fn policy_cell(w: &Workload, cell: &Cell, cache: &BaselineCache) -> Result<Json, CellError> {
    let base = cache.plain(w, &cell.opts, &cell.machine)?;
    // Static leg: the cell's config as delivered — the paper's fixed
    // policy (policy.enable stays false).
    let mut static_cell = cell.clone();
    static_cell.adore.policy.enable = false;
    let (static_report, _) = run_adore_in(&static_cell, w, &base.bin);
    // Adaptive leg: identical config and sampling seed, controller on.
    // Both legs replay the same PMU window stream up to the first
    // divergent optimization decision, so the comparison isolates the
    // policy itself.
    let mut adaptive_cell = cell.clone();
    adaptive_cell.adore.policy.enable = true;
    let (adaptive_report, _) = run_adore_in(&adaptive_cell, w, &base.bin);
    let static_speedup = speedup_pct(base.cycles, static_report.cycles);
    let adaptive_speedup = speedup_pct(base.cycles, adaptive_report.cycles);
    Ok(Json::object()
        .with("bench", w.name)
        .with("base_cycles", base.cycles)
        .with("static_cycles", static_report.cycles)
        .with("adaptive_cycles", adaptive_report.cycles)
        .with("static_speedup_pct", static_speedup)
        .with("adaptive_speedup_pct", adaptive_speedup)
        .with("delta_pct", adaptive_speedup - static_speedup)
        .with("win", adaptive_report.cycles < static_report.cycles)
        .with("traces_patched", adaptive_report.traces_patched)
        .with("phases_optimized", adaptive_report.phases_optimized)
        .with("streams", adaptive_report.stats)
        .with("policy", adaptive_report.policy.to_json()))
}

fn diag_cell(w: &Workload, cell: &Cell, profile: bool, adore_run: bool) -> Result<Json, CellError> {
    let bin = try_build(w, &cell.opts)?;
    let mut m = w.prepare(&bin, cell.adore.machine_config(cell.machine.clone()));
    let mut pm = perfmon::Perfmon::new(cell.adore.perfmon.clone());
    let mut detector = PhaseDetector::new(cell.adore.phase.clone());
    let mut decisions: Vec<String> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    let mut windows = 0usize;
    pm.run_with_windows(&mut m, |_, win, ueb| {
        let d = detector.evaluate(ueb);
        let tag = match d {
            PhaseDecision::Unstable => "U".into(),
            PhaseDecision::Stable(s) => format!("S(cpi={:.2},dpi{:.2}/k)", s.cpi, s.dpi * 1000.0),
            PhaseDecision::InTracePool(_) => "P".into(),
            PhaseDecision::LowMissRate(_) => "L".into(),
        };
        if windows < 24 || tag.starts_with('S') {
            lines.push(format!(
                "  w{windows:>3}: cpi={:>6.2} dear/kinsn={:>7.3} pc={:>14.0} -> {tag}",
                win.cpi,
                win.dpi * 1000.0,
                win.pc_center
            ));
        }
        decisions.push(tag);
        windows += 1;
    });
    let count = |tag: char| decisions.iter().filter(|d| d.starts_with(tag)).count();
    let mut entry = Json::object()
        .with("workload", w.name)
        .with("cycles", m.cycles())
        .with("windows", windows)
        .with(
            "decisions",
            Json::object()
                .with("unstable", count('U'))
                .with("stable", count('S'))
                .with("in_trace_pool", count('P'))
                .with("low_miss_rate", count('L')),
        )
        .with("lines", lines);

    if profile {
        let mut m2 = w.prepare(&bin, cell.adore.machine_config(cell.machine.clone()));
        let mut pm2 = perfmon::Perfmon::new(cell.adore.perfmon.clone());
        let mut all: Vec<sim::Sample> = Vec::new();
        pm2.run_with_windows(&mut m2, |_, win, _| all.extend(win.samples.iter().cloned()));
        let prof = perfmon::MissProfile::from_samples(all.iter());
        let mut plines = Vec::new();
        for e in prof.entries().iter().take(16) {
            let name = bin
                .loop_containing(isa::Addr(e.addr))
                .map(|l| l.name.as_str())
                .unwrap_or("?");
            plines.push(format!(
                "  pc={:#x}+{} `{}` count={} total_lat={} avg={:.0}",
                e.addr,
                e.slot,
                name,
                e.count,
                e.total_latency,
                e.total_latency as f64 / e.count as f64
            ));
        }
        entry.set("profile", &prof);
        entry.set("profile_lines", plines);
    }

    if adore_run {
        let (report, m2) = run_adore_in(cell, w, &bin);
        let (lf_issued, lf_dropped) = m2.caches().lfetch_stats();
        let mut alines = vec![format!(
            "ADORE: cycles={} patched={} phases={} stats={:?} lfetch={}/{} dropped",
            report.cycles,
            report.traces_patched,
            report.phases_optimized,
            report.stats,
            lf_dropped,
            lf_issued
        )];
        for (pc, reason) in &report.skips {
            let loop_name = bin
                .loop_containing(pc.addr)
                .map(|l| l.name.as_str())
                .unwrap_or("?");
            alines.push(format!("  skip {pc} in `{loop_name}`: {reason}"));
        }
        for e in &report.events {
            alines.push(format!("  opt-event at {} cycles:", e.at_cycles));
            for (start, is_loop, len, loads, ins) in &e.traces {
                let name = bin
                    .loop_containing(*start)
                    .map(|l| l.name.as_str())
                    .unwrap_or("?");
                alines.push(format!(
                    "    trace@{start} `{name}` loop={is_loop} bundles={len} loads={loads} inserted={ins:?}"
                ));
            }
        }
        for t in report.timeline.iter().step_by(4) {
            alines.push(format!(
                "  t={:>12} cpi={:>6.2} dear/kinsn={:>7.3}",
                t.cycles, t.cpi, t.dear_per_kinsn
            ));
        }
        entry.set(
            "adore",
            Json::object()
                .with("run", &report)
                .with("caches", m2.caches()),
        );
        entry.set("adore_lines", alines);
    }
    Ok(entry)
}
