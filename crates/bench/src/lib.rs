//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each experiment binary (`fig7`, `table1`, `table2`, `fig8_9`,
//! `fig10`, `fig11`, `ablation`, `breakdown`, `diag`) declares an
//! [`engine::ExperimentSpec`] — a grid of (workload × compile options ×
//! ADORE config) cells — and the parallel engine executes it, merges
//! the rows deterministically, and writes `results/<tool>.json`. The
//! helpers below (paper numbers, row math, report plumbing) are shared
//! by the specs and by the tests. `EXPERIMENTS.md` records a captured
//! copy of each output.

#![warn(missing_docs)]

pub mod cli;
pub mod engine;
pub mod lab;
pub mod store;

pub use cli::Cli;
pub use engine::{BaselineCache, Cell, CellError, EngineResult, ExperimentSpec, Measure};
pub use store::{BaselineStore, StoredBaseline, STORE_VERSION};

use adore::{AdoreConfig, RunReport};
use compiler::{CompileOptions, CompiledBinary};
use obs::{Json, Report};
use sim::{Machine, MachineConfig, SamplingConfig};
use workloads::Workload;

/// Default workload scale for full experiment runs.
pub const FULL_SCALE: f64 = 1.0;

/// Reduced scale for quick smoke runs (`--quick`).
pub const QUICK_SCALE: f64 = 0.25;

/// The ADORE configuration used by all experiments.
///
/// Delegates to [`ExperimentSpec::paper_adore_config`] — the spec owns
/// the paper configuration; this function remains for component
/// benchmarks and tests that run outside the engine.
pub fn experiment_adore_config() -> AdoreConfig {
    ExperimentSpec::paper_adore_config()
}

/// Machine configuration used by all experiments (Itanium 2 defaults).
///
/// Delegates to [`ExperimentSpec::paper_machine_config`].
pub fn experiment_machine_config() -> MachineConfig {
    ExperimentSpec::paper_machine_config()
}

/// Compiles a workload with the given options.
///
/// # Errors
///
/// Returns [`CellError::Compile`] when the kernel does not compile —
/// the same error the engine reports for a failed cell, so callers
/// outside the engine (benchmarks, tests, the fuzz harness) decide for
/// themselves whether a bad build aborts the process.
pub fn build(w: &Workload, opts: &CompileOptions) -> Result<CompiledBinary, CellError> {
    engine::try_build(w, opts)
}

/// Runs a compiled workload to completion with no monitoring; returns
/// total cycles.
pub fn run_plain(w: &Workload, bin: &CompiledBinary) -> u64 {
    let mut m = w.prepare(bin, experiment_machine_config());
    m.run_to_halt()
}

/// Like [`run_plain`], but also returns the machine so callers can read
/// cache and PMU statistics into a report.
pub fn run_plain_with_machine(w: &Workload, bin: &CompiledBinary) -> (u64, Machine) {
    let mut m = w.prepare(bin, experiment_machine_config());
    let cycles = m.run_to_halt();
    (cycles, m)
}

/// Runs a compiled workload under ADORE; returns the report (cycles
/// include all charged overhead).
pub fn run_adore(w: &Workload, bin: &CompiledBinary, config: &AdoreConfig) -> RunReport {
    let mcfg = config.machine_config(experiment_machine_config());
    let mut m = w.prepare(bin, mcfg);
    adore::run(&mut m, config)
}

/// Runs a workload and also returns the machine (for cache statistics).
pub fn run_adore_with_machine(
    w: &Workload,
    bin: &CompiledBinary,
    config: &AdoreConfig,
) -> (RunReport, Machine) {
    let mcfg = config.machine_config(experiment_machine_config());
    let mut m = w.prepare(bin, mcfg);
    let r = adore::run(&mut m, config);
    (r, m)
}

/// Speedup of `fast` relative to `slow`, as the percentage the paper
/// plots: `time(slow)/time(fast) - 1`.
pub fn speedup_pct(slow_cycles: u64, fast_cycles: u64) -> f64 {
    (slow_cycles as f64 / fast_cycles as f64 - 1.0) * 100.0
}

/// Benchmark order used in the paper's figures (INT first, then FP).
pub const PAPER_ORDER: [&str; 17] = [
    "bzip2", "gzip", "mcf", "vpr", "parser", "gap", "vortex", "gcc", "ammp", "art", "applu",
    "equake", "facerec", "fma3d", "lucas", "mesa", "swim",
];

/// The pointer-rich scenario families ([`workloads::families`]) in
/// report order — the grid `lab families` measures.
pub const FAMILY_ORDER: [&str; 3] = ["server", "graph", "gc"];

/// Paper-reported speedups (%) for Fig. 7(a), O2 + runtime prefetching,
/// read off the published bar chart (approximate to a few percent).
pub fn paper_fig7a(name: &str) -> f64 {
    match name {
        "bzip2" => 10.0,
        "gzip" => 0.0,
        "mcf" => 57.0,
        "vpr" => 0.0,
        "parser" => 3.0,
        "gap" => 0.0,
        "vortex" => 2.0,
        "gcc" => -3.8,
        "ammp" => 5.0,
        "art" => 45.0,
        "applu" => 1.0,
        "equake" => 20.0,
        "facerec" => 8.0,
        "fma3d" => 10.0,
        "lucas" => 0.0,
        "mesa" => 3.0,
        "swim" => 15.0,
        _ => f64::NAN,
    }
}

/// Paper-reported speedups (%) for Fig. 7(b), O3 + runtime prefetching.
pub fn paper_fig7b(name: &str) -> f64 {
    match name {
        "mcf" => 35.0,
        "art" => 25.0,
        "equake" => 20.0,
        "bzip2" => 2.0,
        "gcc" => -3.0,
        _ => 0.0,
    }
}

/// Paper Table 1 rows: (loops scheduled O3, loops scheduled O3+profile,
/// normalized time O3+profile, normalized size O3+profile).
pub fn paper_table1(name: &str) -> Option<(u64, u64, f64, f64)> {
    Some(match name {
        "ammp" => (113, 13, 0.989, 0.980),
        "applu" => (52, 19, 0.998, 0.998),
        "art" => (39, 20, 0.985, 0.964),
        "bzip2" => (65, 11, 1.007, 0.927),
        "equake" => (34, 4, 0.997, 0.992),
        "facerec" => (94, 12, 0.997, 0.970),
        "fma3d" => (1023, 39, 0.996, 0.990),
        "gap" => (553, 18, 1.008, 0.938),
        "gcc" => (651, 21, 0.993, 0.986),
        "gzip" => (85, 2, 1.004, 0.939),
        "lucas" => (59, 23, 0.999, 0.992),
        "mcf" => (7, 3, 0.986, 0.973),
        "mesa" => (583, 14, 0.995, 0.911),
        "parser" => (67, 5, 0.990, 0.958),
        "swim" => (19, 9, 1.001, 0.995),
        "vortex" => (20, 0, 0.995, 0.999),
        "vpr" => (120, 5, 0.990, 0.987),
        _ => return None,
    })
}

/// Paper Table 2 rows: (direct, indirect, pointer-chasing, phases).
pub fn paper_table2(name: &str) -> Option<(u64, u64, u64, u64)> {
    Some(match name {
        "ammp" => (0, 2, 2, 3),
        "applu" => (21, 0, 0, 2),
        "art" => (10, 6, 0, 2),
        "equake" => (6, 1, 0, 1),
        "facerec" => (17, 0, 0, 3),
        "fma3d" => (11, 2, 0, 4),
        "lucas" => (6, 0, 0, 1),
        "mesa" => (1, 0, 0, 1),
        "swim" => (9, 0, 0, 1),
        "bzip2" => (10, 6, 0, 2),
        "gap" => (3, 0, 0, 3),
        "gcc" => (2, 0, 0, 2),
        "gzip" => (0, 0, 0, 0),
        "mcf" => (0, 0, 3, 2),
        "parser" => (1, 0, 2, 1),
        "vortex" => (2, 0, 0, 2),
        "vpr" => (1, 0, 0, 1),
        _ => return None,
    })
}

/// Parses the common `--quick` flag into a workload scale.
pub fn scale_from_args(args: &[String]) -> f64 {
    if args.iter().any(|a| a == "--quick") {
        QUICK_SCALE
    } else {
        FULL_SCALE
    }
}

/// Starts a structured report seeded with the shared run configuration
/// (workload scale, recorded CLI arguments, sampling parameters).
///
/// Every field here must be deterministic: the engine's acceptance
/// criterion is byte-identical reports for any `--jobs` value, so the
/// argument list excludes `--jobs` (see [`cli::parse`]) and the
/// sampling block excludes the per-cell seed.
pub fn experiment_report_with(
    tool: &str,
    args: &[String],
    scale: f64,
    sampling: &SamplingConfig,
) -> Report {
    let mut r = Report::new(tool);
    r.set(
        "run_config",
        Json::object()
            .with("scale", scale)
            .with("quick", scale != FULL_SCALE)
            .with("args", args.to_vec())
            .with(
                "sampling",
                Json::object()
                    .with("interval_cycles", sampling.interval_cycles)
                    .with("buffer_capacity", sampling.buffer_capacity)
                    .with("per_sample_cost", sampling.per_sample_cost)
                    .with("jitter", sampling.jitter),
            ),
    );
    r
}

/// [`experiment_report_with`] using the paper sampling configuration.
pub fn experiment_report(tool: &str, args: &[String], scale: f64) -> Report {
    experiment_report_with(tool, args, scale, &experiment_adore_config().sampling)
}

/// Cache and PMU statistics of a finished machine, for report rows.
pub fn machine_stats_json(m: &Machine) -> Json {
    let c = &m.pmu().counters;
    let miss_per_kinsn = if c.retired == 0 {
        0.0
    } else {
        c.dear_misses as f64 * 1000.0 / c.retired as f64
    };
    Json::object()
        .with("pmu", c)
        .with("dear_miss_per_kinsn", miss_per_kinsn)
        .with("caches", m.caches())
}

/// `row.get(key)` as f64, defaulting to NaN — for printing engine rows.
pub fn jf(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

/// `row.get(key)` as u64, defaulting to 0 — for printing engine rows.
pub fn ju(row: &Json, key: &str) -> u64 {
    row.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// `row.get(key)` as &str, defaulting to `"?"` — for printing engine rows.
pub fn js<'a>(row: &'a Json, key: &str) -> &'a str {
    row.get(key).and_then(Json::as_str).unwrap_or("?")
}

/// The engine error message of a failed cell's row, if any. Binaries
/// print these instead of data columns.
pub fn je(row: &Json) -> Option<&str> {
    row.get("error").and_then(Json::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        assert!((speedup_pct(150, 100) - 50.0).abs() < 1e-9);
        assert!((speedup_pct(100, 100)).abs() < 1e-9);
        assert!(speedup_pct(97, 100) < 0.0);
    }

    #[test]
    fn paper_tables_cover_all_benchmarks() {
        for name in PAPER_ORDER {
            assert!(paper_table1(name).is_some(), "{name} missing from table 1");
            assert!(paper_table2(name).is_some(), "{name} missing from table 2");
            assert!(!paper_fig7a(name).is_nan());
        }
    }

    #[test]
    fn experiment_report_seeds_run_config() {
        let r = experiment_report("unit", &["--quick".to_string()], QUICK_SCALE);
        let j = r.json();
        assert_eq!(j.get("tool").and_then(Json::as_str), Some("unit"));
        let rc = j.get("run_config").expect("run_config present");
        assert_eq!(rc.get("quick"), Some(&Json::Bool(true)));
        assert!(rc
            .get("sampling")
            .and_then(|s| s.get("interval_cycles"))
            .is_some());
        assert!(
            Json::parse(&j.to_string()).is_ok(),
            "report serializes to valid JSON"
        );
    }

    #[test]
    fn quick_flag_parses() {
        let args: Vec<String> = vec!["--quick".into()];
        assert_eq!(scale_from_args(&args), QUICK_SCALE);
        assert_eq!(scale_from_args(&[]), FULL_SCALE);
    }
}
