//! Microbenchmarks of ADORE's own pipeline stages: profile-window
//! statistics, trace selection, pattern classification and prefetch
//! generation (the work the dynamic-optimization thread does per
//! optimization event).
//!
//! Run with `cargo bench --bench adore_components [-- --quick]`; emits
//! `results/bench_adore_components.json`.

use adore::{classify, optimize_trace, select_traces, PrefetchConfig, TraceConfig};
use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};
use obs::{BenchConfig, BenchSuite};
use perfmon::{Perfmon, PerfmonConfig, UserEventBuffer};
use sim::{Machine, MachineConfig, SamplingConfig};

/// A profiled machine state with a populated UEB.
fn profiled() -> (isa::Program, UserEventBuffer) {
    let mut a = Asm::new();
    a.movl(Gr(14), 0x1000_0000);
    a.movl(Gr(8), 40);
    a.label("outer");
    a.movl(Gr(9), 20_000);
    a.label("loop");
    a.ld(AccessSize::U8, Gr(20), Gr(14), 64);
    a.add(Gr(21), Gr(20), Gr(21));
    a.addi(Gr(9), Gr(9), -1);
    a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
    a.br_cond(Pr(1), "loop");
    a.movl(Gr(14), 0x1000_0000);
    a.addi(Gr(8), Gr(8), -1);
    a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(8), 0);
    a.br_cond(Pr(1), "outer");
    a.halt();
    let program = a.finish(CODE_BASE).unwrap();
    let mut cfg = MachineConfig::default();
    cfg.sampling = Some(SamplingConfig {
        interval_cycles: 2_000,
        buffer_capacity: 100,
        per_sample_cost: 0,
        jitter: 0.3,
        ..Default::default()
    });
    let mut m = Machine::new(program.clone(), cfg);
    m.mem_mut().alloc(20_016 * 64, 64);
    let mut pm = Perfmon::new(PerfmonConfig::default());
    let mut ueb = UserEventBuffer::new(16);
    pm.run_with_windows(&mut m, |_, _, _| {});
    for w in pm.ueb().iter() {
        ueb.push(w.clone());
    }
    (program, ueb)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite = BenchSuite::new("bench_adore_components", BenchConfig::from_args(&args));
    let (program, ueb) = profiled();
    let tc = TraceConfig::default();

    suite.bench("trace_selection", || {
        select_traces(&program, &ueb, &tc).len() as u64
    });

    let traces = select_traces(&program, &ueb, &tc);
    let trace = traces.iter().find(|t| t.is_loop).expect("loop trace");
    let loads = adore::find_delinquent_loads(&traces, &ueb);
    let ti = traces.iter().position(|t| std::ptr::eq(t, trace)).unwrap();
    let mine: Vec<_> = loads
        .iter()
        .filter(|l| l.trace_index == ti)
        .cloned()
        .collect();
    assert!(!mine.is_empty());

    suite.bench("delinquent_load_tracking", || {
        adore::find_delinquent_loads(&traces, &ueb).len() as u64
    });

    suite.bench("pattern_classification", || {
        classify(trace, mine[0].position).map(|_| 1).unwrap_or(0)
    });

    suite.bench("prefetch_generation", || {
        optimize_trace(trace, &mine, &PrefetchConfig::default())
            .0
            .is_some() as u64
    });

    suite
        .save()
        .expect("write results/bench_adore_components.json");
}
