//! Table 1 in bench form: compile-and-run at O2 and O3 for a strided
//! FP kernel (DAXPY, the paper's Fig. 2), plus the compiler itself.
//!
//! Run with `cargo bench --bench static_prefetch [-- --quick]`; emits
//! `results/bench_static_prefetch.json`.

use compiler::{compile, CompileOptions};
use obs::{BenchConfig, BenchSuite};
use sim::MachineConfig;
use workloads::micro::daxpy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let elements = 32u64 << 10;
    let w = daxpy(elements, 8);
    let mut suite = BenchSuite::new("bench_static_prefetch", BenchConfig::from_args(&args));
    for (label, opts) in [("o2", CompileOptions::o2()), ("o3", CompileOptions::o3())] {
        let bin = compile(&w.kernel, &opts).unwrap();
        suite.throughput(elements);
        suite.bench(&format!("daxpy_{label}"), || {
            let mut m = w.prepare(&bin, MachineConfig::default());
            m.run_to_halt()
        });
    }
    suite.bench("compile_o3", || {
        compile(&w.kernel, &CompileOptions::o3())
            .unwrap()
            .program
            .len() as u64
    });
    suite
        .save()
        .expect("write results/bench_static_prefetch.json");
}
