//! Table 1 in bench form: compile-and-run at O2, O3 and profile-guided
//! O3 for a strided FP kernel (DAXPY, the paper's Fig. 2).

use compiler::{compile, CompileOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::MachineConfig;
use workloads::micro::daxpy;

fn static_prefetch(c: &mut Criterion) {
    let w = daxpy(32 << 10, 8);
    let mut g = c.benchmark_group("static_prefetch");
    for (label, opts) in [("o2", CompileOptions::o2()), ("o3", CompileOptions::o3())] {
        let bin = compile(&w.kernel, &opts).unwrap();
        g.bench_function(format!("daxpy_{label}"), |b| {
            b.iter(|| {
                let mut m = w.prepare(&bin, MachineConfig::default());
                m.run_to_halt()
            })
        });
    }
    g.bench_function("compile_o3", |b| {
        b.iter(|| compile(&w.kernel, &CompileOptions::o3()).unwrap().program.len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = static_prefetch
}
criterion_main!(benches);
