//! Throughput of the simulator substrate itself: how fast the machine
//! interprets bundles and the cache hierarchy services accesses.
//!
//! The headline benchmarks run the full 17-workload suite (quick scale)
//! once per [`ExecPath`] and report simulated instructions per second —
//! `elements` is the total retired count, so `ns_per_element` in
//! `results/bench_simulator.json` is nanoseconds per simulated
//! instruction. ci.sh gates on the fast:reference ratio of the two
//! cycle-exact rows and on the threaded tier's speedup over fast.
//!
//! Run with `cargo bench --bench simulator [-- --quick]`; emits
//! `results/bench_simulator.json`.

use bench_harness::{build, QUICK_SCALE};
use compiler::{CompileOptions, CompiledBinary};
use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};
use obs::{BenchConfig, BenchSuite};
use sim::{Cache, CacheConfig, ExecPath, Hierarchy, Machine, MachineConfig, StopReason};
use workloads::Workload;

/// One full pass over the compiled suite on the given path; returns
/// total retired instructions (the benchmark value).
fn run_suite(compiled: &[(Workload, CompiledBinary)], path: ExecPath) -> u64 {
    let mut retired = 0u64;
    for (w, bin) in compiled {
        let mut config = MachineConfig::default();
        config.exec_path = path;
        let mut m = w.prepare(bin, config);
        assert_eq!(
            m.run(u64::MAX),
            StopReason::Halted,
            "suite workload {} must halt",
            w.name
        );
        retired += m.retired();
    }
    retired
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A bare (non-flag) argument selects benchmarks by substring, e.g.
    // `cargo bench --bench simulator -- --quick strided`.
    let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
    let on = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));
    let mut suite = BenchSuite::new("bench_simulator", BenchConfig::from_args(&args));

    // Simulated-instruction throughput over the whole workload suite,
    // once per execution path. Compiled outside the timed region; the
    // retired counts of all paths must match exactly (the golden
    // cycle-exactness tests enforce the stronger per-workload claim for
    // the cycle-exact pair; the threaded tier promises architectural
    // state only, and retired counts are architectural).
    if on("machine/suite_insns_fast")
        || on("machine/suite_insns_reference")
        || on("machine/suite_insns_threaded")
    {
        let opts = CompileOptions::default();
        let compiled: Vec<(Workload, CompiledBinary)> = workloads::suite(QUICK_SCALE)
            .into_iter()
            .map(|w| {
                let bin = build(&w, &opts).expect("suite workload compiles");
                (w, bin)
            })
            .collect();
        let total_insns = run_suite(&compiled, ExecPath::Fast);
        assert_eq!(
            total_insns,
            run_suite(&compiled, ExecPath::Reference),
            "fast and reference paths must retire identical instruction counts"
        );
        assert_eq!(
            total_insns,
            run_suite(&compiled, ExecPath::Threaded),
            "threaded tier must retire identical instruction counts"
        );

        if on("machine/suite_insns_fast") {
            suite.throughput(total_insns);
            suite.bench("machine/suite_insns_fast", || {
                run_suite(&compiled, ExecPath::Fast)
            });
        }
        if on("machine/suite_insns_reference") {
            suite.throughput(total_insns);
            suite.bench("machine/suite_insns_reference", || {
                run_suite(&compiled, ExecPath::Reference)
            });
        }
        if on("machine/suite_insns_threaded") {
            suite.throughput(total_insns);
            suite.bench("machine/suite_insns_threaded", || {
                run_suite(&compiled, ExecPath::Threaded)
            });
        }
    }

    let iters = 100_000u64;
    if on("machine/strided_loop_100k_iters") {
        suite.throughput(iters);
        suite.bench("machine/strided_loop_100k_iters", || {
            let mut a = Asm::new();
            a.movl(Gr(14), 0x1000_0000);
            a.movl(Gr(9), iters as i64);
            a.label("loop");
            a.ld(AccessSize::U8, Gr(20), Gr(14), 8);
            a.add(Gr(21), Gr(20), Gr(21));
            a.addi(Gr(9), Gr(9), -1);
            a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
            a.br_cond(Pr(1), "loop");
            a.halt();
            let mut m = Machine::new(a.finish(CODE_BASE).unwrap(), MachineConfig::default());
            m.mem_mut().alloc(iters * 8 + 4096, 64);
            m.run(u64::MAX);
            m.cycles()
        });
    }

    let n = 10_000u64;
    if on("cache/hierarchy_streaming_loads") {
        suite.throughput(n);
        suite.bench("cache/hierarchy_streaming_loads", || {
            let mut h = Hierarchy::new(CacheConfig::default());
            let mut total = 0u64;
            for i in 0..n {
                total += h.load(0x1000_0000 + i * 64, i * 4, false).latency;
            }
            total
        });
    }

    if on("cache/single_cache_hits") {
        suite.throughput(n);
        suite.bench("cache/single_cache_hits", || {
            let mut cache = Cache::new("bench", 16 * 1024, 64, 4);
            for i in 0..128u64 {
                cache.fill(i * 64);
            }
            let mut hits = 0u64;
            for i in 0..n {
                if cache.access((i % 128) * 64) {
                    hits += 1;
                }
            }
            hits
        });
    }

    suite.save().expect("write results/bench_simulator.json");
}
