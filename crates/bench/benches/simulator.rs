//! Throughput of the simulator substrate itself: how fast the machine
//! interprets bundles and the cache hierarchy services accesses.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};
use sim::{Cache, CacheConfig, Hierarchy, Machine, MachineConfig};

fn machine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    let iters = 100_000u64;
    g.throughput(Throughput::Elements(iters));
    g.bench_function("strided_loop_100k_iters", |b| {
        b.iter(|| {
            let mut a = Asm::new();
            a.movl(Gr(14), 0x1000_0000);
            a.movl(Gr(9), iters as i64);
            a.label("loop");
            a.ld(AccessSize::U8, Gr(20), Gr(14), 8);
            a.add(Gr(21), Gr(20), Gr(21));
            a.addi(Gr(9), Gr(9), -1);
            a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
            a.br_cond(Pr(1), "loop");
            a.halt();
            let mut m = Machine::new(a.finish(CODE_BASE).unwrap(), MachineConfig::default());
            m.mem_mut().alloc(iters * 8 + 4096, 64);
            m.run(u64::MAX);
            m.cycles()
        })
    });
    g.finish();
}

fn cache_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("hierarchy_streaming_loads", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(CacheConfig::default());
            let mut total = 0u64;
            for i in 0..n {
                total += h.load(0x1000_0000 + i * 64, i * 4, false).latency;
            }
            total
        })
    });
    g.bench_function("single_cache_hits", |b| {
        let mut cache = Cache::new("bench", 16 * 1024, 64, 4);
        for i in 0..128u64 {
            cache.fill(i * 64);
        }
        b.iter(|| {
            let mut hits = 0;
            for i in 0..n {
                if cache.access((i % 128) * 64) {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = machine_throughput, cache_throughput
}
criterion_main!(benches);
