//! Throughput of the simulator substrate itself: how fast the machine
//! interprets bundles and the cache hierarchy services accesses.
//!
//! Run with `cargo bench --bench simulator [-- --quick]`; emits
//! `results/bench_simulator.json`.

use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};
use obs::{BenchConfig, BenchSuite};
use sim::{Cache, CacheConfig, Hierarchy, Machine, MachineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite = BenchSuite::new("bench_simulator", BenchConfig::from_args(&args));

    let iters = 100_000u64;
    suite.throughput(iters);
    suite.bench("machine/strided_loop_100k_iters", || {
        let mut a = Asm::new();
        a.movl(Gr(14), 0x1000_0000);
        a.movl(Gr(9), iters as i64);
        a.label("loop");
        a.ld(AccessSize::U8, Gr(20), Gr(14), 8);
        a.add(Gr(21), Gr(20), Gr(21));
        a.addi(Gr(9), Gr(9), -1);
        a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
        a.br_cond(Pr(1), "loop");
        a.halt();
        let mut m = Machine::new(a.finish(CODE_BASE).unwrap(), MachineConfig::default());
        m.mem_mut().alloc(iters * 8 + 4096, 64);
        m.run(u64::MAX);
        m.cycles()
    });

    let n = 10_000u64;
    suite.throughput(n);
    suite.bench("cache/hierarchy_streaming_loads", || {
        let mut h = Hierarchy::new(CacheConfig::default());
        let mut total = 0u64;
        for i in 0..n {
            total += h.load(0x1000_0000 + i * 64, i * 4, false).latency;
        }
        total
    });

    suite.throughput(n);
    suite.bench("cache/single_cache_hits", || {
        let mut cache = Cache::new("bench", 16 * 1024, 64, 4);
        for i in 0..128u64 {
            cache.fill(i * 64);
        }
        let mut hits = 0u64;
        for i in 0..n {
            if cache.access((i % 128) * 64) {
                hits += 1;
            }
        }
        hits
    });

    suite.save().expect("write results/bench_simulator.json");
}
