//! Fig. 7 in bench form: the full ADORE pipeline (baseline vs runtime
//! prefetching) on three representative workloads at reduced scale.
//! The wall times measure the *simulation*; the recorded `value` of
//! each benchmark is the deterministic simulated-cycle count, so the
//! JSON report doubles as a regression anchor for the optimizer.
//!
//! Run with `cargo bench --bench runtime_prefetch [-- --quick]`; emits
//! `results/bench_runtime_prefetch.json`.

use bench_harness::{build, experiment_adore_config, run_adore, run_plain};
use compiler::CompileOptions;
use obs::{BenchConfig, BenchSuite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite = BenchSuite::new("bench_runtime_prefetch", BenchConfig::from_args(&args));
    let workloads = workloads::suite(0.05);
    for name in ["mcf", "art", "swim"] {
        let w = workloads.iter().find(|w| w.name == name).unwrap().clone();
        let bin = build(&w, &CompileOptions::o2()).unwrap_or_else(|e| panic!("{e}"));
        suite.bench(&format!("fig7/{name}_baseline"), || run_plain(&w, &bin));
        let config = experiment_adore_config();
        suite.bench(&format!("fig7/{name}_adore"), || {
            run_adore(&w, &bin, &config).cycles
        });
    }
    suite
        .save()
        .expect("write results/bench_runtime_prefetch.json");
}
