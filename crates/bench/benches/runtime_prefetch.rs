//! Fig. 7 in bench form: the full ADORE pipeline (baseline vs runtime
//! prefetching) on three representative workloads at reduced scale.
//! The printed per-iteration times measure the *simulation*; the
//! interesting output is the simulated-cycle counts the `fig7` binary
//! reports.

use bench_harness::{build, experiment_adore_config, run_adore, run_plain};
use compiler::CompileOptions;
use criterion::{criterion_group, criterion_main, Criterion};

fn fig7_shapes(c: &mut Criterion) {
    let suite = workloads::suite(0.05);
    let mut g = c.benchmark_group("fig7");
    for name in ["mcf", "art", "swim"] {
        let w = suite.iter().find(|w| w.name == name).unwrap().clone();
        let bin = build(&w, &CompileOptions::o2());
        g.bench_function(format!("{name}_baseline"), |b| {
            b.iter(|| run_plain(&w, &bin))
        });
        let config = experiment_adore_config();
        g.bench_function(format!("{name}_adore"), |b| {
            b.iter(|| run_adore(&w, &bin, &config).cycles)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig7_shapes
}
criterion_main!(benches);
