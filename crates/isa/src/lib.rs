//! An IA-64-like instruction set for the ADORE reproduction.
//!
//! This crate models the slice of the Itanium architecture the MICRO-36
//! paper *"The Performance of Runtime Data Cache Prefetching in a
//! Dynamic Optimization System"* depends on:
//!
//! - 128 general / 128 floating-point / 64 predicate registers, with the
//!   compiler-reserved scratch registers `r27`–`r30` and `p6` ADORE uses
//!   for prefetch address computation ([`regs`]);
//! - three-slot, 16-byte instruction **bundles** with templates and the
//!   scheduling constraints they impose ([`bundle`]);
//! - the instructions the paper's examples use: `shladd`, sized and
//!   speculative loads, post-increment addressing, `lfetch` and
//!   predicated branches ([`insn`]);
//! - a small assembler with labels ([`asm`]) producing [`Program`]
//!   images ([`program`]).
//!
//! # Example
//!
//! Assemble the paper's Fig. 5(A) loop — a direct array reference whose
//! stride is the sum of the post-increments:
//!
//! ```
//! use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};
//!
//! # fn main() -> Result<(), isa::AsmError> {
//! let mut a = Asm::new();
//! a.global("loop");
//! a.addi(Gr(14), Gr(14), 4);
//! a.st(AccessSize::U4, Gr(14), Gr(20), 4);
//! a.ld(AccessSize::U4, Gr(20), Gr(14), 0);
//! a.addi(Gr(14), Gr(14), 4);
//! a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(14), 4096);
//! a.br_cond(Pr(1), "loop");
//! a.halt();
//! let program = a.finish(CODE_BASE)?;
//! assert!(program.len() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod bundle;
pub mod encode;
pub mod insn;
pub mod program;
pub mod regs;

pub use asm::{Asm, AsmError};
pub use encode::{decode_program, encode_program, DecodeError};
pub use bundle::{Bundle, Template};
pub use insn::{AccessSize, Addr, CmpOp, Insn, Op, Pc, SlotKind};
pub use program::{Program, CODE_BASE, TRACE_POOL_BASE};
pub use regs::{Fr, Gr, Pr, NUM_FR, NUM_GR, NUM_PR};
