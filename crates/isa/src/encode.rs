//! Binary encoding of program images.
//!
//! A compact, versioned byte format for [`Program`]s: bundle templates,
//! slot opcodes, register operands and LEB128-style variable-length
//! immediates. It is *not* bit-compatible with real IA-64 encodings
//! (those pack 41-bit syllables with template-dependent immediate
//! splitting); it is the format this toolchain uses to save compiled
//! workloads and optimized traces to disk and reload them.

use std::fmt;

use crate::bundle::{Bundle, Template};
use crate::insn::{AccessSize, Addr, CmpOp, Insn, Op, SlotKind};
use crate::program::Program;
use crate::regs::{Fr, Gr, Pr};

/// Magic header bytes.
pub const MAGIC: [u8; 4] = *b"ADOR";
/// Format version.
pub const VERSION: u8 = 1;

/// Error produced when decoding fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The header is missing or wrong.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u8),
    /// The byte stream ended mid-structure.
    Truncated,
    /// An opcode, template or operand byte is invalid.
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic header"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated => write!(f, "byte stream truncated"),
            DecodeError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u64(&mut self, mut v: u64) {
        // LEB128.
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                break;
            }
            self.out.push(byte | 0x80);
        }
    }

    fn i64(&mut self, v: i64) {
        // Zigzag + LEB128.
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.data.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::Invalid("varint"));
            }
        }
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

fn template_code(t: Template) -> u8 {
    match t {
        Template::Mii => 0,
        Template::Mlx => 1,
        Template::Mmi => 2,
        Template::Mfi => 3,
        Template::Mmf => 4,
        Template::Mib => 5,
        Template::Mbb => 6,
        Template::Bbb => 7,
        Template::Mmb => 8,
        Template::Mfb => 9,
    }
}

fn template_from(code: u8) -> Result<Template, DecodeError> {
    Ok(match code {
        0 => Template::Mii,
        1 => Template::Mlx,
        2 => Template::Mmi,
        3 => Template::Mfi,
        4 => Template::Mmf,
        5 => Template::Mib,
        6 => Template::Mbb,
        7 => Template::Bbb,
        8 => Template::Mmb,
        9 => Template::Mfb,
        _ => return Err(DecodeError::Invalid("template")),
    })
}

fn slot_kind_code(k: SlotKind) -> u8 {
    match k {
        SlotKind::M => 0,
        SlotKind::I => 1,
        SlotKind::F => 2,
        SlotKind::B => 3,
        SlotKind::L => 4,
    }
}

fn slot_kind_from(code: u8) -> Result<SlotKind, DecodeError> {
    Ok(match code {
        0 => SlotKind::M,
        1 => SlotKind::I,
        2 => SlotKind::F,
        3 => SlotKind::B,
        4 => SlotKind::L,
        _ => return Err(DecodeError::Invalid("slot kind")),
    })
}

fn size_code(s: AccessSize) -> u8 {
    match s {
        AccessSize::U1 => 0,
        AccessSize::U2 => 1,
        AccessSize::U4 => 2,
        AccessSize::U8 => 3,
    }
}

fn size_from(code: u8) -> Result<AccessSize, DecodeError> {
    Ok(match code {
        0 => AccessSize::U1,
        1 => AccessSize::U2,
        2 => AccessSize::U4,
        3 => AccessSize::U8,
        _ => return Err(DecodeError::Invalid("access size")),
    })
}

fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
        CmpOp::Ltu => 6,
    }
}

fn cmp_from(code: u8) -> Result<CmpOp, DecodeError> {
    Ok(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        6 => CmpOp::Ltu,
        _ => return Err(DecodeError::Invalid("cmp op")),
    })
}

fn encode_insn(w: &mut Writer, insn: &Insn) {
    w.u8(insn.qp.map(|p| p.0 + 1).unwrap_or(0));
    match insn.op {
        Op::Nop(k) => {
            w.u8(0);
            w.u8(slot_kind_code(k));
        }
        Op::Add { d, a, b } => {
            w.u8(1);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::AddI { d, a, imm } => {
            w.u8(2);
            w.u8(d.0);
            w.u8(a.0);
            w.i64(imm);
        }
        Op::Sub { d, a, b } => {
            w.u8(3);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::Shladd { d, a, count, b } => {
            w.u8(4);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(count);
            w.u8(b.0);
        }
        Op::And { d, a, b } => {
            w.u8(5);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::Or { d, a, b } => {
            w.u8(6);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::Xor { d, a, b } => {
            w.u8(7);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::MovL { d, imm } => {
            w.u8(8);
            w.u8(d.0);
            w.i64(imm);
        }
        Op::Mov { d, s } => {
            w.u8(9);
            w.u8(d.0);
            w.u8(s.0);
        }
        Op::Cmp { op, pt, pf, a, b } => {
            w.u8(10);
            w.u8(cmp_code(op));
            w.u8(pt.0);
            w.u8(pf.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::CmpI { op, pt, pf, a, imm } => {
            w.u8(11);
            w.u8(cmp_code(op));
            w.u8(pt.0);
            w.u8(pf.0);
            w.u8(a.0);
            w.i64(imm);
        }
        Op::Ld { d, base, post_inc, size, spec } => {
            w.u8(12);
            w.u8(d.0);
            w.u8(base.0);
            w.i64(post_inc);
            w.u8(size_code(size));
            w.u8(spec as u8);
        }
        Op::St { s, base, post_inc, size } => {
            w.u8(13);
            w.u8(s.0);
            w.u8(base.0);
            w.i64(post_inc);
            w.u8(size_code(size));
        }
        Op::Ldf { d, base, post_inc } => {
            w.u8(14);
            w.u8(d.0);
            w.u8(base.0);
            w.i64(post_inc);
        }
        Op::Stf { s, base, post_inc } => {
            w.u8(15);
            w.u8(s.0);
            w.u8(base.0);
            w.i64(post_inc);
        }
        Op::Lfetch { base, post_inc } => {
            w.u8(16);
            w.u8(base.0);
            w.i64(post_inc);
        }
        Op::Fma { d, a, b, c } => {
            w.u8(17);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
            w.u8(c.0);
        }
        Op::Fadd { d, a, b } => {
            w.u8(18);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::Fmul { d, a, b } => {
            w.u8(19);
            w.u8(d.0);
            w.u8(a.0);
            w.u8(b.0);
        }
        Op::Getf { d, s } => {
            w.u8(20);
            w.u8(d.0);
            w.u8(s.0);
        }
        Op::Setf { d, s } => {
            w.u8(21);
            w.u8(d.0);
            w.u8(s.0);
        }
        Op::Br { target } => {
            w.u8(22);
            w.u64(target.0);
        }
        Op::BrCond { target } => {
            w.u8(23);
            w.u64(target.0);
        }
        Op::BrCall { target } => {
            w.u8(24);
            w.u64(target.0);
        }
        Op::BrRet => w.u8(25),
        Op::Alloc => w.u8(26),
        Op::Halt => w.u8(27),
    }
}

fn decode_insn(r: &mut Reader<'_>) -> Result<Insn, DecodeError> {
    let qp_byte = r.u8()?;
    let qp = if qp_byte == 0 {
        None
    } else if qp_byte <= 64 {
        Some(Pr(qp_byte - 1))
    } else {
        return Err(DecodeError::Invalid("qualifying predicate"));
    };
    let gr = |b: u8| -> Result<Gr, DecodeError> {
        if (b as usize) < crate::regs::NUM_GR {
            Ok(Gr(b))
        } else {
            Err(DecodeError::Invalid("general register"))
        }
    };
    let fr = |b: u8| -> Result<Fr, DecodeError> {
        if (b as usize) < crate::regs::NUM_FR {
            Ok(Fr(b))
        } else {
            Err(DecodeError::Invalid("fp register"))
        }
    };
    let pr = |b: u8| -> Result<Pr, DecodeError> {
        if (b as usize) < crate::regs::NUM_PR {
            Ok(Pr(b))
        } else {
            Err(DecodeError::Invalid("predicate register"))
        }
    };
    let op = match r.u8()? {
        0 => Op::Nop(slot_kind_from(r.u8()?)?),
        1 => Op::Add { d: gr(r.u8()?)?, a: gr(r.u8()?)?, b: gr(r.u8()?)? },
        2 => Op::AddI { d: gr(r.u8()?)?, a: gr(r.u8()?)?, imm: r.i64()? },
        3 => Op::Sub { d: gr(r.u8()?)?, a: gr(r.u8()?)?, b: gr(r.u8()?)? },
        4 => Op::Shladd { d: gr(r.u8()?)?, a: gr(r.u8()?)?, count: r.u8()?, b: gr(r.u8()?)? },
        5 => Op::And { d: gr(r.u8()?)?, a: gr(r.u8()?)?, b: gr(r.u8()?)? },
        6 => Op::Or { d: gr(r.u8()?)?, a: gr(r.u8()?)?, b: gr(r.u8()?)? },
        7 => Op::Xor { d: gr(r.u8()?)?, a: gr(r.u8()?)?, b: gr(r.u8()?)? },
        8 => Op::MovL { d: gr(r.u8()?)?, imm: r.i64()? },
        9 => Op::Mov { d: gr(r.u8()?)?, s: gr(r.u8()?)? },
        10 => Op::Cmp {
            op: cmp_from(r.u8()?)?,
            pt: pr(r.u8()?)?,
            pf: pr(r.u8()?)?,
            a: gr(r.u8()?)?,
            b: gr(r.u8()?)?,
        },
        11 => Op::CmpI {
            op: cmp_from(r.u8()?)?,
            pt: pr(r.u8()?)?,
            pf: pr(r.u8()?)?,
            a: gr(r.u8()?)?,
            imm: r.i64()?,
        },
        12 => Op::Ld {
            d: gr(r.u8()?)?,
            base: gr(r.u8()?)?,
            post_inc: r.i64()?,
            size: size_from(r.u8()?)?,
            spec: r.u8()? != 0,
        },
        13 => Op::St {
            s: gr(r.u8()?)?,
            base: gr(r.u8()?)?,
            post_inc: r.i64()?,
            size: size_from(r.u8()?)?,
        },
        14 => Op::Ldf { d: fr(r.u8()?)?, base: gr(r.u8()?)?, post_inc: r.i64()? },
        15 => Op::Stf { s: fr(r.u8()?)?, base: gr(r.u8()?)?, post_inc: r.i64()? },
        16 => Op::Lfetch { base: gr(r.u8()?)?, post_inc: r.i64()? },
        17 => Op::Fma { d: fr(r.u8()?)?, a: fr(r.u8()?)?, b: fr(r.u8()?)?, c: fr(r.u8()?)? },
        18 => Op::Fadd { d: fr(r.u8()?)?, a: fr(r.u8()?)?, b: fr(r.u8()?)? },
        19 => Op::Fmul { d: fr(r.u8()?)?, a: fr(r.u8()?)?, b: fr(r.u8()?)? },
        20 => Op::Getf { d: gr(r.u8()?)?, s: fr(r.u8()?)? },
        21 => Op::Setf { d: fr(r.u8()?)?, s: gr(r.u8()?)? },
        22 => Op::Br { target: Addr(r.u64()?) },
        23 => Op::BrCond { target: Addr(r.u64()?) },
        24 => Op::BrCall { target: Addr(r.u64()?) },
        25 => Op::BrRet,
        26 => Op::Alloc,
        27 => Op::Halt,
        _ => return Err(DecodeError::Invalid("opcode")),
    };
    Ok(Insn { qp, op })
}

/// Serializes a program (code base, entry, bundles; symbols are not
/// preserved).
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut w = Writer { out: Vec::new() };
    w.out.extend_from_slice(&MAGIC);
    w.u8(VERSION);
    w.u64(program.code_base());
    w.u64(program.entry().0);
    w.u64(program.len() as u64);
    for b in program.bundles() {
        w.u8(template_code(b.template));
        for slot in &b.slots {
            encode_insn(&mut w, slot);
        }
    }
    w.out
}

/// Deserializes a program produced by [`encode_program`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input; decoding never panics.
pub fn decode_program(data: &[u8]) -> Result<Program, DecodeError> {
    if data.len() < 5 || data[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if data[4] != VERSION {
        return Err(DecodeError::BadVersion(data[4]));
    }
    let mut r = Reader { data, pos: 5 };
    let code_base = r.u64()?;
    if code_base % Addr::BUNDLE_BYTES != 0 {
        return Err(DecodeError::Invalid("code base alignment"));
    }
    let entry = Addr(r.u64()?);
    let count = r.u64()? as usize;
    if count > (1 << 24) {
        return Err(DecodeError::Invalid("bundle count"));
    }
    let mut bundles = Vec::with_capacity(count);
    for _ in 0..count {
        let template = template_from(r.u8()?)?;
        let slots = [decode_insn(&mut r)?, decode_insn(&mut r)?, decode_insn(&mut r)?];
        bundles.push(Bundle { template, slots });
    }
    let mut p = Program::new(code_base, bundles);
    p.set_entry(entry);
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::program::CODE_BASE;

    fn sample_program() -> Program {
        let mut a = Asm::new();
        a.global("main");
        a.movl(Gr(14), 0x1000_0000);
        a.movl(Gr(9), 100);
        a.label("loop");
        a.ld(AccessSize::U8, Gr(20), Gr(14), 64);
        a.add(Gr(21), Gr(20), Gr(21));
        a.lfetch(Gr(27), 64);
        a.fma(Fr(8), Fr(9), Fr(1), Fr(8));
        a.addi(Gr(9), Gr(9), -1);
        a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
        a.br_cond(Pr(1), "loop");
        a.emit(Insn::predicated(Pr(3), Op::MovL { d: Gr(14), imm: -12345 }));
        a.halt();
        a.finish(CODE_BASE).unwrap()
    }

    #[test]
    fn round_trip_preserves_every_bundle() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).unwrap();
        assert_eq!(p.code_base(), q.code_base());
        assert_eq!(p.entry(), q.entry());
        assert_eq!(p.bundles(), q.bundles());
    }

    #[test]
    fn decoded_program_executes_identically() {
        use crate::asm::Asm;
        let mut a = Asm::new();
        a.movl(Gr(10), 0);
        a.label("l");
        a.addi(Gr(10), Gr(10), 3);
        a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 300);
        a.br_cond(Pr(1), "l");
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        let q = decode_program(&encode_program(&p)).unwrap();
        // Behavioural equality via the simulator is checked in the
        // workspace integration tests; structural equality here.
        assert_eq!(p.bundles(), q.bundles());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode_program(b"NOPE\x01"), Err(DecodeError::BadMagic));
        assert_eq!(decode_program(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = encode_program(&sample_program());
        bytes[4] = 99;
        assert_eq!(decode_program(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let bytes = encode_program(&sample_program());
        for cut in 0..bytes.len() {
            match decode_program(&bytes[..cut]) {
                Ok(p) => {
                    // Only acceptable if the cut removed no bundles.
                    assert_eq!(p.bundles(), sample_program().bundles());
                }
                Err(_) => {}
            }
        }
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        let mut bytes = encode_program(&sample_program());
        for i in 5..bytes.len() {
            let orig = bytes[i];
            bytes[i] = orig.wrapping_add(0x55);
            let _ = decode_program(&bytes); // must not panic
            bytes[i] = orig;
        }
    }

    #[test]
    fn varint_extremes_round_trip() {
        let mut a = Asm::new();
        a.emit(Op::MovL { d: Gr(5), imm: i64::MIN });
        a.emit(Op::MovL { d: Gr(6), imm: i64::MAX });
        a.emit(Op::AddI { d: Gr(7), a: Gr(7), imm: -1 });
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        let q = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(p.bundles(), q.bundles());
    }
}
