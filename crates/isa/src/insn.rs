//! Instructions of the IA-64-like target.
//!
//! The instruction set is a semantically faithful subset of what the
//! paper's code examples use (Fig. 5 and Fig. 6): integer ALU ops
//! including `shladd`, sized loads with optional post-increment and
//! speculative (`ld.s`, non-faulting) forms, stores, `lfetch` data
//! prefetch, floating-point `fma`, compares writing predicate pairs, and
//! IP-relative branches. Every instruction carries an optional
//! *qualifying predicate* as on Itanium.

use std::fmt;

use crate::regs::{Fr, Gr, Pr};

/// A byte address in the simulated address space.
///
/// Code addresses are bundle-aligned (16 bytes per bundle, as on IA-64);
/// branch targets are always bundle-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Size of one instruction bundle in bytes.
    pub const BUNDLE_BYTES: u64 = 16;

    /// Rounds down to the containing bundle boundary.
    pub fn bundle_align(self) -> Addr {
        Addr(self.0 & !(Self::BUNDLE_BYTES - 1))
    }

    /// Returns the address `n` bundles after `self`.
    pub fn offset_bundles(self, n: i64) -> Addr {
        Addr((self.0 as i64 + n * Self::BUNDLE_BYTES as i64) as u64)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// A precise program counter: bundle address plus slot within the bundle.
///
/// PMU events (DEAR miss source, BTB branch source) are reported at this
/// granularity, which is what lets ADORE map a cache-miss sample back to
/// an individual load instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pc {
    /// Bundle-aligned address.
    pub addr: Addr,
    /// Slot within the bundle, 0–2.
    pub slot: u8,
}

impl Pc {
    /// Creates a program counter from a bundle address and slot.
    pub fn new(addr: Addr, slot: u8) -> Pc {
        debug_assert!(slot < 3, "slot out of range");
        Pc { addr: addr.bundle_align(), slot }
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.addr, self.slot)
    }
}

/// Access size of a memory operation in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 1 byte (`ld1`/`st1`).
    U1,
    /// 2 bytes (`ld2`/`st2`).
    U2,
    /// 4 bytes (`ld4`/`st4`).
    U4,
    /// 8 bytes (`ld8`/`st8`).
    U8,
}

impl AccessSize {
    /// Width of the access in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            AccessSize::U1 => 1,
            AccessSize::U2 => 2,
            AccessSize::U4 => 4,
            AccessSize::U8 => 8,
        }
    }
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// Comparison operator for `cmp` instructions (signed unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
}

impl CmpOp {
    /// Evaluates the comparison on two 64-bit values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Ltu => (a as u64) < (b as u64),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Ltu => "ltu",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for CmpOp {
    type Err = ();

    /// Parses the mnemonic form produced by `Display` (`eq`, `ne`,
    /// `lt`, `le`, `gt`, `ge`, `ltu`).
    fn from_str(s: &str) -> Result<CmpOp, ()> {
        Ok(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            "ltu" => CmpOp::Ltu,
            _ => return Err(()),
        })
    }
}

/// The kind of issue slot an instruction requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Memory slot (loads, stores, `lfetch`, `alloc`).
    M,
    /// Integer ALU slot.
    I,
    /// Floating-point slot.
    F,
    /// Branch slot.
    B,
    /// Long-immediate slot (`movl`); occupies slots 1+2 of an MLX bundle.
    L,
}

impl fmt::Display for SlotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SlotKind::M => "m",
            SlotKind::I => "i",
            SlotKind::F => "f",
            SlotKind::B => "b",
            SlotKind::L => "l",
        };
        f.write_str(s)
    }
}

/// Operation payload of an instruction.
///
/// Field names follow the IA-64 convention throughout: `d` destination,
/// `a`/`b` sources, `base` the address register, `s` a source register.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// No-operation occupying a slot of the given kind.
    Nop(SlotKind),
    /// `add d = a, b`.
    Add { d: Gr, a: Gr, b: Gr },
    /// `adds d = imm, a` (add short immediate).
    AddI { d: Gr, a: Gr, imm: i64 },
    /// `sub d = a, b`.
    Sub { d: Gr, a: Gr, b: Gr },
    /// `shladd d = a << count + b`.
    Shladd { d: Gr, a: Gr, count: u8, b: Gr },
    /// `and d = a, b`.
    And { d: Gr, a: Gr, b: Gr },
    /// `or d = a, b`.
    Or { d: Gr, a: Gr, b: Gr },
    /// `xor d = a, b`.
    Xor { d: Gr, a: Gr, b: Gr },
    /// `movl d = imm` (long immediate; L slot).
    MovL { d: Gr, imm: i64 },
    /// `mov d = s` (register move; expands to `adds d = 0, s`).
    Mov { d: Gr, s: Gr },
    /// `cmp.op pt, pf = a, b`: sets `pt` to the comparison result and
    /// `pf` to its complement.
    Cmp { op: CmpOp, pt: Pr, pf: Pr, a: Gr, b: Gr },
    /// `cmp.op pt, pf = imm, a` with an immediate operand `b = imm`.
    CmpI { op: CmpOp, pt: Pr, pf: Pr, a: Gr, imm: i64 },
    /// `ldSZ d = [base], post_inc`: sized integer load with optional
    /// post-increment (`post_inc == 0` means plain `ld`). `spec` marks a
    /// speculative, non-faulting load (`ld.s`), which ADORE uses when
    /// prefetching indirect references so inserted code can never fault.
    Ld { d: Gr, base: Gr, post_inc: i64, size: AccessSize, spec: bool },
    /// `stSZ [base] = s, post_inc`: sized integer store.
    St { s: Gr, base: Gr, post_inc: i64, size: AccessSize },
    /// `ldfd d = [base], post_inc`: 8-byte floating-point load. FP loads
    /// bypass the L1D cache on Itanium 2, which the simulator models.
    Ldf { d: Fr, base: Gr, post_inc: i64 },
    /// `stfd [base] = s, post_inc`: 8-byte floating-point store.
    Stf { s: Fr, base: Gr, post_inc: i64 },
    /// `lfetch [base], post_inc`: non-faulting data prefetch hint.
    Lfetch { base: Gr, post_inc: i64 },
    /// `fma d = a * b + c`.
    Fma { d: Fr, a: Fr, b: Fr, c: Fr },
    /// `fadd d = a + b`.
    Fadd { d: Fr, a: Fr, b: Fr },
    /// `fmul d = a * b`.
    Fmul { d: Fr, a: Fr, b: Fr },
    /// `getf d = s`: move FP register bits to an integer register,
    /// truncating the float to an integer (models fp→int conversion in
    /// address computations, which defeats ADORE's stride detection).
    Getf { d: Gr, s: Fr },
    /// `setf d = s`: move an integer register into an FP register.
    Setf { d: Fr, s: Gr },
    /// `br target`: unconditional IP-relative branch.
    Br { target: Addr },
    /// `(qp) br.cond target`: conditional branch on the qualifying
    /// predicate of the instruction.
    BrCond { target: Addr },
    /// `br.call target`: call; pushes the return address on the
    /// simulator's return stack (stands in for `b0`).
    BrCall { target: Addr },
    /// `br.ret`: return to the most recent call site.
    BrRet,
    /// `alloc`: register-frame allocation marker (no simulated effect).
    Alloc,
    /// Terminate the program (stands in for the `exit` syscall).
    Halt,
}

impl Op {
    /// The issue-slot kind this operation requires.
    pub fn slot_kind(&self) -> SlotKind {
        match self {
            Op::Nop(k) => *k,
            Op::Add { .. }
            | Op::AddI { .. }
            | Op::Sub { .. }
            | Op::Shladd { .. }
            | Op::And { .. }
            | Op::Or { .. }
            | Op::Xor { .. }
            | Op::Mov { .. }
            | Op::Cmp { .. }
            | Op::CmpI { .. } => SlotKind::I,
            Op::MovL { .. } => SlotKind::L,
            Op::Ld { .. }
            | Op::St { .. }
            | Op::Ldf { .. }
            | Op::Stf { .. }
            | Op::Lfetch { .. }
            | Op::Getf { .. }
            | Op::Setf { .. }
            | Op::Alloc => SlotKind::M,
            Op::Fma { .. } | Op::Fadd { .. } | Op::Fmul { .. } => SlotKind::F,
            Op::Br { .. } | Op::BrCond { .. } | Op::BrCall { .. } | Op::BrRet | Op::Halt => {
                SlotKind::B
            }
        }
    }

    /// True for any branch-unit operation.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Op::Br { .. } | Op::BrCond { .. } | Op::BrCall { .. } | Op::BrRet | Op::Halt
        )
    }

    /// True for memory reads that consume cache bandwidth (`ld`, `ldf`).
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::Ldf { .. })
    }

    /// The branch target, if this is a direct branch.
    pub fn branch_target(&self) -> Option<Addr> {
        match self {
            Op::Br { target } | Op::BrCond { target } | Op::BrCall { target } => Some(*target),
            _ => None,
        }
    }

    /// Rewrites the branch target of a direct branch; returns `false`
    /// if the operation is not a direct branch.
    pub fn set_branch_target(&mut self, new: Addr) -> bool {
        match self {
            Op::Br { target } | Op::BrCond { target } | Op::BrCall { target } => {
                *target = new;
                true
            }
            _ => false,
        }
    }

    /// General registers read by this operation (base registers of
    /// memory ops included). Used by ADORE's dependence slicing.
    pub fn gr_reads(&self) -> Vec<Gr> {
        match *self {
            Op::Add { a, b, .. }
            | Op::Sub { a, b, .. }
            | Op::And { a, b, .. }
            | Op::Or { a, b, .. }
            | Op::Xor { a, b, .. }
            | Op::Cmp { a, b, .. } => vec![a, b],
            Op::Shladd { a, b, .. } => vec![a, b],
            Op::AddI { a, .. } | Op::CmpI { a, .. } => vec![a],
            Op::Mov { s, .. } => vec![s],
            Op::Ld { base, .. } | Op::Ldf { base, .. } | Op::Lfetch { base, .. } => vec![base],
            Op::St { s, base, .. } => vec![s, base],
            Op::Stf { base, .. } => vec![base],
            Op::Setf { s, .. } => vec![s],
            _ => vec![],
        }
    }

    /// The general register written by this operation, if any.
    pub fn gr_write(&self) -> Option<Gr> {
        match *self {
            Op::Add { d, .. }
            | Op::AddI { d, .. }
            | Op::Sub { d, .. }
            | Op::Shladd { d, .. }
            | Op::And { d, .. }
            | Op::Or { d, .. }
            | Op::Xor { d, .. }
            | Op::MovL { d, .. }
            | Op::Mov { d, .. }
            | Op::Getf { d, .. }
            | Op::Ld { d, .. } => Some(d),
            // Post-increment forms also write the base register; handled
            // separately by `gr_post_inc_write`.
            _ => None,
        }
    }

    /// The base register written by a post-increment addressing form,
    /// together with the increment, if any.
    pub fn gr_post_inc_write(&self) -> Option<(Gr, i64)> {
        match *self {
            Op::Ld { base, post_inc, .. }
            | Op::St { base, post_inc, .. }
            | Op::Ldf { base, post_inc, .. }
            | Op::Stf { base, post_inc, .. }
            | Op::Lfetch { base, post_inc } => {
                if post_inc != 0 {
                    Some((base, post_inc))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// A complete instruction: operation plus optional qualifying predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Insn {
    /// Qualifying predicate; the instruction is a no-op when it is false.
    pub qp: Option<Pr>,
    /// The operation.
    pub op: Op,
}

impl Insn {
    /// Creates an unpredicated instruction.
    pub fn new(op: Op) -> Insn {
        Insn { qp: None, op }
    }

    /// Creates an instruction guarded by the qualifying predicate `qp`.
    pub fn predicated(qp: Pr, op: Op) -> Insn {
        Insn { qp: Some(qp), op }
    }

    /// A no-op for the given slot kind.
    pub fn nop(kind: SlotKind) -> Insn {
        Insn::new(Op::Nop(kind))
    }

    /// True if this is a no-op (of any slot kind).
    pub fn is_nop(&self) -> bool {
        matches!(self.op, Op::Nop(_))
    }
}

impl From<Op> for Insn {
    fn from(op: Op) -> Insn {
        Insn::new(op)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(qp) = self.qp {
            write!(f, "({qp}) ")?;
        }
        match self.op {
            Op::Nop(k) => write!(f, "nop.{k}"),
            Op::Add { d, a, b } => write!(f, "add {d} = {a}, {b}"),
            Op::AddI { d, a, imm } => write!(f, "adds {d} = {imm}, {a}"),
            Op::Sub { d, a, b } => write!(f, "sub {d} = {a}, {b}"),
            Op::Shladd { d, a, count, b } => write!(f, "shladd {d} = {a}, {count}, {b}"),
            Op::And { d, a, b } => write!(f, "and {d} = {a}, {b}"),
            Op::Or { d, a, b } => write!(f, "or {d} = {a}, {b}"),
            Op::Xor { d, a, b } => write!(f, "xor {d} = {a}, {b}"),
            Op::MovL { d, imm } => write!(f, "movl {d} = {imm:#x}"),
            Op::Mov { d, s } => write!(f, "mov {d} = {s}"),
            Op::Cmp { op, pt, pf, a, b } => write!(f, "cmp.{op} {pt}, {pf} = {a}, {b}"),
            Op::CmpI { op, pt, pf, a, imm } => write!(f, "cmp.{op} {pt}, {pf} = {imm}, {a}"),
            Op::Ld { d, base, post_inc, size, spec } => {
                let s = if spec { ".s" } else { "" };
                if post_inc != 0 {
                    write!(f, "ld{size}{s} {d} = [{base}], {post_inc}")
                } else {
                    write!(f, "ld{size}{s} {d} = [{base}]")
                }
            }
            Op::St { s, base, post_inc, size } => {
                if post_inc != 0 {
                    write!(f, "st{size} [{base}] = {s}, {post_inc}")
                } else {
                    write!(f, "st{size} [{base}] = {s}")
                }
            }
            Op::Ldf { d, base, post_inc } => {
                if post_inc != 0 {
                    write!(f, "ldfd {d} = [{base}], {post_inc}")
                } else {
                    write!(f, "ldfd {d} = [{base}]")
                }
            }
            Op::Stf { s, base, post_inc } => {
                if post_inc != 0 {
                    write!(f, "stfd [{base}] = {s}, {post_inc}")
                } else {
                    write!(f, "stfd [{base}] = {s}")
                }
            }
            Op::Lfetch { base, post_inc } => {
                if post_inc != 0 {
                    write!(f, "lfetch [{base}], {post_inc}")
                } else {
                    write!(f, "lfetch [{base}]")
                }
            }
            Op::Fma { d, a, b, c } => write!(f, "fma {d} = {a}, {b}, {c}"),
            Op::Fadd { d, a, b } => write!(f, "fadd {d} = {a}, {b}"),
            Op::Fmul { d, a, b } => write!(f, "fmul {d} = {a}, {b}"),
            Op::Getf { d, s } => write!(f, "getf.sig {d} = {s}"),
            Op::Setf { d, s } => write!(f, "setf.sig {d} = {s}"),
            Op::Br { target } => write!(f, "br {target}"),
            Op::BrCond { target } => write!(f, "br.cond {target}"),
            Op::BrCall { target } => write!(f, "br.call {target}"),
            Op::BrRet => write!(f, "br.ret"),
            Op::Alloc => write!(f, "alloc"),
            Op::Halt => write!(f, "break.halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_mnemonics_round_trip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Ltu,
        ] {
            assert_eq!(op.to_string().parse::<CmpOp>(), Ok(op));
        }
        assert_eq!("frob".parse::<CmpOp>(), Err(()));
    }

    #[test]
    fn addr_alignment() {
        assert_eq!(Addr(0x1007).bundle_align(), Addr(0x1000));
        assert_eq!(Addr(0x1000).bundle_align(), Addr(0x1000));
        assert_eq!(Addr(0x1000).offset_bundles(2), Addr(0x1020));
        assert_eq!(Addr(0x1020).offset_bundles(-1), Addr(0x1010));
    }

    #[test]
    fn cmp_semantics() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(-1, 0));
        assert!(!CmpOp::Ltu.eval(-1, 0)); // -1 as u64 is huge
        assert!(CmpOp::Ge.eval(5, 5));
        assert!(CmpOp::Gt.eval(6, 5));
        assert!(CmpOp::Le.eval(5, 5));
    }

    #[test]
    fn slot_kinds() {
        assert_eq!(Op::Add { d: Gr(1), a: Gr(2), b: Gr(3) }.slot_kind(), SlotKind::I);
        assert_eq!(
            Op::Ld { d: Gr(1), base: Gr(2), post_inc: 0, size: AccessSize::U8, spec: false }
                .slot_kind(),
            SlotKind::M
        );
        assert_eq!(Op::Lfetch { base: Gr(2), post_inc: 8 }.slot_kind(), SlotKind::M);
        assert_eq!(Op::Br { target: Addr(0) }.slot_kind(), SlotKind::B);
        assert_eq!(Op::Fma { d: Fr(2), a: Fr(3), b: Fr(4), c: Fr(5) }.slot_kind(), SlotKind::F);
        assert_eq!(Op::MovL { d: Gr(1), imm: 7 }.slot_kind(), SlotKind::L);
    }

    #[test]
    fn branch_target_rewrite() {
        let mut op = Op::BrCond { target: Addr(0x100) };
        assert_eq!(op.branch_target(), Some(Addr(0x100)));
        assert!(op.set_branch_target(Addr(0x200)));
        assert_eq!(op.branch_target(), Some(Addr(0x200)));
        let mut add = Op::Add { d: Gr(1), a: Gr(2), b: Gr(3) };
        assert!(!add.set_branch_target(Addr(0x300)));
    }

    #[test]
    fn reads_and_writes() {
        let ld = Op::Ld { d: Gr(20), base: Gr(14), post_inc: 4, size: AccessSize::U4, spec: false };
        assert_eq!(ld.gr_reads(), vec![Gr(14)]);
        assert_eq!(ld.gr_write(), Some(Gr(20)));
        assert_eq!(ld.gr_post_inc_write(), Some((Gr(14), 4)));

        let st = Op::St { s: Gr(20), base: Gr(14), post_inc: 0, size: AccessSize::U4 };
        assert_eq!(st.gr_reads(), vec![Gr(20), Gr(14)]);
        assert_eq!(st.gr_write(), None);
        assert_eq!(st.gr_post_inc_write(), None);
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Insn::new(Op::Ld {
            d: Gr(20),
            base: Gr(14),
            post_inc: 4,
            size: AccessSize::U4,
            spec: false,
        });
        assert_eq!(i.to_string(), "ld4 r20 = [r14], 4");
        let l = Insn::new(Op::Lfetch { base: Gr(27), post_inc: 12 });
        assert_eq!(l.to_string(), "lfetch [r27], 12");
        let p = Insn::predicated(Pr(6), Op::Br { target: Addr(0x40000000) });
        assert_eq!(p.to_string(), "(p6) br 0x40000000");
    }
}
