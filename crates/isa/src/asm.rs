//! A small assembler with labels and automatic bundle packing.
//!
//! The compiler crate and ADORE's prefetch generator both produce
//! instruction streams; `Asm` packs them greedily into legal bundles,
//! binds labels to bundle boundaries and resolves branch fixups when the
//! final [`Program`] is produced.

use std::collections::HashMap;
use std::fmt;

use crate::bundle::Bundle;
use crate::insn::{AccessSize, Addr, CmpOp, Insn, Op, SlotKind};
use crate::program::Program;
use crate::regs::{Fr, Gr, Pr};

/// Error produced when assembling a program fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never bound.
    UndefinedLabel(String),
    /// The same label was bound twice.
    DuplicateLabel(String),
    /// An instruction could not be packed into any bundle template.
    Unpackable(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Unpackable(i) => write!(f, "instruction `{i}` fits no bundle template"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
struct Pending {
    insn: Insn,
    fixup: Option<String>,
}

/// An incremental assembler. See the crate-level docs for an example.
#[derive(Debug, Default)]
pub struct Asm {
    bundles: Vec<Bundle>,
    pending: Vec<Pending>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, usize, String)>, // bundle, slot, label
    symbols: Vec<(usize, String)>,
    error: Option<AsmError>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Emits one instruction, packing greedily into the current bundle.
    pub fn emit(&mut self, insn: impl Into<Insn>) {
        self.emit_with_fixup(insn.into(), None);
    }

    fn emit_with_fixup(&mut self, insn: Insn, fixup: Option<String>) {
        if self.error.is_some() {
            return;
        }
        self.pending.push(Pending { insn, fixup });
        let insns: Vec<Insn> = self.pending.iter().map(|p| p.insn).collect();
        if Bundle::pack(&insns).is_none() {
            let last = self.pending.pop().expect("just pushed");
            self.flush();
            self.pending.push(last);
            let lone = [self.pending[0].insn];
            if Bundle::pack(&lone).is_none() {
                self.error = Some(AsmError::Unpackable(lone[0].to_string()));
                self.pending.clear();
            }
        }
    }

    /// Ends the current bundle (an instruction-group stop).
    pub fn flush(&mut self) {
        if self.pending.is_empty() || self.error.is_some() {
            return;
        }
        let insns: Vec<Insn> = self.pending.iter().map(|p| p.insn).collect();
        let bundle = Bundle::pack(&insns).expect("pending was kept packable");
        // Non-padding slots appear in pending order; recover each
        // pending instruction's slot to anchor its fixup.
        let bidx = self.bundles.len();
        let mut slot = 0usize;
        for p in &self.pending {
            while slot < 3 && bundle.slots[slot] != p.insn {
                slot += 1;
            }
            debug_assert!(slot < 3, "packed instruction lost");
            if let Some(label) = &p.fixup {
                self.fixups.push((bidx, slot, label.clone()));
            }
            slot += 1;
        }
        self.bundles.push(bundle);
        self.pending.clear();
    }

    /// Emits a pre-packed bundle verbatim.
    pub fn emit_bundle(&mut self, bundle: Bundle) {
        self.flush();
        self.bundles.push(bundle);
    }

    /// Binds `name` to the next bundle boundary.
    pub fn label(&mut self, name: impl Into<String>) {
        self.flush();
        let name = name.into();
        if self.labels.insert(name.clone(), self.bundles.len()).is_some() {
            self.error.get_or_insert(AsmError::DuplicateLabel(name));
        }
    }

    /// Binds `name` as both a label and a symbol (shows in listings).
    pub fn global(&mut self, name: impl Into<String>) {
        let name = name.into();
        self.label(name.clone());
        self.symbols.push((self.bundles.len(), name));
    }

    /// Current bundle index (forces a bundle boundary).
    pub fn here(&mut self) -> usize {
        self.flush();
        self.bundles.len()
    }

    // ---- convenience emitters -------------------------------------

    /// `add d = a, b`
    pub fn add(&mut self, d: Gr, a: Gr, b: Gr) {
        self.emit(Op::Add { d, a, b });
    }

    /// `adds d = imm, a`
    pub fn addi(&mut self, d: Gr, a: Gr, imm: i64) {
        self.emit(Op::AddI { d, a, imm });
    }

    /// `sub d = a, b`
    pub fn sub(&mut self, d: Gr, a: Gr, b: Gr) {
        self.emit(Op::Sub { d, a, b });
    }

    /// `shladd d = a << count + b`
    pub fn shladd(&mut self, d: Gr, a: Gr, count: u8, b: Gr) {
        self.emit(Op::Shladd { d, a, count, b });
    }

    /// `movl d = imm`
    pub fn movl(&mut self, d: Gr, imm: i64) {
        self.emit(Op::MovL { d, imm });
    }

    /// `mov d = s`
    pub fn mov(&mut self, d: Gr, s: Gr) {
        self.emit(Op::Mov { d, s });
    }

    /// `ldSZ d = [base], post_inc`
    pub fn ld(&mut self, size: AccessSize, d: Gr, base: Gr, post_inc: i64) {
        self.emit(Op::Ld { d, base, post_inc, size, spec: false });
    }

    /// `ldSZ.s d = [base], post_inc` (speculative, non-faulting)
    pub fn ld_s(&mut self, size: AccessSize, d: Gr, base: Gr, post_inc: i64) {
        self.emit(Op::Ld { d, base, post_inc, size, spec: true });
    }

    /// `stSZ [base] = s, post_inc`
    pub fn st(&mut self, size: AccessSize, base: Gr, s: Gr, post_inc: i64) {
        self.emit(Op::St { s, base, post_inc, size });
    }

    /// `ldfd d = [base], post_inc`
    pub fn ldf(&mut self, d: Fr, base: Gr, post_inc: i64) {
        self.emit(Op::Ldf { d, base, post_inc });
    }

    /// `stfd [base] = s, post_inc`
    pub fn stf(&mut self, base: Gr, s: Fr, post_inc: i64) {
        self.emit(Op::Stf { s, base, post_inc });
    }

    /// `lfetch [base], post_inc`
    pub fn lfetch(&mut self, base: Gr, post_inc: i64) {
        self.emit(Op::Lfetch { base, post_inc });
    }

    /// `fma d = a, b, c`
    pub fn fma(&mut self, d: Fr, a: Fr, b: Fr, c: Fr) {
        self.emit(Op::Fma { d, a, b, c });
    }

    /// `cmp.op pt, pf = a, b`
    pub fn cmp(&mut self, op: CmpOp, pt: Pr, pf: Pr, a: Gr, b: Gr) {
        self.emit(Op::Cmp { op, pt, pf, a, b });
    }

    /// `cmp.op pt, pf = imm, a`
    pub fn cmpi(&mut self, op: CmpOp, pt: Pr, pf: Pr, a: Gr, imm: i64) {
        self.emit(Op::CmpI { op, pt, pf, a, imm });
    }

    /// `br label` (unconditional)
    pub fn br(&mut self, label: impl Into<String>) {
        self.emit_with_fixup(Insn::new(Op::Br { target: Addr(0) }), Some(label.into()));
    }

    /// `(qp) br.cond label`
    pub fn br_cond(&mut self, qp: Pr, label: impl Into<String>) {
        self.emit_with_fixup(
            Insn::predicated(qp, Op::BrCond { target: Addr(0) }),
            Some(label.into()),
        );
    }

    /// `br.call label`. The call ends its bundle: the return address is
    /// the *next bundle*, so any instruction packed after a call in the
    /// same bundle would be unreachable.
    pub fn br_call(&mut self, label: impl Into<String>) {
        self.emit_with_fixup(Insn::new(Op::BrCall { target: Addr(0) }), Some(label.into()));
        self.flush();
    }

    /// `br.ret`
    pub fn ret(&mut self) {
        self.emit(Op::BrRet);
    }

    /// Terminates the program.
    pub fn halt(&mut self) {
        self.emit(Op::Halt);
    }

    /// A nop of the given kind (scheduling filler, leaves a free slot).
    pub fn nop(&mut self, kind: SlotKind) {
        self.emit(Insn::nop(kind));
    }

    /// Pads the code with `n` bundles of nops. The workload generator
    /// uses this to spread code across the I-cache (e.g. for a
    /// gcc-shaped large-footprint binary).
    pub fn pad_bundles(&mut self, n: usize) {
        self.flush();
        for _ in 0..n {
            self.bundles.push(
                Bundle::pack(&[Insn::nop(SlotKind::M)]).expect("nop bundle always packs"),
            );
        }
    }

    /// Finishes assembly, resolving all label fixups.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined or duplicate labels, or if any
    /// instruction could not be packed.
    pub fn finish(mut self, code_base: u64) -> Result<Program, AsmError> {
        self.flush();
        if let Some(e) = self.error {
            return Err(e);
        }
        let base = code_base;
        for (bidx, slot, label) in &self.fixups {
            let target_idx = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            let target = Addr(base + target_idx as u64 * Addr::BUNDLE_BYTES);
            let ok = self.bundles[*bidx].slots[*slot].op.set_branch_target(target);
            debug_assert!(ok, "fixup on non-branch");
        }
        let mut program = Program::new(base, self.bundles);
        for (idx, name) in self.symbols {
            let addr = program.addr_of(idx);
            program.add_symbol(addr, name);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CODE_BASE;

    #[test]
    fn counting_loop_assembles_and_resolves() {
        let mut a = Asm::new();
        a.global("main");
        a.movl(Gr(14), 0);
        a.movl(Gr(15), 10);
        a.label("loop");
        a.addi(Gr(14), Gr(14), 1);
        a.cmp(CmpOp::Lt, Pr(1), Pr(2), Gr(14), Gr(15));
        a.br_cond(Pr(1), "loop");
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        assert!(p.len() >= 3);
        assert_eq!(p.symbol_at(Addr(CODE_BASE)), Some("main"));
        // The back edge must point at the bundle bound by `loop`.
        let mut saw_backedge = false;
        for b in p.bundles() {
            for s in &b.slots {
                if let Op::BrCond { target } = s.op {
                    saw_backedge = true;
                    assert!(p.index_of(target).is_some());
                }
            }
        }
        assert!(saw_backedge);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new();
        a.br("nowhere");
        assert_eq!(a.finish(CODE_BASE), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        a.label("x");
        a.addi(Gr(1), Gr(0), 1);
        a.label("x");
        assert!(matches!(a.finish(CODE_BASE), Err(AsmError::DuplicateLabel(_))));
    }

    #[test]
    fn greedy_packing_splits_bundles() {
        let mut a = Asm::new();
        // Four integer adds cannot share one bundle (max two I slots).
        for i in 0..4 {
            a.addi(Gr(10 + i), Gr(0), i as i64);
        }
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        assert!(p.len() >= 2);
    }

    #[test]
    fn label_is_bundle_aligned() {
        let mut a = Asm::new();
        a.addi(Gr(1), Gr(0), 1);
        a.label("l");
        a.addi(Gr(2), Gr(0), 2);
        a.br("l");
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        // The add before the label and the add after it are in
        // different bundles.
        assert!(p.len() >= 2);
    }

    #[test]
    fn pad_bundles_grows_code() {
        let mut a = Asm::new();
        a.pad_bundles(32);
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        assert!(p.len() >= 33);
    }

    #[test]
    fn here_reports_bundle_index() {
        let mut a = Asm::new();
        assert_eq!(a.here(), 0);
        a.addi(Gr(1), Gr(0), 1);
        assert_eq!(a.here(), 1);
    }
}
