//! Instruction bundles and templates.
//!
//! IA-64 encodes instructions in 16-byte bundles of three slots; a
//! template field constrains which unit kind each slot may hold. This
//! matters to ADORE twice: the trace selector must *split* a bundle when
//! the taken branch sits in a middle slot (paper §2.4), and the prefetch
//! scheduler looks for free memory slots so inserted `lfetch`es do not
//! grow the trace (paper §3.5).

use std::fmt;

use crate::insn::{Insn, SlotKind};

/// A bundle template: the slot-kind triple and whether it is legal.
///
/// The set mirrors the common IA-64 templates. `L` (long immediate)
/// occupies slot 1 and forces slot 2 to be an `X` continuation, which we
/// model as requiring slot 2 to be a nop of kind `L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// Memory, integer, integer.
    Mii,
    /// Memory, long-immediate (slot 2 is the immediate continuation).
    Mlx,
    /// Memory, memory, integer.
    Mmi,
    /// Memory, floating-point, integer.
    Mfi,
    /// Memory, memory, floating-point.
    Mmf,
    /// Memory, integer, branch.
    Mib,
    /// Memory, branch, branch.
    Mbb,
    /// Branch, branch, branch.
    Bbb,
    /// Memory, memory, branch.
    Mmb,
    /// Memory, floating-point, branch.
    Mfb,
}

impl Template {
    /// All templates, in the order the packer tries them.
    pub const ALL: [Template; 10] = [
        Template::Mii,
        Template::Mmi,
        Template::Mfi,
        Template::Mmf,
        Template::Mib,
        Template::Mmb,
        Template::Mfb,
        Template::Mbb,
        Template::Bbb,
        Template::Mlx,
    ];

    /// The slot kinds of this template.
    pub fn kinds(self) -> [SlotKind; 3] {
        use SlotKind::*;
        match self {
            Template::Mii => [M, I, I],
            Template::Mlx => [M, L, L],
            Template::Mmi => [M, M, I],
            Template::Mfi => [M, F, I],
            Template::Mmf => [M, M, F],
            Template::Mib => [M, I, B],
            Template::Mbb => [M, B, B],
            Template::Bbb => [B, B, B],
            Template::Mmb => [M, M, B],
            Template::Mfb => [M, F, B],
        }
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Template::Mii => "MII",
            Template::Mlx => "MLX",
            Template::Mmi => "MMI",
            Template::Mfi => "MFI",
            Template::Mmf => "MMF",
            Template::Mib => "MIB",
            Template::Mbb => "MBB",
            Template::Bbb => "BBB",
            Template::Mmb => "MMB",
            Template::Mfb => "MFB",
        };
        f.write_str(s)
    }
}

/// A 16-byte instruction bundle: three slots plus a template.
#[derive(Debug, Clone, PartialEq)]
pub struct Bundle {
    /// The template constraining slot kinds.
    pub template: Template,
    /// The three instruction slots.
    pub slots: [Insn; 3],
}

impl Bundle {
    /// Builds a bundle from up to three instructions, padding remaining
    /// slots with appropriately-kinded nops.
    ///
    /// Returns `None` when no template can hold the instruction kinds in
    /// the given order.
    pub fn pack(insns: &[Insn]) -> Option<Bundle> {
        if insns.is_empty() || insns.len() > 3 {
            return None;
        }
        'template: for template in Template::ALL {
            let kinds = template.kinds();
            // Try to place the instructions in order into compatible
            // slots, left to right, filling skipped slots with nops.
            let mut slots = [
                Insn::nop(kinds[0]),
                Insn::nop(kinds[1]),
                Insn::nop(kinds[2]),
            ];
            let mut slot = 0usize;
            for insn in insns {
                let want = insn.op.slot_kind();
                loop {
                    if slot >= 3 {
                        continue 'template;
                    }
                    if kinds[slot] == want {
                        slots[slot] = *insn;
                        slot += 1;
                        break;
                    }
                    slot += 1;
                }
            }
            // MLX: the long-immediate consumes both slot 1 and slot 2.
            if template == Template::Mlx && !slots[2].is_nop() {
                continue;
            }
            return Some(Bundle { template, slots });
        }
        None
    }

    /// A bundle holding a single unconditional branch, as written by the
    /// trace patcher over the first bundle of a patched trace.
    pub fn branch_only(insn: Insn) -> Bundle {
        debug_assert!(insn.op.is_branch());
        Bundle {
            template: Template::Mib,
            slots: [Insn::nop(SlotKind::M), Insn::nop(SlotKind::I), insn],
        }
    }

    /// Iterates over non-nop instructions with their slot index.
    pub fn iter_real(&self) -> impl Iterator<Item = (u8, &Insn)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, i)| !i.is_nop())
            .map(|(s, i)| (s as u8, i))
    }

    /// Index of the first free (nop) slot of the requested kind, if any.
    pub fn free_slot(&self, kind: SlotKind) -> Option<u8> {
        let kinds = self.template.kinds();
        (0..3).find(|&s| kinds[s] == kind && self.slots[s].is_nop()).map(|s| s as u8)
    }

    /// True if any slot holds a branch-unit operation.
    pub fn has_branch(&self) -> bool {
        self.slots.iter().any(|i| i.op.is_branch())
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {{ {} ; {} ; {} }}",
            self.template, self.slots[0], self.slots[1], self.slots[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AccessSize, Addr, Op};
    use crate::regs::{Fr, Gr};

    fn ld(d: u8, base: u8) -> Insn {
        Insn::new(Op::Ld {
            d: Gr(d),
            base: Gr(base),
            post_inc: 0,
            size: AccessSize::U8,
            spec: false,
        })
    }

    fn add(d: u8, a: u8, b: u8) -> Insn {
        Insn::new(Op::Add { d: Gr(d), a: Gr(a), b: Gr(b) })
    }

    fn br() -> Insn {
        Insn::new(Op::Br { target: Addr(0x1000) })
    }

    #[test]
    fn pack_mii() {
        let b = Bundle::pack(&[ld(4, 5), add(1, 2, 3), add(6, 7, 8)]).unwrap();
        assert_eq!(b.template, Template::Mii);
        assert!(b.iter_real().count() == 3);
    }

    #[test]
    fn pack_mmi() {
        let b = Bundle::pack(&[ld(4, 5), ld(6, 7), add(1, 2, 3)]).unwrap();
        assert_eq!(b.template, Template::Mmi);
    }

    #[test]
    fn pack_mmf() {
        let fma = Insn::new(Op::Fma { d: Fr(2), a: Fr(3), b: Fr(4), c: Fr(2) });
        let b = Bundle::pack(&[ld(4, 5), ld(6, 7), fma]).unwrap();
        assert_eq!(b.template, Template::Mmf);
    }

    #[test]
    fn pack_branch_goes_to_slot2() {
        let b = Bundle::pack(&[ld(4, 5), br()]).unwrap();
        assert_eq!(b.template, Template::Mib);
        assert!(b.slots[2].op.is_branch());
        assert!(b.slots[1].is_nop());
    }

    #[test]
    fn pack_single_int() {
        let b = Bundle::pack(&[add(1, 2, 3)]).unwrap();
        // Packed with a leading free M slot — exactly what the prefetch
        // scheduler wants to find.
        assert_eq!(b.free_slot(SlotKind::M), Some(0));
    }

    #[test]
    fn pack_movl_uses_mlx() {
        let movl = Insn::new(Op::MovL { d: Gr(9), imm: 0x1234_5678_9abc });
        let b = Bundle::pack(&[ld(4, 5), movl]).unwrap();
        assert_eq!(b.template, Template::Mlx);
    }

    #[test]
    fn pack_rejects_overflow() {
        assert!(Bundle::pack(&[]).is_none());
        // Four instructions cannot be packed (caller error).
        assert!(Bundle::pack(&[add(1, 2, 3); 4]).is_none());
        // Two branches then a memory op: no template has B,B,M.
        assert!(Bundle::pack(&[br(), br(), ld(1, 2)]).is_none());
    }

    #[test]
    fn two_branches_pack_mbb() {
        let b = Bundle::pack(&[br(), br()]).unwrap();
        assert!(matches!(b.template, Template::Mbb | Template::Bbb));
        assert!(b.has_branch());
    }

    #[test]
    fn branch_only_bundle() {
        let b = Bundle::branch_only(br());
        assert!(b.slots[2].op.is_branch());
        assert_eq!(b.iter_real().count(), 1);
    }

    #[test]
    fn free_slot_lookup() {
        let b = Bundle::pack(&[add(1, 2, 3)]).unwrap();
        assert_eq!(b.free_slot(SlotKind::M), Some(0));
        assert_eq!(b.free_slot(SlotKind::B), None);
        let full = Bundle::pack(&[ld(4, 5), add(1, 2, 3), add(6, 7, 8)]).unwrap();
        assert_eq!(full.free_slot(SlotKind::M), None);
        assert_eq!(full.free_slot(SlotKind::I), None);
    }
}
