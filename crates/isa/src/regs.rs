//! Register files of the IA-64-like target.
//!
//! The real Itanium provides 128 general registers, 128 floating-point
//! registers, 64 one-bit predicate registers and 8 branch registers. The
//! reproduction keeps the same shapes because ADORE's prefetch insertion
//! depends on them: the static compiler *reserves* `r27`–`r30` and `p6`
//! so the dynamic optimizer has scratch registers to compute prefetch
//! addresses with (paper §3.3).

use std::fmt;

/// Number of general (integer) registers.
pub const NUM_GR: usize = 128;
/// Number of floating-point registers.
pub const NUM_FR: usize = 128;
/// Number of predicate registers.
pub const NUM_PR: usize = 64;

/// A general (integer) register, `r0`–`r127`. `r0` always reads zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gr(pub u8);

/// A floating-point register, `f0`–`f127`. `f0` always reads `0.0` and
/// `f1` always reads `1.0`, as on Itanium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fr(pub u8);

/// A predicate register, `p0`–`p63`. `p0` always reads true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pr(pub u8);

impl Gr {
    /// The hardwired zero register `r0`.
    pub const ZERO: Gr = Gr(0);

    /// The four general registers the static compiler reserves for the
    /// dynamic optimizer (`r27`–`r30`, paper §3.3).
    pub const RESERVED: [Gr; 4] = [Gr(27), Gr(28), Gr(29), Gr(30)];

    /// Returns true if this register is one of the ADORE-reserved ones.
    pub fn is_reserved(self) -> bool {
        Self::RESERVED.contains(&self)
    }

    /// Returns the register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Fr {
    /// The hardwired `0.0` register `f0`.
    pub const ZERO: Fr = Fr(0);
    /// The hardwired `1.0` register `f1`.
    pub const ONE: Fr = Fr(1);

    /// Returns the register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Pr {
    /// The hardwired true predicate `p0`.
    pub const TRUE: Pr = Pr(0);

    /// The predicate register reserved for the dynamic optimizer (`p6`).
    pub const RESERVED: Pr = Pr(6);

    /// Returns the register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Gr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Fr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for Pr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_grs_match_paper() {
        assert_eq!(Gr::RESERVED, [Gr(27), Gr(28), Gr(29), Gr(30)]);
        assert!(Gr(27).is_reserved());
        assert!(Gr(30).is_reserved());
        assert!(!Gr(26).is_reserved());
        assert!(!Gr(31).is_reserved());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gr(14).to_string(), "r14");
        assert_eq!(Fr(8).to_string(), "f8");
        assert_eq!(Pr(6).to_string(), "p6");
    }

    #[test]
    fn indices() {
        assert_eq!(Gr(127).index(), 127);
        assert_eq!(Fr(1).index(), 1);
        assert_eq!(Pr(63).index(), 63);
    }
}
