//! Program images: a code segment of bundles plus symbols.

use std::collections::BTreeMap;
use std::fmt;

use crate::bundle::Bundle;
use crate::insn::Addr;

/// Default base address of the main code segment.
pub const CODE_BASE: u64 = 0x4000_0000;

/// Base address of the trace pool, the shared-memory block `dyn_open`
/// allocates for optimized traces (paper §2.2). Any code address at or
/// above this is trace-pool code.
pub const TRACE_POOL_BASE: u64 = 0x7000_0000;

/// A compiled program image: bundles at consecutive 16-byte addresses
/// starting at `code_base`, plus a symbol table for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    code_base: u64,
    bundles: Vec<Bundle>,
    symbols: BTreeMap<u64, String>,
    entry: Addr,
}

impl Program {
    /// Creates a program from packed bundles.
    ///
    /// # Panics
    ///
    /// Panics if `code_base` is not bundle-aligned.
    pub fn new(code_base: u64, bundles: Vec<Bundle>) -> Program {
        assert_eq!(code_base % Addr::BUNDLE_BYTES, 0, "code base must be bundle-aligned");
        Program { code_base, bundles, symbols: BTreeMap::new(), entry: Addr(code_base) }
    }

    /// Base address of the code segment.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// Entry-point address.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Sets the entry point.
    pub fn set_entry(&mut self, entry: Addr) {
        self.entry = entry;
    }

    /// Number of bundles in the image.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// True if the image holds no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Code size in bytes (the paper's Table 1 reports binary size).
    pub fn size_bytes(&self) -> u64 {
        self.bundles.len() as u64 * Addr::BUNDLE_BYTES
    }

    /// Address of the bundle at `index`.
    pub fn addr_of(&self, index: usize) -> Addr {
        Addr(self.code_base + index as u64 * Addr::BUNDLE_BYTES)
    }

    /// Index of the bundle containing `addr`, if it lies in this image.
    pub fn index_of(&self, addr: Addr) -> Option<usize> {
        let a = addr.bundle_align().0;
        if a < self.code_base {
            return None;
        }
        let idx = ((a - self.code_base) / Addr::BUNDLE_BYTES) as usize;
        (idx < self.bundles.len()).then_some(idx)
    }

    /// The bundle at `addr`, if any.
    pub fn bundle_at(&self, addr: Addr) -> Option<&Bundle> {
        self.index_of(addr).map(|i| &self.bundles[i])
    }

    /// Mutable access to the bundle at `addr` (used by the trace
    /// patcher to overwrite the first bundle of a patched trace).
    pub fn bundle_at_mut(&mut self, addr: Addr) -> Option<&mut Bundle> {
        self.index_of(addr).and_then(|i| self.bundles.get_mut(i))
    }

    /// All bundles in address order.
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// Records a symbol name for an address.
    pub fn add_symbol(&mut self, addr: Addr, name: impl Into<String>) {
        self.symbols.insert(addr.0, name.into());
    }

    /// Looks up the symbol at exactly `addr`.
    pub fn symbol_at(&self, addr: Addr) -> Option<&str> {
        self.symbols.get(&addr.0).map(String::as_str)
    }

    /// The nearest symbol at or before `addr`, with the offset from it.
    pub fn symbolize(&self, addr: Addr) -> Option<(&str, u64)> {
        self.symbols
            .range(..=addr.0)
            .next_back()
            .map(|(a, n)| (n.as_str(), addr.0 - a))
    }

    /// Returns true if `addr` lies in the trace pool rather than the
    /// static code segment.
    pub fn is_trace_pool_addr(addr: Addr) -> bool {
        addr.0 >= TRACE_POOL_BASE
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.bundles.iter().enumerate() {
            let addr = self.addr_of(i);
            if let Some(sym) = self.symbol_at(addr) {
                writeln!(f, "{sym}:")?;
            }
            writeln!(f, "  {addr}  {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Insn, Op, SlotKind};

    fn nop_bundle() -> Bundle {
        Bundle::pack(&[Insn::nop(SlotKind::M)]).unwrap()
    }

    #[test]
    fn addressing_round_trip() {
        let p = Program::new(CODE_BASE, vec![nop_bundle(), nop_bundle(), nop_bundle()]);
        for i in 0..3 {
            assert_eq!(p.index_of(p.addr_of(i)), Some(i));
        }
        assert_eq!(p.index_of(Addr(CODE_BASE + 3 * 16)), None);
        assert_eq!(p.index_of(Addr(CODE_BASE - 16)), None);
        // Mid-bundle addresses resolve to the containing bundle.
        assert_eq!(p.index_of(Addr(CODE_BASE + 17)), Some(1));
    }

    #[test]
    fn size_reporting() {
        let p = Program::new(CODE_BASE, vec![nop_bundle(); 10]);
        assert_eq!(p.len(), 10);
        assert_eq!(p.size_bytes(), 160);
        assert!(!p.is_empty());
    }

    #[test]
    fn symbols() {
        let mut p = Program::new(CODE_BASE, vec![nop_bundle(); 4]);
        p.add_symbol(p.addr_of(0), "main");
        p.add_symbol(p.addr_of(2), "loop");
        assert_eq!(p.symbol_at(p.addr_of(2)), Some("loop"));
        assert_eq!(p.symbolize(p.addr_of(3)), Some(("loop", 16)));
        assert_eq!(p.symbolize(p.addr_of(1)), Some(("main", 16)));
    }

    #[test]
    fn trace_pool_detection() {
        assert!(Program::is_trace_pool_addr(Addr(TRACE_POOL_BASE)));
        assert!(Program::is_trace_pool_addr(Addr(TRACE_POOL_BASE + 160)));
        assert!(!Program::is_trace_pool_addr(Addr(CODE_BASE)));
    }

    #[test]
    fn patching_a_bundle() {
        let mut p = Program::new(CODE_BASE, vec![nop_bundle(); 2]);
        let target = Addr(TRACE_POOL_BASE);
        *p.bundle_at_mut(p.addr_of(1)).unwrap() =
            Bundle::branch_only(Insn::new(Op::Br { target }));
        assert!(p.bundle_at(p.addr_of(1)).unwrap().has_branch());
    }

    #[test]
    #[should_panic(expected = "bundle-aligned")]
    fn misaligned_base_panics() {
        let _ = Program::new(CODE_BASE + 8, vec![]);
    }
}
