//! The workload intermediate representation.
//!
//! The reproduction does not compile C; instead each SPEC2000-shaped
//! workload is described as a [`Kernel`]: a sequence of [`Phase`]s, each
//! repeating a set of counted [`LoopSpec`]s whose bodies make the three
//! kinds of memory references the paper's prefetcher distinguishes
//! (Fig. 5): **direct array**, **indirect array** and **pointer
//! chasing** — plus the properties that defeat static or runtime
//! prefetching (aliasing ambiguity, fp↔int address computation,
//! address computation behind a call).

/// Element declaration of an array operand.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Base address in the data arena (assigned by the workload).
    pub base: u64,
    /// Element size in bytes (4 or 8).
    pub elem_bytes: u64,
    /// Number of elements.
    pub len: u64,
    /// Whether elements are floating-point (loads use `ldfd` and bypass
    /// the L1D, as on Itanium 2).
    pub fp: bool,
}

impl ArrayDecl {
    /// Footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.elem_bytes * self.len
    }
}

/// Declaration of a linked list for pointer-chasing references.
#[derive(Debug, Clone)]
pub struct ListDecl {
    /// Address of the head node.
    pub head: u64,
    /// Node size in bytes.
    pub node_bytes: u64,
    /// Byte offset of the `next` pointer within a node.
    pub next_offset: u64,
    /// Byte offset of the payload field within a node.
    pub payload_offset: u64,
    /// Number of nodes.
    pub nodes: u64,
}

/// One memory reference in a loop body.
#[derive(Debug, Clone)]
pub enum RefSpec {
    /// `a[i]` with a compile-time-constant stride (Fig. 5 A).
    Direct {
        /// Index into [`Kernel::arrays`].
        array: usize,
        /// Stride in elements per iteration (may be negative).
        stride_elems: i64,
        /// Store instead of load.
        write: bool,
        /// The compiler cannot prove the access pattern (arrays passed
        /// as aliased parameters, §1.1): static prefetching skips it,
        /// runtime prefetching does not care.
        alias_ambiguous: bool,
    },
    /// `b[a[k]]`: two-level access where both levels may miss
    /// (Fig. 5 B). The index array is walked sequentially.
    Indirect {
        /// Index into [`Kernel::arrays`] for the index array (integer).
        index_array: usize,
        /// Index into [`Kernel::arrays`] for the data array.
        data_array: usize,
    },
    /// `p = p->next` traversal (Fig. 5 C).
    PointerChase {
        /// Index into [`Kernel::lists`].
        list: usize,
    },
    /// Jump-pointer traversal: each node also stores a pointer several
    /// hops ahead in traversal order, and the payload is read through
    /// *that* pointer (`q = p->jump; use q->payload; p = p->next`).
    /// This is the dependence-based shape the jump-pointer prefetching
    /// literature targets: the delinquent load's address comes from an
    /// intermediate load rather than the recurrent pointer itself.
    JumpPointer {
        /// Index into [`Kernel::lists`].
        list: usize,
        /// Byte offset of the jump pointer within a node. Must leave
        /// room for an 8-byte pointer inside the node.
        jump_offset: u64,
    },
}

/// How the address computation is expressed, which decides whether
/// ADORE's dependence slicing can recover a stride (paper §4.3 lists
/// fp↔int conversion and function calls as the failure modes seen in
/// vpr, lucas and gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrComplexity {
    /// Plain adds / post-increments: fully analyzable.
    Simple,
    /// The index round-trips through a floating-point register
    /// (`setf`/`getf`), so the slice contains non-constant writers.
    FpConversion,
    /// The address is produced by a helper function; the call is a
    /// trace stop-point, so no loop trace is ever built.
    Call,
}

/// One counted innermost loop.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Loop name (unique within the kernel; keys profile-guided
    /// prefetch filtering).
    pub name: String,
    /// Iterations per execution of the surrounding phase body.
    pub trip: u64,
    /// Memory references per iteration.
    pub refs: Vec<RefSpec>,
    /// Extra integer ALU operations per iteration (dependence chain on
    /// the loaded values — this is what makes misses stall).
    pub int_ops: u32,
    /// Extra floating-point operations per iteration.
    pub fp_ops: u32,
    /// Address-computation style.
    pub complexity: AddrComplexity,
    /// Split the body into this many fragments connected by
    /// unconditional branches (poor I-cache layout; the trace selector
    /// straightens them — the vortex effect). 1 = contiguous.
    pub fragments: usize,
    /// Executed nop bundles added to the body (models large code
    /// footprint, e.g. gcc).
    pub code_bloat: usize,
    /// Emit all loads before any use, so independent misses overlap in
    /// the MSHRs (the "miss penalties effectively overlapped through
    /// instruction scheduling" behaviour the paper reports for applu).
    pub batch_uses: bool,
    /// The loop *resumes* where it left off on the next phase
    /// repetition (tiled processing): base registers are initialized
    /// once per phase and wrap around when they reach the end of their
    /// array, so the walk streams over the whole footprint instead of
    /// re-touching a cache-resident slice. Pointer chases are naturally
    /// resumable (the lists are circular).
    pub resume: bool,
}

impl LoopSpec {
    /// A minimal loop with the given name, trip count and references.
    pub fn new(name: impl Into<String>, trip: u64, refs: Vec<RefSpec>) -> LoopSpec {
        LoopSpec {
            name: name.into(),
            trip,
            refs,
            int_ops: 1,
            fp_ops: 0,
            complexity: AddrComplexity::Simple,
            fragments: 1,
            code_bloat: 0,
            batch_uses: false,
            resume: false,
        }
    }

    /// Sets the per-iteration compute mix.
    pub fn with_compute(mut self, int_ops: u32, fp_ops: u32) -> LoopSpec {
        self.int_ops = int_ops;
        self.fp_ops = fp_ops;
        self
    }

    /// Sets the address-computation complexity.
    pub fn with_complexity(mut self, c: AddrComplexity) -> LoopSpec {
        self.complexity = c;
        self
    }

    /// Splits the body into fragments (see [`LoopSpec::fragments`]).
    pub fn with_fragments(mut self, n: usize) -> LoopSpec {
        assert!(n >= 1, "at least one fragment");
        self.fragments = n;
        self
    }

    /// Adds executed nop bundles to the body.
    pub fn with_code_bloat(mut self, bundles: usize) -> LoopSpec {
        self.code_bloat = bundles;
        self
    }

    /// Batches all loads before their uses (see [`LoopSpec::batch_uses`]).
    pub fn with_batched_uses(mut self) -> LoopSpec {
        self.batch_uses = true;
        self
    }

    /// Makes the loop resumable across phase repetitions (see
    /// [`LoopSpec::resume`]).
    pub fn with_resume(mut self) -> LoopSpec {
        self.resume = true;
        self
    }
}

/// A program phase: its loops run in sequence, and the sequence repeats
/// `reps` times. Distinct phases are what ADORE's coarse-grain phase
/// detector is built to find (§2.3).
#[derive(Debug, Clone)]
pub struct Phase {
    /// Repetitions of the loop sequence.
    pub reps: u64,
    /// Loop indices into [`Kernel::loops`] executed per repetition.
    pub loops: Vec<usize>,
}

/// A complete synthetic workload.
#[derive(Debug, Clone, Default)]
pub struct Kernel {
    /// Workload name (e.g. `"181.mcf"`).
    pub name: String,
    /// Array operands.
    pub arrays: Vec<ArrayDecl>,
    /// Linked-list operands.
    pub lists: Vec<ListDecl>,
    /// All loops (referenced by phases).
    pub loops: Vec<LoopSpec>,
    /// Execution phases, run in order.
    pub phases: Vec<Phase>,
}

impl Kernel {
    /// Creates an empty kernel with a name.
    pub fn new(name: impl Into<String>) -> Kernel {
        Kernel { name: name.into(), ..Kernel::default() }
    }

    /// Adds an array, returning its index.
    pub fn add_array(&mut self, a: ArrayDecl) -> usize {
        self.arrays.push(a);
        self.arrays.len() - 1
    }

    /// Adds a list, returning its index.
    pub fn add_list(&mut self, l: ListDecl) -> usize {
        self.lists.push(l);
        self.lists.len() - 1
    }

    /// Adds a loop, returning its index.
    pub fn add_loop(&mut self, l: LoopSpec) -> usize {
        self.loops.push(l);
        self.loops.len() - 1
    }

    /// Adds a phase.
    pub fn add_phase(&mut self, reps: u64, loops: Vec<usize>) {
        self.phases.push(Phase { reps, loops });
    }

    /// Validates internal references.
    ///
    /// # Errors
    ///
    /// Returns a description of the first dangling index found.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = std::collections::HashSet::new();
        for (i, l) in self.loops.iter().enumerate() {
            if !names.insert(&l.name) {
                return Err(format!("duplicate loop name `{}`", l.name));
            }
            if l.trip == 0 {
                return Err(format!("loop {i} has zero trip count"));
            }
            for r in &l.refs {
                match *r {
                    RefSpec::Direct { array, .. } if array >= self.arrays.len() => {
                        return Err(format!("loop {i} references missing array {array}"));
                    }
                    RefSpec::Indirect { index_array, data_array }
                        if index_array >= self.arrays.len()
                            || data_array >= self.arrays.len() =>
                    {
                        return Err(format!("loop {i} references missing array"));
                    }
                    RefSpec::PointerChase { list } if list >= self.lists.len() => {
                        return Err(format!("loop {i} references missing list {list}"));
                    }
                    RefSpec::JumpPointer { list, jump_offset } => {
                        if list >= self.lists.len() {
                            return Err(format!("loop {i} references missing list {list}"));
                        }
                        if jump_offset + 8 > self.lists[list].node_bytes {
                            return Err(format!(
                                "loop {i}: jump offset {jump_offset} outside node"
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        for (i, p) in self.phases.iter().enumerate() {
            if p.reps == 0 {
                return Err(format!("phase {i} has zero reps"));
            }
            for &l in &p.loops {
                if l >= self.loops.len() {
                    return Err(format!("phase {i} references missing loop {l}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> ArrayDecl {
        ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 1024, fp: false }
    }

    #[test]
    fn build_and_validate() {
        let mut k = Kernel::new("test");
        let a = k.add_array(array());
        let l = k.add_loop(LoopSpec::new(
            "l0",
            100,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
        ));
        k.add_phase(10, vec![l]);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn dangling_array_is_rejected() {
        let mut k = Kernel::new("bad");
        let l = k.add_loop(LoopSpec::new(
            "l0",
            100,
            vec![RefSpec::Direct { array: 3, stride_elems: 1, write: false, alias_ambiguous: false }],
        ));
        k.add_phase(1, vec![l]);
        assert!(k.validate().is_err());
    }

    #[test]
    fn duplicate_loop_names_rejected() {
        let mut k = Kernel::new("dup");
        k.add_loop(LoopSpec::new("x", 1, vec![]));
        k.add_loop(LoopSpec::new("x", 1, vec![]));
        assert!(k.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn zero_trip_rejected() {
        let mut k = Kernel::new("z");
        k.add_loop(LoopSpec::new("x", 0, vec![]));
        assert!(k.validate().is_err());
    }

    #[test]
    fn jump_pointer_bounds_are_validated() {
        let mut k = Kernel::new("jp");
        let l = k.add_list(ListDecl {
            head: 0x1000_0000,
            node_bytes: 64,
            next_offset: 0,
            payload_offset: 8,
            nodes: 16,
        });
        let good = k.add_loop(LoopSpec::new(
            "ok",
            10,
            vec![RefSpec::JumpPointer { list: l, jump_offset: 16 }],
        ));
        k.add_phase(1, vec![good]);
        assert!(k.validate().is_ok());

        // A jump pointer that does not fit inside the node.
        k.loops[good].refs = vec![RefSpec::JumpPointer { list: l, jump_offset: 60 }];
        assert!(k.validate().unwrap_err().contains("jump offset"));

        // A dangling list index.
        k.loops[good].refs = vec![RefSpec::JumpPointer { list: 7, jump_offset: 16 }];
        assert!(k.validate().unwrap_err().contains("missing list"));
    }

    #[test]
    fn dangling_phase_loop_rejected() {
        let mut k = Kernel::new("p");
        k.add_phase(1, vec![0]);
        assert!(k.validate().is_err());
    }

    #[test]
    fn builder_helpers() {
        let l = LoopSpec::new("l", 10, vec![])
            .with_compute(3, 2)
            .with_complexity(AddrComplexity::FpConversion)
            .with_fragments(4)
            .with_code_bloat(16);
        assert_eq!(l.int_ops, 3);
        assert_eq!(l.fp_ops, 2);
        assert_eq!(l.complexity, AddrComplexity::FpConversion);
        assert_eq!(l.fragments, 4);
        assert_eq!(l.code_bloat, 16);
    }

    #[test]
    fn array_footprint() {
        assert_eq!(array().bytes(), 8192);
    }
}
