//! An ORC-like optimizing compiler for the ADORE reproduction.
//!
//! The paper compiles SPEC2000 with the ORC 2.0 compiler at `O2` (no
//! static prefetching) and `O3` (Mowry-style static prefetching), with
//! four integer registers and one predicate register reserved for the
//! dynamic optimizer and software pipelining disabled (§4.1/§4.3). This
//! crate provides the equivalent pipeline over the synthetic workload
//! IR:
//!
//! - [`ir`]: kernels, phases, loops and the three reference patterns;
//! - [`codegen`]: IR → IA-64-like bundles, loop metadata, SWP and
//!   register-reservation options;
//! - [`prefetch`]: the static prefetch planner and the profile-guided
//!   delinquent-loop filter of §4.2.
//!
//! # Example
//!
//! ```
//! use compiler::{compile, ArrayDecl, CompileOptions, Kernel, LoopSpec, RefSpec};
//!
//! # fn main() -> Result<(), compiler::CompileError> {
//! let mut k = Kernel::new("example");
//! let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 4096, fp: false });
//! let l = k.add_loop(LoopSpec::new(
//!     "walk",
//!     4000,
//!     vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
//! ));
//! k.add_phase(10, vec![l]);
//!
//! let bin = compile(&k, &CompileOptions::o3())?;
//! assert_eq!(bin.prefetched_loops, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod ir;
pub mod prefetch;

pub use codegen::{
    compile, CompileError, CompileOptions, CompiledBinary, LoopInfo, OptLevel, RefKind,
};
pub use ir::{AddrComplexity, ArrayDecl, Kernel, ListDecl, LoopSpec, Phase, RefSpec};
pub use prefetch::{
    delinquent_loop_filter, static_prefetch_plan, PrefetchItem, PrefetchPlan,
    ASSUMED_MEM_LATENCY, LOCALITY_CUTOFF_BYTES,
};
