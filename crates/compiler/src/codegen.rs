//! Code generation from the workload IR to the IA-64-like ISA.
//!
//! The generator plays the role of the ORC compiler in the paper:
//! `O2` emits plain loops, `O3` additionally runs the Mowry-style static
//! prefetcher (see [`crate::prefetch`]), and two options mirror the
//! paper's restricted compilations (§4.3): `reserve_registers` keeps
//! `r27`–`r30`/`p6` out of the allocator so ADORE can use them, and
//! `software_pipelining` applies a two-stage modulo schedule to
//! eligible loops (standing in for ORC's rotating-register SWP — such
//! loops are marked and the runtime optimizer must skip them).
//!
//! Loops marked [`resume`](crate::ir::LoopSpec::resume) keep their base
//! registers live across phase repetitions (initialized once before the
//! phase's repeat loop, wrapped back to the array start when they run
//! out of footprint), so small per-repetition trip counts still stream
//! over multi-megabyte arrays.

use std::collections::HashMap;

use isa::{AccessSize, Addr, Asm, AsmError, CmpOp, Fr, Gr, Pr, Program, CODE_BASE};

use crate::ir::{AddrComplexity, ArrayDecl, Kernel, LoopSpec, RefSpec};
use crate::prefetch::{static_prefetch_plan, PrefetchPlan};

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No static prefetching.
    O2,
    /// Static prefetching on (Mowry-style), as ORC does at `-O3`.
    O3,
}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Optimization level.
    pub opt_level: OptLevel,
    /// Reserve `r27`–`r30` and `p6` for the dynamic optimizer.
    pub reserve_registers: bool,
    /// Software-pipeline eligible loops (two-stage modulo schedule).
    pub software_pipelining: bool,
    /// When set, static prefetching is restricted to loops whose name is
    /// in the set (profile-guided prefetching, paper §4.2).
    pub prefetch_filter: Option<std::collections::HashSet<String>>,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            opt_level: OptLevel::O2,
            reserve_registers: true,
            software_pipelining: false,
            prefetch_filter: None,
        }
    }
}

impl CompileOptions {
    /// The paper's restricted `O2` build: no prefetch, registers
    /// reserved, SWP disabled.
    pub fn o2() -> CompileOptions {
        CompileOptions::default()
    }

    /// The paper's restricted `O3` build: static prefetch, registers
    /// reserved, SWP disabled.
    pub fn o3() -> CompileOptions {
        CompileOptions { opt_level: OptLevel::O3, ..CompileOptions::default() }
    }

    /// The *original* `O2` of Fig. 10: SWP on, nothing reserved.
    pub fn o2_original() -> CompileOptions {
        CompileOptions {
            reserve_registers: false,
            software_pipelining: true,
            ..CompileOptions::default()
        }
    }
}

/// Kind of a memory reference recorded in loop metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefKind {
    /// Direct array access.
    Direct,
    /// Two-level indirect access.
    Indirect,
    /// Pointer-chasing traversal.
    PointerChase,
    /// Jump-pointer traversal (payload read through a jump pointer).
    JumpPointer,
}

/// Metadata about one compiled loop (the compiler's loop table, which
/// the profile-guided pass uses to map sampled pcs back to loops).
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop name.
    pub name: String,
    /// First bundle of the loop body (branch target of the back edge).
    pub head: Addr,
    /// One past the last bundle of the loop (including the back edge).
    pub end: Addr,
    /// True when the loop was software-pipelined (rotating registers on
    /// real hardware — ADORE must skip it).
    pub software_pipelined: bool,
    /// True when the static prefetcher inserted prefetches.
    pub has_static_prefetch: bool,
    /// True when the loop has at least one analyzable direct reference
    /// (i.e. static prefetching could be applied).
    pub eligible_for_static_prefetch: bool,
    /// Trip count per phase repetition.
    pub trip: u64,
    /// Reference kinds in the body.
    pub ref_kinds: Vec<RefKind>,
}

impl LoopInfo {
    /// True if `addr` lies within the loop's bundle range.
    pub fn contains(&self, addr: Addr) -> bool {
        let a = addr.bundle_align().0;
        a >= self.head.0 && a < self.end.0
    }
}

/// A compiled workload.
#[derive(Debug, Clone)]
pub struct CompiledBinary {
    /// The program image.
    pub program: Program,
    /// Loop metadata in emission order.
    pub loops: Vec<LoopInfo>,
    /// Loops that received static prefetches (Table 1's "loops
    /// scheduled for prefetch").
    pub prefetched_loops: usize,
}

// Compiled binaries are built inside engine worker threads and cached
// across cells; both directions require `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledBinary>();
    assert_send_sync::<CompileOptions>();
};

impl CompiledBinary {
    /// The innermost loop containing `addr`, if any.
    pub fn loop_containing(&self, addr: Addr) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.contains(addr))
    }
}

/// Compilation error.
#[derive(Debug)]
pub enum CompileError {
    /// The kernel failed validation.
    InvalidKernel(String),
    /// Assembly failed.
    Asm(AsmError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::InvalidKernel(m) => write!(f, "invalid kernel: {m}"),
            CompileError::Asm(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<AsmError> for CompileError {
    fn from(e: AsmError) -> CompileError {
        CompileError::Asm(e)
    }
}

/// Register pool for per-phase allocation.
struct Pool {
    regs: Vec<u8>,
    next: usize,
}

impl Pool {
    fn new(reserve: bool) -> Pool {
        let mut regs = Vec::new();
        if !reserve {
            regs.extend([27u8, 28, 29, 30]);
        }
        regs.extend(32..=100u8);
        Pool { regs, next: 0 }
    }

    fn take(&mut self) -> Gr {
        let r = self.regs[self.next];
        self.next += 1;
        assert!(self.next < self.regs.len(), "register pool exhausted");
        Gr(r)
    }
}

struct FpPool {
    next: u8,
}

impl FpPool {
    fn new() -> FpPool {
        FpPool { next: 8 }
    }

    fn take(&mut self) -> Fr {
        let r = self.next;
        self.next += 1;
        assert!(self.next < 100, "fp register pool exhausted");
        Fr(r)
    }
}

fn access_size(elem_bytes: u64) -> AccessSize {
    match elem_bytes {
        1 => AccessSize::U1,
        2 => AccessSize::U2,
        4 => AccessSize::U4,
        _ => AccessSize::U8,
    }
}

fn log2_bytes(elem_bytes: u64) -> u8 {
    elem_bytes.trailing_zeros() as u8
}

/// Per-reference codegen state carried from the preheader to the body.
enum RefState {
    DirectInt {
        base: Gr,
        stride: i64,
        size: AccessSize,
        write: bool,
        swp_bufs: Option<(Gr, Gr)>,
    },
    DirectFp {
        base: Gr,
        stride: i64,
        write: bool,
        swp_bufs: Option<(Fr, Fr)>,
    },
    DirectFpConv {
        index: Gr,
        base_const: Gr,
        stride_elems: i64,
        shift: u8,
        size: AccessSize,
        fp: bool,
        tmp_f: Fr,
        tmp_g: Gr,
        addr: Gr,
    },
    DirectCall {
        addr_reg: Gr,
        helper: String,
        size: AccessSize,
    },
    Indirect {
        idx_base: Gr,
        data_base: Gr,
        shift: u8,
        size: AccessSize,
        data_fp: bool,
    },
    PointerChase {
        ptr: Gr,
        next_off: i64,
        payload_off: i64,
    },
    JumpPointer {
        ptr: Gr,
        next_off: i64,
        payload_off: i64,
        jump_off: i64,
    },
}

/// A wrap-around check for a resumable walking register: when `reg`
/// passes `limit`, reset it to `reset_to`. Extra registers (static
/// prefetch pointers) are reset along with it.
struct WrapCheck {
    reg: Gr,
    limit: i64,
    reset_to: i64,
    also_reset: Vec<(Gr, i64)>,
}

/// One loop occurrence, prepared (preheader emitted) but body pending.
struct PreparedLoop {
    occ_name: String,
    spec_index: usize,
    states: Vec<RefState>,
    pf_regs: Vec<(usize, Gr, i64)>,
    acc: Gr,
    facc: Fr,
    swp_applied: bool,
    plan: PrefetchPlan,
    ref_kinds: Vec<RefKind>,
    eligible: bool,
    wraps: Vec<WrapCheck>,
    helper_triples: Vec<(String, Gr, i64)>,
}

/// Compiles a kernel.
///
/// # Errors
///
/// Fails when the kernel does not validate or assembly fails.
pub fn compile(kernel: &Kernel, opts: &CompileOptions) -> Result<CompiledBinary, CompileError> {
    kernel.validate().map_err(CompileError::InvalidKernel)?;

    let mut asm = Asm::new();
    let mut infos: Vec<(LoopInfo, usize, usize)> = Vec::new(); // info, head idx, end idx
    let mut helper_ranges: Vec<(String, Gr, i64)> = Vec::new();
    let mut name_counts: HashMap<String, usize> = HashMap::new();

    asm.global("main");

    let phase_reg = Gr(8);
    for (pi, phase) in kernel.phases.iter().enumerate() {
        let mut pool = Pool::new(opts.reserve_registers);
        let mut fpool = FpPool::new();

        // Prepare every loop occurrence of the phase. Preheaders of
        // resumable loops are emitted here, before the repeat loop.
        let mut prepared: Vec<PreparedLoop> = Vec::new();
        for &li in &phase.loops {
            let spec = &kernel.loops[li];
            let count = name_counts.entry(spec.name.clone()).or_insert(0);
            let occ_name =
                if *count == 0 { spec.name.clone() } else { format!("{}@{}", spec.name, count) };
            *count += 1;
            if spec.resume {
                let p = prepare_loop(
                    &mut asm, kernel, spec, li, &occ_name, opts, &mut pool, &mut fpool,
                );
                prepared.push(p);
            } else {
                // Placeholder: prepared inside the repeat loop below.
                prepared.push(PreparedLoop {
                    occ_name,
                    spec_index: li,
                    states: Vec::new(),
                    pf_regs: Vec::new(),
                    acc: Gr(0),
                    facc: Fr(0),
                    swp_applied: false,
                    plan: PrefetchPlan::default(),
                    ref_kinds: Vec::new(),
                    eligible: false,
                    wraps: Vec::new(),
                    helper_triples: Vec::new(),
                });

            }
        }

        asm.movl(phase_reg, phase.reps as i64);
        asm.flush();
        let phase_top = format!("phase{pi}_top");
        asm.label(phase_top.clone());

        for mut p in prepared {
            let li = p.spec_index;
            let spec = &kernel.loops[li];
            if !spec.resume {
                let occ = p.occ_name.clone();
                p = prepare_loop(&mut asm, kernel, spec, li, &occ, opts, &mut pool, &mut fpool);
            }
            let (info, head, end) = emit_body(&mut asm, spec, &mut p);
            emit_wrap_checks(&mut asm, &p.wraps);
            infos.push((info, head, end));
            helper_ranges.extend(p.helper_triples.iter().cloned());
        }

        asm.addi(phase_reg, phase_reg, -1);
        asm.cmpi(CmpOp::Gt, Pr(1), Pr(2), phase_reg, 0);
        asm.br_cond(Pr(1), phase_top);
        asm.flush();
    }
    asm.halt();

    // Address-computation helpers (Call complexity) live after the halt.
    for (label, base, stride) in &helper_ranges {
        asm.global(label.clone());
        // Return the current address in the dedicated register and
        // advance the base — opaque to dependence slicing.
        asm.mov(Gr(26), *base);
        asm.addi(*base, *base, *stride);
        asm.ret();
    }

    let program = asm.finish(CODE_BASE)?;

    let mut loops = Vec::with_capacity(infos.len());
    let mut prefetched = 0usize;
    for (mut info, head, end) in infos {
        info.head = Addr(CODE_BASE + head as u64 * Addr::BUNDLE_BYTES);
        info.end = Addr(CODE_BASE + end as u64 * Addr::BUNDLE_BYTES);
        if info.has_static_prefetch {
            prefetched += 1;
        }
        loops.push(info);
    }

    Ok(CompiledBinary { program, loops, prefetched_loops: prefetched })
}

/// Emits the preheader of one loop occurrence and returns its state.
#[allow(clippy::too_many_arguments)]
fn prepare_loop(
    asm: &mut Asm,
    kernel: &Kernel,
    spec: &LoopSpec,
    spec_index: usize,
    occ_name: &str,
    opts: &CompileOptions,
    pool: &mut Pool,
    fpool: &mut FpPool,
) -> PreparedLoop {
    let acc = pool.take();
    let facc = fpool.take();
    let swp_applied = opts.software_pipelining && swp_eligible(kernel, spec);

    let plan = if opts.opt_level == OptLevel::O3 {
        let allowed = opts
            .prefetch_filter
            .as_ref()
            .map(|f| f.contains(&spec.name) || f.contains(occ_name))
            .unwrap_or(true);
        if allowed {
            static_prefetch_plan(kernel, spec)
        } else {
            PrefetchPlan::default()
        }
    } else {
        PrefetchPlan::default()
    };

    let mut states: Vec<RefState> = Vec::new();
    let mut ref_kinds = Vec::new();
    let mut eligible = false;
    let mut wraps: Vec<WrapCheck> = Vec::new();
    let mut helper_triples: Vec<(String, Gr, i64)> = Vec::new();

    for (ri, r) in spec.refs.iter().enumerate() {
        match *r {
            RefSpec::Direct { array, stride_elems, write, alias_ambiguous } => {
                ref_kinds.push(RefKind::Direct);
                let a = &kernel.arrays[array];
                if !alias_ambiguous && spec.complexity == AddrComplexity::Simple {
                    eligible = true;
                }
                let stride = stride_elems * a.elem_bytes as i64;
                match spec.complexity {
                    AddrComplexity::Simple => {
                        let base = pool.take();
                        let start = start_addr(a, stride_elems, spec.trip) as i64;
                        asm.movl(base, start);
                        if spec.resume {
                            wraps.push(wrap_for(a, spec.trip, stride, base, start));
                        }
                        if a.fp {
                            let swp_bufs = if swp_applied && !write {
                                let b0 = fpool.take();
                                let b1 = fpool.take();
                                asm.ldf(b0, base, stride);
                                asm.ldf(b1, base, stride);
                                Some((b0, b1))
                            } else {
                                None
                            };
                            states.push(RefState::DirectFp { base, stride, write, swp_bufs });
                        } else {
                            let swp_bufs = if swp_applied && !write {
                                let b0 = pool.take();
                                let b1 = pool.take();
                                asm.ld(access_size(a.elem_bytes), b0, base, stride);
                                asm.ld(access_size(a.elem_bytes), b1, base, stride);
                                Some((b0, b1))
                            } else {
                                None
                            };
                            states.push(RefState::DirectInt {
                                base,
                                stride,
                                size: access_size(a.elem_bytes),
                                write,
                                swp_bufs,
                            });
                        }
                    }
                    AddrComplexity::FpConversion => {
                        let index = pool.take();
                        let base_const = pool.take();
                        asm.movl(index, 0);
                        asm.movl(base_const, a.base as i64);
                        if spec.resume {
                            let span = a.len as i64 - spec.trip as i64 * stride_elems.abs() - 32;
                            wraps.push(WrapCheck {
                                reg: index,
                                limit: span.max(1),
                                reset_to: 0,
                                also_reset: Vec::new(),
                            });
                        }
                        states.push(RefState::DirectFpConv {
                            index,
                            base_const,
                            stride_elems,
                            shift: log2_bytes(a.elem_bytes),
                            size: access_size(a.elem_bytes),
                            fp: a.fp,
                            tmp_f: fpool.take(),
                            tmp_g: pool.take(),
                            addr: pool.take(),
                        });
                    }
                    AddrComplexity::Call => {
                        let base = pool.take();
                        let start = a.base as i64;
                        asm.movl(base, start);
                        if spec.resume {
                            wraps.push(wrap_for(a, spec.trip, stride, base, start));
                        }
                        let helper = format!("{occ_name}_addr{ri}");
                        helper_triples.push((helper.clone(), base, stride));
                        states.push(RefState::DirectCall {
                            addr_reg: Gr(26),
                            helper,
                            size: access_size(a.elem_bytes),
                        });
                    }
                }
            }
            RefSpec::Indirect { index_array, data_array } => {
                ref_kinds.push(RefKind::Indirect);
                let ia = &kernel.arrays[index_array];
                let da = &kernel.arrays[data_array];
                let idx_base = pool.take();
                let data_base = pool.take();
                asm.movl(idx_base, ia.base as i64);
                asm.movl(data_base, da.base as i64);
                if spec.resume {
                    wraps.push(wrap_for(ia, spec.trip, 4, idx_base, ia.base as i64));
                }
                states.push(RefState::Indirect {
                    idx_base,
                    data_base,
                    shift: log2_bytes(da.elem_bytes),
                    size: access_size(da.elem_bytes),
                    data_fp: da.fp,
                });
            }
            RefSpec::PointerChase { list } => {
                ref_kinds.push(RefKind::PointerChase);
                let l = &kernel.lists[list];
                let ptr = pool.take();
                asm.movl(ptr, l.head as i64);
                // Circular lists resume naturally: no wrap needed.
                states.push(RefState::PointerChase {
                    ptr,
                    next_off: l.next_offset as i64,
                    payload_off: l.payload_offset as i64,
                });
            }
            RefSpec::JumpPointer { list, jump_offset } => {
                ref_kinds.push(RefKind::JumpPointer);
                let l = &kernel.lists[list];
                let ptr = pool.take();
                asm.movl(ptr, l.head as i64);
                // Circular lists resume naturally: no wrap needed.
                states.push(RefState::JumpPointer {
                    ptr,
                    next_off: l.next_offset as i64,
                    payload_off: l.payload_offset as i64,
                    jump_off: jump_offset as i64,
                });
            }
        }
    }

    // Static-prefetch pointer initialization.
    let mut pf_regs: Vec<(usize, Gr, i64)> = Vec::new();
    for item in &plan.items {
        if let RefSpec::Direct { array, stride_elems, .. } = spec.refs[item.ref_index] {
            let a = &kernel.arrays[array];
            let stride = stride_elems * a.elem_bytes as i64;
            let pf = pool.take();
            let init = start_addr(a, stride_elems, spec.trip) as i64 + item.distance_bytes;
            asm.movl(pf, init);
            // Resumable loops reset the prefetch pointer together with
            // the base it shadows.
            if spec.resume {
                for w in wraps.iter_mut() {
                    if states.iter().enumerate().any(|(si, st)| {
                        si == item.ref_index
                            && matches!(st,
                                RefState::DirectInt { base, .. } | RefState::DirectFp { base, .. }
                                    if *base == w.reg)
                    }) {
                        w.also_reset.push((pf, init));
                    }
                }
            }
            pf_regs.push((item.ref_index, pf, stride));
        }
    }
    asm.flush();

    PreparedLoop {
        occ_name: occ_name.to_string(),
        spec_index,
        states,
        pf_regs,
        acc,
        facc,
        swp_applied,
        plan,
        ref_kinds,
        eligible,
        wraps,
        helper_triples,
    }
}

fn wrap_for(a: &ArrayDecl, trip: u64, stride: i64, base: Gr, start: i64) -> WrapCheck {
    let span_bytes = (a.len * a.elem_bytes) as i64;
    let margin = trip as i64 * stride.abs() + 16 * a.elem_bytes as i64;
    let limit = if stride >= 0 {
        a.base as i64 + (span_bytes - margin).max(0)
    } else {
        a.base as i64 + margin.min(span_bytes)
    };
    WrapCheck { reg: base, limit, reset_to: start, also_reset: Vec::new() }
}

/// Emits a loop body; returns the `LoopInfo` plus head/end bundle
/// indices (resolved to addresses by `compile`).
fn emit_body(asm: &mut Asm, spec: &LoopSpec, p: &mut PreparedLoop) -> (LoopInfo, usize, usize) {
    let trip_reg = Gr(9);
    let acc = p.acc;
    let facc = p.facc;
    let occ_name = &p.occ_name;

    let pair_trips = (spec.trip / 2).max(1) as i64;
    asm.movl(trip_reg, if p.swp_applied { pair_trips } else { spec.trip as i64 });
    asm.flush();

    let body_label = format!("{occ_name}_body");
    let head_idx = asm.here();
    asm.label(body_label.clone());

    if p.swp_applied {
        // Two-stage software pipeline, unrolled twice: each use consumes
        // the value its buffer received a full iteration earlier.
        for u in 0..2usize {
            for (ri, st) in p.states.iter().enumerate() {
                if let Some(&(_, pf, stride)) = p.pf_regs.iter().find(|(idx, _, _)| *idx == ri) {
                    asm.lfetch(pf, stride);
                }
                match st {
                    RefState::DirectInt { base, stride, size, write, swp_bufs } => {
                        if *write {
                            asm.st(*size, *base, acc, *stride);
                        } else {
                            let (b0, b1) = swp_bufs.expect("SWP load has buffers");
                            let buf = if u == 0 { b0 } else { b1 };
                            asm.add(acc, buf, acc);
                            asm.ld(*size, buf, *base, *stride);
                        }
                    }
                    RefState::DirectFp { base, stride, write, swp_bufs } => {
                        if *write {
                            asm.stf(*base, facc, *stride);
                        } else {
                            let (b0, b1) = swp_bufs.expect("SWP load has buffers");
                            let buf = if u == 0 { b0 } else { b1 };
                            asm.fma(facc, buf, Fr::ONE, facc);
                            asm.ldf(buf, *base, *stride);
                        }
                    }
                    _ => unreachable!("SWP eligibility admits direct refs only"),
                }
            }
            for _ in 0..spec.int_ops {
                asm.add(acc, acc, acc);
            }
            for _ in 0..spec.fp_ops {
                asm.fma(facc, facc, Fr::ONE, facc);
            }
        }
        if spec.code_bloat > 0 {
            asm.pad_bundles(spec.code_bloat);
        }
        asm.addi(trip_reg, trip_reg, -1);
        asm.cmpi(CmpOp::Gt, Pr(1), Pr(2), trip_reg, 0);
        asm.br_cond(Pr(1), body_label);
        let end_idx = asm.here();
        return (
            LoopInfo {
                name: occ_name.clone(),
                head: Addr(0),
                end: Addr(0),
                software_pipelined: true,
                has_static_prefetch: !p.plan.items.is_empty(),
                eligible_for_static_prefetch: p.eligible,
                trip: spec.trip,
                ref_kinds: p.ref_kinds.clone(),
            },
            head_idx,
            end_idx,
        );
    }

    // Split point bookkeeping for fragmented bodies.
    let mut frag_budget = spec.fragments.max(1);
    let mut emitted_frags = 1usize;

    // Deferred uses when batching loads ahead of their consumers.
    enum Val {
        I(Gr),
        F(Fr),
    }
    let mut deferred: Vec<Val> = Vec::new();

    // Value registers: a fixed high range (above the phase pool),
    // reused round-robin per reference.
    let mut vi = 0u8;
    let mut vf = 0u8;
    let mut int_val = || {
        let r = Gr(104 + vi % 22);
        vi += 1;
        r
    };
    let mut fp_val = || {
        let r = Fr(104 + vf % 22);
        vf += 1;
        r
    };

    let n_states = p.states.len();
    for (ri, st) in p.states.iter_mut().enumerate() {
        if let Some(&(_, pf, stride)) = p.pf_regs.iter().find(|(idx, _, _)| *idx == ri) {
            asm.lfetch(pf, stride);
        }
        match st {
            RefState::DirectInt { base, stride, size, write, .. } => {
                if *write {
                    asm.st(*size, *base, acc, *stride);
                } else {
                    let v = int_val();
                    asm.ld(*size, v, *base, *stride);
                    if spec.batch_uses {
                        deferred.push(Val::I(v));
                    } else {
                        asm.add(acc, v, acc);
                    }
                }
            }
            RefState::DirectFp { base, stride, write, .. } => {
                if *write {
                    asm.stf(*base, facc, *stride);
                } else {
                    let v = fp_val();
                    asm.ldf(v, *base, *stride);
                    if spec.batch_uses {
                        deferred.push(Val::F(v));
                    } else {
                        asm.fma(facc, v, Fr::ONE, facc);
                    }
                }
            }
            RefState::DirectFpConv {
                index,
                base_const,
                stride_elems,
                shift,
                size,
                fp,
                tmp_f,
                tmp_g,
                addr,
            } => {
                asm.emit(isa::Op::Setf { d: *tmp_f, s: *index });
                asm.emit(isa::Op::Getf { d: *tmp_g, s: *tmp_f });
                asm.shladd(*addr, *tmp_g, *shift, *base_const);
                if *fp {
                    let v = fp_val();
                    asm.ldf(v, *addr, 0);
                    asm.fma(facc, v, Fr::ONE, facc);
                } else {
                    let v = int_val();
                    asm.ld(*size, v, *addr, 0);
                    asm.add(acc, v, acc);
                }
                asm.addi(*index, *index, *stride_elems);
            }
            RefState::DirectCall { addr_reg, helper, size } => {
                asm.br_call(helper.clone());
                let v = int_val();
                asm.ld(*size, v, *addr_reg, 0);
                asm.add(acc, v, acc);
            }
            RefState::Indirect { idx_base, data_base, shift, size, data_fp } => {
                let idx = int_val();
                asm.ld(AccessSize::U4, idx, *idx_base, 4);
                let addr = int_val();
                asm.shladd(addr, idx, *shift, *data_base);
                if *data_fp {
                    let v = fp_val();
                    asm.ldf(v, addr, 0);
                    if spec.batch_uses {
                        deferred.push(Val::F(v));
                    } else {
                        asm.fma(facc, v, Fr::ONE, facc);
                    }
                } else {
                    let v = int_val();
                    asm.ld(*size, v, addr, 0);
                    if spec.batch_uses {
                        deferred.push(Val::I(v));
                    } else {
                        asm.add(acc, v, acc);
                    }
                }
            }
            RefState::PointerChase { ptr, next_off, payload_off } => {
                // Fig. 5 C shape: advance the recurrent pointer through
                // memory, then touch the payload.
                let t = int_val();
                asm.addi(t, *ptr, *next_off);
                asm.ld(AccessSize::U8, *ptr, t, 0);
                let u = int_val();
                let v = int_val();
                asm.addi(u, *ptr, *payload_off);
                asm.ld(AccessSize::U8, v, u, 0);
                asm.add(acc, v, acc);
            }
            RefState::JumpPointer { ptr, next_off, payload_off, jump_off } => {
                // Jump-pointer shape: the payload address comes from an
                // intermediate load (`q = p->jump`) rather than the
                // recurrent pointer, then `p` advances via `next`.
                let t = int_val();
                asm.addi(t, *ptr, *jump_off);
                let q = int_val();
                asm.ld(AccessSize::U8, q, t, 0);
                let u = int_val();
                asm.addi(u, q, *payload_off);
                let v = int_val();
                asm.ld(AccessSize::U8, v, u, 0);
                asm.add(acc, v, acc);
                let t2 = int_val();
                asm.addi(t2, *ptr, *next_off);
                asm.ld(AccessSize::U8, *ptr, t2, 0);
            }
        }

        if frag_budget > 1 && ri + 1 < n_states {
            let next = format!("{occ_name}_frag{emitted_frags}");
            asm.br(next.clone());
            asm.pad_bundles(7);
            asm.label(next);
            emitted_frags += 1;
            frag_budget -= 1;
        }
    }

    // Batched uses: all loads issued above, consumers only now, so
    // independent misses overlap in the MSHRs.
    for v in deferred {
        match v {
            Val::I(r) => asm.add(acc, r, acc),
            Val::F(r) => asm.fma(facc, r, Fr::ONE, facc),
        }
    }

    // Compute tail: dependence chains on the accumulators.
    for _ in 0..spec.int_ops {
        asm.add(acc, acc, acc);
    }
    for _ in 0..spec.fp_ops {
        asm.fma(facc, facc, Fr::ONE, facc);
    }
    if spec.code_bloat > 0 {
        asm.pad_bundles(spec.code_bloat);
    }

    asm.addi(trip_reg, trip_reg, -1);
    asm.cmpi(CmpOp::Gt, Pr(1), Pr(2), trip_reg, 0);
    asm.br_cond(Pr(1), body_label);
    let end_idx = asm.here();

    (
        LoopInfo {
            name: occ_name.clone(),
            head: Addr(0),
            end: Addr(0),
            software_pipelined: false,
            has_static_prefetch: !p.plan.items.is_empty(),
            eligible_for_static_prefetch: p.eligible,
            trip: spec.trip,
            ref_kinds: p.ref_kinds.clone(),
        },
        head_idx,
        end_idx,
    )
}

/// Emits the wrap-around checks of a resumable loop (run once per phase
/// repetition, after the loop exits).
fn emit_wrap_checks(asm: &mut Asm, wraps: &[WrapCheck]) {
    for w in wraps {
        asm.cmpi(CmpOp::Ge, Pr(3), Pr(4), w.reg, w.limit);
        asm.emit(isa::Insn::predicated(Pr(3), isa::Op::MovL { d: w.reg, imm: w.reset_to }));
        for &(extra, value) in &w.also_reset {
            asm.emit(isa::Insn::predicated(Pr(3), isa::Op::MovL { d: extra, imm: value }));
        }
        asm.flush();
    }
}

/// Whether SWP applies: simple, contiguous loops of provably-unaliased
/// direct floating-point references only. Rotating-register pipelining
/// cannot handle pointer chases or indirect gathers; reordering loads
/// across iterations needs independence proofs (aliased parameters
/// disqualify, §1.1); and ORC's modulo scheduler triggered almost
/// exclusively on FP loops.
fn swp_eligible(kernel: &Kernel, spec: &LoopSpec) -> bool {
    spec.complexity == AddrComplexity::Simple
        && spec.fragments <= 1
        && !spec.refs.is_empty()
        && spec.refs.iter().all(|r| match *r {
            RefSpec::Direct { array, alias_ambiguous, .. } => {
                !alias_ambiguous && kernel.arrays[array].fp
            }
            _ => false,
        })
}

/// Start address of a direct walk: negative strides begin at the end.
fn start_addr(a: &ArrayDecl, stride_elems: i64, trip: u64) -> u64 {
    if stride_elems >= 0 {
        a.base
    } else {
        let span = (trip as i64 * (-stride_elems) + 8) as u64;
        a.base + span.min(a.len.saturating_sub(1)) * a.elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ListDecl, Phase};
    use sim::{Machine, MachineConfig};

    fn simple_kernel(trip: u64, reps: u64) -> Kernel {
        let mut k = Kernel::new("t");
        let a = k.add_array(ArrayDecl {
            base: 0x1000_0000,
            elem_bytes: 8,
            len: trip + 32,
            fp: false,
        });
        let l = k.add_loop(LoopSpec::new(
            "walk",
            trip,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
        ));
        k.phases.push(Phase { reps, loops: vec![l] });
        k
    }

    fn run(bin: &CompiledBinary, arena: u64) -> Machine {
        let mut m = Machine::new(bin.program.clone(), MachineConfig::default());
        m.mem_mut().alloc(arena, 64);
        m.run_to_halt();
        m
    }

    #[test]
    fn o2_compiles_and_runs() {
        let k = simple_kernel(1000, 3);
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        assert_eq!(bin.prefetched_loops, 0);
        assert_eq!(bin.loops.len(), 1);
        let m = run(&bin, 1 << 20);
        assert!(m.is_halted());
        assert!(m.retired() > 3 * 1000);
    }

    #[test]
    fn o3_inserts_prefetches_and_still_runs() {
        let k = simple_kernel(4000, 2);
        let o2 = compile(&k, &CompileOptions::o2()).unwrap();
        let o3 = compile(&k, &CompileOptions::o3()).unwrap();
        assert_eq!(o3.prefetched_loops, 1);
        assert!(o3.loops[0].has_static_prefetch);
        assert!(o3.program.size_bytes() > o2.program.size_bytes());
        let m2 = run(&o2, 1 << 20);
        let m3 = run(&o3, 1 << 20);
        assert!(
            m3.cycles() < m2.cycles(),
            "static prefetch should win on a striding loop: {} vs {}",
            m3.cycles(),
            m2.cycles()
        );
    }

    #[test]
    fn prefetch_filter_suppresses() {
        let k = simple_kernel(1000, 1);
        let mut opts = CompileOptions::o3();
        opts.prefetch_filter = Some(std::collections::HashSet::new());
        let bin = compile(&k, &opts).unwrap();
        assert_eq!(bin.prefetched_loops, 0);
    }

    #[test]
    fn aliased_refs_are_not_statically_prefetched() {
        let mut k = Kernel::new("alias");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 5000, fp: false });
        let l = k.add_loop(LoopSpec::new(
            "walk",
            4000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: true }],
        ));
        k.phases.push(Phase { reps: 1, loops: vec![l] });
        let bin = compile(&k, &CompileOptions::o3()).unwrap();
        assert_eq!(bin.prefetched_loops, 0);
    }

    fn simple_fp_kernel(trip: u64, reps: u64) -> Kernel {
        let mut k = Kernel::new("t");
        let a = k.add_array(ArrayDecl {
            base: 0x1000_0000,
            elem_bytes: 8,
            len: trip + 32,
            fp: true,
        });
        let l = k.add_loop(
            LoopSpec::new(
                "walk",
                trip,
                vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
            )
            .with_compute(0, 1),
        );
        k.phases.push(Phase { reps, loops: vec![l] });
        k
    }

    #[test]
    fn swp_marks_loops_and_speeds_them_up() {
        let k = simple_fp_kernel(20_000, 2);
        let plain = compile(&k, &CompileOptions::o2()).unwrap();
        let mut opts = CompileOptions::o2();
        opts.software_pipelining = true;
        let swp = compile(&k, &opts).unwrap();
        assert!(swp.loops[0].software_pipelined);
        assert!(!plain.loops[0].software_pipelined);
        let mp = run(&plain, 4 << 20);
        let ms = run(&swp, 4 << 20);
        assert!(
            ms.cycles() < mp.cycles(),
            "SWP should overlap load-use: {} vs {}",
            ms.cycles(),
            mp.cycles()
        );
    }

    #[test]
    fn pointer_chase_compiles_and_runs() {
        let mut k = Kernel::new("chase");
        let nodes = 64u64;
        let node_bytes = 64u64;
        let l = k.add_list(ListDecl {
            head: 0x1000_0000,
            node_bytes,
            next_offset: 0,
            payload_offset: 8,
            nodes,
        });
        let lp = k.add_loop(LoopSpec::new("chase", 500, vec![RefSpec::PointerChase { list: l }]));
        k.phases.push(Phase { reps: 1, loops: vec![lp] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();

        let mut m = Machine::new(bin.program.clone(), MachineConfig::default());
        m.mem_mut().alloc(nodes * node_bytes + 64, 64);
        for i in 0..nodes {
            let addr = 0x1000_0000 + i * node_bytes;
            let next = 0x1000_0000 + ((i + 1) % nodes) * node_bytes;
            m.mem_mut().write(addr, 8, next);
            m.mem_mut().write(addr + 8, 8, i);
        }
        m.run_to_halt();
        assert!(m.is_halted());
        assert_eq!(bin.loops[0].ref_kinds, vec![RefKind::PointerChase]);
    }

    #[test]
    fn jump_pointer_compiles_and_runs() {
        let mut k = Kernel::new("jump");
        let nodes = 64u64;
        let node_bytes = 64u64;
        let l = k.add_list(ListDecl {
            head: 0x1000_0000,
            node_bytes,
            next_offset: 0,
            payload_offset: 8,
            nodes,
        });
        let lp = k.add_loop(LoopSpec::new(
            "gc_walk",
            500,
            vec![RefSpec::JumpPointer { list: l, jump_offset: 16 }],
        ));
        k.phases.push(Phase { reps: 1, loops: vec![lp] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();

        let mut m = Machine::new(bin.program.clone(), MachineConfig::default());
        m.mem_mut().alloc(nodes * node_bytes + 64, 64);
        for i in 0..nodes {
            let addr = 0x1000_0000 + i * node_bytes;
            let next = 0x1000_0000 + ((i + 1) % nodes) * node_bytes;
            let jump = 0x1000_0000 + ((i + 8) % nodes) * node_bytes;
            m.mem_mut().write(addr, 8, next);
            m.mem_mut().write(addr + 8, 8, i);
            m.mem_mut().write(addr + 16, 8, jump);
        }
        m.run_to_halt();
        assert!(m.is_halted());
        assert_eq!(bin.loops[0].ref_kinds, vec![RefKind::JumpPointer]);
        // Three loads per iteration: jump, payload, next.
        assert!(m.pmu().counters.loads >= 3 * 500);
    }

    #[test]
    fn indirect_compiles_and_runs() {
        let mut k = Kernel::new("ind");
        let ia = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 4, len: 2048, fp: false });
        let da = k.add_array(ArrayDecl { base: 0x1100_0000, elem_bytes: 8, len: 4096, fp: false });
        let lp = k.add_loop(LoopSpec::new(
            "gather",
            1000,
            vec![RefSpec::Indirect { index_array: ia, data_array: da }],
        ));
        k.phases.push(Phase { reps: 1, loops: vec![lp] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        let mut m = Machine::new(bin.program.clone(), MachineConfig::default());
        m.mem_mut().alloc(64 << 20, 64);
        for i in 0..2048u64 {
            m.mem_mut().write(0x1000_0000 + 4 * i, 4, (i * 37) % 4096);
        }
        m.run_to_halt();
        assert!(m.is_halted());
    }

    #[test]
    fn call_complexity_emits_helper_and_runs() {
        let mut k = Kernel::new("call");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 3000, fp: false });
        let lp = k.add_loop(
            LoopSpec::new(
                "cwalk",
                2000,
                vec![RefSpec::Direct {
                    array: a,
                    stride_elems: 1,
                    write: false,
                    alias_ambiguous: false,
                }],
            )
            .with_complexity(AddrComplexity::Call),
        );
        k.phases.push(Phase { reps: 1, loops: vec![lp] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        let mut m = Machine::new(bin.program.clone(), MachineConfig::default());
        m.mem_mut().alloc(1 << 20, 64);
        m.run_to_halt();
        assert!(m.is_halted());
        let bin3 = compile(&k, &CompileOptions::o3()).unwrap();
        assert_eq!(bin3.prefetched_loops, 0);
    }

    #[test]
    fn fragments_add_branches_and_padding() {
        let mut k = Kernel::new("frag");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 4096, fp: false });
        let refs: Vec<RefSpec> = (0..4)
            .map(|_| RefSpec::Direct {
                array: a,
                stride_elems: 1,
                write: false,
                alias_ambiguous: false,
            })
            .collect();
        let contiguous = {
            let mut k2 = k.clone();
            let lp = k2.add_loop(LoopSpec::new("body", 500, refs.clone()));
            k2.phases.push(Phase { reps: 1, loops: vec![lp] });
            compile(&k2, &CompileOptions::o2()).unwrap()
        };
        let fragmented = {
            let lp = k.add_loop(LoopSpec::new("body", 500, refs).with_fragments(4));
            k.phases.push(Phase { reps: 1, loops: vec![lp] });
            compile(&k, &CompileOptions::o2()).unwrap()
        };
        assert!(fragmented.program.size_bytes() > contiguous.program.size_bytes());
        let mc = run(&contiguous, 1 << 20);
        let mf = run(&fragmented, 1 << 20);
        assert!(mf.cycles() > mc.cycles(), "fragmentation should cost cycles");
    }

    #[test]
    fn multiple_phases_execute_in_order() {
        let mut k = simple_kernel(100, 2);
        let a2 = k.add_array(ArrayDecl { base: 0x1200_0000, elem_bytes: 8, len: 256, fp: false });
        let l2 = k.add_loop(LoopSpec::new(
            "second",
            100,
            vec![RefSpec::Direct { array: a2, stride_elems: 1, write: false, alias_ambiguous: false }],
        ));
        k.phases.push(Phase { reps: 3, loops: vec![l2] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        assert_eq!(bin.loops.len(), 2);
        let m = run(&bin, 64 << 20);
        assert!(m.is_halted());
    }

    #[test]
    fn loop_info_ranges_contain_body() {
        let k = simple_kernel(100, 1);
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        let info = &bin.loops[0];
        assert!(info.end.0 > info.head.0);
        assert!(info.contains(info.head));
        assert!(!info.contains(info.end));
        assert_eq!(bin.loop_containing(info.head).unwrap().name, "walk");
    }

    #[test]
    fn repeated_loop_occurrences_get_unique_names() {
        // The same loop in two phases compiles twice; metadata names
        // must stay unique so profile-guided filtering can map pcs.
        let mut k = simple_kernel(100, 2);
        k.phases.push(Phase { reps: 2, loops: vec![0] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        assert_eq!(bin.loops.len(), 2);
        assert_eq!(bin.loops[0].name, "walk");
        assert_eq!(bin.loops[1].name, "walk@1");
        let names: std::collections::HashSet<_> =
            bin.loops.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn store_only_loops_compile_and_run() {
        let mut k = Kernel::new("st");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 4096, fp: false });
        let l = k.add_loop(LoopSpec::new(
            "fill",
            1000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: true, alias_ambiguous: false }],
        ));
        k.phases.push(Phase { reps: 2, loops: vec![l] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        let m = run(&bin, 1 << 20);
        assert!(m.is_halted());
        // Stores executed (write counter via loads==0 but retired>0).
        assert_eq!(bin.loops[0].ref_kinds, vec![RefKind::Direct]);
    }

    #[test]
    fn fp_conversion_loops_defeat_static_prefetch_but_run() {
        let mut k = Kernel::new("conv");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 1 << 17, fp: false });
        let l = k.add_loop(
            LoopSpec::new(
                "conv",
                2000,
                vec![RefSpec::Direct { array: a, stride_elems: 4, write: false, alias_ambiguous: false }],
            )
            .with_complexity(AddrComplexity::FpConversion),
        );
        k.phases.push(Phase { reps: 2, loops: vec![l] });
        let o3 = compile(&k, &CompileOptions::o3()).unwrap();
        assert_eq!(o3.prefetched_loops, 0);
        let m = run(&o3, 4 << 20);
        assert!(m.is_halted());
        // The conversion path really executes getf/setf latency.
        assert!(m.cycles() > 2 * 2000);
    }

    #[test]
    fn negative_stride_walks_do_not_fault() {
        let mut k = Kernel::new("neg");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 1 << 14, fp: false });
        let l = k.add_loop(LoopSpec::new(
            "back",
            2000,
            vec![RefSpec::Direct { array: a, stride_elems: -2, write: false, alias_ambiguous: false }],
        ));
        k.phases.push(Phase { reps: 3, loops: vec![l] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        let m = run(&bin, 1 << 20);
        assert!(m.is_halted());
        assert!(m.pmu().counters.loads >= 6000);
    }

    #[test]
    fn resumable_loop_streams_across_reps() {
        // A small-trip resumable loop over a big array must keep
        // missing (streaming), while the non-resumable version
        // re-touches a cache-resident slice and stops missing.
        let build = |resume: bool| {
            let mut k = Kernel::new("r");
            let a = k.add_array(ArrayDecl {
                base: 0x1000_0000,
                elem_bytes: 8,
                len: 1 << 19, // 4 MB
                fp: false,
            });
            let mut spec = LoopSpec::new(
                "walk",
                256,
                vec![RefSpec::Direct {
                    array: a,
                    stride_elems: 16, // 128 B: a new line every iteration
                    write: false,
                    alias_ambiguous: false,
                }],
            );
            if resume {
                spec = spec.with_resume();
            }
            let l = k.add_loop(spec);
            k.phases.push(Phase { reps: 200, loops: vec![l] });
            let bin = compile(&k, &CompileOptions::o2()).unwrap();
            let mut m = Machine::new(bin.program.clone(), MachineConfig::default());
            m.mem_mut().alloc(8 << 20, 64);
            m.run_to_halt();
            m
        };
        let fixed = build(false);
        let resumed = build(true);
        let fixed_misses = fixed.pmu().counters.dear_misses;
        let resumed_misses = resumed.pmu().counters.dear_misses;
        assert!(
            resumed_misses > fixed_misses * 5,
            "resumed walk must keep missing: {resumed_misses} vs {fixed_misses}"
        );
        assert!(resumed.cycles() > fixed.cycles());
    }

    #[test]
    fn resumable_loop_never_walks_off_the_array() {
        // If the wrap check were wrong, the memory read would panic.
        let mut k = Kernel::new("wrap");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 4096, fp: false });
        let l = k.add_loop(
            LoopSpec::new(
                "walk",
                512,
                vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
            )
            .with_resume(),
        );
        k.phases.push(Phase { reps: 50, loops: vec![l] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        let mut m = Machine::new(bin.program.clone(), MachineConfig::default());
        m.mem_mut().alloc(1 << 20, 64);
        m.run_to_halt();
        assert!(m.is_halted());
        // 50 reps × 512 iterations wrapped several times over 4096
        // elements without faulting.
        assert!(m.pmu().counters.loads >= 50 * 512);
    }
}
