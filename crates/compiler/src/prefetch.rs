//! Static (compile-time) prefetch planning, ORC-style.
//!
//! The ORC compiler's `-O3` prefetcher is "similar to Todd Mowry's
//! algorithm" (paper §4.2): it needs accurate array bounds and locality
//! information, covers affine array references only, and — lacking any
//! cache-miss information — schedules prefetches for every analyzable
//! loop whose footprint is not provably cache-resident, including loops
//! that at runtime hit well. The profile-guided variant
//! ([`delinquent_loop_filter`]) keeps only loops containing a load from
//! the 90 %-latency-coverage delinquent list.

use std::collections::HashSet;

use perfmon::MissProfile;

use crate::codegen::CompiledBinary;
use crate::ir::{AddrComplexity, Kernel, LoopSpec, RefSpec};

/// Memory latency the compiler assumes when computing prefetch
/// distances (cycles). Matches the simulator's default.
pub const ASSUMED_MEM_LATENCY: u64 = 160;

/// Footprints at or below this are assumed cache-resident and not
/// prefetched (a static locality cut; the L1D size).
pub const LOCALITY_CUTOFF_BYTES: u64 = 16 * 1024;

/// One planned prefetch: cover direct reference `ref_index` at
/// `distance_bytes` ahead of the demand stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchItem {
    /// Index into the loop's `refs`.
    pub ref_index: usize,
    /// Prefetch distance in bytes (signed: follows the stride).
    pub distance_bytes: i64,
    /// Distance in iterations (diagnostics).
    pub distance_iters: u64,
}

/// The static prefetch plan for one loop.
#[derive(Debug, Clone, Default)]
pub struct PrefetchPlan {
    /// Planned prefetches, at most one per direct reference.
    pub items: Vec<PrefetchItem>,
}

/// Rough per-iteration instruction estimate used for distance planning.
fn body_insn_estimate(spec: &LoopSpec) -> u64 {
    let mut n = 3; // trip decrement, compare, branch
    for r in &spec.refs {
        n += match r {
            RefSpec::Direct { .. } => 2,
            RefSpec::Indirect { .. } => 4,
            RefSpec::PointerChase { .. } => 6,
            RefSpec::JumpPointer { .. } => 7,
        };
    }
    n + spec.int_ops as u64 + spec.fp_ops as u64 + spec.code_bloat as u64 * 3
}

/// Plans static prefetching for `spec` (Mowry-style).
pub fn static_prefetch_plan(kernel: &Kernel, spec: &LoopSpec) -> PrefetchPlan {
    let mut plan = PrefetchPlan::default();
    if spec.complexity != AddrComplexity::Simple {
        return plan; // requires analyzable address computation
    }
    // Two bundles (six slots) per cycle, plus one cycle of loop overhead.
    let body_cycles = (body_insn_estimate(spec) / 6).max(1) + 1;
    let distance_iters = (ASSUMED_MEM_LATENCY).div_ceil(body_cycles).clamp(2, 64);

    for (ri, r) in spec.refs.iter().enumerate() {
        let RefSpec::Direct { array, stride_elems, write, alias_ambiguous } = *r else {
            continue; // ORC does not prefetch indirect or pointer refs
        };
        if write || alias_ambiguous || stride_elems == 0 {
            continue;
        }
        let a = &kernel.arrays[array];
        let stride_bytes = stride_elems * a.elem_bytes as i64;
        let footprint = spec.trip * stride_bytes.unsigned_abs();
        if footprint <= LOCALITY_CUTOFF_BYTES {
            continue; // provably cache-resident
        }
        plan.items.push(PrefetchItem {
            ref_index: ri,
            distance_bytes: distance_iters as i64 * stride_bytes,
            distance_iters,
        });
    }
    plan
}

/// Builds the profile-guided loop filter: the names of loops (in
/// `binary`, the training-run image) that contain at least one load
/// from the delinquent list covering `coverage` of total miss latency.
///
/// Loops compiled from repeated occurrences (`name@k`) map back to their
/// base loop name so the filter applies to every occurrence.
pub fn delinquent_loop_filter(
    profile: &MissProfile,
    binary: &CompiledBinary,
    coverage: f64,
) -> HashSet<String> {
    let mut filter = HashSet::new();
    for entry in profile.delinquent_loads(coverage) {
        if let Some(info) = binary.loop_containing(isa::Addr(entry.addr)) {
            let base = info.name.split('@').next().unwrap_or(&info.name);
            filter.insert(base.to_string());
        }
    }
    filter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArrayDecl;

    fn kernel_with_array(len: u64, elem: u64) -> (Kernel, usize) {
        let mut k = Kernel::new("t");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: elem, len, fp: false });
        (k, a)
    }

    #[test]
    fn plans_cover_big_strided_loads() {
        let (k, a) = kernel_with_array(1 << 20, 8);
        let spec = LoopSpec::new(
            "l",
            100_000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
        );
        let plan = static_prefetch_plan(&k, &spec);
        assert_eq!(plan.items.len(), 1);
        let item = plan.items[0];
        assert!(item.distance_iters >= 2);
        assert_eq!(item.distance_bytes, item.distance_iters as i64 * 8);
    }

    #[test]
    fn small_footprints_are_skipped() {
        let (k, a) = kernel_with_array(512, 8);
        let spec = LoopSpec::new(
            "l",
            512,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
        );
        assert!(static_prefetch_plan(&k, &spec).items.is_empty());
    }

    #[test]
    fn writes_aliases_and_complex_loops_are_skipped() {
        let (k, a) = kernel_with_array(1 << 20, 8);
        let write = LoopSpec::new(
            "w",
            100_000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: true, alias_ambiguous: false }],
        );
        assert!(static_prefetch_plan(&k, &write).items.is_empty());

        let aliased = LoopSpec::new(
            "a",
            100_000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: true }],
        );
        assert!(static_prefetch_plan(&k, &aliased).items.is_empty());

        let complex = LoopSpec::new(
            "c",
            100_000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
        )
        .with_complexity(AddrComplexity::FpConversion);
        assert!(static_prefetch_plan(&k, &complex).items.is_empty());
    }

    #[test]
    fn indirect_and_chase_are_never_statically_prefetched() {
        let (mut k, a) = kernel_with_array(1 << 20, 8);
        let b = k.add_array(ArrayDecl { base: 0x1800_0000, elem_bytes: 4, len: 1 << 20, fp: false });
        let spec = LoopSpec::new(
            "l",
            100_000,
            vec![RefSpec::Indirect { index_array: b, data_array: a }],
        );
        assert!(static_prefetch_plan(&k, &spec).items.is_empty());
    }

    #[test]
    fn negative_strides_plan_negative_distance() {
        let (k, a) = kernel_with_array(1 << 20, 8);
        let spec = LoopSpec::new(
            "back",
            100_000,
            vec![RefSpec::Direct { array: a, stride_elems: -2, write: false, alias_ambiguous: false }],
        );
        let plan = static_prefetch_plan(&k, &spec);
        assert_eq!(plan.items.len(), 1);
        assert!(plan.items[0].distance_bytes < 0);
    }

    #[test]
    fn delinquent_filter_maps_pcs_to_loop_names() {
        use crate::codegen::{compile, CompileOptions};
        use crate::ir::Phase;

        // Two loops; fabricate a profile whose misses sit in the first.
        let mut k = Kernel::new("f");
        let a = k.add_array(ArrayDecl { base: 0x1000_0000, elem_bytes: 8, len: 1 << 18, fp: false });
        let hot = k.add_loop(LoopSpec::new(
            "hot",
            4000,
            vec![RefSpec::Direct { array: a, stride_elems: 8, write: false, alias_ambiguous: false }],
        ));
        let cold = k.add_loop(LoopSpec::new(
            "cold",
            4000,
            vec![RefSpec::Direct { array: a, stride_elems: 4, write: false, alias_ambiguous: false }],
        ));
        k.phases.push(Phase { reps: 2, loops: vec![hot, cold] });
        let bin = compile(&k, &CompileOptions::o2()).unwrap();
        let hot_info = bin.loops.iter().find(|l| l.name == "hot").unwrap();

        // A profile with one dominant miss inside `hot`.
        let samples = vec![sim::Sample {
            index: 0,
            pc: isa::Pc::new(hot_info.head, 0),
            cycles: 1000,
            retired: 500,
            dcache_misses: 1,
            btb: vec![],
            dear: Some(sim::DearRecord {
                load_pc: isa::Pc::new(hot_info.head, 0),
                miss_addr: 0x1000_0000,
                latency: 160,
                kind: sim::DearKind::CacheMiss,
            }),
        }];
        let profile = perfmon::MissProfile::from_samples(samples.iter());
        let filter = delinquent_loop_filter(&profile, &bin, 0.9);
        assert!(filter.contains("hot"));
        assert!(!filter.contains("cold"));

        // Recompiling with the filter prefetches only the hot loop.
        let mut opts = CompileOptions::o3();
        opts.prefetch_filter = Some(filter);
        let guided = compile(&k, &opts).unwrap();
        assert_eq!(guided.prefetched_loops, 1);
        let plain_o3 = compile(&k, &CompileOptions::o3()).unwrap();
        assert_eq!(plain_o3.prefetched_loops, 2);
        assert!(guided.program.size_bytes() < plain_o3.program.size_bytes());
    }

    #[test]
    fn longer_bodies_get_shorter_distances() {
        let (k, a) = kernel_with_array(1 << 20, 8);
        let short = LoopSpec::new(
            "s",
            100_000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
        );
        let long = LoopSpec::new(
            "l",
            100_000,
            vec![RefSpec::Direct { array: a, stride_elems: 1, write: false, alias_ambiguous: false }],
        )
        .with_compute(200, 0);
        let ds = static_prefetch_plan(&k, &short).items[0].distance_iters;
        let dl = static_prefetch_plan(&k, &long).items[0].distance_iters;
        assert!(dl < ds, "more work per iteration needs fewer iterations ahead");
    }
}
