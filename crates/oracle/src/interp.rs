//! The reference interpreter: architectural semantics only.
//!
//! Ground truth for the differential oracle. It executes the same
//! bundles as [`sim::Machine`] but models **nothing** microarchitectural:
//! no caches, no timing, no scoreboard, no PMU, no sampling, no trace
//! pool. If the simulator (with or without ADORE patching underneath)
//! ever disagrees with this interpreter on final architectural state,
//! one of them has a semantics bug.
//!
//! Deliberately mirrored simulator quirks (these are *architectural*
//! contracts of the ISA model, asserted by unit tests here and pinned
//! against the simulator by the differential harness):
//!
//! * `r0` is hardwired zero, `f0`/`f1` read 0.0/1.0 and ignore writes,
//!   `p0` is always true;
//! * a load writes its destination **before** applying the
//!   post-increment, so `ld8 r4 = [r4], 8` increments the *loaded*
//!   value;
//! * speculative loads (`ld.s`) read zero from unmapped addresses;
//!   `lfetch` has no architectural effect beyond its post-increment;
//! * `getf` truncates the f64 with Rust `as i64` (saturating) and
//!   `setf` converts with `as f64`; `fma` uses fused `mul_add`;
//! * a branch in a bundle skips the remaining slots; targets are
//!   bundle-aligned;
//! * faults ([`sim::Fault`]) freeze the machine at the faulting
//!   instruction: earlier slots keep their effects, the faulting slot
//!   has none.

use isa::{Addr, Op, Program};
use sim::{Fault, Memory};

/// Why [`Interp::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The program executed `Halt`.
    Halted,
    /// The program raised an architectural fault.
    Faulted(Fault),
    /// The retired-instruction budget was exhausted before the program
    /// halted (the program may never terminate).
    OutOfFuel,
}

/// The reference interpreter.
#[derive(Debug)]
pub struct Interp {
    program: Program,
    mem: Memory,
    gr: [i64; 128],
    fr: [f64; 128],
    pr: [bool; 64],
    ret_stack: Vec<Addr>,
    ip: Addr,
    retired: u64,
    halted: bool,
    fault: Option<Fault>,
}

impl Interp {
    /// Creates an interpreter for `program` with a data arena of
    /// `mem_capacity` bytes at the default base. Use the same capacity
    /// as the simulated machine so fault boundaries agree.
    pub fn new(program: Program, mem_capacity: usize) -> Interp {
        let mut pr = [false; 64];
        pr[0] = true;
        let mut fr = [0.0; 128];
        fr[1] = 1.0;
        Interp {
            ip: program.entry(),
            program,
            mem: Memory::new(mem_capacity),
            gr: [0; 128],
            fr,
            pr,
            ret_stack: Vec::new(),
            retired: 0,
            halted: false,
            fault: None,
        }
    }

    /// The data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory (test and harness setup).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Reads a general register.
    pub fn gr(&self, r: isa::Gr) -> i64 {
        self.gr[r.index()]
    }

    /// Writes a general register (setup; `r0` stays zero).
    pub fn set_gr(&mut self, r: isa::Gr, v: i64) {
        if r.index() != 0 {
            self.gr[r.index()] = v;
        }
    }

    /// Reads a floating-point register.
    pub fn fr(&self, r: isa::Fr) -> f64 {
        self.fr[r.index()]
    }

    /// Reads a predicate register.
    pub fn pr(&self, r: isa::Pr) -> bool {
        self.pr[r.index()]
    }

    /// Retired instruction count (slots, including nops and
    /// predicated-off instructions — mirroring the simulator's PMU).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The architectural fault raised, if any.
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs until halt, fault, or `fuel` retired instructions.
    pub fn run(&mut self, fuel: u64) -> Outcome {
        while !self.halted {
            if let Some(f) = self.fault {
                return Outcome::Faulted(f);
            }
            if self.retired >= fuel {
                return Outcome::OutOfFuel;
            }
            self.step_bundle();
        }
        Outcome::Halted
    }

    fn write_gr(&mut self, r: isa::Gr, v: i64) {
        if r.index() != 0 {
            self.gr[r.index()] = v;
        }
    }

    fn write_fr(&mut self, r: isa::Fr, v: f64) {
        if r.index() > 1 {
            self.fr[r.index()] = v;
        }
    }

    fn write_pr(&mut self, r: isa::Pr, v: bool) {
        if r.index() != 0 {
            self.pr[r.index()] = v;
        }
    }

    fn step_bundle(&mut self) {
        let bundle_addr = self.ip;
        let Some(bundle) = self.program.bundle_at(bundle_addr).cloned() else {
            self.fault = Some(Fault::UnmappedFetch(bundle_addr));
            return;
        };

        let mut taken: Option<Addr> = None;
        let fall_through = bundle_addr.offset_bundles(1);

        for slot in 0..3usize {
            let insn = bundle.slots[slot];
            self.retired += 1;

            if let Some(qp) = insn.qp {
                if !self.pr[qp.index()] {
                    continue;
                }
            }

            match insn.op {
                Op::Nop(_) | Op::Alloc => {}
                Op::Add { d, a, b } => {
                    let v = self.gr[a.index()].wrapping_add(self.gr[b.index()]);
                    self.write_gr(d, v);
                }
                Op::AddI { d, a, imm } => {
                    let v = self.gr[a.index()].wrapping_add(imm);
                    self.write_gr(d, v);
                }
                Op::Sub { d, a, b } => {
                    let v = self.gr[a.index()].wrapping_sub(self.gr[b.index()]);
                    self.write_gr(d, v);
                }
                Op::Shladd { d, a, count, b } => {
                    let v = (self.gr[a.index()] << count).wrapping_add(self.gr[b.index()]);
                    self.write_gr(d, v);
                }
                Op::And { d, a, b } => {
                    self.write_gr(d, self.gr[a.index()] & self.gr[b.index()]);
                }
                Op::Or { d, a, b } => {
                    self.write_gr(d, self.gr[a.index()] | self.gr[b.index()]);
                }
                Op::Xor { d, a, b } => {
                    self.write_gr(d, self.gr[a.index()] ^ self.gr[b.index()]);
                }
                Op::MovL { d, imm } => self.write_gr(d, imm),
                Op::Mov { d, s } => {
                    let v = self.gr[s.index()];
                    self.write_gr(d, v);
                }
                Op::Cmp { op, pt, pf, a, b } => {
                    let r = op.eval(self.gr[a.index()], self.gr[b.index()]);
                    self.write_pr(pt, r);
                    self.write_pr(pf, !r);
                }
                Op::CmpI { op, pt, pf, a, imm } => {
                    let r = op.eval(self.gr[a.index()], imm);
                    self.write_pr(pt, r);
                    self.write_pr(pf, !r);
                }
                Op::Ld { d, base, post_inc, size, spec } => {
                    let addr = self.gr[base.index()] as u64;
                    let value = if spec {
                        self.mem.read_spec(addr, size.bytes())
                    } else if self.mem.contains(addr, size.bytes()) {
                        self.mem.read(addr, size.bytes())
                    } else {
                        self.fault = Some(Fault::UnmappedLoad { addr, len: size.bytes() });
                        break;
                    };
                    // Destination first, then post-increment: d == base
                    // increments the loaded value (simulator contract).
                    self.write_gr(d, value as i64);
                    if post_inc != 0 {
                        let nb = self.gr[base.index()].wrapping_add(post_inc);
                        self.write_gr(base, nb);
                    }
                }
                Op::St { s, base, post_inc, size } => {
                    let addr = self.gr[base.index()] as u64;
                    if !self.mem.contains(addr, size.bytes()) {
                        self.fault = Some(Fault::UnmappedStore { addr, len: size.bytes() });
                        break;
                    }
                    self.mem.write(addr, size.bytes(), self.gr[s.index()] as u64);
                    if post_inc != 0 {
                        let nb = self.gr[base.index()].wrapping_add(post_inc);
                        self.write_gr(base, nb);
                    }
                }
                Op::Ldf { d, base, post_inc } => {
                    let addr = self.gr[base.index()] as u64;
                    if !self.mem.contains(addr, 8) {
                        self.fault = Some(Fault::UnmappedLoad { addr, len: 8 });
                        break;
                    }
                    let value = self.mem.read_f64(addr);
                    self.write_fr(d, value);
                    if post_inc != 0 {
                        let nb = self.gr[base.index()].wrapping_add(post_inc);
                        self.write_gr(base, nb);
                    }
                }
                Op::Stf { s, base, post_inc } => {
                    let addr = self.gr[base.index()] as u64;
                    if !self.mem.contains(addr, 8) {
                        self.fault = Some(Fault::UnmappedStore { addr, len: 8 });
                        break;
                    }
                    self.mem.write_f64(addr, self.fr[s.index()]);
                    if post_inc != 0 {
                        let nb = self.gr[base.index()].wrapping_add(post_inc);
                        self.write_gr(base, nb);
                    }
                }
                Op::Lfetch { base, post_inc } => {
                    // Non-faulting hint: the post-increment is the only
                    // architectural effect.
                    if post_inc != 0 {
                        let nb = self.gr[base.index()].wrapping_add(post_inc);
                        self.write_gr(base, nb);
                    }
                }
                Op::Fma { d, a, b, c } => {
                    let v = self.fr[a.index()].mul_add(self.fr[b.index()], self.fr[c.index()]);
                    self.write_fr(d, v);
                }
                Op::Fadd { d, a, b } => {
                    let v = self.fr[a.index()] + self.fr[b.index()];
                    self.write_fr(d, v);
                }
                Op::Fmul { d, a, b } => {
                    let v = self.fr[a.index()] * self.fr[b.index()];
                    self.write_fr(d, v);
                }
                Op::Getf { d, s } => {
                    let v = self.fr[s.index()] as i64;
                    self.write_gr(d, v);
                }
                Op::Setf { d, s } => {
                    let v = self.gr[s.index()] as f64;
                    self.write_fr(d, v);
                }
                Op::Br { target } | Op::BrCond { target } => {
                    taken = Some(target);
                }
                Op::BrCall { target } => {
                    self.ret_stack.push(fall_through);
                    taken = Some(target);
                }
                Op::BrRet => {
                    let Some(target) = self.ret_stack.pop() else {
                        self.fault = Some(Fault::ReturnUnderflow);
                        break;
                    };
                    taken = Some(target);
                }
                Op::Halt => {
                    self.halted = true;
                }
            }
            if taken.is_some() || self.halted {
                break;
            }
        }

        if self.fault.is_some() {
            return;
        }

        self.ip = match taken {
            Some(t) => t.bundle_align(),
            None => fall_through,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{AccessSize, Asm, CmpOp, Fr, Gr, Pr, CODE_BASE};
    use sim::DATA_BASE;

    fn interp_for(body: impl FnOnce(&mut Asm)) -> Interp {
        let mut a = Asm::new();
        body(&mut a);
        Interp::new(a.finish(CODE_BASE).unwrap(), 1 << 16)
    }

    #[test]
    fn counting_loop_matches_sim_doc_example() {
        // The doc example from crates/sim/src/lib.rs.
        let mut i = interp_for(|a| {
            a.movl(Gr(10), 0);
            a.label("loop");
            a.addi(Gr(10), Gr(10), 1);
            a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 1000);
            a.br_cond(Pr(1), "loop");
            a.halt();
        });
        assert_eq!(i.run(u64::MAX), Outcome::Halted);
        assert_eq!(i.gr(Gr(10)), 1000);
        assert!(i.pr(Pr(2)) && !i.pr(Pr(1)));
    }

    #[test]
    fn load_post_increment_applies_after_destination_write() {
        // ld8 r4 = [r4], 8 loads *then* post-increments: the increment
        // lands on the loaded value.
        let mut i = interp_for(|a| {
            a.movl(Gr(4), DATA_BASE as i64);
            a.ld(AccessSize::U8, Gr(4), Gr(4), 8);
            a.halt();
        });
        i.mem_mut().alloc(64, 8);
        i.mem_mut().write(DATA_BASE, 8, 100);
        assert_eq!(i.run(u64::MAX), Outcome::Halted);
        assert_eq!(i.gr(Gr(4)), 108);
    }

    #[test]
    fn speculative_load_reads_zero_unmapped() {
        let mut i = interp_for(|a| {
            a.movl(Gr(10), 0x33);
            a.ld_s(AccessSize::U8, Gr(11), Gr(10), 4);
            a.halt();
        });
        assert_eq!(i.run(u64::MAX), Outcome::Halted);
        assert_eq!(i.gr(Gr(11)), 0);
        assert_eq!(i.gr(Gr(10)), 0x33 + 4); // post-inc still applies
    }

    #[test]
    fn unmapped_store_faults_like_the_machine() {
        // Fig. 5(A) from crates/isa/src/lib.rs run with r14 = 0: the
        // first store goes to address 4 and must fault there.
        let mut i = interp_for(|a| {
            a.global("loop");
            a.addi(Gr(14), Gr(14), 4);
            a.st(AccessSize::U4, Gr(14), Gr(20), 4);
            a.halt();
        });
        assert_eq!(
            i.run(u64::MAX),
            Outcome::Faulted(Fault::UnmappedStore { addr: 4, len: 4 })
        );
        assert_eq!(i.gr(Gr(14)), 4); // earlier slot's effect survives
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        let mut i = interp_for(|a| {
            a.label("spin");
            a.br("spin");
        });
        assert_eq!(i.run(10_000), Outcome::OutOfFuel);
    }

    #[test]
    fn fp_transfer_semantics() {
        let mut i = interp_for(|a| {
            a.movl(Gr(10), 7);
            a.emit(isa::Op::Setf { d: Fr(3), s: Gr(10) });
            a.fma(Fr(4), Fr(3), Fr(3), Fr(1)); // 7*7 + 1
            a.emit(isa::Op::Getf { d: Gr(11), s: Fr(4) });
            a.halt();
        });
        assert_eq!(i.run(u64::MAX), Outcome::Halted);
        assert_eq!(i.gr(Gr(11)), 50);
        assert_eq!(i.fr(Fr(4)), 50.0);
    }

    #[test]
    fn call_and_return() {
        let mut i = interp_for(|a| {
            a.movl(Gr(10), 1);
            a.br_call("sub");
            a.addi(Gr(10), Gr(10), 100);
            a.halt();
            a.global("sub");
            a.addi(Gr(10), Gr(10), 10);
            a.ret();
        });
        assert_eq!(i.run(u64::MAX), Outcome::Halted);
        assert_eq!(i.gr(Gr(10)), 111);
    }

    #[test]
    fn bare_return_underflows() {
        let mut i = interp_for(|a| {
            a.ret();
            a.halt();
        });
        assert_eq!(i.run(u64::MAX), Outcome::Faulted(Fault::ReturnUnderflow));
    }
}
