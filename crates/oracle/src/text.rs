//! Line-based reproducer format for `tests/corpus/`.
//!
//! When the fuzzer finds a mismatch it shrinks the case and writes it
//! in this format; the corpus-replay regression test parses the files
//! back into [`ProgSpec`]s and re-checks them on every `cargo test`.
//! The format is deliberately plain text so a failing case can be read,
//! edited, and bisected by hand:
//!
//! ```text
//! adore-oracle-reproducer v1
//! seed 42
//! arena 262144
//! mem_seed 12345
//! insn movl r4 268435456
//! label top
//! insn (p7) addi r8 r8 -1
//! branch cond p7 top
//! flush
//! insn halt
//! ```

use isa::{AccessSize, CmpOp, Fr, Gr, Insn, Op, Pr, SlotKind};

use crate::spec::{BranchKind, Item, ProgSpec};

/// Magic first line of every reproducer file.
pub const HEADER: &str = "adore-oracle-reproducer v1";

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn size_name(s: AccessSize) -> &'static str {
    match s {
        AccessSize::U1 => "u1",
        AccessSize::U2 => "u2",
        AccessSize::U4 => "u4",
        AccessSize::U8 => "u8",
    }
}

fn insn_text(insn: &Insn) -> String {
    let body = match insn.op {
        Op::Add { d, a, b } => format!("add r{} r{} r{}", d.0, a.0, b.0),
        Op::Sub { d, a, b } => format!("sub r{} r{} r{}", d.0, a.0, b.0),
        Op::And { d, a, b } => format!("and r{} r{} r{}", d.0, a.0, b.0),
        Op::Or { d, a, b } => format!("or r{} r{} r{}", d.0, a.0, b.0),
        Op::Xor { d, a, b } => format!("xor r{} r{} r{}", d.0, a.0, b.0),
        Op::AddI { d, a, imm } => format!("addi r{} r{} {imm}", d.0, a.0),
        Op::Shladd { d, a, count, b } => format!("shladd r{} r{} {count} r{}", d.0, a.0, b.0),
        Op::MovL { d, imm } => format!("movl r{} {imm}", d.0),
        Op::Mov { d, s } => format!("mov r{} r{}", d.0, s.0),
        Op::Cmp { op, pt, pf, a, b } => {
            format!("cmp {op} p{} p{} r{} r{}", pt.0, pf.0, a.0, b.0)
        }
        Op::CmpI { op, pt, pf, a, imm } => {
            format!("cmpi {op} p{} p{} r{} {imm}", pt.0, pf.0, a.0)
        }
        Op::Ld { d, base, post_inc, size, spec } => format!(
            "ld {} r{} r{} {post_inc} {}",
            size_name(size),
            d.0,
            base.0,
            if spec { "spec" } else { "nospec" }
        ),
        Op::St { s, base, post_inc, size } => {
            format!("st {} r{} r{} {post_inc}", size_name(size), base.0, s.0)
        }
        Op::Ldf { d, base, post_inc } => format!("ldf f{} r{} {post_inc}", d.0, base.0),
        Op::Stf { s, base, post_inc } => format!("stf r{} f{} {post_inc}", base.0, s.0),
        Op::Lfetch { base, post_inc } => format!("lfetch r{} {post_inc}", base.0),
        Op::Fma { d, a, b, c } => format!("fma f{} f{} f{} f{}", d.0, a.0, b.0, c.0),
        Op::Fadd { d, a, b } => format!("fadd f{} f{} f{}", d.0, a.0, b.0),
        Op::Fmul { d, a, b } => format!("fmul f{} f{} f{}", d.0, a.0, b.0),
        Op::Getf { d, s } => format!("getf r{} f{}", d.0, s.0),
        Op::Setf { d, s } => format!("setf f{} r{}", d.0, s.0),
        Op::BrRet => "ret".into(),
        Op::Alloc => "alloc".into(),
        Op::Halt => "halt".into(),
        Op::Nop(kind) => format!("nop {kind:?}"),
        Op::Br { .. } | Op::BrCond { .. } | Op::BrCall { .. } => {
            // Specs keep branches symbolic (`Item::Branch`); a raw
            // address branch cannot survive re-assembly.
            panic!("raw address branch in spec items; use Item::Branch")
        }
    };
    match insn.qp {
        Some(p) => format!("(p{}) {body}", p.0),
        None => body,
    }
}

/// Serializes a spec into the reproducer format.
///
/// # Panics
///
/// Panics if an [`Item::Insn`] holds a raw address branch
/// (`Op::Br`/`Op::BrCond`/`Op::BrCall`); specs keep branches symbolic
/// via [`Item::Branch`], and neither the generator nor the shrinker
/// ever produce the raw form.
pub fn serialize_repro(spec: &ProgSpec) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("seed {}\n", spec.seed));
    out.push_str(&format!("arena {}\n", spec.arena_bytes));
    out.push_str(&format!("mem_seed {}\n", spec.mem_seed));
    for item in &spec.items {
        match item {
            Item::Label(name) => out.push_str(&format!("label {name}\n")),
            Item::Flush => out.push_str("flush\n"),
            Item::Branch { qp, kind, label } => {
                let kind = match kind {
                    BranchKind::Uncond => "uncond",
                    BranchKind::Cond => "cond",
                    BranchKind::Call => "call",
                };
                let qp = match qp {
                    Some(p) => format!("p{}", p.0),
                    None => "-".into(),
                };
                out.push_str(&format!("branch {kind} {qp} {label}\n"));
            }
            Item::Insn(insn) => out.push_str(&format!("insn {}\n", insn_text(insn))),
        }
    }
    out
}

struct Cursor<'a> {
    toks: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: message.into() }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, ParseError> {
        self.toks.next().ok_or_else(|| self.err(format!("expected {what}")))
    }

    fn done(&mut self) -> Result<(), ParseError> {
        match self.toks.next() {
            Some(t) => Err(self.err(format!("trailing token {t:?}"))),
            None => Ok(()),
        }
    }

    fn int(&mut self, what: &str) -> Result<i64, ParseError> {
        let t = self.next(what)?;
        t.parse().map_err(|_| self.err(format!("bad {what}: {t:?}")))
    }

    fn uint(&mut self, what: &str) -> Result<u64, ParseError> {
        let t = self.next(what)?;
        t.parse().map_err(|_| self.err(format!("bad {what}: {t:?}")))
    }

    fn reg(&mut self, prefix: char, what: &str, max: u64) -> Result<u8, ParseError> {
        let t = self.next(what)?;
        let n = t
            .strip_prefix(prefix)
            .and_then(|rest| rest.parse::<u64>().ok())
            .filter(|&n| n < max)
            .ok_or_else(|| self.err(format!("bad {what}: {t:?}")))?;
        Ok(n as u8)
    }

    fn gr(&mut self) -> Result<Gr, ParseError> {
        self.reg('r', "general register", 128).map(Gr)
    }

    fn fr(&mut self) -> Result<Fr, ParseError> {
        self.reg('f', "fp register", 128).map(Fr)
    }

    fn pr(&mut self) -> Result<Pr, ParseError> {
        self.reg('p', "predicate", 64).map(Pr)
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let t = self.next("compare op")?;
        // `CmpOp: FromStr` is the inverse of its `Display`, so the
        // reproducer format tracks the ISA's mnemonics automatically.
        t.parse().map_err(|()| self.err(format!("bad compare op: {t:?}")))
    }

    fn size(&mut self) -> Result<AccessSize, ParseError> {
        let t = self.next("access size")?;
        Ok(match t {
            "u1" => AccessSize::U1,
            "u2" => AccessSize::U2,
            "u4" => AccessSize::U4,
            "u8" => AccessSize::U8,
            _ => return Err(self.err(format!("bad access size: {t:?}"))),
        })
    }
}

fn parse_insn(c: &mut Cursor<'_>) -> Result<Insn, ParseError> {
    let first = c.next("mnemonic")?;
    let (qp, mnemonic) = if let Some(p) = first.strip_prefix("(p").and_then(|r| r.strip_suffix(')'))
    {
        let n = p
            .parse::<u64>()
            .ok()
            .filter(|&n| n < 64)
            .ok_or_else(|| c.err(format!("bad qualifying predicate: {first:?}")))?;
        (Some(Pr(n as u8)), c.next("mnemonic")?)
    } else {
        (None, first)
    };
    let op = match mnemonic {
        "add" => Op::Add { d: c.gr()?, a: c.gr()?, b: c.gr()? },
        "sub" => Op::Sub { d: c.gr()?, a: c.gr()?, b: c.gr()? },
        "and" => Op::And { d: c.gr()?, a: c.gr()?, b: c.gr()? },
        "or" => Op::Or { d: c.gr()?, a: c.gr()?, b: c.gr()? },
        "xor" => Op::Xor { d: c.gr()?, a: c.gr()?, b: c.gr()? },
        "addi" => Op::AddI { d: c.gr()?, a: c.gr()?, imm: c.int("immediate")? },
        "shladd" => Op::Shladd {
            d: c.gr()?,
            a: c.gr()?,
            count: c.uint("shift count")? as u8,
            b: c.gr()?,
        },
        "movl" => Op::MovL { d: c.gr()?, imm: c.int("immediate")? },
        "mov" => Op::Mov { d: c.gr()?, s: c.gr()? },
        "cmp" => Op::Cmp { op: c.cmp_op()?, pt: c.pr()?, pf: c.pr()?, a: c.gr()?, b: c.gr()? },
        "cmpi" => Op::CmpI {
            op: c.cmp_op()?,
            pt: c.pr()?,
            pf: c.pr()?,
            a: c.gr()?,
            imm: c.int("immediate")?,
        },
        "ld" => {
            let size = c.size()?;
            let d = c.gr()?;
            let base = c.gr()?;
            let post_inc = c.int("post-increment")?;
            let spec = match c.next("spec flag")? {
                "spec" => true,
                "nospec" => false,
                t => return Err(c.err(format!("bad spec flag: {t:?}"))),
            };
            Op::Ld { d, base, post_inc, size, spec }
        }
        "st" => {
            let size = c.size()?;
            let base = c.gr()?;
            let s = c.gr()?;
            let post_inc = c.int("post-increment")?;
            Op::St { s, base, post_inc, size }
        }
        "ldf" => Op::Ldf { d: c.fr()?, base: c.gr()?, post_inc: c.int("post-increment")? },
        "stf" => Op::Stf { base: c.gr()?, s: c.fr()?, post_inc: c.int("post-increment")? },
        "lfetch" => Op::Lfetch { base: c.gr()?, post_inc: c.int("post-increment")? },
        "fma" => Op::Fma { d: c.fr()?, a: c.fr()?, b: c.fr()?, c: c.fr()? },
        "fadd" => Op::Fadd { d: c.fr()?, a: c.fr()?, b: c.fr()? },
        "fmul" => Op::Fmul { d: c.fr()?, a: c.fr()?, b: c.fr()? },
        "getf" => Op::Getf { d: c.gr()?, s: c.fr()? },
        "setf" => Op::Setf { d: c.fr()?, s: c.gr()? },
        "ret" => Op::BrRet,
        "alloc" => Op::Alloc,
        "halt" => Op::Halt,
        "nop" => {
            let kind = match c.next("slot kind")? {
                "M" => SlotKind::M,
                "I" => SlotKind::I,
                "F" => SlotKind::F,
                "B" => SlotKind::B,
                t => return Err(c.err(format!("bad slot kind: {t:?}"))),
            };
            Op::Nop(kind)
        }
        _ => return Err(c.err(format!("unknown mnemonic: {mnemonic:?}"))),
    };
    Ok(Insn { qp, op })
}

/// Parses a reproducer file back into a [`ProgSpec`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for a missing or
/// wrong header, an unknown directive or mnemonic, malformed operands,
/// or trailing tokens. Blank lines and `#` comments are ignored.
pub fn parse_repro(text: &str) -> Result<ProgSpec, ParseError> {
    let mut lines = text.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((n, l)) => {
                let t = l.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                break (n + 1, t);
            }
            None => return Err(ParseError { line: 1, message: "empty file".into() }),
        }
    };
    if header.1 != HEADER {
        return Err(ParseError {
            line: header.0,
            message: format!("bad header: expected {HEADER:?}"),
        });
    }

    let mut spec =
        ProgSpec { seed: 0, arena_bytes: 0, mem_seed: 0, items: Vec::new() };
    for (n, raw) in lines {
        let line = n + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut c = Cursor { toks: trimmed.split_whitespace(), line };
        let directive = c.next("directive")?;
        match directive {
            "seed" => spec.seed = c.uint("seed")?,
            "arena" => spec.arena_bytes = c.uint("arena size")?,
            "mem_seed" => spec.mem_seed = c.uint("memory seed")?,
            "label" => {
                let name = c.next("label name")?.to_string();
                spec.items.push(Item::Label(name));
            }
            "flush" => spec.items.push(Item::Flush),
            "branch" => {
                let kind = match c.next("branch kind")? {
                    "uncond" => BranchKind::Uncond,
                    "cond" => BranchKind::Cond,
                    "call" => BranchKind::Call,
                    t => return Err(c.err(format!("bad branch kind: {t:?}"))),
                };
                let qp = match c.next("qualifying predicate or -")? {
                    "-" => None,
                    t => {
                        let n = t
                            .strip_prefix('p')
                            .and_then(|r| r.parse::<u64>().ok())
                            .filter(|&n| n < 64)
                            .ok_or_else(|| c.err(format!("bad predicate: {t:?}")))?;
                        Some(Pr(n as u8))
                    }
                };
                let label = c.next("target label")?.to_string();
                c.done()?;
                spec.items.push(Item::Branch { qp, kind, label });
            }
            "insn" => {
                let insn = parse_insn(&mut c)?;
                c.done()?;
                spec.items.push(Item::Insn(insn));
            }
            _ => return Err(c.err(format!("unknown directive: {directive:?}"))),
        }
    }
    if spec.arena_bytes == 0 {
        return Err(ParseError { line: 1, message: "missing or zero arena size".into() })
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};

    #[test]
    fn round_trips_generated_specs() {
        let cfg = GenConfig::default();
        for seed in 0..25 {
            let (spec, _) = generate(seed, &cfg);
            let text = serialize_repro(&spec);
            let back = parse_repro(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(spec, back, "seed {seed} did not round-trip");
        }
    }

    #[test]
    fn parses_hand_written_case() {
        let text = "\
adore-oracle-reproducer v1
# a tiny countdown
seed 7
arena 4096
mem_seed 9

insn movl r10 3
label top
insn (p0) addi r10 r10 -1
insn cmpi gt p7 p8 r10 0
branch cond p7 top
flush
insn halt
";
        let spec = parse_repro(text).unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.arena_bytes, 4096);
        assert_eq!(spec.items.len(), 7);
        assert!(spec.assemble().is_ok());
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let bad = format!("{HEADER}\narena 64\ninsn frobnicate r1\n");
        let err = parse_repro(&bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("frobnicate"), "{err}");

        assert!(parse_repro("not a repro\n").is_err());
        assert!(parse_repro("").is_err());
    }
}
