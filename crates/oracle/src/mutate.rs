//! Bundle-level mutation of corpus programs.
//!
//! The campaign derives new cases from interesting corpus entries
//! instead of always generating from scratch. Every operator stays
//! inside the generator's register-discipline contract (see the
//! `generator` module docs): protected registers — the pinned address
//! registers `r4`–`r7`, the loop counters `r21`/`r22`, ADORE's
//! reserved `r27`–`r30` — are never written by mutated code, loop
//! control predicates (`p6`–`p8`, `p14`/`p15`) are never clobbered,
//! and structural items (labels, branches, `halt`) are never replaced
//! or deleted. Structure *is* mutated, but only in closed units: a
//! splice copies a self-contained block (all branch targets inside,
//! no outside branch targeting in) from a donor, with its labels
//! renamed, into a top-level position of the child.
//!
//! Mutated programs may fault — a wild store is a legitimate fuzz case
//! — but the fault is architectural and identical on every leg, so
//! the three-way harness still reaches a verdict. What a mutation must
//! never do is diverge the legs or un-bound a loop, and the protected
//! sets above are exactly what guarantees that.

use isa::{Gr, Insn, Op, Pr};
use workloads::Rng64;

use crate::generator::{random_safe_items, GenConfig, ADDR_REGS, INNER_COUNTER, OUTER_COUNTER};
use crate::spec::{BranchKind, Item, ProgSpec};

/// Mutation tuning.
#[derive(Debug, Clone)]
pub struct MutateConfig {
    /// Generator knobs for replacement/insertion material.
    pub gen: GenConfig,
    /// Operators stacked per derived case, drawn from `[1, max_stack]`.
    pub max_stack: usize,
}

impl Default for MutateConfig {
    fn default() -> MutateConfig {
        MutateConfig { gen: GenConfig::default(), max_stack: 3 }
    }
}

/// Stable operator names, in pick order (report/ledger keys).
pub const OPERATORS: [&str; 7] =
    ["havoc", "insert", "delete", "tweak_imm", "splice", "dup_block", "mem_seed"];

/// Derives a mutated child from `parent`, optionally splicing from
/// `donor`, and returns it with the names of the operators that
/// actually applied. The child is always assemblable: a candidate that
/// breaks assembly is discarded and re-derived (up to four attempts),
/// falling back to a copy of the parent with a re-spun case seed and
/// arena fill. The child's `seed` is always fresh — it drives the
/// ADORE-leg configuration (sampling seed, instrumentation toggle), so
/// even a body-identical fallback explores a new runtime schedule.
pub fn mutate(
    parent: &ProgSpec,
    donor: Option<&ProgSpec>,
    seed: u64,
    cfg: &MutateConfig,
) -> (ProgSpec, Vec<&'static str>) {
    let mut rng = Rng64::new(seed ^ 0x6d75_7461_7465); // "mutate"
    for _attempt in 0..4 {
        let mut child = parent.clone();
        child.seed = rng.next_u64();
        let mut applied: Vec<&'static str> = Vec::new();
        let stack = rng.range_u64(1, cfg.max_stack.max(1) as u64 + 1) as usize;
        let mut structural_done = false;
        for _ in 0..stack {
            let mut op = *rng.choose(&OPERATORS);
            if structural_done && (op == "splice" || op == "dup_block") {
                // At most one block copy per child: duplicated hot
                // loops multiply retired-instruction cost and would
                // push children over the interpreter fuel budget.
                op = "tweak_imm";
            }
            let ok = match op {
                "havoc" => havoc(&mut child, &mut rng, cfg),
                "insert" => insert_ops(&mut child, &mut rng, cfg),
                "delete" => delete_op(&mut child, &mut rng),
                "tweak_imm" => tweak_imm(&mut child, &mut rng),
                "splice" => {
                    structural_done = true;
                    splice(&mut child, donor.unwrap_or(parent), &mut rng)
                }
                "dup_block" => {
                    structural_done = true;
                    let source = child.clone();
                    splice(&mut child, &source, &mut rng)
                }
                "mem_seed" => {
                    child.mem_seed = rng.next_u64() | 1;
                    true
                }
                _ => unreachable!("operator list is fixed"),
            };
            if ok {
                applied.push(op);
            }
        }
        if !applied.is_empty() && child.assemble().is_ok() {
            return (child, applied);
        }
    }
    // Fallback: parent body, fresh runtime schedule and arena fill.
    let mut child = parent.clone();
    child.seed = rng.next_u64();
    child.mem_seed = rng.next_u64() | 1;
    (child, vec!["mem_seed"])
}

/// Registers mutated code must never write: pinned address registers,
/// loop counters, and ADORE's reserved block.
fn protected_gr(r: Gr) -> bool {
    ADDR_REGS.contains(&r)
        || r == INNER_COUNTER
        || r == OUTER_COUNTER
        || Gr::RESERVED.contains(&r)
}

/// Predicates mutated code must never write: loop control plus ADORE's
/// reserved `p6`.
fn protected_pr(p: Pr) -> bool {
    matches!(p.0, 6 | 7 | 8 | 14 | 15)
}

/// True when replacing or deleting `insn` cannot break the register
/// discipline or program structure.
fn mutable_insn(insn: &Insn) -> bool {
    match insn.op {
        Op::Halt | Op::BrRet | Op::Alloc => false,
        Op::Br { .. } | Op::BrCond { .. } | Op::BrCall { .. } => false,
        Op::Add { d, .. }
        | Op::AddI { d, .. }
        | Op::Sub { d, .. }
        | Op::Shladd { d, .. }
        | Op::And { d, .. }
        | Op::Or { d, .. }
        | Op::Xor { d, .. }
        | Op::MovL { d, .. }
        | Op::Mov { d, .. }
        | Op::Getf { d, .. } => !protected_gr(d),
        Op::Ld { d, base, post_inc, .. } => {
            !protected_gr(d) && !(post_inc != 0 && protected_gr(base))
        }
        Op::St { base, post_inc, .. }
        | Op::Ldf { base, post_inc, .. }
        | Op::Stf { base, post_inc, .. }
        | Op::Lfetch { base, post_inc, .. } => !(post_inc != 0 && protected_gr(base)),
        Op::Cmp { pt, pf, .. } | Op::CmpI { pt, pf, .. } => {
            !protected_pr(pt) && !protected_pr(pf)
        }
        Op::Fma { .. } | Op::Fadd { .. } | Op::Fmul { .. } => true,
        Op::Setf { .. } | Op::Nop(_) => true,
    }
}

/// Index of the first `halt` (end of the main body), or `items.len()`.
fn halt_index(items: &[Item]) -> usize {
    items
        .iter()
        .position(|it| matches!(it, Item::Insn(insn) if matches!(insn.op, Op::Halt)))
        .unwrap_or(items.len())
}

/// Indices of mutable instructions (anywhere — main body or subs).
fn mutable_indices(items: &[Item]) -> Vec<usize> {
    items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            Item::Insn(insn) if mutable_insn(insn) => Some(i),
            Item::Flush => Some(i),
            _ => None,
        })
        .collect()
}

/// Replaces one mutable instruction with freshly generated safe items.
fn havoc(spec: &mut ProgSpec, rng: &mut Rng64, cfg: &MutateConfig) -> bool {
    let candidates = mutable_indices(&spec.items);
    if candidates.is_empty() {
        return false;
    }
    let at = *rng.choose(&candidates);
    let fresh = random_safe_items(rng, &cfg.gen, 1, true);
    spec.items.splice(at..=at, fresh);
    true
}

/// Inserts 1–3 freshly generated safe items at a main-body position.
fn insert_ops(spec: &mut ProgSpec, rng: &mut Rng64, cfg: &MutateConfig) -> bool {
    let halt = halt_index(&spec.items);
    let at = rng.below(halt as u64 + 1) as usize;
    let n = rng.range_u64(1, 4) as usize;
    let fresh = random_safe_items(rng, &cfg.gen, n, true);
    spec.items.splice(at..at, fresh);
    true
}

/// Deletes one mutable instruction (or a bundle stop).
fn delete_op(spec: &mut ProgSpec, rng: &mut Rng64) -> bool {
    let candidates = mutable_indices(&spec.items);
    if candidates.is_empty() {
        return false;
    }
    let at = *rng.choose(&candidates);
    spec.items.remove(at);
    true
}

/// Perturbs one immediate. Loop-counter `movl`s stay bounded (the
/// termination guarantee), address-register `movl`s are protected
/// entirely, everything else wanders freely.
fn tweak_imm(spec: &mut ProgSpec, rng: &mut Rng64) -> bool {
    let eligible: Vec<usize> = spec
        .items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            Item::Insn(insn) => match insn.op {
                Op::AddI { .. } | Op::CmpI { .. } => Some(i),
                Op::MovL { d, .. } if !ADDR_REGS.contains(&d) && !Gr::RESERVED.contains(&d) => {
                    Some(i)
                }
                _ => None,
            },
            _ => None,
        })
        .collect();
    if eligible.is_empty() {
        return false;
    }
    let at = *rng.choose(&eligible);
    let Item::Insn(insn) = &mut spec.items[at] else { return false };
    let tweak = |imm: i64, rng: &mut Rng64| -> i64 {
        match rng.below(6) {
            0 => imm.wrapping_add(*rng.choose(&[1i64, -1, 8, -8, 64, -64])),
            1 => imm ^ (1 << rng.below(8)),
            2 => imm.wrapping_neg(),
            3 => imm / 2,
            4 => imm.wrapping_mul(2),
            _ => rng.range_i64(-1024, 1025),
        }
    };
    match &mut insn.op {
        Op::AddI { imm, .. } | Op::CmpI { imm, .. } => *imm = tweak(*imm, rng),
        Op::MovL { d, imm } => {
            if *d == INNER_COUNTER || *d == OUTER_COUNTER {
                // Trip counts stay positive and bounded: termination
                // by construction survives mutation.
                *imm = tweak(*imm, rng).clamp(1, 4000);
            } else {
                *imm = tweak(*imm, rng);
            }
        }
        _ => return false,
    }
    true
}

/// A `[lo, hi)` block of `items` that is closed under control flow:
/// every branch inside targets a label defined inside, no branch
/// outside targets a label defined inside, and the block sits entirely
/// in the main body. Grown to a fixpoint from a random seed range;
/// `None` when growth escapes the main body or the size cap.
fn closed_block(items: &[Item], rng: &mut Rng64) -> Option<(usize, usize)> {
    let halt = halt_index(items);
    if halt == 0 {
        return None;
    }
    let mut defined = std::collections::HashMap::new();
    for (i, item) in items.iter().enumerate() {
        if let Item::Label(name) = item {
            defined.entry(name.as_str()).or_insert(i);
        }
    }
    let branches: Vec<(usize, usize)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            Item::Branch { label, .. } => defined.get(label.as_str()).map(|&d| (i, d)),
            _ => None,
        })
        .collect();

    let lo0 = rng.below(halt as u64) as usize;
    let mut lo = lo0;
    let mut hi = (lo0 + 1 + rng.below(12) as usize).min(halt);
    const CAP: usize = 48;
    loop {
        let mut grew = false;
        for &(branch, def) in &branches {
            let branch_in = (lo..hi).contains(&branch);
            let def_in = (lo..hi).contains(&def);
            if branch_in && !def_in {
                lo = lo.min(def);
                hi = hi.max(def + 1);
                grew = true;
            } else if def_in && !branch_in {
                lo = lo.min(branch);
                hi = hi.max(branch + 1);
                grew = true;
            }
        }
        if hi > halt || hi - lo > CAP {
            return None;
        }
        if !grew {
            return Some((lo, hi));
        }
    }
}

/// Top-level positions in the main body of `items`: insertion points
/// not inside any backward-branch span, so a spliced block can never
/// land in the middle of a loop body it knows nothing about.
fn top_level_positions(items: &[Item]) -> Vec<usize> {
    let halt = halt_index(items);
    let mut defined = std::collections::HashMap::new();
    for (i, item) in items.iter().enumerate() {
        if let Item::Label(name) = item {
            defined.entry(name.as_str()).or_insert(i);
        }
    }
    let spans: Vec<(usize, usize)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            Item::Branch { label, .. } => {
                defined.get(label.as_str()).and_then(|&d| (d < i).then_some((d, i)))
            }
            _ => None,
        })
        .collect();
    (0..=halt)
        .filter(|&p| !spans.iter().any(|&(def, branch)| def < p && p <= branch))
        .collect()
}

/// Copies a closed block from `donor` into a top-level position of
/// `spec`, renaming the block's labels to a fresh namespace. Blocks
/// containing calls are rejected (their sub bodies live elsewhere).
fn splice(spec: &mut ProgSpec, donor: &ProgSpec, rng: &mut Rng64) -> bool {
    let Some((lo, hi)) = closed_block(&donor.items, rng) else {
        return false;
    };
    let block = &donor.items[lo..hi];
    if block
        .iter()
        .any(|it| matches!(it, Item::Branch { kind: BranchKind::Call, .. }))
    {
        return false;
    }
    let positions = top_level_positions(&spec.items);
    if positions.is_empty() {
        return false;
    }
    let at = *rng.choose(&positions);
    // Fresh label namespace: the block is closed, so renaming every
    // label and branch target inside it keeps it closed.
    let prefix = loop {
        let p = format!("m{:08x}_", rng.next_u64() & 0xffff_ffff);
        let clash = spec.items.iter().chain(block.iter()).any(|it| {
            matches!(it, Item::Label(name) if name.starts_with(&p))
        });
        if !clash {
            break p;
        }
    };
    let renamed: Vec<Item> = block
        .iter()
        .map(|it| match it {
            Item::Label(name) => Item::Label(format!("{prefix}{name}")),
            Item::Branch { qp, kind, label } => Item::Branch {
                qp: *qp,
                kind: *kind,
                label: format!("{prefix}{label}"),
            },
            other => other.clone(),
        })
        .collect();
    spec.items.splice(at..at, renamed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, static_coverage};

    fn discipline_holds(spec: &ProgSpec) -> bool {
        // Every instruction in a mutated program must still satisfy
        // the same write-protection rules the generator guarantees —
        // except the items the generator itself owns (loop control,
        // rebases), which mutation never touches and which therefore
        // remain exactly the parent's.
        spec.items.iter().all(|it| match it {
            Item::Insn(insn) => match insn.op {
                // Reserved registers are never written by anyone.
                Op::Add { d, .. }
                | Op::AddI { d, .. }
                | Op::Sub { d, .. }
                | Op::Shladd { d, .. }
                | Op::And { d, .. }
                | Op::Or { d, .. }
                | Op::Xor { d, .. }
                | Op::MovL { d, .. }
                | Op::Mov { d, .. }
                | Op::Getf { d, .. } => !Gr::RESERVED.contains(&d),
                Op::Ld { d, .. } => !Gr::RESERVED.contains(&d),
                Op::Cmp { pt, pf, .. } | Op::CmpI { pt, pf, .. } => {
                    pt != Pr::RESERVED && pf != Pr::RESERVED
                }
                _ => true,
            },
            _ => true,
        })
    }

    #[test]
    fn mutated_children_assemble_and_keep_the_discipline() {
        let (parent, _) = generate(7, &GenConfig::default());
        let (donor, _) = generate(13, &GenConfig::default());
        let cfg = MutateConfig::default();
        for seed in 0..64 {
            let (child, ops) = mutate(&parent, Some(&donor), seed, &cfg);
            assert!(!ops.is_empty(), "seed {seed}: at least one operator must apply");
            assert!(child.assemble().is_ok(), "seed {seed}: child must assemble");
            assert!(discipline_holds(&child), "seed {seed}: register discipline broken");
            assert!(
                ops.iter().all(|op| OPERATORS.contains(op)),
                "seed {seed}: unknown operator label in {ops:?}"
            );
        }
    }

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let (parent, _) = generate(2, &GenConfig::default());
        let (donor, _) = generate(4, &GenConfig::default());
        let cfg = MutateConfig::default();
        for seed in [0, 9, 1234] {
            let a = mutate(&parent, Some(&donor), seed, &cfg);
            let b = mutate(&parent, Some(&donor), seed, &cfg);
            assert_eq!(a.0, b.0, "seed {seed}: spec must be reproducible");
            assert_eq!(a.1, b.1, "seed {seed}: operator trace must be reproducible");
        }
    }

    #[test]
    fn mutated_children_eventually_differ_structurally() {
        // Coverage-guided scheduling is pointless if mutation never
        // changes what a program contains; across a seed batch the
        // static feature vector must move.
        let (parent, _) = generate(5, &GenConfig::default());
        let base = static_coverage(&parent);
        let cfg = MutateConfig::default();
        let moved = (0..32).any(|seed| {
            let (child, _) = mutate(&parent, None, seed, &cfg);
            static_coverage(&child) != base
        });
        assert!(moved, "32 mutations never changed the static feature vector");
    }

    #[test]
    fn counter_tweaks_stay_bounded() {
        // Termination by construction must survive immediate tweaks:
        // any movl to a loop counter keeps a positive, bounded trip
        // count in every mutated child.
        let (parent, _) = generate(11, &GenConfig::default());
        let cfg = MutateConfig { max_stack: 4, ..MutateConfig::default() };
        for seed in 0..64 {
            let (child, _) = mutate(&parent, None, seed, &cfg);
            for it in &child.items {
                if let Item::Insn(insn) = it {
                    if let Op::MovL { d, imm } = insn.op {
                        if d == INNER_COUNTER || d == OUTER_COUNTER {
                            assert!(
                                (1..=5000).contains(&imm),
                                "seed {seed}: counter movl {imm} out of bounds"
                            );
                        }
                    }
                }
            }
        }
    }
}
