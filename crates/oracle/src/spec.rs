//! Structured program specifications: the unit the generator produces,
//! the shrinker minimizes, and the corpus serializes.
//!
//! A [`ProgSpec`] is a flat list of [`Item`]s — instructions, labels,
//! symbolic branches, and explicit bundle stops — plus the data-arena
//! geometry and the seed used to fill it. Keeping programs in this
//! symbolic form (rather than packed bundles) is what makes shrinking
//! tractable: dropping an item or halving an immediate yields another
//! well-formed candidate that re-assembles from scratch.

use isa::{Asm, AsmError, Insn, Op, Pr, Program, CODE_BASE};
use sim::Memory;
use workloads::Rng64;

/// The flavor of a symbolic branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// `br label`.
    Uncond,
    /// `(qp) br.cond label`.
    Cond,
    /// `br.call label`.
    Call,
}

/// One element of a program specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A label bound to the next bundle boundary.
    Label(String),
    /// A non-branch instruction (branches use [`Item::Branch`] so their
    /// targets stay symbolic through shrinking).
    Insn(Insn),
    /// A branch to a named label.
    Branch {
        /// Qualifying predicate for `Cond` branches.
        qp: Option<Pr>,
        /// Branch flavor.
        kind: BranchKind,
        /// Target label.
        label: String,
    },
    /// An explicit bundle stop (instruction-group boundary), used to
    /// exercise template/stop-bit edge cases.
    Flush,
}

/// A complete, self-describing fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgSpec {
    /// Generator seed (provenance; 0 for hand-written cases).
    pub seed: u64,
    /// Data-arena capacity in bytes (also the machine's `mem_capacity`).
    pub arena_bytes: u64,
    /// Seed for the arena-fill PRNG.
    pub mem_seed: u64,
    /// The program.
    pub items: Vec<Item>,
}

impl ProgSpec {
    /// Assembles the items into a [`Program`] at [`CODE_BASE`].
    ///
    /// # Errors
    ///
    /// Propagates [`AsmError`] — e.g. a shrink candidate that dropped a
    /// label a branch still references.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let mut a = Asm::new();
        for item in &self.items {
            match item {
                Item::Label(name) => a.label(name.clone()),
                Item::Insn(insn) => a.emit(*insn),
                Item::Flush => a.flush(),
                Item::Branch { qp, kind, label } => match kind {
                    BranchKind::Uncond => a.br(label.clone()),
                    BranchKind::Cond => a.br_cond(qp.unwrap_or(Pr(0)), label.clone()),
                    BranchKind::Call => a.br_call(label.clone()),
                },
            }
        }
        a.finish(CODE_BASE)
    }

    /// Initializes a data memory identically for every run of this
    /// case: allocates the arena and fills it with seeded random words.
    pub fn init_memory(&self, mem: &mut Memory) {
        let base = mem.alloc(self.arena_bytes, 64);
        let mut rng = Rng64::new(self.mem_seed ^ 0xa5a5_5a5a_0f0f_f0f0);
        for i in 0..self.arena_bytes / 8 {
            mem.write(base + i * 8, 8, rng.next_u64());
        }
    }

    /// The spec with items in `[lo, hi)` removed (shrinking step).
    pub fn without_items(&self, lo: usize, hi: usize) -> ProgSpec {
        let mut items = Vec::with_capacity(self.items.len());
        items.extend_from_slice(&self.items[..lo]);
        items.extend_from_slice(&self.items[hi.min(self.items.len())..]);
        ProgSpec { items, ..self.clone() }
    }

    /// The spec with the `MovL` immediate at item `idx` halved, if that
    /// item is a `MovL` with an immediate > 1 (trip-count shrinking).
    /// Returns `None` otherwise.
    pub fn with_halved_movl(&self, idx: usize) -> Option<ProgSpec> {
        let Item::Insn(insn) = self.items.get(idx)? else {
            return None;
        };
        let Op::MovL { d, imm } = insn.op else {
            return None;
        };
        if imm <= 1 {
            return None;
        }
        let mut s = self.clone();
        s.items[idx] = Item::Insn(Insn { qp: insn.qp, op: Op::MovL { d, imm: imm / 2 } });
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{CmpOp, Gr};

    fn tiny_spec() -> ProgSpec {
        ProgSpec {
            seed: 0,
            arena_bytes: 4096,
            mem_seed: 7,
            items: vec![
                Item::Insn(Insn::new(Op::MovL { d: Gr(10), imm: 8 })),
                Item::Label("top".into()),
                Item::Insn(Insn::new(Op::AddI { d: Gr(10), a: Gr(10), imm: -1 })),
                Item::Insn(Insn::new(Op::CmpI {
                    op: CmpOp::Gt,
                    pt: Pr(7),
                    pf: Pr(8),
                    a: Gr(10),
                    imm: 0,
                })),
                Item::Branch { qp: Some(Pr(7)), kind: BranchKind::Cond, label: "top".into() },
                Item::Insn(Insn::new(Op::Halt)),
            ],
        }
    }

    #[test]
    fn assembles_and_runs() {
        let spec = tiny_spec();
        let p = spec.assemble().unwrap();
        let mut i = crate::interp::Interp::new(p, spec.arena_bytes as usize);
        assert_eq!(i.run(u64::MAX), crate::interp::Outcome::Halted);
        assert_eq!(i.gr(Gr(10)), 0);
    }

    #[test]
    fn memory_init_is_deterministic() {
        let spec = tiny_spec();
        let mut a = Memory::new(4096);
        let mut b = Memory::new(4096);
        spec.init_memory(&mut a);
        spec.init_memory(&mut b);
        assert_eq!(a.read(a.base(), 8), b.read(b.base(), 8));
        assert_ne!(a.read(a.base(), 8), 0, "arena should hold random data");
    }

    #[test]
    fn shrink_ops_produce_well_formed_candidates() {
        let spec = tiny_spec();
        let fewer = spec.without_items(2, 4);
        assert_eq!(fewer.items.len(), spec.items.len() - 2);
        assert!(fewer.assemble().is_ok());

        let halved = spec.with_halved_movl(0).unwrap();
        let Item::Insn(i) = &halved.items[0] else { panic!() };
        assert_eq!(i.op, Op::MovL { d: Gr(10), imm: 4 });
        assert!(spec.with_halved_movl(2).is_none(), "addi is not a movl");

        // Dropping the label but keeping the branch must surface as an
        // assembly error, not a panic.
        let broken = spec.without_items(1, 2);
        assert!(broken.assemble().is_err());
    }
}
