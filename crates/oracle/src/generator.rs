//! Seeded random program generator.
//!
//! Emits well-formed [`ProgSpec`]s that terminate by construction
//! (all loops are counter-bounded with unpredicated control) yet
//! exercise the surfaces ADORE transforms: hot counted loops with
//! post-increment load streams (so traces get selected and prefetches
//! inserted), predication, forward skip-branches, speculative loads to
//! wild addresses, FP compute and cross-unit transfers, every
//! [`AccessSize`], calls/returns, and bundle stop-bit placement.
//!
//! Register discipline (the generator's safety contract):
//!
//! * **address registers** `r4`–`r7` each own one region of the arena;
//!   they are written only by generator-issued `movl` re-bases, by
//!   at most one bounded post-increment walker per loop, and by the
//!   jump-chase segment below, so non-speculative memory accesses
//!   through them never leave the arena;
//! * a **jump-chase segment** pairs two address registers: one walks a
//!   ring of pointer nodes the segment itself built inside its region,
//!   the other dereferences each node's jump pointer. Every value those
//!   registers can hold is a node address the build loop stored, so
//!   chasing them stays in-arena (`tests/corpus/` pins the same idiom);
//! * **data registers** (`r8`–`r20`, `r31`–`r45`) hold arbitrary
//!   values; only speculative (`ld.s`) and `lfetch` accesses — both
//!   non-faulting — go through them, except for deliberate rare "wild"
//!   accesses that fault identically in every execution;
//! * **loop counters** `r21` (inner), `r22` (outer) are never
//!   destinations of random ops; loop control is never predicated;
//! * ADORE's reserved registers `r27`–`r30` and `p6` are never touched;
//! * random compares write paired predicates `p1–p5`/`p9–p13`
//!   (pt `pk` always pairs with pf `pk+8`), loop control owns `p7/p8`
//!   and `p14/p15`.

use isa::{AccessSize, CmpOp, Fr, Gr, Insn, Op, Pr, SlotKind};
use workloads::Rng64;

use crate::spec::{BranchKind, Item, ProgSpec};

/// Address registers, one per arena region (shared with the mutation
/// engine, whose safety predicate protects the same registers).
pub(crate) const ADDR_REGS: [Gr; 4] = [Gr(4), Gr(5), Gr(6), Gr(7)];
/// Inner / outer loop counters.
pub(crate) const INNER_COUNTER: Gr = Gr(21);
pub(crate) const OUTER_COUNTER: Gr = Gr(22);

/// Generator tuning knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Arena capacity in bytes; split evenly across [`ADDR_REGS`].
    pub arena_bytes: u64,
    /// Number of program segments (straight/loop/skip/call), hot loop
    /// included, drawn from `[min_segments, max_segments]`.
    pub min_segments: usize,
    /// See `min_segments`.
    pub max_segments: usize,
    /// Probability that an eligible instruction is predicated.
    pub predication_prob: f64,
    /// Probability of an explicit bundle stop after an instruction.
    pub flush_prob: f64,
    /// Probability of a rare wild (faulting) non-speculative access in
    /// a straight segment.
    pub wild_mem_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            arena_bytes: 1 << 18,
            min_segments: 3,
            max_segments: 6,
            predication_prob: 0.25,
            flush_prob: 0.12,
            wild_mem_prob: 0.015,
        }
    }
}

/// Counts of generator features present in emitted programs; summed
/// across cases into the fuzz report so coverage regressions are
/// visible in `results/fuzz.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct Coverage {
    pub ld1: u64,
    pub ld2: u64,
    pub ld4: u64,
    pub ld8: u64,
    pub st1: u64,
    pub st2: u64,
    pub st4: u64,
    pub st8: u64,
    pub ldf: u64,
    pub stf: u64,
    pub spec_ld: u64,
    pub spec_ld_alias: u64,
    pub lfetch: u64,
    pub fp_arith: u64,
    pub xfer: u64,
    pub predicated: u64,
    pub flushes: u64,
    pub loops: u64,
    pub hot_loops: u64,
    pub jump_loops: u64,
    pub skip_blocks: u64,
    pub always_taken: u64,
    pub calls: u64,
    pub wild_mem: u64,
    pub bare_ret: u64,
    pub rebases: u64,
}

impl Coverage {
    /// Adds another coverage record into this one.
    pub fn absorb(&mut self, other: &Coverage) {
        for (a, (_, b)) in self.fields_mut().into_iter().zip(other.fields()) {
            *a += b;
        }
    }

    /// `(name, count)` pairs, stable order — for the JSON report.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ld1", self.ld1),
            ("ld2", self.ld2),
            ("ld4", self.ld4),
            ("ld8", self.ld8),
            ("st1", self.st1),
            ("st2", self.st2),
            ("st4", self.st4),
            ("st8", self.st8),
            ("ldf", self.ldf),
            ("stf", self.stf),
            ("spec_ld", self.spec_ld),
            ("spec_ld_alias", self.spec_ld_alias),
            ("lfetch", self.lfetch),
            ("fp_arith", self.fp_arith),
            ("xfer", self.xfer),
            ("predicated", self.predicated),
            ("flushes", self.flushes),
            ("loops", self.loops),
            ("hot_loops", self.hot_loops),
            ("jump_loops", self.jump_loops),
            ("skip_blocks", self.skip_blocks),
            ("always_taken", self.always_taken),
            ("calls", self.calls),
            ("wild_mem", self.wild_mem),
            ("bare_ret", self.bare_ret),
            ("rebases", self.rebases),
        ]
    }

    fn fields_mut(&mut self) -> Vec<&mut u64> {
        vec![
            &mut self.ld1,
            &mut self.ld2,
            &mut self.ld4,
            &mut self.ld8,
            &mut self.st1,
            &mut self.st2,
            &mut self.st4,
            &mut self.st8,
            &mut self.ldf,
            &mut self.stf,
            &mut self.spec_ld,
            &mut self.spec_ld_alias,
            &mut self.lfetch,
            &mut self.fp_arith,
            &mut self.xfer,
            &mut self.predicated,
            &mut self.flushes,
            &mut self.loops,
            &mut self.hot_loops,
            &mut self.jump_loops,
            &mut self.skip_blocks,
            &mut self.always_taken,
            &mut self.calls,
            &mut self.wild_mem,
            &mut self.bare_ret,
            &mut self.rebases,
        ]
    }
}

/// Generates one fuzz case from `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> (ProgSpec, Coverage) {
    let mut g = Gen {
        rng: Rng64::new(seed ^ 0x6f72_61636c_6521),
        cfg: cfg.clone(),
        items: Vec::new(),
        cov: Coverage::default(),
        next_label: 0,
        subs: Vec::new(),
    };
    g.program();
    let spec = ProgSpec {
        seed,
        arena_bytes: cfg.arena_bytes,
        mem_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        items: g.items,
    };
    (spec, g.cov)
}

/// Recomputes an approximate static feature [`Coverage`] for an
/// arbitrary spec by scanning its items — the uniform feature
/// extractor for programs whose generation-time counters don't exist
/// (mutated children, imported corpus reproducers). Structural
/// features are reconstructed from the item stream: a backward branch
/// is a loop (one targeting a `hot_outer` label a hot loop, one
/// targeting a `jmp_outer` label a jump-chase loop), a forward
/// conditional branch a skip block, `(p0)` on one an always-taken
/// edge. Deliberately static: it counts what the program *contains*,
/// mirroring the counters the generator bumps while emitting.
pub fn static_coverage(spec: &ProgSpec) -> Coverage {
    let mut cov = Coverage::default();
    let mut defined = std::collections::HashMap::new();
    for (i, item) in spec.items.iter().enumerate() {
        if let Item::Label(name) = item {
            defined.entry(name.as_str()).or_insert(i);
        }
    }
    let count_size = |cov: &mut Coverage, s: AccessSize, store: bool| {
        let slot = match (s, store) {
            (AccessSize::U1, false) => &mut cov.ld1,
            (AccessSize::U2, false) => &mut cov.ld2,
            (AccessSize::U4, false) => &mut cov.ld4,
            (AccessSize::U8, false) => &mut cov.ld8,
            (AccessSize::U1, true) => &mut cov.st1,
            (AccessSize::U2, true) => &mut cov.st2,
            (AccessSize::U4, true) => &mut cov.st4,
            (AccessSize::U8, true) => &mut cov.st8,
        };
        *slot += 1;
    };
    let mut seen_halt = false;
    for (i, item) in spec.items.iter().enumerate() {
        match item {
            Item::Flush => cov.flushes += 1,
            Item::Label(_) => {}
            Item::Branch { qp, kind, label } => {
                let backward = defined.get(label.as_str()).is_some_and(|&d| d < i);
                match kind {
                    BranchKind::Call => cov.calls += 1,
                    _ if backward => {
                        cov.loops += 1;
                        if label.starts_with("hot_outer") {
                            cov.hot_loops += 1;
                        } else if label.starts_with("jmp_outer") {
                            cov.jump_loops += 1;
                        }
                    }
                    BranchKind::Cond => {
                        cov.skip_blocks += 1;
                        if *qp == Some(Pr(0)) {
                            cov.always_taken += 1;
                        }
                    }
                    BranchKind::Uncond => {}
                }
            }
            Item::Insn(insn) => {
                if insn.qp.is_some() {
                    cov.predicated += 1;
                }
                match insn.op {
                    Op::Ld { d, base, size, spec: speculative, .. } => {
                        if speculative {
                            cov.spec_ld += 1;
                            if d == base {
                                cov.spec_ld_alias += 1;
                            }
                        } else {
                            count_size(&mut cov, size, false);
                            if !ADDR_REGS.contains(&base) {
                                cov.wild_mem += 1;
                            }
                        }
                    }
                    Op::St { base, size, .. } => {
                        count_size(&mut cov, size, true);
                        if !ADDR_REGS.contains(&base) {
                            cov.wild_mem += 1;
                        }
                    }
                    Op::Ldf { .. } => cov.ldf += 1,
                    Op::Stf { .. } => cov.stf += 1,
                    Op::Lfetch { .. } => cov.lfetch += 1,
                    Op::Fma { .. } | Op::Fadd { .. } | Op::Fmul { .. } => cov.fp_arith += 1,
                    Op::Getf { .. } | Op::Setf { .. } => cov.xfer += 1,
                    Op::MovL { d, .. } if ADDR_REGS.contains(&d) => cov.rebases += 1,
                    // A `ret` in the main body (before the terminating
                    // halt) is a bare return; in a sub body it is the
                    // normal epilogue.
                    Op::BrRet if !seen_halt => cov.bare_ret += 1,
                    Op::Halt => seen_halt = true,
                    _ => {}
                }
            }
        }
    }
    cov
}

/// Emits `n` random discipline-safe items from a stream derived off
/// `rng` (one draw) — the mutation engine's source of replacement and
/// insertion material. Reuses the generator's own op tables, so
/// mutated programs stay inside the register-discipline contract;
/// never emits labels, branches or `halt`. `heavy` additionally allows
/// in-region memory ops through the pinned address registers.
pub(crate) fn random_safe_items(rng: &mut Rng64, cfg: &GenConfig, n: usize, heavy: bool) -> Vec<Item> {
    let mut g = Gen {
        rng: Rng64::new(rng.next_u64()),
        cfg: cfg.clone(),
        items: Vec::new(),
        cov: Coverage::default(),
        next_label: 0,
        subs: Vec::new(),
    };
    for _ in 0..n {
        if heavy {
            g.random_op(false);
        } else {
            g.random_light_op();
        }
    }
    g.items
}

struct Gen {
    rng: Rng64,
    cfg: GenConfig,
    items: Vec<Item>,
    cov: Coverage,
    next_label: u64,
    /// Names of generated subroutines (bodies appended after `halt`).
    subs: Vec<String>,
}

impl Gen {
    fn region(&self, reg_idx: usize) -> (u64, u64) {
        let size = self.cfg.arena_bytes / ADDR_REGS.len() as u64;
        (sim::DATA_BASE + reg_idx as u64 * size, size)
    }

    fn fresh_label(&mut self, prefix: &str) -> String {
        self.next_label += 1;
        format!("{prefix}_{}", self.next_label)
    }

    fn data_reg(&mut self) -> Gr {
        // r8–r20 and r31–r45, never counters or reserved registers.
        if self.rng.bool() {
            Gr(self.rng.range_u64(8, 21) as u8)
        } else {
            Gr(self.rng.range_u64(31, 46) as u8)
        }
    }

    fn fp_reg(&mut self) -> Fr {
        Fr(self.rng.range_u64(2, 13) as u8)
    }

    /// A predicate pair for a random compare: pt `pk`, pf `pk+8`.
    fn cmp_pair(&mut self) -> (Pr, Pr) {
        let k = self.rng.range_u64(1, 6) as u8;
        (Pr(k), Pr(k + 8))
    }

    /// A predicate to *read* as a qualifying predicate.
    fn read_pr(&mut self) -> Pr {
        let pool = [1u8, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 13, 14, 15];
        Pr(*self.rng.choose(&pool))
    }

    fn cmp_op(&mut self) -> CmpOp {
        *self.rng.choose(&[
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Ltu,
        ])
    }

    fn size(&mut self) -> AccessSize {
        *self.rng.choose(&[AccessSize::U1, AccessSize::U2, AccessSize::U4, AccessSize::U8])
    }

    fn count_size(&mut self, s: AccessSize) {
        match s {
            AccessSize::U1 => self.cov.ld1 += 1,
            AccessSize::U2 => self.cov.ld2 += 1,
            AccessSize::U4 => self.cov.ld4 += 1,
            AccessSize::U8 => self.cov.ld8 += 1,
        }
    }

    fn count_store_size(&mut self, s: AccessSize) {
        match s {
            AccessSize::U1 => self.cov.st1 += 1,
            AccessSize::U2 => self.cov.st2 += 1,
            AccessSize::U4 => self.cov.st4 += 1,
            AccessSize::U8 => self.cov.st8 += 1,
        }
    }

    /// Emits `insn`, maybe predicated (when `predicable`), maybe
    /// followed by a bundle stop.
    fn put(&mut self, insn: Insn, predicable: bool) {
        let insn = if predicable && insn.qp.is_none() && self.rng.chance(self.cfg.predication_prob)
        {
            self.cov.predicated += 1;
            Insn::predicated(self.read_pr(), insn.op)
        } else {
            insn
        };
        self.items.push(Item::Insn(insn));
        if self.rng.chance(self.cfg.flush_prob) {
            self.cov.flushes += 1;
            self.items.push(Item::Flush);
        }
    }

    /// Re-bases an address register to a random 8-aligned spot in its
    /// region, `margin` bytes clear of the region end.
    fn rebase(&mut self, reg_idx: usize, margin: u64) {
        let (base, size) = self.region(reg_idx);
        let span = (size - margin) / 8;
        let addr = base + 8 * self.rng.below(span.max(1));
        self.cov.rebases += 1;
        self.put(Insn::new(Op::MovL { d: ADDR_REGS[reg_idx], imm: addr as i64 }), false);
    }

    fn program(&mut self) {
        // Pin every address register into its region first.
        for i in 0..ADDR_REGS.len() {
            self.rebase(i, 64);
        }
        // Seed a few data and FP registers with interesting values.
        for _ in 0..self.rng.range_u64(2, 6) {
            let d = self.data_reg();
            let imm = match self.rng.below(3) {
                0 => self.rng.range_i64(-128, 128),
                // An address inside the arena: makes ld.s hit real data.
                1 => self.rng.range_u64(sim::DATA_BASE, sim::DATA_BASE + self.cfg.arena_bytes)
                    as i64,
                _ => self.rng.next_u64() as i64,
            };
            self.put(Insn::new(Op::MovL { d, imm }), false);
        }
        for _ in 0..self.rng.range_u64(1, 3) {
            let d = self.fp_reg();
            let s = self.data_reg();
            self.cov.xfer += 1;
            self.put(Insn::new(Op::Setf { d, s }), false);
        }

        let n = self.rng.range_u64(self.cfg.min_segments as u64, self.cfg.max_segments as u64 + 1)
            as usize;
        let hot_at = self.rng.below(n as u64) as usize;
        for i in 0..n {
            if i == hot_at {
                self.hot_loop();
            } else {
                match self.rng.below(5) {
                    0 => self.simple_loop(),
                    1 => self.skip_block(),
                    2 if self.subs.len() < 2 => self.call_site(),
                    3 => self.jump_chase_loop(),
                    _ => self.straight(),
                }
            }
        }
        self.items.push(Item::Insn(Insn::new(Op::Halt)));

        // Subroutine bodies live after the halt.
        let subs = std::mem::take(&mut self.subs);
        for name in subs {
            self.items.push(Item::Label(name));
            for _ in 0..self.rng.range_u64(2, 6) {
                self.random_op(false);
            }
            self.items.push(Item::Insn(Insn::new(Op::BrRet)));
        }
    }

    /// The trace-selection target: a counted outer×inner loop whose
    /// inner body streams through an arena region with a post-increment
    /// load — the shape ADORE patches with prefetches.
    fn hot_loop(&mut self) {
        self.cov.hot_loops += 1;
        let reg_idx = self.rng.below(ADDR_REGS.len() as u64) as usize;
        let addr = ADDR_REGS[reg_idx];
        let stride = *self.rng.choose(&[8i64, 16]);
        let (base, size) = self.region(reg_idx);
        let max_trips = (size - 64) / stride as u64;
        let trips = self.rng.range_u64(1200, 2600.min(max_trips)) as i64;
        let outer = self.rng.range_u64(8, 20) as i64;
        let acc = self.data_reg();
        let dst = loop {
            let d = self.data_reg();
            if d != acc {
                break d;
            }
        };
        let outer_label = self.fresh_label("hot_outer");
        let inner_label = self.fresh_label("hot_inner");

        self.put(Insn::new(Op::MovL { d: OUTER_COUNTER, imm: outer }), false);
        self.items.push(Item::Label(outer_label.clone()));
        // Restart the stream at the region base every outer iteration.
        self.put(Insn::new(Op::MovL { d: addr, imm: base as i64 }), false);
        self.put(Insn::new(Op::MovL { d: INNER_COUNTER, imm: trips }), false);
        self.items.push(Item::Label(inner_label.clone()));

        let size_choice = *self.rng.choose(&[AccessSize::U8, AccessSize::U4]);
        self.count_size(size_choice);
        self.put(
            Insn::new(Op::Ld { d: dst, base: addr, post_inc: stride, size: size_choice, spec: false }),
            false,
        );
        // Use the loaded value so misses stall and show up in the DEAR.
        self.put(Insn::new(Op::Add { d: acc, a: acc, b: dst }), false);
        for _ in 0..self.rng.below(3) {
            self.random_light_op();
        }
        self.put(Insn::new(Op::AddI { d: INNER_COUNTER, a: INNER_COUNTER, imm: -1 }), false);
        self.put(
            Insn::new(Op::CmpI { op: CmpOp::Gt, pt: Pr(7), pf: Pr(8), a: INNER_COUNTER, imm: 0 }),
            false,
        );
        self.items.push(Item::Branch {
            qp: Some(Pr(7)),
            kind: BranchKind::Cond,
            label: inner_label,
        });
        self.put(Insn::new(Op::AddI { d: OUTER_COUNTER, a: OUTER_COUNTER, imm: -1 }), false);
        self.put(
            Insn::new(Op::CmpI { op: CmpOp::Gt, pt: Pr(14), pf: Pr(15), a: OUTER_COUNTER, imm: 0 }),
            false,
        );
        self.items.push(Item::Branch {
            qp: Some(Pr(14)),
            kind: BranchKind::Cond,
            label: outer_label,
        });
    }

    /// Draws `N` pairwise-distinct data registers.
    fn distinct_data_regs<const N: usize>(&mut self) -> [Gr; N] {
        let mut out = [Gr(0); N];
        let mut i = 0;
        while i < N {
            let r = self.data_reg();
            if !out[..i].contains(&r) {
                out[i] = r;
                i += 1;
            }
        }
        out
    }

    /// A dependence-based jump-pointer chase: the shape behind the
    /// ADORE analyzer's `Pattern::JumpPointer` classification. A build
    /// loop links a power-of-two ring of 64-byte nodes inside one
    /// region — `next` at offset 0, `jump` (the node `hops` steps ahead
    /// in traversal order) at offset 8 — then a counted outer×inner
    /// chase loads the jump pointer through the ring pointer, a payload
    /// through the jump pointer, and advances via `next`. Every pointer
    /// the chase dereferences was stored by the build loop, so all
    /// loads stay in-arena and can be non-speculative.
    fn jump_chase_loop(&mut self) {
        self.cov.loops += 1; // the build loop
        self.cov.jump_loops += 1;
        let reg_idx = self.rng.below(ADDR_REGS.len() as u64) as usize;
        let ring_reg = ADDR_REGS[reg_idx];
        // The partner register dereferences jump pointers; its values
        // are node addresses in `ring_reg`'s region, still in-arena.
        let jump_reg = ADDR_REGS[reg_idx ^ 1];
        let (base, size) = self.region(reg_idx);
        // Largest power-of-two ring that leaves half the region free.
        let mut ring = 4096u64;
        while ring * 2 <= size / 2 {
            ring *= 2;
        }
        let mask = (ring - 1) as i64;
        let nodes = (ring / 64) as i64;
        // Odd multiple of the node stride: coprime with the ring, so
        // the traversal visits every node before repeating.
        let step = 64 * (2 * self.rng.range_i64(1, 8) + 1);
        let hops = self.rng.range_i64(2, 6);
        let jump_step = hops * step;
        let trips = self.rng.range_u64(700, 1600) as i64;
        let outer = self.rng.range_u64(5, 11) as i64;
        let [rbase, rcur, rnext, rjoff, rabs, rmask] = self.distinct_data_regs::<6>();

        let build = self.fresh_label("jmp_build");
        let outer_label = self.fresh_label("jmp_outer");
        let inner_label = self.fresh_label("jmp_inner");

        // Build loop: node.next = base + ((cur + step) & mask),
        // node.jump = base + ((cur + hops*step) & mask).
        self.cov.st8 += 2;
        self.put(Insn::new(Op::MovL { d: rbase, imm: base as i64 }), false);
        self.put(Insn::new(Op::MovL { d: rcur, imm: 0 }), false);
        self.put(Insn::new(Op::MovL { d: rmask, imm: mask }), false);
        self.put(Insn::new(Op::MovL { d: INNER_COUNTER, imm: nodes }), false);
        self.items.push(Item::Label(build.clone()));
        self.put(Insn::new(Op::Add { d: ring_reg, a: rbase, b: rcur }), false);
        self.put(Insn::new(Op::AddI { d: rnext, a: rcur, imm: step }), false);
        self.put(Insn::new(Op::And { d: rnext, a: rnext, b: rmask }), false);
        self.put(Insn::new(Op::Add { d: rabs, a: rbase, b: rnext }), false);
        self.put(
            Insn::new(Op::St { s: rabs, base: ring_reg, post_inc: 8, size: AccessSize::U8 }),
            false,
        );
        self.put(Insn::new(Op::AddI { d: rjoff, a: rcur, imm: jump_step }), false);
        self.put(Insn::new(Op::And { d: rjoff, a: rjoff, b: rmask }), false);
        self.put(Insn::new(Op::Add { d: rabs, a: rbase, b: rjoff }), false);
        self.put(
            Insn::new(Op::St { s: rabs, base: ring_reg, post_inc: 0, size: AccessSize::U8 }),
            false,
        );
        self.put(Insn::new(Op::Mov { d: rcur, s: rnext }), false);
        self.put(Insn::new(Op::AddI { d: INNER_COUNTER, a: INNER_COUNTER, imm: -1 }), false);
        self.put(
            Insn::new(Op::CmpI { op: CmpOp::Gt, pt: Pr(7), pf: Pr(8), a: INNER_COUNTER, imm: 0 }),
            false,
        );
        self.items.push(Item::Branch { qp: Some(Pr(7)), kind: BranchKind::Cond, label: build });

        // Chase loop. The payload load's base derives from the jump
        // load, whose base derives from the recurrent ring pointer —
        // exactly the two-leg dependence ADORE's pattern analyzer
        // resolves to Pattern::JumpPointer.
        let acc = rcur; // setup scratch, free after the build loop
        let dst = rnext;
        self.cov.ld8 += 3;
        self.put(Insn::new(Op::MovL { d: OUTER_COUNTER, imm: outer }), false);
        self.items.push(Item::Label(outer_label.clone()));
        self.cov.rebases += 1;
        self.put(Insn::new(Op::MovL { d: ring_reg, imm: base as i64 }), false);
        self.put(Insn::new(Op::MovL { d: INNER_COUNTER, imm: trips }), false);
        self.items.push(Item::Label(inner_label.clone()));
        self.put(Insn::new(Op::AddI { d: jump_reg, a: ring_reg, imm: 8 }), false);
        self.put(
            Insn::new(Op::Ld {
                d: jump_reg,
                base: jump_reg,
                post_inc: 0,
                size: AccessSize::U8,
                spec: false,
            }),
            false,
        );
        self.put(Insn::new(Op::AddI { d: jump_reg, a: jump_reg, imm: 16 }), false);
        self.put(
            Insn::new(Op::Ld {
                d: dst,
                base: jump_reg,
                post_inc: 0,
                size: AccessSize::U8,
                spec: false,
            }),
            false,
        );
        self.put(Insn::new(Op::Add { d: acc, a: acc, b: dst }), false);
        self.put(
            Insn::new(Op::Ld {
                d: ring_reg,
                base: ring_reg,
                post_inc: 0,
                size: AccessSize::U8,
                spec: false,
            }),
            false,
        );
        self.put(Insn::new(Op::AddI { d: INNER_COUNTER, a: INNER_COUNTER, imm: -1 }), false);
        self.put(
            Insn::new(Op::CmpI { op: CmpOp::Gt, pt: Pr(7), pf: Pr(8), a: INNER_COUNTER, imm: 0 }),
            false,
        );
        self.items.push(Item::Branch {
            qp: Some(Pr(7)),
            kind: BranchKind::Cond,
            label: inner_label,
        });
        self.put(Insn::new(Op::AddI { d: OUTER_COUNTER, a: OUTER_COUNTER, imm: -1 }), false);
        self.put(
            Insn::new(Op::CmpI { op: CmpOp::Gt, pt: Pr(14), pf: Pr(15), a: OUTER_COUNTER, imm: 0 }),
            false,
        );
        self.items.push(Item::Branch {
            qp: Some(Pr(14)),
            kind: BranchKind::Cond,
            label: outer_label,
        });
    }

    /// A short counted loop, optionally walking an arena region with
    /// one bounded post-increment memory op.
    fn simple_loop(&mut self) {
        self.cov.loops += 1;
        let trips = self.rng.range_u64(4, 64) as i64;
        let label = self.fresh_label("loop");

        // Optional walker through a region: stride * trips stays well
        // inside the region (|stride| ≤ 32, trips ≤ 64 → ≤ 2 KiB).
        let walker = if self.rng.chance(0.7) {
            let reg_idx = self.rng.below(ADDR_REGS.len() as u64) as usize;
            let stride = 8 * self.rng.range_i64(-4, 5);
            let (base, size) = self.region(reg_idx);
            let start = if stride >= 0 {
                base + 8 * self.rng.below(8)
            } else {
                base + size - 64 - 8 * self.rng.below(8)
            };
            self.put(Insn::new(Op::MovL { d: ADDR_REGS[reg_idx], imm: start as i64 }), false);
            Some((ADDR_REGS[reg_idx], stride))
        } else {
            None
        };

        self.put(Insn::new(Op::MovL { d: INNER_COUNTER, imm: trips }), false);
        self.items.push(Item::Label(label.clone()));
        if let Some((addr, stride)) = walker {
            self.walker_op(addr, stride);
        }
        for _ in 0..self.rng.range_u64(2, 6) {
            self.random_light_op();
        }
        self.put(Insn::new(Op::AddI { d: INNER_COUNTER, a: INNER_COUNTER, imm: -1 }), false);
        self.put(
            Insn::new(Op::CmpI { op: CmpOp::Gt, pt: Pr(7), pf: Pr(8), a: INNER_COUNTER, imm: 0 }),
            false,
        );
        self.items.push(Item::Branch { qp: Some(Pr(7)), kind: BranchKind::Cond, label });
    }

    /// The single bounded post-increment access of a loop body.
    fn walker_op(&mut self, addr: Gr, stride: i64) {
        match self.rng.below(5) {
            0 => {
                let s = self.size();
                self.count_size(s);
                let d = self.data_reg();
                self.put(Insn::new(Op::Ld { d, base: addr, post_inc: stride, size: s, spec: false }), true);
            }
            1 => {
                let s = self.size();
                self.count_store_size(s);
                let src = self.data_reg();
                self.put(Insn::new(Op::St { s: src, base: addr, post_inc: stride, size: s }), true);
            }
            2 => {
                self.cov.ldf += 1;
                let d = self.fp_reg();
                self.put(Insn::new(Op::Ldf { d, base: addr, post_inc: stride }), true);
            }
            3 => {
                self.cov.stf += 1;
                let s = self.fp_reg();
                self.put(Insn::new(Op::Stf { s, base: addr, post_inc: stride }), true);
            }
            _ => {
                self.cov.lfetch += 1;
                self.put(Insn::new(Op::Lfetch { base: addr, post_inc: stride }), true);
            }
        }
    }

    /// A forward conditional skip over a few instructions.
    fn skip_block(&mut self) {
        self.cov.skip_blocks += 1;
        let (pt, pf) = self.cmp_pair();
        let a = self.data_reg();
        let op = self.cmp_op();
        if self.rng.bool() {
            let b = self.data_reg();
            self.put(Insn::new(Op::Cmp { op, pt, pf, a, b }), false);
        } else {
            let imm = self.rng.range_i64(-64, 64);
            self.put(Insn::new(Op::CmpI { op, pt, pf, a, imm }), false);
        }
        let label = self.fresh_label("skip");
        let qp = if self.rng.chance(0.1) {
            // Rare always-taken edge (p0 is hardwired true).
            self.cov.always_taken += 1;
            Pr(0)
        } else if self.rng.bool() {
            pt
        } else {
            pf
        };
        self.items.push(Item::Branch { qp: Some(qp), kind: BranchKind::Cond, label: label.clone() });
        for _ in 0..self.rng.range_u64(1, 4) {
            self.random_light_op();
        }
        self.items.push(Item::Label(label));
    }

    /// A call to a (possibly fresh) straight-line subroutine.
    fn call_site(&mut self) {
        self.cov.calls += 1;
        let name = if !self.subs.is_empty() && self.rng.bool() {
            self.rng.choose(&self.subs).clone()
        } else {
            let n = self.fresh_label("sub");
            self.subs.push(n.clone());
            n
        };
        self.items.push(Item::Branch { qp: None, kind: BranchKind::Call, label: name });
    }

    /// A run of random straight-line instructions.
    fn straight(&mut self) {
        for _ in 0..self.rng.range_u64(3, 10) {
            self.random_op(true);
        }
    }

    /// Any random instruction; `allow_hazards` additionally enables the
    /// rare deliberately-faulting accesses (straight code only, so a
    /// fault is identical in every execution).
    fn random_op(&mut self, allow_hazards: bool) {
        if allow_hazards && self.rng.chance(self.cfg.wild_mem_prob) {
            if self.rng.below(8) == 0 {
                // Bare `br.ret` with an empty call stack: a consistent
                // ReturnUnderflow fault in every execution.
                self.cov.bare_ret += 1;
                self.put(Insn::new(Op::BrRet), false);
                return;
            }
            self.cov.wild_mem += 1;
            let base = self.data_reg();
            if self.rng.bool() {
                let s = self.size();
                let d = self.data_reg();
                self.put(Insn::new(Op::Ld { d, base, post_inc: 0, size: s, spec: false }), false);
            } else {
                let s = self.size();
                let src = self.data_reg();
                self.put(Insn::new(Op::St { s: src, base, post_inc: 0, size: s }), false);
            }
            return;
        }
        match self.rng.below(12) {
            0..=2 => self.random_light_op(),
            3 => {
                // Load through an address register (in-bounds by
                // construction, no post-increment outside loops).
                let reg_idx = self.rng.below(ADDR_REGS.len() as u64) as usize;
                if self.rng.below(4) == 0 {
                    self.rebase(reg_idx, 64);
                }
                let s = self.size();
                self.count_size(s);
                let d = self.data_reg();
                self.put(
                    Insn::new(Op::Ld {
                        d,
                        base: ADDR_REGS[reg_idx],
                        post_inc: 0,
                        size: s,
                        spec: false,
                    }),
                    true,
                );
            }
            4 => {
                let reg_idx = self.rng.below(ADDR_REGS.len() as u64) as usize;
                let s = self.size();
                self.count_store_size(s);
                let src = self.data_reg();
                self.put(
                    Insn::new(Op::St { s: src, base: ADDR_REGS[reg_idx], post_inc: 0, size: s }),
                    true,
                );
            }
            5 => {
                let reg_idx = self.rng.below(ADDR_REGS.len() as u64) as usize;
                if self.rng.bool() {
                    self.cov.ldf += 1;
                    let d = self.fp_reg();
                    self.put(
                        Insn::new(Op::Ldf { d, base: ADDR_REGS[reg_idx], post_inc: 0 }),
                        true,
                    );
                } else {
                    self.cov.stf += 1;
                    let s = self.fp_reg();
                    self.put(
                        Insn::new(Op::Stf { s, base: ADDR_REGS[reg_idx], post_inc: 0 }),
                        true,
                    );
                }
            }
            6 => {
                // Speculative load from a *data* register: arbitrary
                // address, non-faulting; sometimes d == base to cover
                // the load-then-post-increment aliasing quirk.
                self.cov.spec_ld += 1;
                let base = self.data_reg();
                let alias = self.rng.below(4) == 0;
                let d = if alias {
                    self.cov.spec_ld_alias += 1;
                    base
                } else {
                    self.data_reg()
                };
                let s = self.size();
                let post_inc = 8 * self.rng.range_i64(-2, 3);
                self.put(Insn::new(Op::Ld { d, base, post_inc, size: s, spec: true }), true);
            }
            7 => {
                // lfetch through a data register: wild addresses are
                // architecturally inert.
                self.cov.lfetch += 1;
                let base = self.data_reg();
                let post_inc = 8 * self.rng.range_i64(-2, 3);
                self.put(Insn::new(Op::Lfetch { base, post_inc }), true);
            }
            8 => {
                let (pt, pf) = self.cmp_pair();
                let a = self.data_reg();
                let op = self.cmp_op();
                if self.rng.bool() {
                    let b = self.data_reg();
                    self.put(Insn::new(Op::Cmp { op, pt, pf, a, b }), true);
                } else {
                    let imm = self.rng.range_i64(-1024, 1024);
                    self.put(Insn::new(Op::CmpI { op, pt, pf, a, imm }), true);
                }
            }
            9 => {
                self.cov.fp_arith += 1;
                let d = self.fp_reg();
                let a = self.fp_reg();
                let b = self.fp_reg();
                match self.rng.below(3) {
                    0 => {
                        let c = self.fp_reg();
                        self.put(Insn::new(Op::Fma { d, a, b, c }), true);
                    }
                    1 => self.put(Insn::new(Op::Fadd { d, a, b }), true),
                    _ => self.put(Insn::new(Op::Fmul { d, a, b }), true),
                }
            }
            10 => {
                self.cov.xfer += 1;
                if self.rng.bool() {
                    let d = self.data_reg();
                    let s = self.fp_reg();
                    self.put(Insn::new(Op::Getf { d, s }), true);
                } else {
                    let d = self.fp_reg();
                    let s = self.data_reg();
                    self.put(Insn::new(Op::Setf { d, s }), true);
                }
            }
            _ => {
                let kind = *self.rng.choose(&[SlotKind::M, SlotKind::I, SlotKind::F, SlotKind::B]);
                self.put(Insn::nop(kind), true);
            }
        }
    }

    /// ALU / FP / transfer ops safe anywhere (no memory access through
    /// data registers, no control flow, no address-register writes).
    fn random_light_op(&mut self) {
        let d = self.data_reg();
        match self.rng.below(10) {
            0 => {
                let a = self.data_reg();
                let b = self.data_reg();
                self.put(Insn::new(Op::Add { d, a, b }), true);
            }
            1 => {
                let a = self.data_reg();
                let imm = self.rng.range_i64(-512, 512);
                self.put(Insn::new(Op::AddI { d, a, imm }), true);
            }
            2 => {
                let a = self.data_reg();
                let b = self.data_reg();
                self.put(Insn::new(Op::Sub { d, a, b }), true);
            }
            3 => {
                let a = self.data_reg();
                let b = self.data_reg();
                let count = self.rng.range_u64(1, 5) as u8;
                self.put(Insn::new(Op::Shladd { d, a, count, b }), true);
            }
            4 => {
                let a = self.data_reg();
                let b = self.data_reg();
                let op = match self.rng.below(3) {
                    0 => Op::And { d, a, b },
                    1 => Op::Or { d, a, b },
                    _ => Op::Xor { d, a, b },
                };
                self.put(Insn::new(op), true);
            }
            5 => {
                let s = self.data_reg();
                self.put(Insn::new(Op::Mov { d, s }), true);
            }
            6 => {
                let imm = self.rng.range_i64(-(1 << 40), 1 << 40);
                self.put(Insn::new(Op::MovL { d, imm }), true);
            }
            7 => {
                self.cov.fp_arith += 1;
                let fd = self.fp_reg();
                let a = self.fp_reg();
                let b = self.fp_reg();
                self.put(Insn::new(Op::Fadd { d: fd, a, b }), true);
            }
            8 => {
                self.cov.xfer += 1;
                let s = self.fp_reg();
                self.put(Insn::new(Op::Getf { d, s }), true);
            }
            _ => {
                self.put(Insn::nop(SlotKind::I), true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, Outcome};

    #[test]
    fn generated_programs_assemble() {
        let cfg = GenConfig::default();
        for seed in 0..40 {
            let (spec, _) = generate(seed, &cfg);
            spec.assemble().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let (a, ca) = generate(42, &cfg);
        let (b, cb) = generate(42, &cfg);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn generated_programs_terminate_in_reference_fuel() {
        let cfg = GenConfig::default();
        for seed in 0..12 {
            let (spec, _) = generate(seed, &cfg);
            let p = spec.assemble().unwrap();
            let mut i = Interp::new(p, spec.arena_bytes as usize);
            spec.init_memory(i.mem_mut());
            let out = i.run(4_000_000);
            assert!(
                matches!(out, Outcome::Halted | Outcome::Faulted(_)),
                "seed {seed} did not terminate: {out:?}"
            );
        }
    }

    #[test]
    fn coverage_accumulates_every_feature_over_many_seeds() {
        let cfg = GenConfig::default();
        let mut total = Coverage::default();
        for seed in 0..300 {
            let (_, cov) = generate(seed, &cfg);
            total.absorb(&cov);
        }
        for (name, count) in total.fields() {
            assert!(count > 0, "feature {name} never generated in 300 seeds");
        }
    }
}
