//! Differential fuzzing oracle for the ADORE reproduction.
//!
//! ADORE's whole contract is that runtime optimization is *invisible*:
//! inserting prefetches and patching traces may change timing, but must
//! never change what a program computes. This crate proves that
//! property mechanically:
//!
//! * [`interp`] — a reference interpreter implementing only the
//!   architectural semantics of the ISA (no caches, no pipeline, no
//!   sampling): the ground truth;
//! * [`generator`] — a seeded random program generator emitting
//!   well-formed, terminating programs that exercise the surfaces
//!   ADORE transforms;
//! * [`diff`] — the three-way harness: each program runs on the
//!   reference interpreter, on [`sim::Machine`] with ADORE off, and on
//!   [`sim::Machine`] with an aggressive ADORE configuration, and the
//!   final architectural states must agree bit-for-bit;
//! * [`spec`] / [`text`] — the symbolic program form the shrinker
//!   minimizes and the line-based reproducer format replayed from
//!   `tests/corpus/`.

#![warn(missing_docs)]

pub mod diff;
pub mod generator;
pub mod interp;
pub mod spec;
pub mod text;

pub use diff::{check, shrink, CaseOutcome, CaseResult, DiffConfig, FinalState, Mismatch};
pub use generator::{generate, Coverage, GenConfig};
pub use interp::{Interp, Outcome};
pub use spec::{BranchKind, Item, ProgSpec};
pub use text::{parse_repro, serialize_repro, ParseError};
