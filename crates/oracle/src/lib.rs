//! Differential fuzzing oracle for the ADORE reproduction.
//!
//! ADORE's whole contract is that runtime optimization is *invisible*:
//! inserting prefetches and patching traces may change timing, but must
//! never change what a program computes. This crate proves that
//! property mechanically:
//!
//! * [`interp`] — a reference interpreter implementing only the
//!   architectural semantics of the ISA (no caches, no pipeline, no
//!   sampling): the ground truth;
//! * [`generator`] — a seeded random program generator emitting
//!   well-formed, terminating programs that exercise the surfaces
//!   ADORE transforms;
//! * [`diff`] — the three-way harness: each program runs on the
//!   reference interpreter, on [`sim::Machine`] with ADORE off, and on
//!   [`sim::Machine`] with an aggressive ADORE configuration, and the
//!   final architectural states must agree bit-for-bit;
//! * [`spec`] / [`text`] — the symbolic program form the shrinker
//!   minimizes and the line-based reproducer format replayed from
//!   `tests/corpus/`;
//! * [`mutate`] — bundle-level mutation of corpus programs (havoc,
//!   splice, immediate tweaks) inside the generator's
//!   register-discipline contract;
//! * [`campaign`] — the coverage-guided campaign engine: a persistent
//!   corpus scheduled by coverage novelty, evaluated on snapshot-reset
//!   machines, minimized by the shrinker.

#![warn(missing_docs)]

pub mod campaign;
pub mod diff;
pub mod generator;
pub mod interp;
pub mod mutate;
pub mod spec;
pub mod text;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignMismatch, CampaignStats, CorpusEntry,
};
pub use diff::{
    check, check_case, shrink, shrink_with, CaseOutcome, CaseResult, CaseRunner, DiffConfig,
    FinalState, Mismatch, RunCoverage,
};
pub use generator::{generate, static_coverage, Coverage, GenConfig};
pub use interp::{Interp, Outcome};
pub use mutate::{mutate, MutateConfig};
pub use spec::{BranchKind, Item, ProgSpec};
pub use text::{parse_repro, serialize_repro, ParseError};
