//! The three-way differential harness and the shrinker.
//!
//! Each case runs three times from an identical initial state
//! (same program, same seeded arena):
//!
//! 1. the **reference interpreter** — architectural semantics only;
//! 2. the **plain machine** — full timing model, sampling off, ADORE
//!    off;
//! 3. the **ADORE machine** — an aggressive [`AdoreConfig`] (tiny
//!    caches, short sampling interval, permissive phase detector) so
//!    that hot loops actually get traced and patched.
//!
//! The final architectural states must agree bit-for-bit: general
//! registers (minus ADORE's reserved `r27`–`r30`), predicates (minus
//! the reserved `p6`), FP register bit patterns, a digest of the whole
//! data arena, and the termination outcome. Cycle counts and cache
//! statistics are *expected* to differ — that is the point of the
//! optimizer — so they are never compared.

use adore::AdoreConfig;
use isa::{Fr, Gr, Pr};
use perfmon::PerfmonConfig;
use sim::{
    CacheConfig, ExecPath, Fault, Machine, MachineConfig, Memory, SamplingConfig, StopReason,
};

use crate::interp::{Interp, Outcome};
use crate::spec::ProgSpec;

/// Harness tuning.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Retired-instruction budget for the reference interpreter.
    pub fuel: u64,
    /// Absolute cycle cap for each simulated execution.
    pub cycle_limit: u64,
    /// Maximum candidate evaluations the shrinker may spend.
    pub shrink_evals: usize,
    /// Simulator execution path for both machine legs. The interpreter
    /// leg is path-independent, so fuzzing once per path checks each
    /// simulator loop against the same architectural truth.
    pub exec_path: ExecPath,
    /// Pipeline override for the ADORE leg. `None` runs the default
    /// pipeline; `Some` replaces it (e.g. `PipelineConfig::only(pass)`
    /// to probe that a single pass alone preserves semantics).
    pub pipeline: Option<adore::PipelineConfig>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            fuel: 2_000_000,
            cycle_limit: 60_000_000,
            shrink_evals: 400,
            exec_path: ExecPath::Fast,
            pipeline: None,
        }
    }
}

/// How an execution ended, normalized for comparison.
///
/// Fetch faults compare by kind only: under ADORE the faulting fetch
/// address may be a trace-pool address with no architectural meaning.
/// Data faults compare by address and width — those are architectural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// Clean `halt`.
    Halted,
    /// Instruction fetch from unmapped memory.
    FetchFault,
    /// Non-speculative load from unmapped memory.
    LoadFault {
        /// Faulting address.
        addr: u64,
        /// Access width in bytes.
        len: u64,
    },
    /// Store to unmapped memory.
    StoreFault {
        /// Faulting address.
        addr: u64,
        /// Access width in bytes.
        len: u64,
    },
    /// `br.ret` with an empty return stack.
    RetFault,
    /// Fuel or cycle budget exhausted — no verdict possible.
    TimedOut,
}

impl CaseOutcome {
    fn from_fault(f: Fault) -> CaseOutcome {
        match f {
            Fault::UnmappedFetch(_) => CaseOutcome::FetchFault,
            Fault::UnmappedLoad { addr, len } => CaseOutcome::LoadFault { addr, len },
            Fault::UnmappedStore { addr, len } => CaseOutcome::StoreFault { addr, len },
            Fault::ReturnUnderflow => CaseOutcome::RetFault,
        }
    }

    /// Stable label for the JSON report.
    pub fn label(&self) -> &'static str {
        match self {
            CaseOutcome::Halted => "halted",
            CaseOutcome::FetchFault => "fetch_fault",
            CaseOutcome::LoadFault { .. } => "load_fault",
            CaseOutcome::StoreFault { .. } => "store_fault",
            CaseOutcome::RetFault => "ret_fault",
            CaseOutcome::TimedOut => "timed_out",
        }
    }
}

/// A captured final architectural state.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalState {
    /// Termination outcome.
    pub outcome: CaseOutcome,
    /// All 128 general registers, with ADORE's reserved `r27`–`r30`
    /// zeroed (the patcher owns them).
    pub gr: Vec<i64>,
    /// All 64 predicates, with the reserved `p6` zeroed.
    pub pr: Vec<bool>,
    /// All 128 FP registers as raw bit patterns (NaN-safe equality).
    pub fr: Vec<u64>,
    /// FNV-1a digest of the entire data arena.
    pub mem_digest: u64,
}

/// A semantic divergence between the reference and a simulated run.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which execution disagreed: `"plain"` or `"adore"`.
    pub stage: &'static str,
    /// Human-readable first difference.
    pub detail: String,
    /// The reference interpreter's final state.
    pub reference: FinalState,
    /// The diverging execution's final state.
    pub observed: FinalState,
}

/// The verdict for one case.
#[derive(Debug, Clone)]
pub enum CaseResult {
    /// All three executions agree.
    Agree {
        /// The (shared) termination outcome.
        outcome: CaseOutcome,
        /// Traces the ADORE run actually patched (coverage signal).
        traces_patched: usize,
        /// Loads the ADORE run instrumented for stride discovery (§6).
        instrumented: usize,
        /// Instrumented loads promoted to real prefetch streams.
        promoted: usize,
    },
    /// No verdict: the case could not be compared (reference ran out of
    /// fuel, a simulation hit the cycle cap, or a shrink candidate
    /// failed to assemble).
    Undecided(String),
    /// Semantic divergence — the bug class this crate exists to catch.
    Mismatch(Box<Mismatch>),
}

impl CaseResult {
    /// True when the result is a [`CaseResult::Mismatch`].
    pub fn is_mismatch(&self) -> bool {
        matches!(self, CaseResult::Mismatch(_))
    }
}

/// The shrunken cache geometry used for fuzzing: small enough that the
/// generator's hot loops miss hard and produce DEAR samples, so ADORE
/// reliably selects and patches traces.
fn fuzz_cache() -> CacheConfig {
    CacheConfig {
        l1d_size: 4096,
        l2_size: 16 * 1024,
        l3_size: 48 * 1024,
        ..CacheConfig::default()
    }
}

/// Data-memory headroom beyond the spec arena, identical on all three
/// legs (so unmapped-address faults and arena digests stay comparable).
/// The ADORE leg's §6 instrumentation allocates its recording buffers
/// here; the runtime zeroes them once harvested, so a transparent
/// instrumentation run digests identically to a run that never
/// instrumented.
const INSTR_SCRATCH: u64 = 64 * 1024;

fn base_machine_config(spec: &ProgSpec, cfg: &DiffConfig) -> MachineConfig {
    MachineConfig {
        cache: fuzz_cache(),
        mem_capacity: (spec.arena_bytes + INSTR_SCRATCH) as usize,
        sampling: None,
        exec_path: cfg.exec_path,
        ..MachineConfig::default()
    }
}

/// The aggressive ADORE configuration used for fuzzing: everything the
/// runtime can do is switched on and thresholds are lowered so short
/// fuzz programs still trigger the full pipeline. Overhead charges are
/// zeroed — the oracle compares semantics, not cycles.
pub fn fuzz_adore_config(seed: u64) -> AdoreConfig {
    let mut c = AdoreConfig::enabled();
    c.patch_cost_cycles = 0;
    c.sampling = SamplingConfig {
        interval_cycles: 1_200,
        buffer_capacity: 40,
        per_sample_cost: 0,
        jitter: 0.3,
        seed: seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
    };
    c.perfmon = PerfmonConfig { ueb_windows: 8, overflow_copy_cost: 0 };
    c.phase.windows_required = 2;
    c.phase.min_dpi = 0.0;
    c.phase.cpi_rel_dev = 0.5;
    c.phase.dpi_rel_dev = 2.0;
    c.phase.pc_dev_bytes = 1e9;
    c.trace.min_target_count = 2;
    // Runtime stride instrumentation also claims semantic transparency;
    // fuzz it on half the cases.
    c.instrument_unanalyzable = seed % 2 == 1;
    c
}

fn digest_mem(mem: &Memory) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let base = mem.base();
    let cap = mem.capacity() as u64;
    let mut addr = base;
    while addr + 8 <= base + cap {
        let word = mem.read(addr, 8);
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        addr += 8;
    }
    h
}

fn interp_state(i: &Interp, outcome: CaseOutcome) -> FinalState {
    let mut gr: Vec<i64> = (0..128).map(|k| i.gr(Gr(k as u8))).collect();
    for k in Gr::RESERVED {
        gr[k.index()] = 0;
    }
    let mut pr: Vec<bool> = (0..64).map(|k| i.pr(Pr(k as u8))).collect();
    pr[Pr::RESERVED.index()] = false;
    let fr = (0..128).map(|k| i.fr(Fr(k as u8)).to_bits()).collect();
    FinalState { outcome, gr, pr, fr, mem_digest: digest_mem(i.mem()) }
}

fn machine_state(m: &Machine, outcome: CaseOutcome) -> FinalState {
    let mut gr: Vec<i64> = (0..128).map(|k| m.gr(Gr(k as u8))).collect();
    for k in Gr::RESERVED {
        gr[k.index()] = 0;
    }
    let mut pr: Vec<bool> = (0..64).map(|k| m.pr(Pr(k as u8))).collect();
    pr[Pr::RESERVED.index()] = false;
    let fr = (0..128).map(|k| m.fr(Fr(k as u8)).to_bits()).collect();
    FinalState { outcome, gr, pr, fr, mem_digest: digest_mem(m.mem()) }
}

/// First difference between two states, or `None` if identical.
fn first_difference(reference: &FinalState, observed: &FinalState) -> Option<String> {
    if reference.outcome != observed.outcome {
        return Some(format!(
            "outcome: reference {:?}, observed {:?}",
            reference.outcome, observed.outcome
        ));
    }
    for k in 0..128 {
        if reference.gr[k] != observed.gr[k] {
            return Some(format!(
                "r{k}: reference {:#x}, observed {:#x}",
                reference.gr[k], observed.gr[k]
            ));
        }
    }
    for k in 0..64 {
        if reference.pr[k] != observed.pr[k] {
            return Some(format!(
                "p{k}: reference {}, observed {}",
                reference.pr[k], observed.pr[k]
            ));
        }
    }
    for k in 0..128 {
        if reference.fr[k] != observed.fr[k] {
            return Some(format!(
                "f{k} bits: reference {:#018x}, observed {:#018x}",
                reference.fr[k], observed.fr[k]
            ));
        }
    }
    if reference.mem_digest != observed.mem_digest {
        return Some(format!(
            "memory digest: reference {:#018x}, observed {:#018x}",
            reference.mem_digest, observed.mem_digest
        ));
    }
    None
}

/// Runs one case through all three executions and compares final
/// states.
pub fn check(spec: &ProgSpec, cfg: &DiffConfig) -> CaseResult {
    let program = match spec.assemble() {
        Ok(p) => p,
        Err(e) => return CaseResult::Undecided(format!("assemble: {e}")),
    };

    // Reference interpreter.
    let mut interp =
        Interp::new(program.clone(), (spec.arena_bytes + INSTR_SCRATCH) as usize);
    spec.init_memory(interp.mem_mut());
    let ref_outcome = match interp.run(cfg.fuel) {
        Outcome::Halted => CaseOutcome::Halted,
        Outcome::Faulted(f) => CaseOutcome::from_fault(f),
        Outcome::OutOfFuel => {
            return CaseResult::Undecided("reference out of fuel".into());
        }
    };
    let reference = interp_state(&interp, ref_outcome);

    // Plain machine: full timing model, no sampling, no ADORE.
    let mut plain = Machine::new(program.clone(), base_machine_config(spec, cfg));
    spec.init_memory(plain.mem_mut());
    let plain_outcome = match plain.run(cfg.cycle_limit) {
        StopReason::Halted => CaseOutcome::Halted,
        StopReason::Faulted(f) => CaseOutcome::from_fault(f),
        _ => return CaseResult::Undecided("plain machine hit cycle limit".into()),
    };
    let plain_state = machine_state(&plain, plain_outcome);
    if let Some(detail) = first_difference(&reference, &plain_state) {
        return CaseResult::Mismatch(Box::new(Mismatch {
            stage: "plain",
            detail,
            reference,
            observed: plain_state,
        }));
    }

    // ADORE machine: sampling on, aggressive optimizer.
    let mut adore_config = fuzz_adore_config(spec.seed);
    if let Some(p) = &cfg.pipeline {
        adore_config.pipeline = p.clone();
    }
    let mut opt =
        Machine::new(program, adore_config.machine_config(base_machine_config(spec, cfg)));
    spec.init_memory(opt.mem_mut());
    let report = adore::run_with_limit(&mut opt, &adore_config, cfg.cycle_limit);
    let opt_outcome = if let Some(f) = opt.fault() {
        CaseOutcome::from_fault(f)
    } else if opt.is_halted() {
        CaseOutcome::Halted
    } else {
        return CaseResult::Undecided("adore machine hit cycle limit".into());
    };
    let opt_state = machine_state(&opt, opt_outcome);
    if let Some(detail) = first_difference(&reference, &opt_state) {
        return CaseResult::Mismatch(Box::new(Mismatch {
            stage: "adore",
            detail,
            reference,
            observed: opt_state,
        }));
    }

    CaseResult::Agree {
        outcome: ref_outcome,
        traces_patched: report.traces_patched,
        instrumented: report.instrumented,
        promoted: report.promoted,
    }
}

/// Minimizes a mismatching spec: repeatedly drops item ranges
/// (ddmin-style, halving chunk sizes) and halves `movl` immediates
/// (trip counts), keeping a candidate only when it still mismatches.
/// The result is the smallest still-failing program found within
/// `cfg.shrink_evals` harness evaluations.
pub fn shrink(spec: &ProgSpec, cfg: &DiffConfig) -> ProgSpec {
    let mut best = spec.clone();
    let mut evals = 0usize;
    let still_fails = |candidate: &ProgSpec, evals: &mut usize| -> bool {
        *evals += 1;
        check(candidate, cfg).is_mismatch()
    };

    loop {
        let mut improved = false;

        // Pass 1: drop contiguous item ranges, large chunks first.
        let mut chunk = (best.items.len() / 2).max(1);
        loop {
            let mut lo = 0;
            while lo < best.items.len() {
                if evals >= cfg.shrink_evals {
                    return best;
                }
                let candidate = best.without_items(lo, lo + chunk);
                if candidate.items.len() < best.items.len()
                    && still_fails(&candidate, &mut evals)
                {
                    best = candidate;
                    improved = true;
                    // Stay at `lo`: the next range shifted into place.
                } else {
                    lo += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: halve movl immediates (trip counts, addresses).
        for idx in 0..best.items.len() {
            while let Some(candidate) = best.with_halved_movl(idx) {
                if evals >= cfg.shrink_evals {
                    return best;
                }
                if still_fails(&candidate, &mut evals) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
        }

        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};
    use isa::{CmpOp, Insn, Op};
    use crate::spec::{BranchKind, Item};

    #[test]
    fn generated_cases_agree_across_all_three_executions() {
        let gen_cfg = GenConfig::default();
        let cfg = DiffConfig::default();
        let mut patched = 0usize;
        for seed in 0..8 {
            let (spec, _) = generate(seed, &gen_cfg);
            match check(&spec, &cfg) {
                CaseResult::Agree { traces_patched, .. } => patched += traces_patched,
                CaseResult::Undecided(why) => panic!("seed {seed} undecided: {why}"),
                CaseResult::Mismatch(m) => {
                    panic!("seed {seed} diverged at {}: {}", m.stage, m.detail)
                }
            }
        }
        assert!(patched > 0, "no case got a trace patched — the oracle is not exercising ADORE");
    }

    #[test]
    fn generated_cases_agree_on_the_reference_path_too() {
        // The interpreter leg is path-independent, so running the same
        // seeds with ExecPath::Reference checks the reference simulator
        // loop against the identical architectural truth.
        let gen_cfg = GenConfig::default();
        let cfg = DiffConfig { exec_path: ExecPath::Reference, ..DiffConfig::default() };
        for seed in 0..4 {
            let (spec, _) = generate(seed, &gen_cfg);
            match check(&spec, &cfg) {
                CaseResult::Agree { .. } => {}
                CaseResult::Undecided(why) => panic!("seed {seed} undecided: {why}"),
                CaseResult::Mismatch(m) => {
                    panic!("seed {seed} diverged at {}: {}", m.stage, m.detail)
                }
            }
        }
    }

    #[test]
    fn faulting_case_agrees_too() {
        // A wild store faults identically everywhere.
        let spec = ProgSpec {
            seed: 0,
            arena_bytes: 4096,
            mem_seed: 3,
            items: vec![
                Item::Insn(Insn::new(Op::MovL { d: isa::Gr(8), imm: 0x40 })),
                Item::Insn(Insn::new(Op::St {
                    s: isa::Gr(8),
                    base: isa::Gr(8),
                    post_inc: 0,
                    size: isa::AccessSize::U8,
                })),
                Item::Insn(Insn::new(Op::Halt)),
            ],
        };
        match check(&spec, &DiffConfig::default()) {
            CaseResult::Agree { outcome, .. } => {
                assert_eq!(outcome, CaseOutcome::StoreFault { addr: 0x40, len: 8 });
            }
            other => panic!("expected agreement on the fault, got {other:?}"),
        }
    }

    /// Shrinking only keeps candidates that still mismatch, so an
    /// agreeing spec must come back unchanged. (The full catch-and-
    /// shrink path is exercised by the fuzz binary with an injected
    /// bug; see DESIGN.md.)
    #[test]
    fn shrink_returns_agreeing_spec_unchanged() {
        let (spec, _) = generate(3, &GenConfig::default());
        let cfg = DiffConfig { shrink_evals: 10, ..DiffConfig::default() };
        let out = shrink(&spec, &cfg);
        assert_eq!(out.items.len(), spec.items.len());
    }

    #[test]
    fn hot_loops_actually_get_patched_under_the_fuzz_config() {
        // Deterministic sanity check that the aggressive config works:
        // a plain counted streaming loop must produce >= 1 patched
        // trace, otherwise the adore leg of the oracle tests nothing.
        let items = vec![
            Item::Insn(Insn::new(Op::MovL { d: isa::Gr(22), imm: 30 })),
            Item::Label("outer".into()),
            Item::Insn(Insn::new(Op::MovL { d: isa::Gr(4), imm: sim::DATA_BASE as i64 })),
            Item::Insn(Insn::new(Op::MovL { d: isa::Gr(21), imm: 2000 })),
            Item::Label("inner".into()),
            Item::Insn(Insn::new(Op::Ld {
                d: isa::Gr(9),
                base: isa::Gr(4),
                post_inc: 8,
                size: isa::AccessSize::U8,
                spec: false,
            })),
            Item::Insn(Insn::new(Op::Add { d: isa::Gr(10), a: isa::Gr(10), b: isa::Gr(9) })),
            Item::Insn(Insn::new(Op::AddI { d: isa::Gr(21), a: isa::Gr(21), imm: -1 })),
            Item::Insn(Insn::new(Op::CmpI {
                op: CmpOp::Gt,
                pt: isa::Pr(7),
                pf: isa::Pr(8),
                a: isa::Gr(21),
                imm: 0,
            })),
            Item::Branch { qp: Some(isa::Pr(7)), kind: BranchKind::Cond, label: "inner".into() },
            Item::Insn(Insn::new(Op::AddI { d: isa::Gr(22), a: isa::Gr(22), imm: -1 })),
            Item::Insn(Insn::new(Op::CmpI {
                op: CmpOp::Gt,
                pt: isa::Pr(14),
                pf: isa::Pr(15),
                a: isa::Gr(22),
                imm: 0,
            })),
            Item::Branch { qp: Some(isa::Pr(14)), kind: BranchKind::Cond, label: "outer".into() },
            Item::Insn(Insn::new(Op::Halt)),
        ];
        let spec = ProgSpec { seed: 0, arena_bytes: 1 << 18, mem_seed: 11, items };
        match check(&spec, &DiffConfig::default()) {
            CaseResult::Agree { outcome, traces_patched, .. } => {
                assert_eq!(outcome, CaseOutcome::Halted);
                assert!(traces_patched > 0, "streaming loop was never patched");
            }
            other => panic!("expected agreement, got {other:?}"),
        }
    }
}
