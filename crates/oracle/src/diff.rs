//! The three-way differential harness and the shrinker.
//!
//! Each case runs three times from an identical initial state
//! (same program, same seeded arena):
//!
//! 1. the **reference interpreter** — architectural semantics only;
//! 2. the **plain machine** — full timing model, sampling off, ADORE
//!    off;
//! 3. the **ADORE machine** — an aggressive [`AdoreConfig`] (tiny
//!    caches, short sampling interval, permissive phase detector) so
//!    that hot loops actually get traced and patched.
//!
//! The final architectural states must agree bit-for-bit: general
//! registers (minus ADORE's reserved `r27`–`r30`), predicates (minus
//! the reserved `p6`), FP register bit patterns, a digest of the whole
//! data arena, and the termination outcome. Cycle counts and cache
//! statistics are *expected* to differ — that is the point of the
//! optimizer — so they are never compared.

use adore::AdoreConfig;
use isa::{Fr, Gr, Pr};
use perfmon::PerfmonConfig;
use sim::{
    CacheConfig, ExecPath, Fault, Machine, MachineConfig, Memory, SamplingConfig, StopReason,
};

use crate::interp::{Interp, Outcome};
use crate::spec::ProgSpec;

/// Harness tuning.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Retired-instruction budget for the reference interpreter.
    pub fuel: u64,
    /// Absolute cycle cap for each simulated execution.
    pub cycle_limit: u64,
    /// Maximum candidate evaluations the shrinker may spend.
    pub shrink_evals: usize,
    /// Simulator execution path for both machine legs. The interpreter
    /// leg is path-independent, so fuzzing once per path checks each
    /// simulator loop against the same architectural truth.
    pub exec_path: ExecPath,
    /// Pipeline override for the ADORE leg. `None` runs the default
    /// pipeline; `Some` replaces it (e.g. `PipelineConfig::only(pass)`
    /// to probe that a single pass alone preserves semantics).
    pub pipeline: Option<adore::PipelineConfig>,
    /// Adaptive-policy override for the ADORE leg. `None` keeps the
    /// seed-derived alternation from [`fuzz_adore_config`]; `Some`
    /// forces the controller on or off for every case (the
    /// `--policy=on` schedule smoke).
    pub policy: Option<bool>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            fuel: 2_000_000,
            cycle_limit: 60_000_000,
            shrink_evals: 400,
            exec_path: ExecPath::Fast,
            pipeline: None,
            policy: None,
        }
    }
}

/// How an execution ended, normalized for comparison.
///
/// Fetch faults compare by kind only: under ADORE the faulting fetch
/// address may be a trace-pool address with no architectural meaning.
/// Data faults compare by address and width — those are architectural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// Clean `halt`.
    Halted,
    /// Instruction fetch from unmapped memory.
    FetchFault,
    /// Non-speculative load from unmapped memory.
    LoadFault {
        /// Faulting address.
        addr: u64,
        /// Access width in bytes.
        len: u64,
    },
    /// Store to unmapped memory.
    StoreFault {
        /// Faulting address.
        addr: u64,
        /// Access width in bytes.
        len: u64,
    },
    /// `br.ret` with an empty return stack.
    RetFault,
}

impl CaseOutcome {
    fn from_fault(f: Fault) -> CaseOutcome {
        match f {
            Fault::UnmappedFetch(_) => CaseOutcome::FetchFault,
            Fault::UnmappedLoad { addr, len } => CaseOutcome::LoadFault { addr, len },
            Fault::UnmappedStore { addr, len } => CaseOutcome::StoreFault { addr, len },
            Fault::ReturnUnderflow => CaseOutcome::RetFault,
        }
    }

    /// Stable label for the JSON report.
    pub fn label(&self) -> &'static str {
        match self {
            CaseOutcome::Halted => "halted",
            CaseOutcome::FetchFault => "fetch_fault",
            CaseOutcome::LoadFault { .. } => "load_fault",
            CaseOutcome::StoreFault { .. } => "store_fault",
            CaseOutcome::RetFault => "ret_fault",
        }
    }
}

/// A captured final architectural state.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalState {
    /// Termination outcome.
    pub outcome: CaseOutcome,
    /// All 128 general registers, with ADORE's reserved `r27`–`r30`
    /// zeroed (the patcher owns them).
    pub gr: Vec<i64>,
    /// All 64 predicates, with the reserved `p6` zeroed.
    pub pr: Vec<bool>,
    /// All 128 FP registers as raw bit patterns (NaN-safe equality).
    pub fr: Vec<u64>,
    /// FNV-1a digest of the entire data arena.
    pub mem_digest: u64,
}

/// A semantic divergence between the reference and a simulated run.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which execution disagreed: `"plain"` or `"adore"`.
    pub stage: &'static str,
    /// Human-readable first difference.
    pub detail: String,
    /// The reference interpreter's final state.
    pub reference: FinalState,
    /// The diverging execution's final state.
    pub observed: FinalState,
}

/// The verdict for one case.
#[derive(Debug, Clone)]
pub enum CaseResult {
    /// All three executions agree.
    Agree {
        /// The (shared) termination outcome.
        outcome: CaseOutcome,
        /// Traces the ADORE run actually patched (coverage signal).
        traces_patched: usize,
        /// Loads the ADORE run instrumented for stride discovery (§6).
        instrumented: usize,
        /// Instrumented loads promoted to real prefetch streams.
        promoted: usize,
    },
    /// A hang-safety budget ran out before the case could be compared:
    /// the reference interpreter exhausted its fuel, or a simulated leg
    /// hit the cycle cap. A capped run says **nothing** about semantics
    /// — it is a typed non-verdict with its own counter in
    /// `results/fuzz.json`, never a mismatch and never silently folded
    /// into one.
    Inconclusive {
        /// Which leg hit its budget: `"reference"`, `"plain"` or
        /// `"adore"`.
        leg: &'static str,
        /// Which budget ran out.
        why: String,
    },
    /// No verdict for a structural reason: the spec failed to assemble
    /// (e.g. a shrink or mutation candidate that broke a label).
    Undecided(String),
    /// Semantic divergence — the bug class this crate exists to catch.
    Mismatch(Box<Mismatch>),
}

impl CaseResult {
    /// True when the result is a [`CaseResult::Mismatch`].
    pub fn is_mismatch(&self) -> bool {
        matches!(self, CaseResult::Mismatch(_))
    }

    /// True when the result is a [`CaseResult::Inconclusive`].
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, CaseResult::Inconclusive { .. })
    }
}

/// Runtime coverage signals harvested from one case — the labels the
/// campaign's coverage-guided scheduler feeds on. Static generator
/// features say what a program *contains*; these say what the ADORE
/// runtime actually *did* with it: which pipeline passes ran and
/// accepted work, which rejection-taxonomy labels fired, what trace
/// shapes were deployed, and how the case terminated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunCoverage {
    /// Sorted, deduplicated coverage keys (`outcome:`, `pass:`,
    /// `rej:`, `shape:`, `adore:` prefixes). Empty when the case
    /// reached no verdict.
    pub keys: Vec<String>,
}

fn run_coverage(outcome: CaseOutcome, report: &adore::RunReport) -> RunCoverage {
    let mut keys = vec![format!("outcome:{}", outcome.label())];
    for (kind, ledger) in report.ledger.entries() {
        if ledger.invocations > 0 {
            keys.push(format!("pass:{}", kind.name()));
        }
        if ledger.accepted > 0 {
            keys.push(format!("pass:{}:accept", kind.name()));
        }
        for (label, n) in &ledger.rejections {
            if *n > 0 {
                keys.push(format!("rej:{label}"));
            }
        }
    }
    for event in &report.events {
        for (_start, is_loop, bundles, delinq, stats) in &event.traces {
            // Which prefetch schedules actually got planted — the
            // jump-pointer key is what proves the generator's chase
            // segments reach the dependence-based scheduling arm.
            for (key, n) in [
                ("prefetch:direct", stats.direct),
                ("prefetch:indirect", stats.indirect),
                ("prefetch:pointer", stats.pointer),
                ("prefetch:jump", stats.jump),
            ] {
                if n > 0 {
                    keys.push(key.into());
                }
            }
            // Bucket the shape so the key space stays small enough to
            // saturate: trace kind x bundle-count bucket x
            // delinquent-load bucket.
            keys.push(format!(
                "shape:{}_b{}_d{}",
                if *is_loop { "loop" } else { "line" },
                (*bundles).min(8),
                (*delinq).min(4),
            ));
        }
    }
    if report.traces_patched > 0 {
        keys.push("adore:patched".into());
    }
    if report.traces_unpatched > 0 {
        keys.push("adore:unpatched".into());
    }
    if report.instrumented > 0 {
        keys.push("adore:instrumented".into());
    }
    if report.promoted > 0 {
        keys.push("adore:promoted".into());
    }
    // Policy-controller coverage: whether the controller ran at all,
    // and which decision kinds (trial/score/commit/fallback) the case
    // actually reached — the fallback key is the rare one the campaign
    // scheduler hunts for.
    if report.policy.enabled {
        keys.push("policy:enabled".into());
        for d in &report.policy.decisions {
            keys.push(format!("policy:{}", d.action));
        }
    }
    keys.sort();
    keys.dedup();
    RunCoverage { keys }
}

/// The shrunken cache geometry used for fuzzing: small enough that the
/// generator's hot loops miss hard and produce DEAR samples, so ADORE
/// reliably selects and patches traces.
fn fuzz_cache() -> CacheConfig {
    CacheConfig {
        l1d_size: 4096,
        l2_size: 16 * 1024,
        l3_size: 48 * 1024,
        ..CacheConfig::default()
    }
}

/// Data-memory headroom beyond the spec arena, identical on all three
/// legs (so unmapped-address faults and arena digests stay comparable).
/// The ADORE leg's §6 instrumentation allocates its recording buffers
/// here; the runtime zeroes them once harvested, so a transparent
/// instrumentation run digests identically to a run that never
/// instrumented.
const INSTR_SCRATCH: u64 = 64 * 1024;

fn base_machine_config(spec: &ProgSpec, cfg: &DiffConfig) -> MachineConfig {
    MachineConfig {
        cache: fuzz_cache(),
        mem_capacity: (spec.arena_bytes + INSTR_SCRATCH) as usize,
        sampling: None,
        exec_path: cfg.exec_path,
        ..MachineConfig::default()
    }
}

/// The aggressive ADORE configuration used for fuzzing: everything the
/// runtime can do is switched on and thresholds are lowered so short
/// fuzz programs still trigger the full pipeline. Overhead charges are
/// zeroed — the oracle compares semantics, not cycles.
pub fn fuzz_adore_config(seed: u64) -> AdoreConfig {
    let mut c = AdoreConfig::enabled();
    c.patch_cost_cycles = 0;
    c.sampling = SamplingConfig {
        interval_cycles: 1_200,
        buffer_capacity: 40,
        per_sample_cost: 0,
        jitter: 0.3,
        seed: seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
    };
    c.perfmon = PerfmonConfig { ueb_windows: 8, overflow_copy_cost: 0 };
    c.phase.windows_required = 2;
    c.phase.min_dpi = 0.0;
    c.phase.cpi_rel_dev = 0.5;
    c.phase.dpi_rel_dev = 2.0;
    c.phase.pc_dev_bytes = 1e9;
    c.trace.min_target_count = 2;
    // Runtime stride instrumentation also claims semantic transparency;
    // fuzz it on half the cases.
    c.instrument_unanalyzable = seed % 2 == 1;
    // Jump-pointer scheduling must be transparent both ways: most
    // cases run with it on, every fourth with it off — the off cases
    // drive the `rej:jump_pointer_disabled` coverage key whenever a
    // chase actually classified as a jump pattern.
    c.prefetch.enable_jump = seed % 4 != 2;
    // The adaptive policy controller claims semantic transparency like
    // every other knob: half the cases run with it on (the residue
    // overlaps `instrument_unanalyzable` on seed % 4 == 1, fuzzing the
    // combination too). Two-window trials keep arm switches frequent
    // inside short fuzz programs.
    c.policy.enable = seed % 4 < 2;
    c.policy.trial_windows = 2;
    c
}

fn digest_mem(mem: &Memory) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let base = mem.base();
    let cap = mem.capacity() as u64;
    let mut addr = base;
    while addr + 8 <= base + cap {
        let word = mem.read(addr, 8);
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        addr += 8;
    }
    h
}

fn interp_state(i: &Interp, outcome: CaseOutcome) -> FinalState {
    let mut gr: Vec<i64> = (0..128).map(|k| i.gr(Gr(k as u8))).collect();
    for k in Gr::RESERVED {
        gr[k.index()] = 0;
    }
    let mut pr: Vec<bool> = (0..64).map(|k| i.pr(Pr(k as u8))).collect();
    pr[Pr::RESERVED.index()] = false;
    let fr = (0..128).map(|k| i.fr(Fr(k as u8)).to_bits()).collect();
    FinalState { outcome, gr, pr, fr, mem_digest: digest_mem(i.mem()) }
}

fn machine_state(m: &Machine, outcome: CaseOutcome) -> FinalState {
    let mut gr: Vec<i64> = (0..128).map(|k| m.gr(Gr(k as u8))).collect();
    for k in Gr::RESERVED {
        gr[k.index()] = 0;
    }
    let mut pr: Vec<bool> = (0..64).map(|k| m.pr(Pr(k as u8))).collect();
    pr[Pr::RESERVED.index()] = false;
    let fr = (0..128).map(|k| m.fr(Fr(k as u8)).to_bits()).collect();
    FinalState { outcome, gr, pr, fr, mem_digest: digest_mem(m.mem()) }
}

/// First difference between two states, or `None` if identical.
fn first_difference(reference: &FinalState, observed: &FinalState) -> Option<String> {
    if reference.outcome != observed.outcome {
        return Some(format!(
            "outcome: reference {:?}, observed {:?}",
            reference.outcome, observed.outcome
        ));
    }
    for k in 0..128 {
        if reference.gr[k] != observed.gr[k] {
            return Some(format!(
                "r{k}: reference {:#x}, observed {:#x}",
                reference.gr[k], observed.gr[k]
            ));
        }
    }
    for k in 0..64 {
        if reference.pr[k] != observed.pr[k] {
            return Some(format!(
                "p{k}: reference {}, observed {}",
                reference.pr[k], observed.pr[k]
            ));
        }
    }
    for k in 0..128 {
        if reference.fr[k] != observed.fr[k] {
            return Some(format!(
                "f{k} bits: reference {:#018x}, observed {:#018x}",
                reference.fr[k], observed.fr[k]
            ));
        }
    }
    if reference.mem_digest != observed.mem_digest {
        return Some(format!(
            "memory digest: reference {:#018x}, observed {:#018x}",
            reference.mem_digest, observed.mem_digest
        ));
    }
    None
}

/// Reusable per-worker execution state: one pre-built [`Machine`] per
/// simulated leg *and execution tier*, re-armed in place via
/// [`Machine::reset`] between cases (snapshot/restore) instead of being
/// reallocated. The code-store generation tags keep counting up across
/// resets, so a decoded bundle from a previous case can never alias the
/// current program. Keying the cache by tier lets the campaign's
/// seed-alternating tier schedule reuse machines instead of thrashing
/// one slot between paths. A machine is only reused while the case
/// geometry (memory capacity and execution path) matches; otherwise it
/// is rebuilt from scratch and the counters record which happened.
#[derive(Debug, Default)]
pub struct CaseRunner {
    plain: [Option<Machine>; 3],
    adore: [Option<Machine>; 3],
    /// Machines constructed from scratch (first case, or geometry
    /// change).
    pub builds: u64,
    /// Machines re-armed in place.
    pub resets: u64,
}

impl CaseRunner {
    /// An empty runner; machines are built lazily on first use.
    pub fn new() -> CaseRunner {
        CaseRunner::default()
    }

    /// Leases a machine for one leg: resets the cached one when the
    /// geometry matches, rebuilds otherwise. Only `sampling` may vary
    /// between cases that share a machine — the cache/TLB geometry is
    /// fixed by the fuzz harness and the remaining config fields are
    /// checked here.
    fn lease<'a>(
        slots: &'a mut [Option<Machine>; 3],
        builds: &mut u64,
        resets: &mut u64,
        program: isa::Program,
        config: MachineConfig,
    ) -> &'a mut Machine {
        let slot = &mut slots[config.exec_path as usize];
        match slot {
            Some(m)
                if m.mem().capacity() == config.mem_capacity
                    && m.exec_path() == config.exec_path =>
            {
                *resets += 1;
                m.reset(program, config.sampling);
            }
            _ => {
                *builds += 1;
                *slot = Some(Machine::new(program, config));
            }
        }
        slot.as_mut().expect("machine leased")
    }
}

/// Runs one case through all three executions and compares final
/// states, building fresh machines. Prefer [`check_case`] with a
/// long-lived [`CaseRunner`] when running many cases.
pub fn check(spec: &ProgSpec, cfg: &DiffConfig) -> CaseResult {
    check_case(spec, cfg, &mut CaseRunner::new()).0
}

/// Runs one case through all three executions and compares final
/// states, reusing `runner`'s pre-built machines where possible, and
/// returns the verdict together with the runtime coverage the ADORE
/// leg produced (empty unless the case reached agreement).
pub fn check_case(
    spec: &ProgSpec,
    cfg: &DiffConfig,
    runner: &mut CaseRunner,
) -> (CaseResult, RunCoverage) {
    let program = match spec.assemble() {
        Ok(p) => p,
        Err(e) => return (CaseResult::Undecided(format!("assemble: {e}")), RunCoverage::default()),
    };

    // Reference interpreter.
    let mut interp =
        Interp::new(program.clone(), (spec.arena_bytes + INSTR_SCRATCH) as usize);
    spec.init_memory(interp.mem_mut());
    let ref_outcome = match interp.run(cfg.fuel) {
        Outcome::Halted => CaseOutcome::Halted,
        Outcome::Faulted(f) => CaseOutcome::from_fault(f),
        Outcome::OutOfFuel => {
            return (
                CaseResult::Inconclusive {
                    leg: "reference",
                    why: format!("interpreter fuel exhausted ({} insns)", cfg.fuel),
                },
                RunCoverage::default(),
            );
        }
    };
    let reference = interp_state(&interp, ref_outcome);

    // Plain machine: full timing model, no sampling, no ADORE.
    let plain = CaseRunner::lease(
        &mut runner.plain,
        &mut runner.builds,
        &mut runner.resets,
        program.clone(),
        base_machine_config(spec, cfg),
    );
    spec.init_memory(plain.mem_mut());
    let plain_outcome = match plain.run(cfg.cycle_limit) {
        StopReason::Halted => CaseOutcome::Halted,
        StopReason::Faulted(f) => CaseOutcome::from_fault(f),
        _ => {
            return (
                CaseResult::Inconclusive {
                    leg: "plain",
                    why: format!("cycle cap hit ({} cycles)", cfg.cycle_limit),
                },
                RunCoverage::default(),
            );
        }
    };
    let plain_state = machine_state(plain, plain_outcome);
    let plain_jit = plain.jit_stats();
    if let Some(detail) = first_difference(&reference, &plain_state) {
        return (
            CaseResult::Mismatch(Box::new(Mismatch {
                stage: "plain",
                detail,
                reference,
                observed: plain_state,
            })),
            RunCoverage::default(),
        );
    }

    // ADORE machine: sampling on, aggressive optimizer.
    let mut adore_config = fuzz_adore_config(spec.seed);
    if let Some(p) = &cfg.pipeline {
        adore_config.pipeline = p.clone();
    }
    if let Some(on) = cfg.policy {
        adore_config.policy.enable = on;
    }
    let opt = CaseRunner::lease(
        &mut runner.adore,
        &mut runner.builds,
        &mut runner.resets,
        program,
        adore_config.machine_config(base_machine_config(spec, cfg)),
    );
    spec.init_memory(opt.mem_mut());
    let report = adore::run_with_limit(opt, &adore_config, cfg.cycle_limit);
    let opt_outcome = if let Some(f) = opt.fault() {
        CaseOutcome::from_fault(f)
    } else if opt.is_halted() {
        CaseOutcome::Halted
    } else {
        return (
            CaseResult::Inconclusive {
                leg: "adore",
                why: format!("cycle cap hit ({} cycles)", cfg.cycle_limit),
            },
            RunCoverage::default(),
        );
    };
    let opt_state = machine_state(opt, opt_outcome);
    if let Some(detail) = first_difference(&reference, &opt_state) {
        return (
            CaseResult::Mismatch(Box::new(Mismatch {
                stage: "adore",
                detail,
                reference,
                observed: opt_state,
            })),
            RunCoverage::default(),
        );
    }

    // Tier coverage: which execution path ran, and whether the
    // threaded tier actually compiled (and deoptimized) on either
    // simulated leg — a threaded fuzz run that never compiles is not
    // exercising the tier it claims to.
    let opt_jit = opt.jit_stats();
    let mut coverage = run_coverage(ref_outcome, &report);
    coverage.keys.push(format!("tier:{}", cfg.exec_path.name()));
    let compiled = [plain_jit, opt_jit]
        .iter()
        .flatten()
        .map(|s| s.regions_compiled)
        .sum::<u64>();
    let deopts = [plain_jit, opt_jit].iter().flatten().map(|s| s.deopts).sum::<u64>();
    if compiled > 0 {
        coverage.keys.push("tier:compiled".to_string());
    }
    if deopts > 0 {
        coverage.keys.push("tier:deopt".to_string());
    }
    coverage.keys.sort();
    coverage.keys.dedup();

    (
        CaseResult::Agree {
            outcome: ref_outcome,
            traces_patched: report.traces_patched,
            instrumented: report.instrumented,
            promoted: report.promoted,
        },
        coverage,
    )
}

/// Minimizes a mismatching spec: repeatedly drops item ranges
/// (ddmin-style, halving chunk sizes) and halves `movl` immediates
/// (trip counts), keeping a candidate only when it still mismatches.
/// The result is the smallest still-failing program found within
/// `cfg.shrink_evals` harness evaluations — the hard budget is pinned
/// by `shrink_never_exceeds_its_eval_budget`.
pub fn shrink(spec: &ProgSpec, cfg: &DiffConfig) -> ProgSpec {
    // One runner for the whole minimization: shrink candidates share
    // the original's geometry, so every evaluation after the first two
    // is a machine reset, not a rebuild.
    let mut runner = CaseRunner::new();
    shrink_with(spec, cfg.shrink_evals, |candidate| {
        check_case(candidate, cfg, &mut runner).0.is_mismatch()
    })
    .0
}

/// The generalized minimizer behind [`shrink`]: keeps a candidate only
/// while `keep` holds, spending at most `max_evals` predicate
/// evaluations, and returns the best spec plus the evaluations
/// actually spent. The campaign uses it with a coverage-preservation
/// predicate to minimize corpus entries; [`shrink`] uses it with
/// "still mismatches".
pub fn shrink_with(
    spec: &ProgSpec,
    max_evals: usize,
    mut keep: impl FnMut(&ProgSpec) -> bool,
) -> (ProgSpec, usize) {
    let mut best = spec.clone();
    let mut evals = 0usize;
    let mut keep = |candidate: &ProgSpec, evals: &mut usize| -> bool {
        *evals += 1;
        keep(candidate)
    };

    loop {
        let mut improved = false;

        // Pass 1: drop contiguous item ranges, large chunks first.
        let mut chunk = (best.items.len() / 2).max(1);
        loop {
            let mut lo = 0;
            while lo < best.items.len() {
                if evals >= max_evals {
                    return (best, evals);
                }
                let candidate = best.without_items(lo, lo + chunk);
                if candidate.items.len() < best.items.len()
                    && keep(&candidate, &mut evals)
                {
                    best = candidate;
                    improved = true;
                    // Stay at `lo`: the next range shifted into place.
                } else {
                    lo += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: halve movl immediates (trip counts, addresses).
        for idx in 0..best.items.len() {
            while let Some(candidate) = best.with_halved_movl(idx) {
                if evals >= max_evals {
                    return (best, evals);
                }
                if keep(&candidate, &mut evals) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
        }

        if !improved {
            return (best, evals);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};
    use isa::{CmpOp, Insn, Op};
    use crate::spec::{BranchKind, Item};

    #[test]
    fn generated_cases_agree_across_all_three_executions() {
        let gen_cfg = GenConfig::default();
        let cfg = DiffConfig::default();
        let mut patched = 0usize;
        for seed in 0..8 {
            let (spec, _) = generate(seed, &gen_cfg);
            match check(&spec, &cfg) {
                CaseResult::Agree { traces_patched, .. } => patched += traces_patched,
                CaseResult::Inconclusive { leg, why } => {
                    panic!("seed {seed} inconclusive on {leg}: {why}")
                }
                CaseResult::Undecided(why) => panic!("seed {seed} undecided: {why}"),
                CaseResult::Mismatch(m) => {
                    panic!("seed {seed} diverged at {}: {}", m.stage, m.detail)
                }
            }
        }
        assert!(patched > 0, "no case got a trace patched — the oracle is not exercising ADORE");
    }

    #[test]
    fn generated_cases_agree_on_the_reference_path_too() {
        // The interpreter leg is path-independent, so running the same
        // seeds with ExecPath::Reference checks the reference simulator
        // loop against the identical architectural truth.
        let gen_cfg = GenConfig::default();
        let cfg = DiffConfig { exec_path: ExecPath::Reference, ..DiffConfig::default() };
        for seed in 0..4 {
            let (spec, _) = generate(seed, &gen_cfg);
            match check(&spec, &cfg) {
                CaseResult::Agree { .. } => {}
                other => panic!("seed {seed}: expected agreement, got {other:?}"),
            }
        }
    }

    #[test]
    fn generated_cases_agree_on_the_threaded_path_too() {
        // The threaded tier promises exact architectural state with
        // unmodeled timing; the final-state comparison ignores cycles,
        // so the same seeds must agree when both simulated legs compile
        // their hot regions.
        let gen_cfg = GenConfig::default();
        let cfg = DiffConfig { exec_path: ExecPath::Threaded, ..DiffConfig::default() };
        let mut runner = CaseRunner::new();
        for seed in 0..4 {
            let (spec, _) = generate(seed, &gen_cfg);
            match check_case(&spec, &cfg, &mut runner) {
                (CaseResult::Agree { .. }, cov) => {
                    assert!(
                        cov.keys.iter().any(|k| k == "tier:threaded"),
                        "seed {seed}: coverage must name the tier: {:?}",
                        cov.keys
                    );
                }
                (other, _) => panic!("seed {seed}: expected agreement, got {other:?}"),
            }
        }
    }

    #[test]
    fn threaded_hot_loop_reports_compile_coverage() {
        // A long spin loop must actually reach the compile tier on the
        // threaded path — a threaded fuzz run that never compiles would
        // silently stop testing the tier it claims to.
        let spec = spin_spec(100_000);
        let cfg = DiffConfig { exec_path: ExecPath::Threaded, ..DiffConfig::default() };
        let (result, cov) = check_case(&spec, &cfg, &mut CaseRunner::new());
        assert!(matches!(result, CaseResult::Agree { .. }), "got {result:?}");
        assert!(
            cov.keys.iter().any(|k| k == "tier:compiled"),
            "hot loop never compiled under the threaded path: {:?}",
            cov.keys
        );
        // The cycle-exact default path must not report tier compiles.
        let (_, fast_cov) = check_case(&spec, &DiffConfig::default(), &mut CaseRunner::new());
        assert!(
            fast_cov.keys.iter().all(|k| k != "tier:compiled"),
            "fast path must never compile: {:?}",
            fast_cov.keys
        );
        assert!(fast_cov.keys.iter().any(|k| k == "tier:fast"));
    }

    #[test]
    fn faulting_case_agrees_too() {
        // A wild store faults identically everywhere.
        let spec = ProgSpec {
            seed: 0,
            arena_bytes: 4096,
            mem_seed: 3,
            items: vec![
                Item::Insn(Insn::new(Op::MovL { d: isa::Gr(8), imm: 0x40 })),
                Item::Insn(Insn::new(Op::St {
                    s: isa::Gr(8),
                    base: isa::Gr(8),
                    post_inc: 0,
                    size: isa::AccessSize::U8,
                })),
                Item::Insn(Insn::new(Op::Halt)),
            ],
        };
        match check(&spec, &DiffConfig::default()) {
            CaseResult::Agree { outcome, .. } => {
                assert_eq!(outcome, CaseOutcome::StoreFault { addr: 0x40, len: 8 });
            }
            other => panic!("expected agreement on the fault, got {other:?}"),
        }
    }

    /// Shrinking only keeps candidates that still mismatch, so an
    /// agreeing spec must come back unchanged. (The full catch-and-
    /// shrink path is exercised by the fuzz binary with an injected
    /// bug; see DESIGN.md.)
    #[test]
    fn shrink_returns_agreeing_spec_unchanged() {
        let (spec, _) = generate(3, &GenConfig::default());
        let cfg = DiffConfig { shrink_evals: 10, ..DiffConfig::default() };
        let out = shrink(&spec, &cfg);
        assert_eq!(out.items.len(), spec.items.len());
    }

    /// A counted spin loop of `trips` iterations touching no memory.
    fn spin_spec(trips: i64) -> ProgSpec {
        ProgSpec {
            seed: 0,
            arena_bytes: 4096,
            mem_seed: 1,
            items: vec![
                Item::Insn(Insn::new(Op::MovL { d: isa::Gr(21), imm: trips })),
                Item::Label("spin".into()),
                Item::Insn(Insn::new(Op::AddI { d: isa::Gr(21), a: isa::Gr(21), imm: -1 })),
                Item::Insn(Insn::new(Op::CmpI {
                    op: CmpOp::Gt,
                    pt: isa::Pr(7),
                    pf: isa::Pr(8),
                    a: isa::Gr(21),
                    imm: 0,
                })),
                Item::Branch { qp: Some(isa::Pr(7)), kind: BranchKind::Cond, label: "spin".into() },
                Item::Insn(Insn::new(Op::Halt)),
            ],
        }
    }

    #[test]
    fn cycle_cap_is_inconclusive_not_mismatch() {
        // A loop the machine cannot finish under a tiny cycle cap must
        // come back as a typed Inconclusive naming the capped leg —
        // before the fix this collapsed into the stringly Undecided
        // bucket, one refactor away from being misread as a mismatch.
        let spec = spin_spec(100_000);
        let cfg = DiffConfig { cycle_limit: 1_000, ..DiffConfig::default() };
        match check(&spec, &cfg) {
            CaseResult::Inconclusive { leg, why } => {
                assert_eq!(leg, "plain", "the plain leg runs first and hits the cap first");
                assert!(why.contains("cycle cap"), "why must name the budget: {why}");
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
        assert!(check(&spec, &cfg).is_inconclusive());
        assert!(!check(&spec, &cfg).is_mismatch(), "a capped run is never a mismatch");
    }

    #[test]
    fn fuel_exhaustion_is_inconclusive_on_the_reference_leg() {
        let spec = spin_spec(100_000);
        let cfg = DiffConfig { fuel: 1_000, ..DiffConfig::default() };
        match check(&spec, &cfg) {
            CaseResult::Inconclusive { leg, why } => {
                assert_eq!(leg, "reference");
                assert!(why.contains("fuel"), "why must name the budget: {why}");
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn runner_reuse_matches_fresh_machines() {
        // The snapshot/restore path must be invisible: a runner that
        // re-arms its machines across cases (including revisiting an
        // earlier spec) has to produce the same verdicts, coverage and
        // patch counts as fresh machines every time.
        let cfg = DiffConfig::default();
        let (a, _) = generate(5, &GenConfig::default());
        let (b, _) = generate(3, &GenConfig::default());
        let mut runner = CaseRunner::new();
        for (tag, spec) in [("a", &a), ("b", &b), ("a again", &a)] {
            let fresh = check(spec, &cfg);
            let (reused, cov) = check_case(spec, &cfg, &mut runner);
            assert_eq!(
                format!("{reused:?}"),
                format!("{fresh:?}"),
                "case {tag}: reused machines changed the verdict"
            );
            if matches!(reused, CaseResult::Agree { .. }) {
                assert!(
                    cov.keys.iter().any(|k| k.starts_with("outcome:")),
                    "case {tag}: agreement must report runtime coverage"
                );
            }
        }
        assert_eq!(runner.builds, 2, "one plain + one adore machine, built once each");
        assert_eq!(runner.resets, 4, "the remaining two cases reuse both machines");
    }

    #[test]
    fn shrink_never_exceeds_its_eval_budget() {
        // An always-keep predicate makes the minimizer as greedy as it
        // can ever be; the budget must still be a hard ceiling, and the
        // reported spend must match the predicate's own count.
        let (spec, _) = generate(1, &GenConfig::default());
        for budget in [0, 1, 37] {
            let mut evals = 0usize;
            let (min, used) = shrink_with(&spec, budget, |_| {
                evals += 1;
                true
            });
            assert_eq!(evals, used, "reported spend must match actual evaluations");
            assert!(evals <= budget, "budget {budget} exceeded: {evals} evals");
            assert!(min.items.len() <= spec.items.len());
        }
    }

    #[test]
    fn shrunken_reproducer_fails_identically_on_both_exec_paths() {
        // A small program whose "failure" is a wild store at 0x40,
        // buried behind a loop and padding. Shrinking with the
        // property "still reaches that exact fault" must stay within
        // budget, actually shrink, and classify identically under both
        // simulator execution paths.
        let mut items = vec![
            Item::Insn(Insn::new(Op::MovL { d: isa::Gr(21), imm: 200 })),
            Item::Label("spin".into()),
            Item::Insn(Insn::new(Op::AddI { d: isa::Gr(10), a: isa::Gr(10), imm: 7 })),
            Item::Insn(Insn::new(Op::AddI { d: isa::Gr(21), a: isa::Gr(21), imm: -1 })),
            Item::Insn(Insn::new(Op::CmpI {
                op: CmpOp::Gt,
                pt: isa::Pr(7),
                pf: isa::Pr(8),
                a: isa::Gr(21),
                imm: 0,
            })),
            Item::Branch { qp: Some(isa::Pr(7)), kind: BranchKind::Cond, label: "spin".into() },
        ];
        for k in 0..8 {
            items.push(Item::Insn(Insn::new(Op::AddI {
                d: isa::Gr(11),
                a: isa::Gr(11),
                imm: k,
            })));
        }
        items.push(Item::Insn(Insn::new(Op::MovL { d: isa::Gr(8), imm: 0x40 })));
        items.push(Item::Insn(Insn::new(Op::St {
            s: isa::Gr(8),
            base: isa::Gr(8),
            post_inc: 0,
            size: isa::AccessSize::U8,
        })));
        items.push(Item::Insn(Insn::new(Op::Halt)));
        let spec = ProgSpec { seed: 0, arena_bytes: 4096, mem_seed: 3, items };

        let fails = |spec: &ProgSpec, path: ExecPath| -> bool {
            let cfg = DiffConfig { exec_path: path, ..DiffConfig::default() };
            matches!(
                check(spec, &cfg),
                CaseResult::Agree { outcome: CaseOutcome::StoreFault { addr: 0x40, len: 8 }, .. }
            )
        };
        assert!(fails(&spec, ExecPath::Fast), "the unshrunk reproducer must fail");

        let budget = 64;
        let mut evals = 0usize;
        let (min, used) = shrink_with(&spec, budget, |c| {
            evals += 1;
            fails(c, ExecPath::Fast)
        });
        assert!(used <= budget && evals == used);
        assert!(
            min.items.len() < spec.items.len(),
            "nothing shrank: {} items", min.items.len()
        );
        // The minimized reproducer still fails, identically, on both
        // execution paths.
        assert!(fails(&min, ExecPath::Fast));
        assert!(fails(&min, ExecPath::Reference));
    }

    #[test]
    fn hot_loops_actually_get_patched_under_the_fuzz_config() {
        // Deterministic sanity check that the aggressive config works:
        // a plain counted streaming loop must produce >= 1 patched
        // trace, otherwise the adore leg of the oracle tests nothing.
        let items = vec![
            Item::Insn(Insn::new(Op::MovL { d: isa::Gr(22), imm: 30 })),
            Item::Label("outer".into()),
            Item::Insn(Insn::new(Op::MovL { d: isa::Gr(4), imm: sim::DATA_BASE as i64 })),
            Item::Insn(Insn::new(Op::MovL { d: isa::Gr(21), imm: 2000 })),
            Item::Label("inner".into()),
            Item::Insn(Insn::new(Op::Ld {
                d: isa::Gr(9),
                base: isa::Gr(4),
                post_inc: 8,
                size: isa::AccessSize::U8,
                spec: false,
            })),
            Item::Insn(Insn::new(Op::Add { d: isa::Gr(10), a: isa::Gr(10), b: isa::Gr(9) })),
            Item::Insn(Insn::new(Op::AddI { d: isa::Gr(21), a: isa::Gr(21), imm: -1 })),
            Item::Insn(Insn::new(Op::CmpI {
                op: CmpOp::Gt,
                pt: isa::Pr(7),
                pf: isa::Pr(8),
                a: isa::Gr(21),
                imm: 0,
            })),
            Item::Branch { qp: Some(isa::Pr(7)), kind: BranchKind::Cond, label: "inner".into() },
            Item::Insn(Insn::new(Op::AddI { d: isa::Gr(22), a: isa::Gr(22), imm: -1 })),
            Item::Insn(Insn::new(Op::CmpI {
                op: CmpOp::Gt,
                pt: isa::Pr(14),
                pf: isa::Pr(15),
                a: isa::Gr(22),
                imm: 0,
            })),
            Item::Branch { qp: Some(isa::Pr(14)), kind: BranchKind::Cond, label: "outer".into() },
            Item::Insn(Insn::new(Op::Halt)),
        ];
        let spec = ProgSpec { seed: 0, arena_bytes: 1 << 18, mem_seed: 11, items };
        match check(&spec, &DiffConfig::default()) {
            CaseResult::Agree { outcome, traces_patched, .. } => {
                assert_eq!(outcome, CaseOutcome::Halted);
                assert!(traces_patched > 0, "streaming loop was never patched");
            }
            other => panic!("expected agreement, got {other:?}"),
        }
    }
}
