//! Coverage-guided snapshot fuzzing campaign.
//!
//! The classic fuzz path (`bench fuzz`) generates each case from a
//! seed, runs it once through the three-way harness, and forgets it.
//! The campaign engine closes the loop: cases that light up coverage
//! the campaign has not seen before are admitted to a corpus, the
//! corpus is mutated to derive new cases ([`crate::mutate`]), and
//! scheduling is weighted toward entries that earned their place with
//! more novelty. Coverage combines the generator's static feature
//! vector ([`crate::generator::static_coverage`], `feat:` keys) with
//! runtime signals the ADORE leg produced ([`crate::diff::RunCoverage`]:
//! pass invocations, rejection-taxonomy labels, deployed trace shapes,
//! termination outcomes).
//!
//! Two properties are load-bearing and tested:
//!
//! * **Determinism across worker counts.** A round is planned serially
//!   from the corpus state at round start, evaluated in parallel, and
//!   merged serially in submission order — so the corpus, the coverage
//!   map, and the report are byte-identical for `--jobs 1` and
//!   `--jobs 4` given the same seed. (`tools/ci.sh` enforces this on
//!   the real binary.)
//! * **Snapshot evaluation.** Each worker leases its two simulated
//!   machines from a [`CaseRunner`], which re-arms them in place via
//!   `Machine::reset` — the snapshot/restore path built on the code
//!   store's generation tags — instead of reallocating caches, TLB and
//!   memory per case.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

use workloads::Rng64;

use crate::diff::{check_case, shrink, shrink_with, CaseResult, CaseRunner, DiffConfig};
use crate::generator::{generate, static_coverage, Coverage, GenConfig};
use crate::mutate::{mutate, MutateConfig};
use crate::spec::ProgSpec;
use crate::text::{parse_repro, serialize_repro};

/// Campaign tuning.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Scheduling rounds to run.
    pub rounds: usize,
    /// Cases planned per round (imports ride on top in round 0).
    pub batch: usize,
    /// Master seed; every planned case derives its own seed from it.
    pub seed: u64,
    /// Worker threads evaluating a round's batch.
    pub jobs: usize,
    /// Probability a planned case is freshly generated rather than
    /// mutated from the corpus (always 1 while the corpus is empty).
    pub fresh_prob: f64,
    /// Generator knobs for fresh cases and mutation material.
    pub gen: GenConfig,
    /// Harness budgets shared by every evaluation.
    pub diff: DiffConfig,
    /// Alternate the simulator execution tier per case: even case
    /// seeds keep `diff.exec_path`, odd ones run the threaded compile
    /// tier, so one campaign exercises both the cycle-exact loop and
    /// the compile/deopt machinery. Deterministic in the case seed,
    /// hence independent of `jobs`.
    pub alternate_exec: bool,
    /// Mutation knobs.
    pub mutate: MutateConfig,
    /// Persistent corpus directory: minimized entries are written here
    /// and `*.txt` reproducers found here are imported in round 0.
    pub corpus_dir: Option<PathBuf>,
    /// Evaluate on snapshot-reset machines (`false` rebuilds machines
    /// per case — the A/B baseline for the snapshot path).
    pub reuse_machines: bool,
    /// Shrinker budget per admitted corpus entry (0 disables corpus
    /// minimization).
    pub minimize_evals: usize,
    /// Emit per-case progress through [`obs::Progress`].
    pub progress: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            rounds: 4,
            batch: 64,
            seed: 1,
            jobs: 1,
            fresh_prob: 0.35,
            gen: GenConfig::default(),
            diff: DiffConfig::default(),
            alternate_exec: false,
            mutate: MutateConfig::default(),
            corpus_dir: None,
            reuse_machines: true,
            minimize_evals: 24,
            progress: false,
        }
    }
}

/// A corpus member: a minimized agreeing program plus the coverage
/// novelty that earned its admission.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The (minimized) program.
    pub spec: ProgSpec,
    /// Coverage keys this entry was the first to produce.
    pub novel_keys: Vec<String>,
    /// Scheduling weight: the admission novelty count (at least 1).
    pub energy: u64,
}

/// A semantic divergence found by the campaign, already shrunk.
#[derive(Debug, Clone)]
pub struct CampaignMismatch {
    /// The per-case seed that produced it.
    pub case_seed: u64,
    /// Which leg disagreed (`"plain"` or `"adore"`).
    pub stage: &'static str,
    /// First difference, human-readable.
    pub detail: String,
    /// The shrunk reproducer.
    pub spec: ProgSpec,
}

/// Everything a campaign run produced. All fields except
/// `machine_builds` / `machine_resets` are independent of `jobs`.
#[derive(Debug, Default)]
pub struct CampaignStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Cases evaluated (including imports).
    pub cases: u64,
    /// Shrunk semantic divergences.
    pub mismatches: Vec<CampaignMismatch>,
    /// Budget-capped non-verdicts (fuel / cycle cap).
    pub inconclusive: u64,
    /// Structural non-verdicts (assembly failures).
    pub undecided: u64,
    /// Agreeing terminations by outcome label.
    pub outcomes: std::collections::BTreeMap<&'static str, u64>,
    /// Coverage-key hit counts across all cases.
    pub coverage: std::collections::BTreeMap<String, u64>,
    /// Aggregate static feature vector across all cases.
    pub features: Coverage,
    /// Applied mutation operators by name.
    pub mutations: std::collections::BTreeMap<&'static str, u64>,
    /// Case provenance counts: `gen`, `mutate`, `import`.
    pub origins: std::collections::BTreeMap<&'static str, u64>,
    /// The final corpus, in admission order.
    pub corpus: Vec<CorpusEntry>,
    /// Corpus reproducers imported from `corpus_dir` in round 0.
    pub corpus_imported: u64,
    /// Entries admitted during this run.
    pub corpus_added: u64,
    /// Cases that produced at least one never-seen coverage key.
    pub new_key_events: u64,
    /// Agreeing cases where ADORE patched at least one trace.
    pub cases_with_patches: u64,
    /// Total traces patched across agreeing cases.
    pub traces_patched_total: u64,
    /// Machines built from scratch (jobs-dependent; not reported).
    pub machine_builds: u64,
    /// Machines re-armed in place (jobs-dependent; not reported).
    pub machine_resets: u64,
}

/// FNV-1a (used for stable corpus file names).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `feat:` coverage keys for the non-zero fields of a static feature
/// vector.
fn feat_keys(cov: &Coverage) -> Vec<String> {
    cov.fields()
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .map(|(name, _)| format!("feat:{name}"))
        .collect()
}

/// One planned case: what to run and where it came from.
struct Planned {
    spec: ProgSpec,
    origin: &'static str,
    case_seed: u64,
    ops: Vec<&'static str>,
}

/// The harness budgets for one case. With `alternate_exec` on, odd
/// case seeds swap the execution path for the threaded compile tier;
/// the same per-case config is used for evaluation, minimization and
/// mismatch shrinking so tier-specific coverage keys (`tier:compiled`,
/// `tier:deopt`) stay reproducible while an entry is being minimized.
fn case_diff(cfg: &CampaignConfig, case_seed: u64) -> DiffConfig {
    let mut diff = cfg.diff.clone();
    if cfg.alternate_exec && case_seed % 2 == 1 {
        diff.exec_path = sim::ExecPath::Threaded;
    }
    diff
}

/// Picks a corpus index weighted by entry energy.
fn weighted_pick(rng: &mut Rng64, corpus: &[CorpusEntry]) -> usize {
    let total: u64 = corpus.iter().map(|e| e.energy).sum();
    let mut ticket = rng.below(total.max(1));
    for (i, e) in corpus.iter().enumerate() {
        if ticket < e.energy {
            return i;
        }
        ticket -= e.energy;
    }
    corpus.len() - 1
}

/// Plans one round's batch from the corpus state at round start.
fn plan_round(round: usize, corpus: &[CorpusEntry], cfg: &CampaignConfig) -> Vec<Planned> {
    let mut rng = Rng64::new(
        cfg.seed ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6361_6d70,
    );
    let mut plan = Vec::with_capacity(cfg.batch);
    for _ in 0..cfg.batch {
        let case_seed = rng.next_u64();
        if corpus.is_empty() || rng.chance(cfg.fresh_prob) {
            let (spec, _) = generate(case_seed, &cfg.gen);
            plan.push(Planned { spec, origin: "gen", case_seed, ops: Vec::new() });
        } else {
            let parent = weighted_pick(&mut rng, corpus);
            let donor = if corpus.len() > 1 && rng.chance(0.5) {
                // A distinct donor for splices; `mutate` falls back to
                // the parent when none is supplied.
                let mut d = weighted_pick(&mut rng, corpus);
                if d == parent {
                    d = (d + 1) % corpus.len();
                }
                Some(d)
            } else {
                None
            };
            let (spec, ops) = mutate(
                &corpus[parent].spec,
                donor.map(|d| &corpus[d].spec),
                case_seed,
                &cfg.mutate,
            );
            plan.push(Planned { spec, origin: "mutate", case_seed, ops });
        }
    }
    plan
}

/// Evaluates a round's plan on the shared work-stealing service pool
/// ([`obs::pool::run_indexed`]). Results come back indexed by plan
/// position, so the serial merge that follows is independent of worker
/// scheduling; each shard leases one [`CaseRunner`] for its lifetime.
fn evaluate_batch(
    plan: &[Planned],
    cfg: &CampaignConfig,
    stats: &mut CampaignStats,
) -> Vec<(CaseResult, crate::diff::RunCoverage)> {
    let progress = cfg.progress.then(|| obs::Progress::new("campaign", plan.len()));

    let (results, runners, _pool) = obs::pool::run_indexed(
        cfg.jobs.max(1),
        (0..plan.len()).collect(),
        |_| (CaseRunner::new(), 0u64),
        |(runner, fresh_builds): &mut (CaseRunner, u64), _shard, i: usize| {
            let started = Instant::now();
            let diff = case_diff(cfg, plan[i].case_seed);
            let result = if cfg.reuse_machines {
                check_case(&plan[i].spec, &diff, runner)
            } else {
                // A/B baseline: fresh machines per case.
                let mut fresh = CaseRunner::new();
                let r = check_case(&plan[i].spec, &diff, &mut fresh);
                *fresh_builds += fresh.builds;
                r
            };
            if let Some(p) = &progress {
                let label = format!("{} {:#018x}", plan[i].origin, plan[i].case_seed);
                p.item_done(i, &label, started.elapsed());
            }
            result
        },
    );

    for (runner, fresh_builds) in runners {
        stats.machine_builds += runner.builds + fresh_builds;
        stats.machine_resets += runner.resets;
    }
    results
}

/// Imports sorted `*.txt` reproducers from the corpus directory.
fn import_corpus(cfg: &CampaignConfig) -> Vec<Planned> {
    let Some(dir) = &cfg.corpus_dir else { return Vec::new() };
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    paths
        .iter()
        .filter_map(|p| {
            let text = std::fs::read_to_string(p).ok()?;
            let spec = parse_repro(&text).ok()?;
            Some(Planned { case_seed: spec.seed, spec, origin: "import", ops: Vec::new() })
        })
        .collect()
}

/// Writes an admitted entry to the corpus directory under a
/// content-addressed name (idempotent across runs).
fn persist_entry(cfg: &CampaignConfig, spec: &ProgSpec) {
    let Some(dir) = &cfg.corpus_dir else { return };
    let text = serialize_repro(spec);
    let path = dir.join(format!("q{:016x}.txt", fnv64(text.as_bytes())));
    if path.exists() {
        return;
    }
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(&path, text);
    }
}

/// Runs a full campaign and returns its statistics (including the
/// final corpus). Deterministic in `cfg.seed` for any `cfg.jobs`.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignStats {
    let mut stats = CampaignStats::default();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut coord = CaseRunner::new();

    let imports = import_corpus(cfg);
    stats.corpus_imported = imports.len() as u64;
    let mut pending_imports = Some(imports);

    for round in 0..cfg.rounds {
        stats.rounds = round + 1;
        let mut plan = pending_imports.take().unwrap_or_default();
        plan.extend(plan_round(round, &corpus, cfg));
        let results = evaluate_batch(&plan, cfg, &mut stats);

        // Serial merge, in submission order: corpus growth, coverage
        // accounting and minimization see the same sequence no matter
        // how many workers evaluated the round.
        for (planned, (result, run_cov)) in plan.iter().zip(results) {
            stats.cases += 1;
            *stats.origins.entry(planned.origin).or_insert(0) += 1;
            for op in &planned.ops {
                *stats.mutations.entry(op).or_insert(0) += 1;
            }
            let static_cov = static_coverage(&planned.spec);
            stats.features.absorb(&static_cov);
            let mut keys = feat_keys(&static_cov);
            keys.extend(run_cov.keys.iter().cloned());
            keys.sort();
            keys.dedup();
            for key in &keys {
                *stats.coverage.entry(key.clone()).or_insert(0) += 1;
            }

            match result {
                CaseResult::Agree { outcome, traces_patched, .. } => {
                    *stats.outcomes.entry(outcome.label()).or_insert(0) += 1;
                    if traces_patched > 0 {
                        stats.cases_with_patches += 1;
                        stats.traces_patched_total += traces_patched as u64;
                    }
                    let novel: Vec<String> =
                        keys.iter().filter(|k| !seen.contains(*k)).cloned().collect();
                    for k in &keys {
                        seen.insert(k.clone());
                    }
                    if novel.is_empty() {
                        continue;
                    }
                    stats.new_key_events += 1;
                    let diff = case_diff(cfg, planned.case_seed);
                    let spec = minimize_entry(&planned.spec, &novel, cfg, &diff, &mut coord);
                    persist_entry(cfg, &spec);
                    let energy = novel.len() as u64;
                    corpus.push(CorpusEntry { spec, novel_keys: novel, energy });
                    stats.corpus_added += 1;
                }
                CaseResult::Inconclusive { .. } => stats.inconclusive += 1,
                CaseResult::Undecided(_) => stats.undecided += 1,
                CaseResult::Mismatch(m) => {
                    let spec = shrink(&planned.spec, &case_diff(cfg, planned.case_seed));
                    stats.mismatches.push(CampaignMismatch {
                        case_seed: planned.case_seed,
                        stage: m.stage,
                        detail: m.detail,
                        spec,
                    });
                }
            }
        }
    }

    stats.machine_builds += coord.builds;
    stats.machine_resets += coord.resets;
    stats.corpus = corpus;
    stats
}

/// Minimizes an admitted entry while it still agrees and still
/// produces every novel key that earned its admission.
fn minimize_entry(
    spec: &ProgSpec,
    novel: &[String],
    cfg: &CampaignConfig,
    diff: &DiffConfig,
    runner: &mut CaseRunner,
) -> ProgSpec {
    if cfg.minimize_evals == 0 {
        return spec.clone();
    }
    let (min, _used) = shrink_with(spec, cfg.minimize_evals, |candidate| {
        let (result, run_cov) = check_case(candidate, diff, runner);
        if !matches!(result, CaseResult::Agree { .. }) {
            return false;
        }
        let mut keys = feat_keys(&static_coverage(candidate));
        keys.extend(run_cov.keys);
        novel.iter().all(|k| keys.contains(k))
    });
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(jobs: usize) -> CampaignConfig {
        CampaignConfig {
            rounds: 2,
            batch: 5,
            seed: 42,
            jobs,
            // No corpus minimization: keeps the test fast; the
            // minimizer itself is covered in `diff::tests`.
            minimize_evals: 0,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let a = run_campaign(&small_cfg(1));
        let b = run_campaign(&small_cfg(4));
        assert_eq!(a.cases, 10);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.coverage, b.coverage, "coverage map must not depend on jobs");
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.origins, b.origins);
        assert_eq!(a.mutations, b.mutations);
        assert_eq!(a.new_key_events, b.new_key_events);
        assert_eq!(
            a.corpus.iter().map(|e| &e.spec).collect::<Vec<_>>(),
            b.corpus.iter().map(|e| &e.spec).collect::<Vec<_>>(),
            "corpus must not depend on jobs"
        );
        assert!(a.mismatches.is_empty(), "seed 42 smoke corpus must agree");
        assert!(a.machine_resets > 0, "snapshot path must actually be exercised");
        assert!(!a.coverage.is_empty());
    }

    #[test]
    fn alternating_campaign_covers_both_tiers_deterministically() {
        // Seed-parity tier alternation must reach both the cycle-exact
        // default path and the threaded compile tier, and must stay
        // byte-identical across worker counts like everything else.
        let cfg = |jobs| CampaignConfig { alternate_exec: true, ..small_cfg(jobs) };
        let a = run_campaign(&cfg(1));
        let b = run_campaign(&cfg(4));
        assert_eq!(a.coverage, b.coverage, "alternation must not depend on jobs");
        assert!(a.mismatches.is_empty(), "both tiers must agree with the interpreter");
        assert!(
            a.coverage.contains_key("tier:fast"),
            "even seeds keep the default path: {:?}",
            a.coverage.keys().filter(|k| k.starts_with("tier:")).collect::<Vec<_>>()
        );
        assert!(
            a.coverage.contains_key("tier:threaded"),
            "odd seeds must run the compile tier: {:?}",
            a.coverage.keys().filter(|k| k.starts_with("tier:")).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_growth_schedules_mutations() {
        let cfg = CampaignConfig { rounds: 3, ..small_cfg(2) };
        let stats = run_campaign(&cfg);
        assert!(stats.corpus_added > 0, "some case must light up novel coverage");
        assert!(
            stats.origins.get("mutate").copied().unwrap_or(0) > 0,
            "later rounds must derive cases from the corpus"
        );
    }

    #[test]
    fn corpus_dir_round_trips_entries() {
        let dir = std::env::temp_dir().join(format!("adore-campaign-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CampaignConfig { corpus_dir: Some(dir.clone()), ..small_cfg(1) };
        let first = run_campaign(&cfg);
        assert!(first.corpus_added > 0);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files as u64, first.corpus_added, "one file per admitted entry");

        // A second run imports what the first persisted.
        let second = run_campaign(&cfg);
        assert_eq!(second.corpus_imported, first.corpus_added);
        assert!(
            second.origins.get("import").copied().unwrap_or(0) >= first.corpus_added,
            "imports must be scheduled as cases"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
