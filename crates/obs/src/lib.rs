//! Observability and reporting for the ADORE reproduction.
//!
//! This crate is intentionally **dependency-free** (std only): the
//! repository builds fully offline, so anything `serde`/`criterion`
//! would normally provide lives here instead, scoped to exactly what
//! the experiment harness needs:
//!
//! * [`json`] — a minimal JSON value type, the [`ToJson`] trait, a
//!   deterministic serializer (object keys keep insertion order) and a
//!   small parser used by tests and `tools/ci.sh` to validate emitted
//!   reports.
//! * [`events`] — an append-only stream of structured events (the
//!   optimizer pipeline's deploy/unpatch/instrument/promote record),
//!   serialized as a JSON array inside experiment reports.
//! * [`bench`] — a lightweight bench timer (warmup + N measured
//!   iterations; min/median/mean wall time, plus simulated-cycle and
//!   cycles-per-element figures when the benched closure reports them).
//! * [`report`] — schema-versioned experiment reports written as
//!   `results/<tool>.json`, so successive PRs can diff speedups,
//!   coverage and accuracy run-over-run.
//! * [`progress`] — ordered merge of concurrently produced progress
//!   rows: live (out-of-order) stderr lines plus a deterministic,
//!   submission-ordered view for report embedding.
//! * [`pool`] — a work-stealing shard pool over `std::thread::scope`:
//!   the resident-service primitive ([`pool::service_scope`]) that
//!   feeds jobs through per-shard deques and emits results in strict
//!   submission order, plus a batch wrapper ([`pool::run_indexed`])
//!   used by the experiment engine and the fuzzing campaign.

#![warn(missing_docs)]

pub mod bench;
pub mod events;
pub mod json;
pub mod pool;
pub mod progress;
pub mod report;

pub use bench::{BenchConfig, BenchResult, BenchSuite};
pub use events::EventStream;
pub use json::{Json, ToJson};
pub use pool::{run_indexed, service_scope, PoolStats, Submitter};
pub use progress::{Progress, ProgressEntry};
pub use report::{Report, SCHEMA_VERSION};
