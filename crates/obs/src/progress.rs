//! Ordered progress reporting for concurrently produced work items.
//!
//! The parallel experiment engine finishes cells in whatever order the
//! worker threads happen to run them, but reports must stay
//! byte-identical to a serial run. This module splits the two concerns:
//!
//! * **live lines** — each completed item prints one line to stderr
//!   immediately (out of order, with wall-clock timing), so a human
//!   watching a long run sees progress;
//! * **ordered merge** — every item is also recorded in a slot indexed
//!   by its position in the original work list, and [`Progress::merged`]
//!   returns the deterministic, submission-ordered sequence for
//!   embedding in a JSON report. Only the *labels* are deterministic;
//!   wall times stay on stderr so reports remain reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed work item: its deterministic label and how long it
/// took on whichever worker ran it.
#[derive(Debug, Clone)]
pub struct ProgressEntry {
    /// Deterministic item label (e.g. `part_a/mcf`).
    pub label: String,
    /// Wall-clock duration of the item (volatile — stderr only).
    pub millis: u128,
}

/// A thread-safe progress sink for a fixed-size batch of work items.
#[derive(Debug)]
pub struct Progress {
    tool: String,
    total: usize,
    done: AtomicUsize,
    entries: Mutex<Vec<Option<ProgressEntry>>>,
    start: Instant,
}

impl Progress {
    /// Starts tracking `total` items for `tool`.
    pub fn new(tool: &str, total: usize) -> Progress {
        Progress {
            tool: tool.to_string(),
            total,
            done: AtomicUsize::new(0),
            entries: Mutex::new(vec![None; total]),
            start: Instant::now(),
        }
    }

    /// Records completion of the item at `index` (its position in the
    /// submission order) and prints a live line to stderr.
    pub fn item_done(&self, index: usize, label: &str, elapsed: Duration) {
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        eprintln!(
            "[{}] {done}/{} {label} {}ms",
            self.tool,
            self.total,
            elapsed.as_millis()
        );
        // A worker that panics while holding the lock poisons it; the
        // slot table itself is never left half-written (each slot is
        // assigned atomically below), so the surviving workers recover
        // the guard instead of turning one panic into a panic storm.
        let mut slots = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if index < slots.len() {
            slots[index] = Some(ProgressEntry { label: label.to_string(), millis: elapsed.as_millis() });
        }
    }

    /// Completed items so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::SeqCst)
    }

    /// All recorded entries in submission order — deterministic
    /// regardless of which worker finished which item when.
    pub fn merged(&self) -> Vec<ProgressEntry> {
        // Same poison recovery as `item_done`: a dead worker must not
        // cost the run its final report.
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .flatten()
            .cloned()
            .collect()
    }

    /// Submission-ordered labels only (the report-safe projection).
    pub fn labels(&self) -> Vec<String> {
        self.merged().into_iter().map(|e| e.label).collect()
    }

    /// Wall-clock time since the sink was created.
    pub fn wall(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_submission_ordered_despite_completion_order() {
        let p = Progress::new("unit", 4);
        p.item_done(2, "c", Duration::from_millis(1));
        p.item_done(0, "a", Duration::from_millis(2));
        p.item_done(3, "d", Duration::from_millis(3));
        p.item_done(1, "b", Duration::from_millis(4));
        assert_eq!(p.labels(), vec!["a", "b", "c", "d"]);
        assert_eq!(p.completed(), 4);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_cascaded() {
        let p = Progress::new("unit", 2);
        // One worker dies while holding the entries lock — exactly the
        // scenario a fuzzing-campaign worker pool produces when a case
        // panics mid-report. The mutex is now poisoned.
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = p.entries.lock().unwrap();
            panic!("worker died mid-update");
        }));
        assert!(died.is_err());
        assert!(p.entries.is_poisoned(), "the setup must actually poison the lock");
        // Surviving workers keep reporting and the final merge still
        // works; before the poison recovery both calls panicked.
        p.item_done(0, "a", Duration::ZERO);
        p.item_done(1, "b", Duration::ZERO);
        assert_eq!(p.labels(), vec!["a", "b"]);
        assert_eq!(p.completed(), 2);
    }

    #[test]
    fn concurrent_item_done_is_safe_and_complete() {
        let p = Progress::new("unit", 64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = &p;
                s.spawn(move || {
                    for i in (t..64).step_by(4) {
                        p.item_done(i, &format!("item{i}"), Duration::ZERO);
                    }
                });
            }
        });
        let labels = p.labels();
        assert_eq!(labels.len(), 64);
        assert_eq!(labels[17], "item17");
    }
}
