//! Work-stealing shard pool: the shared execution substrate of the
//! experiment service.
//!
//! Every large consumer in this repository — the experiment engine's
//! cell grids, the differential fuzzer's case batches, the campaign's
//! round evaluation — has the same shape: a stream of independent,
//! index-identified jobs whose *results must be observed in submission
//! order* even though workers finish them in any order. This module
//! factors that shape out once:
//!
//! * **sharded queues** — submitted jobs land round-robin on per-worker
//!   deques; each worker pops its own shard from the front and, when
//!   empty, steals from the back of a sibling's shard, so an uneven
//!   grid (one slow `mcf` cell amid cheap ones) cannot idle the pool;
//! * **resident operation** — [`service_scope`] keeps workers alive
//!   while a feeder thread pushes jobs (e.g. spec cells arriving on
//!   stdin); workers sleep on a condvar between arrivals and drain the
//!   queues after [`Submitter::close`];
//! * **ordered emission** — results are re-sequenced and handed to the
//!   caller's `emit` closure strictly in submission-index order, as
//!   soon as each next index completes. Downstream streams (JSONL rows,
//!   report sections) are therefore byte-identical for any worker
//!   count, while still being incremental;
//! * **per-worker state** — each worker owns a state value built by
//!   `init` (a leased simulator pair, a scratch arena) that is returned
//!   to the caller at the end for accounting.
//!
//! Scheduling statistics ([`PoolStats`]: steal count, queue-depth
//! high-water mark) are inherently timing-dependent; reports must keep
//! them in a clearly volatile section (the engine's
//! `engine.scheduling`), never among deterministic rows.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::json::{Json, ToJson};

/// Scheduling counters of one pool run. Everything here may legally
/// vary from run to run (and with the worker count); deterministic
/// consumers must treat the whole struct as volatile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker shards the pool ran with.
    pub shards: usize,
    /// Jobs executed by a worker other than the shard they were
    /// submitted to (work stealing).
    pub stolen: u64,
    /// High-water mark of jobs queued (all shards) and not yet started.
    pub queue_hwm: usize,
    /// Jobs executed in total.
    pub executed: u64,
}

impl ToJson for PoolStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("shards", self.shards)
            .with("stolen_tasks", self.stolen)
            .with("queue_depth_hwm", self.queue_hwm)
            .with("executed", self.executed)
    }
}

/// Queue bookkeeping guarded by one mutex: pending counts and the
/// open/closed state workers sleep on.
struct Gate {
    /// Jobs submitted and not yet picked up by a worker.
    pending: usize,
    /// Still accepting submissions.
    open: bool,
    /// Total jobs submitted so far (final once `open` is false).
    submitted: usize,
}

struct Shared<T> {
    shards: Vec<Mutex<VecDeque<(usize, T)>>>,
    gate: Mutex<Gate>,
    work_ready: Condvar,
    stolen: AtomicU64,
    executed: AtomicU64,
    depth_hwm: AtomicUsize,
}

/// Submission handle passed to the feeder closure of [`service_scope`].
pub struct Submitter<'p, T> {
    shared: &'p Shared<T>,
    next_index: AtomicUsize,
}

impl<'p, T> Submitter<'p, T> {
    /// Queues one job and returns its submission index (the order
    /// `emit` will observe).
    pub fn push(&self, item: T) -> usize {
        let index = self.next_index.fetch_add(1, Ordering::SeqCst);
        let shard = index % self.shared.shards.len();
        self.shared.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back((index, item));
        let mut gate = self.shared.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        gate.pending += 1;
        gate.submitted += 1;
        let depth = gate.pending;
        drop(gate);
        self.shared.depth_hwm.fetch_max(depth, Ordering::SeqCst);
        self.shared.work_ready.notify_one();
        index
    }

    /// Declares the job stream finished; workers drain what is queued
    /// and exit. Called automatically when the feeder closure returns.
    pub fn close(&self) {
        let mut gate = self.shared.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        gate.open = false;
        drop(gate);
        self.shared.work_ready.notify_all();
    }
}

impl<T> Shared<T> {
    /// Takes the next job for worker `me`: own shard front first, then
    /// steal from siblings' backs, then sleep until work arrives or the
    /// stream closes empty.
    fn take(&self, me: usize) -> Option<(usize, T)> {
        loop {
            if let Some(job) = self.try_take(me) {
                return Some(job);
            }
            let mut gate = self.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if gate.pending > 0 {
                    break; // retry the deques
                }
                if !gate.open {
                    return None;
                }
                gate = self
                    .work_ready
                    .wait(gate)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    fn try_take(&self, me: usize) -> Option<(usize, T)> {
        let n = self.shards.len();
        for offset in 0..n {
            let victim = (me + offset) % n;
            let job = {
                let mut deque = self.shards[victim]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                // Owner takes oldest-first; thieves take from the other
                // end to minimize contention on the owner's next job.
                if victim == me { deque.pop_front() } else { deque.pop_back() }
            };
            if let Some(job) = job {
                let mut gate = self.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                gate.pending -= 1;
                drop(gate);
                if victim != me {
                    self.stolen.fetch_add(1, Ordering::SeqCst);
                }
                return Some(job);
            }
        }
        None
    }
}

/// Results parked until their turn in the submission order.
struct Reorder<R> {
    ready: Mutex<BTreeMap<usize, R>>,
    workers_live: AtomicUsize,
    result_ready: Condvar,
}

/// Runs a resident worker pool inside a thread scope.
///
/// * `jobs` — worker count (clamped to at least 1);
/// * `init(worker)` — builds each worker's private state on its own
///   thread;
/// * `work(state, index, job)` — executes one job;
/// * `feed(submitter)` — runs on a dedicated thread; pushes jobs (from
///   a vector, a socket, stdin, …) and may block. The stream closes
///   when it returns;
/// * `emit(index, result)` — runs on the calling thread, invoked in
///   strict submission-index order as soon as each next result exists.
///
/// Returns the worker states (in worker order) and the scheduling
/// statistics. Determinism contract: for a fixed job stream, everything
/// observable through `emit` is independent of `jobs`; only
/// [`PoolStats`] and worker-state contents may differ.
pub fn service_scope<T, S, R>(
    jobs: usize,
    init: impl Fn(usize) -> S + Sync,
    work: impl Fn(&mut S, usize, T) -> R + Sync,
    feed: impl FnOnce(&Submitter<'_, T>) + Send,
    mut emit: impl FnMut(usize, R),
) -> (Vec<S>, PoolStats)
where
    T: Send,
    S: Send,
    R: Send,
{
    let jobs = jobs.max(1);
    let shared = Shared {
        shards: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
        gate: Mutex::new(Gate { pending: 0, open: true, submitted: 0 }),
        work_ready: Condvar::new(),
        stolen: AtomicU64::new(0),
        executed: AtomicU64::new(0),
        depth_hwm: AtomicUsize::new(0),
    };
    let reorder = Reorder {
        ready: Mutex::new(BTreeMap::new()),
        workers_live: AtomicUsize::new(jobs),
        result_ready: Condvar::new(),
    };
    let state_slots: Vec<Mutex<Option<S>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..jobs {
            let shared = &shared;
            let reorder = &reorder;
            let init = &init;
            let work = &work;
            let slot = &state_slots[me];
            scope.spawn(move || {
                let mut state = init(me);
                while let Some((index, job)) = shared.take(me) {
                    let result = work(&mut state, index, job);
                    shared.executed.fetch_add(1, Ordering::SeqCst);
                    reorder
                        .ready
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .insert(index, result);
                    reorder.result_ready.notify_all();
                }
                *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(state);
                // Decrement under the reorder mutex: the emitter checks
                // `workers_live` while holding it, so an unsynchronized
                // decrement+notify could slip between its check and its
                // wait and be lost.
                {
                    let _guard =
                        reorder.ready.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    reorder.workers_live.fetch_sub(1, Ordering::SeqCst);
                }
                reorder.result_ready.notify_all();
            });
        }

        // The feeder gets its own thread so a blocking source (stdin)
        // cannot stall ordered emission below.
        let feeder = scope.spawn(|| {
            let submitter = Submitter { shared: &shared, next_index: AtomicUsize::new(0) };
            feed(&submitter);
            submitter.close();
        });

        // Ordered emission on the calling thread.
        let mut next_emit = 0usize;
        let mut ready = reorder.ready.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = ready.remove(&next_emit) {
                drop(ready);
                emit(next_emit, result);
                next_emit += 1;
                ready = reorder.ready.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            if reorder.workers_live.load(Ordering::SeqCst) == 0 {
                // All workers exited: the stream is closed, drained,
                // and every result is already in `ready` — the branch
                // above would have found `next_emit` if it existed.
                break;
            }
            ready = reorder
                .result_ready
                .wait(ready)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(ready);
        feeder.join().expect("pool feeder thread");
    });

    let states = state_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker state returned")
        })
        .collect();
    let stats = PoolStats {
        shards: jobs,
        stolen: shared.stolen.load(Ordering::SeqCst),
        queue_hwm: shared.depth_hwm.load(Ordering::SeqCst),
        executed: shared.executed.load(Ordering::SeqCst),
    };
    (states, stats)
}

/// Batch front-end over [`service_scope`]: runs `items` through the
/// pool and returns their results in submission order, plus the worker
/// states and scheduling statistics.
pub fn run_indexed<T, S, R>(
    jobs: usize,
    items: Vec<T>,
    init: impl Fn(usize) -> S + Sync,
    work: impl Fn(&mut S, usize, T) -> R + Sync,
) -> (Vec<R>, Vec<S>, PoolStats)
where
    T: Send,
    S: Send,
    R: Send,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let (states, stats) = service_scope(
        jobs.clamp(1, n.max(1)),
        init,
        work,
        |submitter| {
            for item in items {
                submitter.push(item);
            }
        },
        |index, result| results[index] = Some(result),
    );
    let results = results
        .into_iter()
        .map(|slot| slot.expect("every submitted job emitted"))
        .collect();
    (results, states, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_results_are_submission_ordered_for_any_worker_count() {
        for jobs in [1, 2, 7] {
            let (results, states, stats) = run_indexed(
                jobs,
                (0..40u64).collect(),
                |_| 0u64,
                |count, index, item| {
                    *count += 1;
                    assert_eq!(index as u64, item);
                    item * 3
                },
            );
            assert_eq!(results, (0..40u64).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(stats.executed, 40);
            assert_eq!(stats.shards, jobs.min(40));
            assert_eq!(states.iter().sum::<u64>(), 40, "every job counted exactly once");
        }
    }

    #[test]
    fn emission_order_is_strict_even_when_late_jobs_finish_first() {
        // Job 0 is made slow; all emissions must still start at 0.
        let emitted = Mutex::new(Vec::new());
        let (_, stats) = service_scope(
            4,
            |_| (),
            |_, index, ()| {
                if index == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                index
            },
            |submitter| {
                for _ in 0..16 {
                    submitter.push(());
                }
            },
            |index, result| {
                assert_eq!(index, result);
                emitted.lock().unwrap().push(index);
            },
        );
        assert_eq!(*emitted.lock().unwrap(), (0..16).collect::<Vec<_>>());
        assert_eq!(stats.executed, 16);
    }

    #[test]
    fn resident_feeder_can_trickle_jobs_in() {
        // Jobs arrive with pauses, as on a stdin-fed service; workers
        // must sleep and wake rather than exit early.
        let mut seen = Vec::new();
        let (_, stats) = service_scope(
            2,
            |_| (),
            |_, _, item: u32| item + 1,
            |submitter| {
                for batch in 0..3 {
                    for i in 0..4 {
                        submitter.push(batch * 4 + i);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            },
            |_, result| seen.push(result),
        );
        assert_eq!(seen, (1..=12).collect::<Vec<_>>());
        assert_eq!(stats.executed, 12);
    }

    #[test]
    fn stealing_happens_when_one_shard_hogs_the_work() {
        // With 2 shards, even indices land on shard 0, odd on shard 1.
        // Worker 1's jobs are instant; worker 0's first job is slow, so
        // worker 1 must steal the rest of shard 0's backlog.
        let slow = AtomicUsize::new(0);
        let (_, _, stats) = run_indexed(
            2,
            (0..64usize).collect(),
            |_| (),
            |_, _, item| {
                if item == 0 && slow.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(40));
                }
                item
            },
        );
        assert!(stats.stolen > 0, "expected steals, got {stats:?}");
        assert_eq!(stats.executed, 64);
    }

    #[test]
    fn pool_stats_serialize_with_documented_keys() {
        let j = PoolStats { shards: 2, stolen: 3, queue_hwm: 5, executed: 8 }.to_json();
        assert_eq!(j.get("shards").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("stolen_tasks").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("queue_depth_hwm").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("executed").and_then(Json::as_u64), Some(8));
    }
}
