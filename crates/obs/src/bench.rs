//! A lightweight bench timer replacing `criterion` for this repo.
//!
//! The interesting number in most of our benchmarks is the *simulated*
//! cycle count, which is perfectly deterministic; wall time only
//! measures the simulator substrate itself. The timer therefore
//! records both: the benched closure returns a `u64` observable (by
//! convention: simulated cycles, or an element/hit count), and the
//! timer tracks wall-clock min/median/mean across iterations.

use std::hint::black_box;
use std::time::Instant;

use crate::json::{Json, ToJson};

/// Iteration counts for a benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed warmup iterations.
    pub warmup_iters: u32,
    /// Timed iterations.
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig { warmup_iters: 2, iters: 10 }
    }
}

impl BenchConfig {
    /// A reduced configuration for smoke runs (`--quick`).
    pub fn quick() -> BenchConfig {
        BenchConfig { warmup_iters: 1, iters: 3 }
    }

    /// Picks quick or default from command-line arguments.
    pub fn from_args(args: &[String]) -> BenchConfig {
        if args.iter().any(|a| a == "--quick") {
            BenchConfig::quick()
        } else {
            BenchConfig::default()
        }
    }
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u64,
    /// The observable returned by the closure on the last timed
    /// iteration (simulated cycles, by convention).
    pub value: u64,
    /// Elements processed per iteration, when declared via
    /// [`BenchSuite::throughput`].
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Simulated cycles per element, when both figures are available
    /// and `value` carries a cycle count.
    pub fn cycles_per_element(&self) -> Option<f64> {
        let e = self.elements?;
        if e == 0 {
            return None;
        }
        Some(self.value as f64 / e as f64)
    }

    /// Wall nanoseconds per element, computed from the fastest timed
    /// iteration. External interference on a shared runner only ever
    /// adds time, so the minimum is the noise-robust estimate of the
    /// true per-element cost (the distribution's median and mean are
    /// still reported raw in `median_ns` / `mean_ns`).
    pub fn ns_per_element(&self) -> Option<f64> {
        let e = self.elements?;
        if e == 0 {
            return None;
        }
        Some(self.min_ns as f64 / e as f64)
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let mut j = Json::object()
            .with("name", self.name.as_str())
            .with("iters", self.iters)
            .with("min_ns", self.min_ns)
            .with("median_ns", self.median_ns)
            .with("mean_ns", self.mean_ns)
            .with("value", self.value);
        if let Some(e) = self.elements {
            j.set("elements", e);
            j.set("cycles_per_element", self.cycles_per_element());
            j.set("ns_per_element", self.ns_per_element());
        }
        j
    }
}

/// Runs `f` with warmup and returns its timing summary.
pub fn run_bench(name: &str, cfg: BenchConfig, mut f: impl FnMut() -> u64) -> BenchResult {
    for _ in 0..cfg.warmup_iters {
        black_box(f());
    }
    let iters = cfg.iters.max(1);
    let mut samples_ns = Vec::with_capacity(iters as usize);
    let mut value = 0u64;
    for _ in 0..iters {
        let t = Instant::now();
        value = black_box(f());
        samples_ns.push(t.elapsed().as_nanos() as u64);
    }
    samples_ns.sort_unstable();
    let min_ns = samples_ns[0];
    let median_ns = samples_ns[samples_ns.len() / 2];
    let mean_ns = samples_ns.iter().sum::<u64>() / samples_ns.len() as u64;
    BenchResult { name: name.to_string(), iters, min_ns, median_ns, mean_ns, value, elements: None }
}

/// A named collection of benchmark results that prints a human table
/// and serializes to the report schema.
#[derive(Debug)]
pub struct BenchSuite {
    /// Suite name (becomes the report's `tool` field).
    pub name: String,
    cfg: BenchConfig,
    results: Vec<BenchResult>,
    pending_elements: Option<u64>,
}

impl BenchSuite {
    /// Creates a suite; `cfg` applies to every benchmark in it.
    pub fn new(name: &str, cfg: BenchConfig) -> BenchSuite {
        println!(
            "== bench suite `{name}` ({} warmup + {} timed iterations) ==",
            cfg.warmup_iters, cfg.iters
        );
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>14}",
            "benchmark", "min", "median", "mean", "value"
        );
        BenchSuite { name: name.to_string(), cfg, results: Vec::new(), pending_elements: None }
    }

    /// Declares the per-iteration element count of the *next* benchmark
    /// (enables cycles/ns-per-element reporting).
    pub fn throughput(&mut self, elements: u64) -> &mut BenchSuite {
        self.pending_elements = Some(elements);
        self
    }

    /// Times `f` and records (and prints) the result.
    pub fn bench(&mut self, name: &str, f: impl FnMut() -> u64) -> &BenchResult {
        let mut r = run_bench(name, self.cfg, f);
        r.elements = self.pending_elements.take();
        let per_elem = r
            .cycles_per_element()
            .map(|c| format!(" ({c:.2} cy/elem)"))
            .unwrap_or_default();
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>14}{per_elem}",
            r.name,
            fmt_ns(r.min_ns),
            fmt_ns(r.median_ns),
            fmt_ns(r.mean_ns),
            r.value
        );
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// All recorded results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the suite as a structured report under `results/` and
    /// prints the path. See [`crate::report`] for the schema.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        let mut report = crate::Report::new(&self.name);
        report.set(
            "bench_config",
            Json::object()
                .with("warmup_iters", self.cfg.warmup_iters)
                .with("iters", self.cfg.iters),
        );
        report.set("benchmarks", self.results.to_json());
        report.save()
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_value_and_orders_stats() {
        let mut n = 0u64;
        let r = run_bench("t", BenchConfig { warmup_iters: 1, iters: 5 }, || {
            n += 1;
            n * 100
        });
        assert_eq!(r.iters, 5);
        // 1 warmup + 5 timed calls.
        assert_eq!(r.value, 600);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.mean_ns.max(r.median_ns));
    }

    #[test]
    fn throughput_applies_to_next_bench_only() {
        let mut s = BenchSuite::new("t", BenchConfig { warmup_iters: 0, iters: 1 });
        s.throughput(100);
        s.bench("a", || 250);
        s.bench("b", || 250);
        assert_eq!(s.results()[0].elements, Some(100));
        assert_eq!(s.results()[0].cycles_per_element(), Some(2.5));
        assert_eq!(s.results()[1].elements, None);
    }

    #[test]
    fn result_serializes_with_schema_keys() {
        let r = BenchResult {
            name: "x".into(),
            iters: 3,
            min_ns: 1,
            median_ns: 2,
            mean_ns: 2,
            value: 10,
            elements: Some(5),
        };
        let j = r.to_json();
        assert_eq!(j.get("cycles_per_element").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("median_ns").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn quick_flag_selects_quick_config() {
        let cfg = BenchConfig::from_args(&["--quick".to_string()]);
        assert_eq!(cfg.iters, BenchConfig::quick().iters);
    }
}
