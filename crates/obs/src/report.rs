//! Schema-versioned experiment reports.
//!
//! Every experiment binary writes a machine-readable JSON report next
//! to its human-readable stdout output, so the perf trajectory of the
//! repository can be diffed run-over-run. All reports share a common
//! envelope:
//!
//! ```text
//! {
//!   "schema_version": 2,       // bumped on incompatible layout changes
//!   "tool": "fig7",            // the emitting binary / bench suite
//!   "generated_unix_s": 1754...,// wall-clock stamp (0 if unavailable)
//!   ...tool-specific keys...
//! }
//! ```
//!
//! Reports land in `results/` by default; set `ADORE_RESULTS_DIR` to
//! redirect (tests do this to avoid touching the checked-in copies).

use std::io;
use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{Json, ToJson};

/// Current report schema version. Bump on incompatible changes and
/// record the migration in `DESIGN.md`.
///
/// v2: the engine's `engine` section gained `baseline_store` and
/// `scheduling` subsections (persistent-store hits/misses, shard
/// count, queue depth high-water mark, stolen-task count).
pub const SCHEMA_VERSION: u64 = 2;

/// A report under construction: the standard envelope plus whatever
/// keys the tool adds via [`Report::set`].
#[derive(Debug, Clone)]
pub struct Report {
    tool: String,
    body: Json,
}

impl Report {
    /// Starts a report for `tool` (also the output file stem).
    pub fn new(tool: &str) -> Report {
        let stamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let body = Json::object()
            .with("schema_version", SCHEMA_VERSION)
            .with("tool", tool)
            .with("generated_unix_s", stamp);
        Report { tool: tool.to_string(), body }
    }

    /// Adds (or replaces) a top-level key.
    pub fn set(&mut self, key: &str, value: impl ToJson) {
        self.body.set(key, value);
    }

    /// The report as a JSON value.
    pub fn json(&self) -> &Json {
        &self.body
    }

    /// The directory reports are written to: `$ADORE_RESULTS_DIR` if
    /// set, else `results/` under the enclosing workspace root.
    ///
    /// Cargo runs test and bench binaries with the *package* directory
    /// as cwd (e.g. `crates/bench`) but `cargo run` binaries with the
    /// invocation directory, so a plain relative `results/` would
    /// scatter reports. Instead we walk up from the current directory
    /// to the nearest `Cargo.lock` — the workspace root — and anchor
    /// there; if none is found (installed binary, bare checkout), fall
    /// back to `results/` under the current directory.
    pub fn results_dir() -> PathBuf {
        if let Some(dir) = std::env::var_os("ADORE_RESULTS_DIR") {
            return PathBuf::from(dir);
        }
        if let Ok(mut at) = std::env::current_dir() {
            loop {
                if at.join("Cargo.lock").is_file() {
                    return at.join("results");
                }
                if !at.pop() {
                    break;
                }
            }
        }
        PathBuf::from("results")
    }

    /// Writes `<results_dir>/<tool>.json` (pretty-printed), creating
    /// the directory if needed, and reports the path on stderr.
    pub fn save(&self) -> io::Result<PathBuf> {
        let dir = Report::results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.tool));
        std::fs::write(&path, self.body.pretty())?;
        eprintln!("[report] wrote {}", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_has_schema_keys() {
        let r = Report::new("unit");
        let j = r.json();
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(j.get("tool").and_then(Json::as_str), Some("unit"));
        assert!(j.get("generated_unix_s").is_some());
    }

    #[test]
    fn save_round_trips_through_the_parser() {
        let dir = std::env::temp_dir().join(format!("obs-report-test-{}", std::process::id()));
        // Env vars are process-global; this test is the only one in the
        // crate touching ADORE_RESULTS_DIR.
        std::env::set_var("ADORE_RESULTS_DIR", &dir);
        let mut r = Report::new("unit_save");
        r.set("rows", vec![Json::object().with("bench", "mcf").with("cycles", 42u64)]);
        let path = r.save().expect("writes");
        std::env::remove_var("ADORE_RESULTS_DIR");
        let text = std::fs::read_to_string(&path).expect("readable");
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("rows").unwrap().as_array().unwrap()[0]
                .get("cycles")
                .and_then(Json::as_u64),
            Some(42)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
