//! A structured event stream.
//!
//! Pipeline passes emit typed events ("deploy", "unpatch", "promote",
//! …) as JSON objects; the stream preserves emission order and
//! serializes as a JSON array, so reports can carry a replayable record
//! of what the optimizer did and when.

use crate::json::{Json, ToJson};

/// An append-only, order-preserving stream of structured events.
///
/// Each entry is a JSON object whose first field is `"kind"`; the
/// remaining fields come from the payload passed to [`emit`].
///
/// [`emit`]: EventStream::emit
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventStream {
    entries: Vec<Json>,
}

impl EventStream {
    /// Creates an empty stream.
    pub fn new() -> EventStream {
        EventStream::default()
    }

    /// Appends an event of the given kind.
    ///
    /// When `payload` is a JSON object its fields are merged after the
    /// `"kind"` field; any other payload is stored under a `"data"`
    /// field. `Json::Null` payloads add nothing beyond the kind.
    pub fn emit(&mut self, kind: &str, payload: Json) {
        let mut entry = Json::object().with("kind", kind);
        match payload {
            Json::Object(fields) => {
                for (k, v) in fields {
                    entry = entry.with(&k, v);
                }
            }
            Json::Null => {}
            other => entry = entry.with("data", other),
        }
        self.entries.push(entry);
    }

    /// Iterates over the recorded events in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Json> {
        self.entries.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl ToJson for EventStream {
    fn to_json(&self) -> Json {
        Json::Array(self.entries.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_payload_fields_merge_after_kind() {
        let mut s = EventStream::new();
        s.emit("deploy", Json::object().with("trace", 7u64).with("streams", 2u64));
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.to_json().to_string(),
            r#"[{"kind":"deploy","trace":7,"streams":2}]"#
        );
    }

    #[test]
    fn scalar_payload_lands_under_data() {
        let mut s = EventStream::new();
        s.emit("note", Json::Str("hello".into()));
        s.emit("tick", Json::Null);
        assert_eq!(
            s.to_json().to_string(),
            r#"[{"kind":"note","data":"hello"},{"kind":"tick"}]"#
        );
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 2);
    }
}
