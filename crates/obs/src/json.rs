//! A minimal JSON value, serializer and parser.
//!
//! Replaces the `serde`/`serde_json` pair for the narrow needs of this
//! repository: experiment binaries build [`Json`] trees and write them
//! to `results/`, and tests parse them back to check the schema. The
//! serializer is deterministic — objects preserve insertion order — so
//! report diffs stay readable under version control.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (cycle counters routinely exceed `i64::MAX`
    /// territory in type, if not in practice).
    UInt(u64),
    /// A finite double. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

/// Equality is semantic for numbers: `Int(1)`, `UInt(1)` and `Num(1.0)`
/// all denote the JSON number `1` and compare equal, so values survive a
/// serialize → parse round trip regardless of which variant produced
/// them.
impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        use Json::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => *a >= 0 && *a as u64 == *b,
            (Num(a), Num(b)) => a == b,
            (Num(a), Int(b)) | (Int(b), Num(a)) => *a == *b as f64,
            (Num(a), UInt(b)) | (UInt(b), Num(a)) => *a == *b as f64,
            _ => false,
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl Json {
    /// An empty object, for builder-style construction.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Json {
        Json::Array(Vec::new())
    }

    /// Builder: inserts (or replaces) `key` and returns `self`.
    pub fn with(mut self, key: &str, value: impl ToJson) -> Json {
        self.set(key, value);
        self
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl ToJson) {
        let Json::Object(fields) = self else { panic!("Json::set on non-object") };
        let v = value.to_json();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = v,
            None => fields.push((key.to_string(), v)),
        }
    }

    /// Appends to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl ToJson) {
        let Json::Array(items) = self else { panic!("Json::push on non-array") };
        items.push(value.to_json());
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, for numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a u64, for non-negative integer variants.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (the format written under `results/`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest-round-trip Display is valid JSON,
                    // except that integral floats print without ".0";
                    // that is still a legal JSON number.
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1, pretty);
                    item.write(out, depth + 1, pretty);
                }
                newline_indent(out, depth, pretty);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1, pretty);
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                }
                newline_indent(out, depth, pretty);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, depth: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// ToJson impls for primitives and containers.

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
int_to_json!(i8, i16, i32, i64, isize, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &[T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

// ---------------------------------------------------------------------
// Parser.

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { at: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // own reports; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_compact_output() {
        let j = Json::object()
            .with("name", "mcf")
            .with("cycles", 123u64)
            .with("speedup", 1.5)
            .with("ok", true)
            .with("skips", Json::array());
        assert_eq!(
            j.to_string(),
            r#"{"name":"mcf","cycles":123,"speedup":1.5,"ok":true,"skips":[]}"#
        );
    }

    #[test]
    fn set_replaces_existing_key_in_place() {
        let mut j = Json::object().with("a", 1).with("b", 2);
        j.set("a", 9);
        assert_eq!(j.to_string(), r#"{"a":9,"b":2}"#);
    }

    #[test]
    fn escaping_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let j = Json::Str(s.to_string());
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_parses_back() {
        let j = Json::object()
            .with("rows", vec![Json::object().with("x", 1), Json::object().with("x", 2)])
            .with("nested", Json::object().with("deep", Json::array().to_json()));
        let parsed = Json::parse(&j.pretty()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parses_numbers_by_best_type() {
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse("-5").unwrap(), Json::Int(-5));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Num(2500.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let j = Json::parse(r#"{"a": [1, -2, 3.5], "s": "x"}"#).unwrap();
        let a = j.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.0));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("missing"), None);
    }
}
