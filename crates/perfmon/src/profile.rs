//! Cache-miss profiles aggregated from DEAR samples.
//!
//! Besides driving runtime prefetching, the paper feeds the same
//! sampling profiles back to the ORC compiler (§4.2): delinquent loads
//! are sorted by total miss latency and accumulated until they cover
//! 90 % of all profiled latency; static prefetching is then restricted
//! to loops containing a load in that list.

use std::collections::HashMap;

use isa::Pc;
use obs::{Json, ToJson};
use sim::Sample;

/// Aggregated miss statistics for one load instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissEntry {
    /// Bundle address of the load.
    pub addr: u64,
    /// Slot of the load within the bundle.
    pub slot: u8,
    /// Number of sampled qualifying misses.
    pub count: u64,
    /// Sum of sampled miss latencies (cycles).
    pub total_latency: u64,
    /// Most recently sampled miss address (for reference-pattern
    /// diagnostics).
    pub last_miss_addr: u64,
}

impl MissEntry {
    /// The precise pc of the load.
    pub fn pc(&self) -> Pc {
        Pc::new(isa::Addr(self.addr), self.slot)
    }
}

impl ToJson for MissEntry {
    fn to_json(&self) -> Json {
        Json::object()
            .with("addr", self.addr)
            .with("slot", self.slot)
            .with("count", self.count)
            .with("total_latency", self.total_latency)
            .with("last_miss_addr", self.last_miss_addr)
    }
}

/// A complete sampled cache-miss profile.
#[derive(Debug, Clone, Default)]
pub struct MissProfile {
    entries: Vec<MissEntry>,
    /// Total sampled miss latency across all loads.
    total_latency: u64,
}

impl MissProfile {
    /// Builds a profile by aggregating the DEAR records of `samples`.
    ///
    /// Consecutive samples can carry the *same* DEAR record (no new
    /// qualifying miss since the last sample); duplicates are collapsed
    /// by comparing sample-to-sample identity.
    pub fn from_samples<'a>(samples: impl IntoIterator<Item = &'a Sample>) -> MissProfile {
        let mut map: HashMap<(u64, u8), MissEntry> = HashMap::new();
        let mut total = 0u64;
        let mut last: Option<(Pc, u64)> = None;
        for s in samples {
            let Some(d) = s.dear else { continue };
            // Only data-cache miss events guide prefetching; the DEAR
            // also reports DTLB misses, which are skipped here.
            if d.kind != sim::DearKind::CacheMiss {
                continue;
            }
            // Same record still sitting in the DEAR: skip.
            if last == Some((d.load_pc, d.miss_addr)) {
                continue;
            }
            last = Some((d.load_pc, d.miss_addr));
            let e = map.entry((d.load_pc.addr.0, d.load_pc.slot)).or_insert(MissEntry {
                addr: d.load_pc.addr.0,
                slot: d.load_pc.slot,
                count: 0,
                total_latency: 0,
                last_miss_addr: 0,
            });
            e.count += 1;
            e.total_latency += d.latency;
            e.last_miss_addr = d.miss_addr;
            total += d.latency;
        }
        let mut entries: Vec<MissEntry> = map.into_values().collect();
        entries.sort_by(|a, b| b.total_latency.cmp(&a.total_latency).then(a.addr.cmp(&b.addr)));
        MissProfile { entries, total_latency: total }
    }

    /// All entries, sorted by decreasing total latency.
    pub fn entries(&self) -> &[MissEntry] {
        &self.entries
    }

    /// Total sampled miss latency.
    pub fn total_latency(&self) -> u64 {
        self.total_latency
    }

    /// True when the profile recorded no qualifying misses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The delinquent-load list: the smallest prefix of loads (by
    /// decreasing total latency) covering at least `coverage` (0–1) of
    /// all profiled miss latency — the paper's 90 % rule.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < coverage <= 1.0`.
    pub fn delinquent_loads(&self, coverage: f64) -> Vec<MissEntry> {
        assert!(coverage > 0.0 && coverage <= 1.0, "coverage must be in (0, 1]");
        let target = (self.total_latency as f64 * coverage).ceil() as u64;
        let mut acc = 0u64;
        let mut out = Vec::new();
        for e in &self.entries {
            if acc >= target {
                break;
            }
            acc += e.total_latency;
            out.push(*e);
        }
        out
    }

    /// Fraction of total latency attributed to the load at `pc`.
    pub fn latency_share(&self, pc: Pc) -> f64 {
        if self.total_latency == 0 {
            return 0.0;
        }
        self.entries
            .iter()
            .find(|e| e.addr == pc.addr.0 && e.slot == pc.slot)
            .map(|e| e.total_latency as f64 / self.total_latency as f64)
            .unwrap_or(0.0)
    }
}

impl ToJson for MissProfile {
    fn to_json(&self) -> Json {
        Json::object()
            .with("total_latency", self.total_latency)
            .with("entries", self.entries.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::Addr;
    use sim::DearRecord;

    fn sample_with_dear(index: u64, pc_addr: u64, slot: u8, miss_addr: u64, lat: u64) -> Sample {
        Sample {
            index,
            pc: Pc::new(Addr(pc_addr), 0),
            cycles: index * 1000,
            retired: index * 500,
            dcache_misses: index,
            btb: vec![],
            dear: Some(DearRecord {
                load_pc: Pc::new(Addr(pc_addr), slot),
                miss_addr,
                latency: lat,
                kind: sim::DearKind::CacheMiss,
            }),
        }
    }

    #[test]
    fn aggregates_by_load_pc() {
        let samples = vec![
            sample_with_dear(0, 0x4000_0000, 0, 0x1000_0000, 160),
            sample_with_dear(1, 0x4000_0000, 0, 0x1000_0040, 160),
            sample_with_dear(2, 0x4000_0100, 1, 0x1200_0000, 13),
        ];
        let p = MissProfile::from_samples(&samples);
        assert_eq!(p.entries().len(), 2);
        assert_eq!(p.total_latency(), 333);
        // Sorted by total latency descending.
        assert_eq!(p.entries()[0].addr, 0x4000_0000);
        assert_eq!(p.entries()[0].count, 2);
        assert_eq!(p.entries()[0].total_latency, 320);
    }

    #[test]
    fn duplicate_dear_records_collapse() {
        let s = sample_with_dear(0, 0x4000_0000, 0, 0x1000_0000, 160);
        let mut s2 = sample_with_dear(1, 0x4000_0000, 0, 0x1000_0000, 160);
        s2.dear = s.dear; // identical record: no new miss occurred
        let p = MissProfile::from_samples([&s, &s2]);
        assert_eq!(p.entries()[0].count, 1);
    }

    #[test]
    fn delinquent_list_covers_requested_fraction() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| sample_with_dear(i, 0x4000_0000 + i * 16, 0, 0x1000_0000 + i * 64, 100 + i))
            .collect();
        let p = MissProfile::from_samples(&samples);
        let all = p.delinquent_loads(1.0);
        assert_eq!(all.len(), 10);
        let top = p.delinquent_loads(0.2);
        assert!(top.len() < 10);
        let covered: u64 = top.iter().map(|e| e.total_latency).sum();
        assert!(covered as f64 >= 0.2 * p.total_latency() as f64);
    }

    #[test]
    fn latency_share_lookup() {
        let samples = vec![
            sample_with_dear(0, 0x4000_0000, 0, 0x1000_0000, 300),
            sample_with_dear(1, 0x4000_0100, 0, 0x1000_0040, 100),
        ];
        let p = MissProfile::from_samples(&samples);
        let share = p.latency_share(Pc::new(Addr(0x4000_0000), 0));
        assert!((share - 0.75).abs() < 1e-12);
        assert_eq!(p.latency_share(Pc::new(Addr(0x5000_0000), 0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn bad_coverage_panics() {
        MissProfile::default().delinquent_loads(0.0);
    }

    #[test]
    fn profile_serializes_to_schema_keys() {
        let samples = vec![sample_with_dear(0, 0x4000_0000, 1, 0x1000_0000, 160)];
        let p = MissProfile::from_samples(&samples);
        let j = p.to_json();
        assert_eq!(j.get("total_latency").and_then(Json::as_u64), Some(160));
        let e = &j.get("entries").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("addr").and_then(Json::as_u64), Some(0x4000_0000));
        assert_eq!(e.get("slot").and_then(Json::as_u64), Some(1));
        // The emitted text is valid JSON.
        assert!(Json::parse(&j.to_string()).is_ok());
    }

    #[test]
    fn empty_profile() {
        let p = MissProfile::from_samples(std::iter::empty::<&Sample>());
        assert!(p.is_empty());
        assert_eq!(p.total_latency(), 0);
        assert!(p.delinquent_loads(0.9).is_empty());
    }
}
