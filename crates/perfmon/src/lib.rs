//! A perfmon-like PMU sampling layer for the ADORE reproduction.
//!
//! The paper builds ADORE's profiling on Stephane Eranian's `perfmon`
//! kernel interface (§2.1): the PMU is sampled every R cycles into a
//! kernel **System Sample Buffer**; on overflow a signal handler copies
//! the samples to a circular **User Event Buffer** whose contents the
//! dynamic optimizer consumes as *profile windows*. This crate provides:
//!
//! - [`ProfileWindow`] / [`UserEventBuffer`]: per-window CPI, DPI and
//!   PCcenter statistics with noise removal ([`window`]);
//! - [`Perfmon`]: the overflow-handling driver ([`sampler`]);
//! - [`MissProfile`]: DEAR-based cache-miss profiles, including the 90 %
//!   latency-coverage delinquent-load list used for profile-guided
//!   static prefetching ([`profile`]).

#![warn(missing_docs)]

pub mod profile;
pub mod sampler;
pub mod window;

pub use profile::{MissEntry, MissProfile};
pub use sampler::{Perfmon, PerfmonConfig};
pub use window::{ProfileWindow, UserEventBuffer};
