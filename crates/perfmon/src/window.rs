//! Profile windows: per-SSB-fill statistics.
//!
//! The paper defines a *profile window* as the period it takes the
//! System Sample Buffer to fill (§2.3). For each window ADORE computes
//! three statistics — `CPI`, `DPI` (D-cache load misses per
//! instruction) and `PCcenter` (the arithmetic mean of sampled pc
//! addresses) — whose standard deviations over consecutive windows drive
//! phase detection.

use sim::Sample;

/// Statistics of one profile window.
#[derive(Debug, Clone)]
pub struct ProfileWindow {
    /// Window sequence number (0-based).
    pub seq: u64,
    /// Samples captured in this window.
    pub samples: Vec<Sample>,
    /// Cycles elapsed during the window.
    pub cycles: u64,
    /// Instructions retired during the window.
    pub retired: u64,
    /// DEAR-qualifying misses during the window.
    pub dear_misses: u64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// DEAR-qualifying misses per instruction.
    pub dpi: f64,
    /// DEAR-qualifying misses per 1000 instructions (the Fig. 8/9
    /// y-axis, `DEAR_CACHE_LAT8 / 1000 instructions`).
    pub dear_per_kinsn: f64,
    /// Arithmetic mean of sampled pc addresses after noise removal,
    /// computed over static-code samples only (trace-pool samples are
    /// accounted separately via [`ProfileWindow::pool_fraction`], so a
    /// partially patched phase does not look bimodal).
    pub pc_center: f64,
    /// Fraction of samples whose pc lies in the trace pool.
    pub pool_fraction: f64,
}

impl ProfileWindow {
    /// Builds a window from drained samples plus the accumulative
    /// counter values at the *end of the previous window*
    /// (`prev = (cycles, retired, dear_misses)`).
    pub fn new(seq: u64, samples: Vec<Sample>, prev: (u64, u64, u64)) -> ProfileWindow {
        let (c0, r0, d0) = prev;
        let (c1, r1, d1) = samples
            .last()
            .map(|s| (s.cycles, s.retired, s.dcache_misses))
            .unwrap_or(prev);
        let cycles = c1.saturating_sub(c0);
        let retired = r1.saturating_sub(r0);
        let dear_misses = d1.saturating_sub(d0);
        let cpi = if retired > 0 { cycles as f64 / retired as f64 } else { 0.0 };
        let dpi = if retired > 0 { dear_misses as f64 / retired as f64 } else { 0.0 };
        let pool = samples
            .iter()
            .filter(|s| s.pc.addr.0 >= isa::TRACE_POOL_BASE)
            .count();
        let pool_fraction =
            if samples.is_empty() { 0.0 } else { pool as f64 / samples.len() as f64 };
        let code_pcs: Vec<f64> = samples
            .iter()
            .map(|s| s.pc.addr.0 as f64)
            .filter(|&p| p < isa::TRACE_POOL_BASE as f64)
            .collect();
        let pool_pcs: Vec<f64> = samples
            .iter()
            .map(|s| s.pc.addr.0 as f64)
            .filter(|&p| p >= isa::TRACE_POOL_BASE as f64)
            .collect();
        let pc_center =
            noise_filtered_mean(if code_pcs.is_empty() { &pool_pcs } else { &code_pcs });
        ProfileWindow {
            seq,
            cycles,
            retired,
            dear_misses,
            cpi,
            dpi,
            dear_per_kinsn: dpi * 1000.0,
            pc_center,
            pool_fraction,
            samples,
        }
    }

    /// End-of-window accumulative counters, for chaining windows.
    pub fn end_counters(&self) -> Option<(u64, u64, u64)> {
        self.samples.last().map(|s| (s.cycles, s.retired, s.dcache_misses))
    }
}

/// Mean of pc addresses with one pass of 2σ outlier rejection — the
/// "noise removal" the paper's phase detector applies so rare
/// excursions (library calls, signal handlers) do not smear `PCcenter`.
fn noise_filtered_mean(pcs: &[f64]) -> f64 {
    if pcs.is_empty() {
        return 0.0;
    }
    let mean = pcs.iter().sum::<f64>() / pcs.len() as f64;
    let var = pcs.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / pcs.len() as f64;
    let sd = var.sqrt();
    if sd == 0.0 {
        return mean;
    }
    let kept: Vec<f64> = pcs.iter().copied().filter(|p| (p - mean).abs() <= 2.0 * sd).collect();
    if kept.is_empty() {
        mean
    } else {
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

/// A fixed-capacity circular buffer of the most recent profile windows —
/// the **User Event Buffer** (`SIZE_UEB = SIZE_SSB * W`, paper §2.3).
#[derive(Debug, Clone)]
pub struct UserEventBuffer {
    windows: std::collections::VecDeque<ProfileWindow>,
    capacity: usize,
}

impl UserEventBuffer {
    /// Creates a UEB holding up to `w` windows (the paper uses W = 16).
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero.
    pub fn new(w: usize) -> UserEventBuffer {
        assert!(w > 0, "UEB must hold at least one window");
        UserEventBuffer { windows: std::collections::VecDeque::with_capacity(w), capacity: w }
    }

    /// Window capacity `W`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a window, evicting the oldest when full.
    pub fn push(&mut self, w: ProfileWindow) {
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(w);
    }

    /// Number of windows currently buffered.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no windows are buffered.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The most recent `n` windows, oldest first.
    pub fn recent(&self, n: usize) -> Vec<&ProfileWindow> {
        let skip = self.windows.len().saturating_sub(n);
        self.windows.iter().skip(skip).collect()
    }

    /// Iterates all buffered windows, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ProfileWindow> {
        self.windows.iter()
    }

    /// The most recent window.
    pub fn last(&self) -> Option<&ProfileWindow> {
        self.windows.back()
    }

    /// Clears all windows (used when a phase change invalidates history).
    pub fn clear(&mut self) {
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{Addr, Pc};

    fn sample(index: u64, pc_addr: u64, cycles: u64, retired: u64, misses: u64) -> Sample {
        Sample {
            index,
            pc: Pc::new(Addr(pc_addr), 0),
            cycles,
            retired,
            dcache_misses: misses,
            btb: vec![],
            dear: None,
        }
    }

    #[test]
    fn window_stats_are_deltas() {
        let samples = vec![
            sample(0, 0x4000_0000, 1_000, 500, 10),
            sample(1, 0x4000_0010, 2_000, 1_500, 30),
        ];
        let w = ProfileWindow::new(0, samples, (0, 0, 0));
        assert_eq!(w.cycles, 2_000);
        assert_eq!(w.retired, 1_500);
        assert_eq!(w.dear_misses, 30);
        assert!((w.cpi - 2_000.0 / 1_500.0).abs() < 1e-12);
        assert!((w.dear_per_kinsn - 20.0).abs() < 1e-12);
    }

    #[test]
    fn window_chains_from_previous_counters() {
        let w1 = ProfileWindow::new(0, vec![sample(0, 0x4000_0000, 1_000, 500, 5)], (0, 0, 0));
        let end = w1.end_counters().unwrap();
        let w2 = ProfileWindow::new(1, vec![sample(1, 0x4000_0000, 3_000, 900, 9)], end);
        assert_eq!(w2.cycles, 2_000);
        assert_eq!(w2.retired, 400);
        assert_eq!(w2.dear_misses, 4);
    }

    #[test]
    fn pc_center_rejects_outliers() {
        let mut samples: Vec<Sample> =
            (0..20).map(|i| sample(i, 0x4000_0000 + (i % 4) * 16, 100 * i, 50 * i, 0)).collect();
        // One wild outlier (a signal handler pc far away).
        samples.push(sample(20, 0xf000_0000, 2_100, 1_050, 0));
        let w = ProfileWindow::new(0, samples, (0, 0, 0));
        assert!(
            w.pc_center < 0x4100_0000 as f64,
            "outlier should be rejected: {}",
            w.pc_center
        );
    }

    #[test]
    fn pool_fraction_separates_pc_center() {
        let pool_base = isa::TRACE_POOL_BASE;
        let mut samples: Vec<Sample> = (0..10)
            .map(|i| sample(i, 0x4000_0000 + (i % 4) * 16, 100 * (i + 1), 50 * (i + 1), 0))
            .collect();
        for i in 10..20 {
            samples.push(sample(i, pool_base + (i % 4) * 16, 100 * (i + 1), 50 * (i + 1), 0));
        }
        let w = ProfileWindow::new(0, samples, (0, 0, 0));
        assert!((w.pool_fraction - 0.5).abs() < 1e-12);
        // PCcenter is computed over the code-region samples only.
        assert!(w.pc_center < 0x5000_0000 as f64, "pool pcs must not smear PCcenter");
    }

    #[test]
    fn all_pool_window_uses_pool_pcs() {
        let pool_base = isa::TRACE_POOL_BASE;
        let samples: Vec<Sample> =
            (0..8).map(|i| sample(i, pool_base + (i % 2) * 16, 100 * (i + 1), 50 * (i + 1), 0)).collect();
        let w = ProfileWindow::new(0, samples, (0, 0, 0));
        assert_eq!(w.pool_fraction, 1.0);
        assert!(w.pc_center >= pool_base as f64);
    }

    #[test]
    fn empty_window_is_benign() {
        let w = ProfileWindow::new(0, vec![], (100, 50, 5));
        assert_eq!(w.cycles, 0);
        assert_eq!(w.cpi, 0.0);
        assert!(w.end_counters().is_none());
    }

    #[test]
    fn ueb_evicts_oldest() {
        let mut ueb = UserEventBuffer::new(3);
        for i in 0..5 {
            ueb.push(ProfileWindow::new(i, vec![], (0, 0, 0)));
        }
        assert_eq!(ueb.len(), 3);
        let seqs: Vec<u64> = ueb.iter().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ueb.last().unwrap().seq, 4);
        let recent = ueb.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 3);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_capacity_panics() {
        let _ = UserEventBuffer::new(0);
    }
}
