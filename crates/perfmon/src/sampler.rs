//! The sampling driver: glue between the machine's System Sample Buffer
//! and the User Event Buffer.
//!
//! In the paper (§2.2), `dyn_open` programs the perfmon kernel interface
//! with a sampling rate and installs a signal handler; every time the
//! kernel's System Sample Buffer overflows, the handler copies the
//! samples into a larger circular User Event Buffer on which the
//! dynamic-optimization thread operates. Here the overflow shows up as
//! [`StopReason::SampleBufferOverflow`] from [`Machine::run`], and
//! [`Perfmon::on_overflow`] plays the signal handler: it drains the SSB,
//! charges the handler's cost to the main thread, and appends one
//! profile window to the UEB.

use sim::{Machine, StopReason};

use crate::window::{ProfileWindow, UserEventBuffer};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct PerfmonConfig {
    /// Number of profile windows the UEB retains (the paper's `W`,
    /// typically 8–16).
    pub ueb_windows: usize,
    /// Cycles the "signal handler" charges the main thread per overflow
    /// (copying `SIZE_SSB` samples out of the kernel buffer).
    pub overflow_copy_cost: u64,
}

impl Default for PerfmonConfig {
    fn default() -> PerfmonConfig {
        PerfmonConfig { ueb_windows: 16, overflow_copy_cost: 2_000 }
    }
}

/// The sampling driver state.
#[derive(Debug)]
pub struct Perfmon {
    config: PerfmonConfig,
    ueb: UserEventBuffer,
    prev_counters: (u64, u64, u64),
    windows_produced: u64,
}

impl Perfmon {
    /// Creates a driver with the given configuration.
    pub fn new(config: PerfmonConfig) -> Perfmon {
        Perfmon {
            ueb: UserEventBuffer::new(config.ueb_windows),
            prev_counters: (0, 0, 0),
            windows_produced: 0,
            config,
        }
    }

    /// The User Event Buffer.
    pub fn ueb(&self) -> &UserEventBuffer {
        &self.ueb
    }

    /// Total profile windows produced so far.
    pub fn windows_produced(&self) -> u64 {
        self.windows_produced
    }

    /// Handles a sample-buffer overflow: drains the machine's SSB into
    /// a new profile window, charging the handler cost. Returns a
    /// reference to the freshly appended window.
    pub fn on_overflow<'a>(&'a mut self, machine: &mut Machine) -> &'a ProfileWindow {
        let samples = machine.drain_samples();
        machine.charge_cycles(self.config.overflow_copy_cost);
        let window = ProfileWindow::new(self.windows_produced, samples, self.prev_counters);
        if let Some(end) = window.end_counters() {
            self.prev_counters = end;
        }
        self.windows_produced += 1;
        self.ueb.push(window);
        self.ueb.last().expect("just pushed")
    }

    /// Runs the machine until it halts, handling overflows along the
    /// way and invoking `on_window` after each new profile window. The
    /// callback may inspect the machine and perfmon state (e.g. to run
    /// phase detection and patch traces).
    ///
    /// Returns the final cycle count.
    pub fn run_with_windows(
        &mut self,
        machine: &mut Machine,
        on_window: impl FnMut(&mut Machine, &ProfileWindow, &UserEventBuffer),
    ) -> u64 {
        self.run_with_windows_until(machine, u64::MAX, on_window)
    }

    /// Like [`run_with_windows`](Perfmon::run_with_windows), but stops
    /// once `cycle_limit` (absolute cycle count) is reached or the
    /// machine faults. Differential-testing harnesses use the limit to
    /// bound runaway programs that would otherwise never halt.
    ///
    /// Returns the final cycle count; the machine records whether it
    /// halted or faulted.
    pub fn run_with_windows_until(
        &mut self,
        machine: &mut Machine,
        cycle_limit: u64,
        mut on_window: impl FnMut(&mut Machine, &ProfileWindow, &UserEventBuffer),
    ) -> u64 {
        loop {
            match machine.run(cycle_limit) {
                StopReason::Halted | StopReason::Faulted(_) | StopReason::CycleLimit => {
                    return machine.cycles();
                }
                StopReason::SampleBufferOverflow => {
                    let samples = machine.drain_samples();
                    machine.charge_cycles(self.config.overflow_copy_cost);
                    let window =
                        ProfileWindow::new(self.windows_produced, samples, self.prev_counters);
                    if let Some(end) = window.end_counters() {
                        self.prev_counters = end;
                    }
                    self.windows_produced += 1;
                    self.ueb.push(window);
                    let w = self.ueb.last().expect("just pushed").clone();
                    on_window(machine, &w, &self.ueb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{Asm, CmpOp, Gr, Pr, CODE_BASE};
    use sim::{MachineConfig, SamplingConfig};

    fn looping_machine(iters: i64, interval: u64, cap: usize) -> Machine {
        let mut a = Asm::new();
        a.movl(Gr(10), 0);
        a.label("loop");
        a.addi(Gr(10), Gr(10), 1);
        a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), iters);
        a.br_cond(Pr(1), "loop");
        a.halt();
        let mut cfg = MachineConfig::default();
        cfg.sampling = Some(SamplingConfig {
            interval_cycles: interval,
            buffer_capacity: cap,
            per_sample_cost: 0,
            jitter: 0.3,
            ..Default::default()
        });
        Machine::new(a.finish(CODE_BASE).unwrap(), cfg)
    }

    #[test]
    fn windows_accumulate_through_run() {
        let mut m = looping_machine(2_000_000, 500, 32);
        let mut pm = Perfmon::new(PerfmonConfig { ueb_windows: 4, overflow_copy_cost: 0 });
        let mut windows_seen = 0;
        pm.run_with_windows(&mut m, |_, w, ueb| {
            windows_seen += 1;
            assert!(w.retired > 0);
            assert!(w.cpi > 0.0);
            assert!(ueb.len() <= 4);
        });
        assert!(windows_seen > 4, "expected several windows, got {windows_seen}");
        assert_eq!(pm.windows_produced(), windows_seen);
        assert_eq!(pm.ueb().len(), 4); // capped at W
    }

    #[test]
    fn overflow_cost_is_charged() {
        let mut m1 = looping_machine(500_000, 500, 32);
        let mut pm1 = Perfmon::new(PerfmonConfig { ueb_windows: 4, overflow_copy_cost: 0 });
        let free = pm1.run_with_windows(&mut m1, |_, _, _| {});

        let mut m2 = looping_machine(500_000, 500, 32);
        let mut pm2 =
            Perfmon::new(PerfmonConfig { ueb_windows: 4, overflow_copy_cost: 10_000 });
        let charged = pm2.run_with_windows(&mut m2, |_, _, _| {});
        assert!(charged > free, "handler cost must show up in cycles");
    }

    #[test]
    fn windows_chain_counters() {
        let mut m = looping_machine(1_000_000, 500, 16);
        let mut pm = Perfmon::new(PerfmonConfig::default());
        let mut prev_end = 0u64;
        pm.run_with_windows(&mut m, |_, w, _| {
            // Each window's cycle delta starts where the last ended.
            assert!(w.cycles > 0);
            assert!(w.samples.first().unwrap().cycles > prev_end);
            prev_end = w.samples.last().unwrap().cycles;
        });
    }
}
