//! A small, seeded, in-repo PRNG (SplitMix64).
//!
//! Replaces `rand`'s `StdRng` for workload generation and the
//! repository's deterministic property tests. SplitMix64 passes
//! BigCrush, needs eight lines of code, and — unlike `StdRng`, whose
//! stream is only stable within a `rand` major version — its output is
//! pinned by this file, so the synthetic workload layouts (and every
//! simulated cycle count derived from them) can never drift under a
//! dependency upgrade.

/// A SplitMix64 generator.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014 (the public-domain `splitmix64.c` stream).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` via rejection sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Widening-multiply trick (Lemire): map 64 random bits to
        // [0, n) and reject the biased zone.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (n as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform in `[lo, hi)` over signed integers.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`, clamped to `[0, 1]`: `p <= 0` and
    /// NaN never fire, `p >= 1` always fires. Exactly one draw is
    /// consumed for every call regardless of `p`, so an out-of-range
    /// probability in one config knob can neither misbehave nor shift
    /// the stream seen by later draws.
    pub fn chance(&mut self, p: f64) -> bool {
        // NaN fails both clamp comparisons, so map it explicitly to 0
        // (never fire) rather than letting `f64() < NaN` decide.
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        // f64() is in [0, 1), so p == 1.0 always fires.
        self.f64() < p
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A Zipfian (power-law) rank distribution over `[0, n)`, after the
/// Gray et al. generator popularized by YCSB: rank 0 is the hottest
/// key, and popularity falls off as `1/rank^theta`. The server-shaped
/// workload family uses it to model skewed request keys; the entire
/// stream is a pure function of the seed driving the [`Rng64`], so
/// layouts (and golden cycle counts) cannot drift.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds the distribution over `[0, n)` with skew `theta` in
    /// `(0, 1)` (0.99 ≈ YCSB's default hot-key skew; smaller is
    /// flatter).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "empty key space");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        // Sequential sum keeps the value platform-deterministic.
        let mut zetan = 0.0f64;
        for i in 1..=n {
            zetan += 1.0 / (i as f64).powf(theta);
        }
        let zeta2 = 1.0 + 1.0 / 2f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta }
    }

    /// Draws the next rank; rank 0 is the most popular.
    pub fn next(&self, rng: &mut Rng64) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_splitmix64_stream() {
        // First three outputs of splitmix64.c with seed 1234567.
        let mut r = Rng64::new(1234567);
        assert_eq!(r.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(r.next_u64(), 0x2c73_f084_5854_0fa5);
        assert_eq!(r.next_u64(), 0x883e_bce5_a3f2_7c77);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let u = r.range_u64(100, 200);
            assert!((100..200).contains(&u));
            let i = r.range_i64(-50, 50);
            assert!((-50..50).contains(&i));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(99);
        let mut v: Vec<u64> = (0..256).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..256).collect::<Vec<u64>>());
        assert_ne!(v, sorted, "a 256-element shuffle virtually never yields identity");
    }

    #[test]
    fn chance_clamps_p_and_defines_nan() {
        let mut r = Rng64::new(11);
        for _ in 0..64 {
            assert!(r.chance(1.0), "p >= 1 must always fire (f64() is in [0, 1))");
            assert!(r.chance(2.5), "p above the clamp range behaves like 1");
            assert!(!r.chance(0.0), "p <= 0 must never fire");
            assert!(!r.chance(-3.0), "p below the clamp range behaves like 0");
            assert!(!r.chance(f64::NAN), "NaN is defined as never-fire");
        }
    }

    #[test]
    fn chance_consumes_exactly_one_draw_regardless_of_p() {
        // Out-of-range probabilities must not desynchronize the
        // stream: a generator that took a shortcut for p <= 0 or
        // p >= 1 would shift every draw after the call.
        let mut a = Rng64::new(77);
        let mut b = Rng64::new(77);
        for p in [0.5, -1.0, 0.0, 1.0, 9.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let _ = a.chance(p);
            let _ = b.f64();
            assert_eq!(a.next_u64(), b.next_u64(), "chance({p}) must consume one draw");
        }
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(10_000, 0.9);
        let mut rng = Rng64::new(31337);
        let mut hot = 0usize;
        for _ in 0..20_000 {
            let r = z.next(&mut rng);
            assert!(r < 10_000);
            if r < 10 {
                hot += 1;
            }
        }
        // Under 0.9 skew the top-10 ranks draw a large share; a uniform
        // distribution would put ~20 draws there.
        assert!(hot > 2_000, "top-10 ranks got only {hot}/20000 draws");
    }

    #[test]
    fn zipfian_stream_is_a_pure_function_of_the_seed() {
        let z = Zipfian::new(1 << 16, 0.8);
        let mut a = Rng64::new(77);
        let mut b = Rng64::new(77);
        let sa: Vec<u64> = (0..512).map(|_| z.next(&mut a)).collect();
        let sb: Vec<u64> = (0..512).map(|_| z.next(&mut b)).collect();
        assert_eq!(sa, sb);
        let mut c = Rng64::new(78);
        let sc: Vec<u64> = (0..512).map(|_| z.next(&mut c)).collect();
        assert_ne!(sa, sc, "different seeds must give different streams");
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng64::new(5);
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
