//! The paper's motivating micro-kernels (§1): matrix multiplication
//! (Fig. 1), DAXPY (Fig. 2), Gaussian elimination (§1.2) and `memcpy`.

use compiler::{LoopSpec, RefSpec};

use crate::builder::WorkloadBuilder;
use crate::{Workload, WorkloadKind};

/// Fig. 1's matrix multiply: the innermost k-loop walks one row of `B`
/// (unit stride) and one column of `C` (stride `n` elements). The
/// arrays are "passed as parameters", so the static compiler must treat
/// them as aliased and cannot prefetch (exactly the ECC-vs-ORC story of
/// §1.1) — runtime prefetching does not care.
pub fn matrix_multiply(n: u64, outer_iters: u64) -> Workload {
    let mut b = WorkloadBuilder::new("matrix_multiply", 0x3a7);
    let bm = b.array(n * n, 8, true);
    let cm = b.array(n * n, 8, true);
    let inner = b.kernel.add_loop(
        LoopSpec::new(
            "kloop",
            n,
            vec![
                RefSpec::Direct { array: bm, stride_elems: 1, write: false, alias_ambiguous: true },
                RefSpec::Direct {
                    array: cm,
                    stride_elems: n as i64,
                    write: false,
                    alias_ambiguous: true,
                },
            ],
        )
        .with_compute(0, 1),
    );
    b.kernel.add_phase(outer_iters.max(1), vec![inner]);
    Workload::from_builder(b, "matmul", WorkloadKind::Fp)
}

/// Fig. 2's DAXPY: `y[i] += a * x[i]`. Two loads, one store and one
/// `fma` per iteration — already at the "two bundles per cycle" limit,
/// which is why prefetch scheduling into free slots matters (§1.3).
pub fn daxpy(n: u64, outer_iters: u64) -> Workload {
    let mut b = WorkloadBuilder::new("daxpy", 0xdaf);
    let x = b.array(n + 32, 8, true);
    let y = b.array(n + 32, 8, true);
    let l = b.kernel.add_loop(
        LoopSpec::new(
            "daxpy",
            n,
            vec![
                RefSpec::Direct { array: x, stride_elems: 1, write: false, alias_ambiguous: false },
                RefSpec::Direct { array: y, stride_elems: 1, write: false, alias_ambiguous: false },
                RefSpec::Direct { array: y, stride_elems: 1, write: true, alias_ambiguous: false },
            ],
        )
        .with_compute(0, 1),
    );
    b.kernel.add_phase(outer_iters.max(1), vec![l]);
    Workload::from_builder(b, "daxpy", WorkloadKind::Fp)
}

/// §1.2's Gaussian elimination: early passes sweep a sub-matrix too
/// large for the caches (heavy misses); late passes fit and hit. One
/// static binary cannot prefetch correctly for both ends — a runtime
/// system can adapt per phase.
pub fn gaussian(n_big: u64, n_small: u64, outer_iters: u64) -> Workload {
    let mut b = WorkloadBuilder::new("gaussian", 0x9a55);
    let m = b.array(n_big + 64, 8, true);
    let early = b.kernel.add_loop(
        LoopSpec::new(
            "eliminate_big",
            n_big / 8,
            vec![RefSpec::Direct { array: m, stride_elems: 8, write: false, alias_ambiguous: false }],
        )
        .with_compute(0, 2),
    );
    let late = b.kernel.add_loop(
        LoopSpec::new(
            "eliminate_small",
            n_small / 8,
            vec![RefSpec::Direct { array: m, stride_elems: 8, write: false, alias_ambiguous: false }],
        )
        .with_compute(0, 2),
    );
    b.kernel.add_phase(outer_iters.max(1), vec![early]);
    b.kernel.add_phase((outer_iters * (n_big / n_small).max(1)).max(1), vec![late]);
    Workload::from_builder(b, "gaussian", WorkloadKind::Fp)
}

/// §1.2's `memcpy`: a load/store streaming loop whose cache behaviour
/// depends entirely on the caller's buffer sizes.
pub fn memcpy(bytes: u64, outer_iters: u64) -> Workload {
    let mut b = WorkloadBuilder::new("memcpy", 0x3e3c);
    let words = bytes / 8;
    let src = b.array(words + 32, 8, false);
    let dst = b.array(words + 32, 8, false);
    let l = b.kernel.add_loop(
        LoopSpec::new(
            "copy",
            words,
            vec![
                RefSpec::Direct { array: src, stride_elems: 1, write: false, alias_ambiguous: false },
                RefSpec::Direct { array: dst, stride_elems: 1, write: true, alias_ambiguous: false },
            ],
        )
        .with_compute(1, 0),
    );
    b.kernel.add_phase(outer_iters.max(1), vec![l]);
    Workload::from_builder(b, "memcpy", WorkloadKind::Int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::{compile, CompileOptions};
    use sim::MachineConfig;

    #[test]
    fn micro_kernels_build_and_run() {
        for w in [
            matrix_multiply(64, 4),
            daxpy(4096, 4),
            gaussian(32_768, 2_048, 2),
            memcpy(64 << 10, 3),
        ] {
            assert!(w.kernel.validate().is_ok(), "{}", w.name);
            let bin = compile(&w.kernel, &CompileOptions::o2()).unwrap();
            let mut m = w.prepare(&bin, MachineConfig::default());
            m.run_to_halt();
            assert!(m.is_halted(), "{} must halt", w.name);
            assert!(m.retired() > 1000);
        }
    }

    #[test]
    fn matmul_is_alias_ambiguous_for_static_prefetch() {
        let w = matrix_multiply(128, 2);
        let o3 = compile(&w.kernel, &CompileOptions::o3()).unwrap();
        assert_eq!(o3.prefetched_loops, 0, "ORC cannot prove the params unaliased");
    }

    #[test]
    fn daxpy_gets_static_prefetch_at_o3() {
        let w = daxpy(64 << 10, 2);
        let o3 = compile(&w.kernel, &CompileOptions::o3()).unwrap();
        assert_eq!(o3.prefetched_loops, 1);
    }
}
