//! Scenario families beyond the paper's 17 SPEC-shaped kernels.
//!
//! The paper's evaluation is all single-phase batch loops — exactly the
//! shapes ADORE's direct/indirect/chase detector already handles. These
//! three families stress what that evaluation never shows the optimizer:
//!
//! * [`server`] — a request-serving loop drawing keys from a Zipfian
//!   distribution over a hash table plus linked freelists, with load
//!   spikes (a burst phase with a different loop mix) forcing phase
//!   churn;
//! * [`graph`] — graph analytics (BFS frontier expansion + pagerank
//!   gathers over a CSR layout) dominated by irregular indirect misses;
//! * [`gc`] — an allocator/GC-style traversal whose mark loop reads
//!   payloads through *jump pointers* (the dependence-based prefetch
//!   shape of the Pointer-Chase Prefetcher literature), plus a sweep
//!   over a shuffled freelist.
//!
//! Every family clears the same correctness gauntlet as the suite:
//! blessed golden cycles on both exec paths, differential-oracle
//! agreement, and byte-identical reports across `--jobs`.

use compiler::{LoopSpec, RefSpec};

use crate::builder::WorkloadBuilder;
use crate::{Workload, WorkloadKind};

fn direct(array: usize, stride_elems: i64) -> RefSpec {
    RefSpec::Direct { array, stride_elems, write: false, alias_ambiguous: false }
}

fn store(array: usize, stride_elems: i64) -> RefSpec {
    RefSpec::Direct { array, stride_elems, write: true, alias_ambiguous: false }
}

/// A cache-resident compute loop (same Amdahl knob as the suite).
fn ballast(b: &mut WorkloadBuilder, name: &str, trip: u64) -> usize {
    b.kernel.add_loop(LoopSpec::new(name, trip, vec![]).with_compute(6, 0))
}

/// A cold static-prefetch-bait loop (see `suite::cold_loop`).
fn cold_loop(b: &mut WorkloadBuilder, name: &str) -> usize {
    let small = b.array(6 << 10, 8, true); // 48 KB, L2-resident
    b.kernel.add_loop(
        LoopSpec::new(name, 2200, vec![direct(small, 1), direct(small, 1)])
            .with_compute(2, 0)
            .with_fragments(2),
    )
}

/// Finishes a family workload, marking every loop with memory
/// references *resumable* (streaming over the footprint, as the suite
/// does).
fn finish(mut b: WorkloadBuilder, name: &'static str, kind: WorkloadKind) -> Workload {
    for l in &mut b.kernel.loops {
        if !l.refs.is_empty() {
            l.resume = true;
        }
    }
    Workload::from_builder(b, name, kind)
}

fn reps(scale: f64, base: u64) -> u64 {
    ((base as f64 * scale) as u64).max(2)
}

/// Builds the three scenario families at the given scale.
pub fn families(scale: f64) -> Vec<Workload> {
    vec![server(scale), graph(scale), gc(scale)]
}

/// Request-serving loop: Zipfian key lookups into an 8 MB hash table
/// plus a linked connection freelist, interrupted by a load-spike phase
/// with a flatter key mix and a log-append store stream. The three
/// phases (steady → spike → steady) force the phase detector through
/// real churn: the spike invalidates the steady profile and the return
/// to steady state must be re-detected and re-optimized.
fn server(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("srv.zipf", 0x5e1f);
    let table = b.array(1 << 20, 8, false); // 8 MB hash table
    let keys = b.zipf_index_array(1 << 18, 1 << 20, 0.85); // hot-key request mix
    let burst_keys = b.zipf_index_array(1 << 18, 1 << 20, 0.55); // flatter spike mix
    let log = b.array(1 << 19, 8, false); // 4 MB append log
    let conns = b.list(24_000, 128, 8); // ~3 MB connection freelist
    let lookup = b.kernel.add_loop(
        LoopSpec::new(
            "req_lookup",
            500,
            vec![RefSpec::Indirect { index_array: keys, data_array: table }],
        )
        .with_compute(4, 0),
    );
    let pop = b.kernel.add_loop(
        LoopSpec::new("conn_pop", 400, vec![RefSpec::PointerChase { list: conns }])
            .with_compute(3, 0),
    );
    let burst = b.kernel.add_loop(
        LoopSpec::new(
            "req_burst",
            900,
            vec![
                RefSpec::Indirect { index_array: burst_keys, data_array: table },
                RefSpec::Indirect { index_array: keys, data_array: table },
            ],
        )
        .with_compute(2, 0)
        .with_batched_uses(),
    );
    let append = b.kernel.add_loop(
        LoopSpec::new("log_append", 400, vec![store(log, 16)]).with_compute(2, 0),
    );
    let bal1 = ballast(&mut b, "parse_request", 30_000);
    let bal2 = ballast(&mut b, "build_response", 30_000);
    let cold0 = cold_loop(&mut b, "server_cold0");
    let cold0b = cold_loop(&mut b, "server_cold0b");
    let cold1 = cold_loop(&mut b, "server_cold1");
    let cold1b = cold_loop(&mut b, "server_cold1b");
    b.kernel.add_phase(reps(scale, 110), vec![lookup, pop, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 60), vec![burst, append, bal2, cold1, cold1b]);
    b.kernel.add_phase(reps(scale, 110), vec![lookup, pop, bal1, cold0, cold0b]);
    finish(b, "server", WorkloadKind::Int)
}

/// Graph analytics over a CSR layout: a BFS phase gathering scattered
/// visited flags through the edge-target array, then a pagerank phase
/// gathering f64 ranks through the same irregular indices. Both phases
/// are dominated by indirect misses whose index stream is sequential —
/// the shape ADORE's indirect-array prefetching targets.
fn graph(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("graph.csr", 0xc5a);
    let row_ptr = b.array(1 << 18, 4, false); // CSR row offsets
    let col_idx = b.index_array(1 << 19, 1 << 19); // edge targets, uniform
    let visited = b.array(1 << 19, 4, false); // BFS visited flags
    let ranks = b.array(1 << 19, 8, true); // 4 MB f64 ranks
    let contrib = b.array(1 << 19, 8, true);
    let bfs = b.kernel.add_loop(
        LoopSpec::new(
            "bfs_frontier",
            500,
            vec![direct(row_ptr, 2), RefSpec::Indirect { index_array: col_idx, data_array: visited }],
        )
        .with_compute(3, 0),
    );
    let gather = b.kernel.add_loop(
        LoopSpec::new(
            "pagerank_gather",
            500,
            vec![RefSpec::Indirect { index_array: col_idx, data_array: ranks }],
        )
        .with_compute(1, 3),
    );
    let update = b.kernel.add_loop(
        LoopSpec::new("rank_update", 400, vec![direct(ranks, 24), store(contrib, 24)])
            .with_compute(1, 2),
    );
    let bal1 = ballast(&mut b, "frontier_queue", 30_000);
    let bal2 = ballast(&mut b, "dangling_sum", 30_000);
    let cold0 = cold_loop(&mut b, "graph_cold0");
    let cold0b = cold_loop(&mut b, "graph_cold0b");
    let cold1 = cold_loop(&mut b, "graph_cold1");
    let cold1b = cold_loop(&mut b, "graph_cold1b");
    b.kernel.add_phase(reps(scale, 100), vec![bfs, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 100), vec![gather, update, bal2, cold1, cold1b]);
    finish(b, "graph", WorkloadKind::Fp)
}

/// Allocator/GC-style traversal: the mark loop walks a ~4 MB object
/// graph reading each object's payload through a *jump pointer* stored
/// eight hops ahead in traversal order ([`RefSpec::JumpPointer`]) — the
/// dependence-based shape plain induction-pointer extrapolation cannot
/// cover — and the sweep phase chases a heavily shuffled freelist while
/// scrubbing a card table.
fn gc(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("gc.sweep", 0x6c5);
    let heap = b.jump_list(32_000, 128, 12, 8); // ~4 MB object graph
    let free = b.list(20_000, 64, 4); // shuffled freelist
    let cards = b.array(1 << 18, 4, false); // 1 MB card table
    let mark = b.kernel.add_loop(
        LoopSpec::new(
            "mark_objects",
            600,
            vec![RefSpec::JumpPointer { list: heap, jump_offset: 16 }],
        )
        .with_compute(4, 0),
    );
    let sweep = b.kernel.add_loop(
        LoopSpec::new("sweep_freelist", 500, vec![RefSpec::PointerChase { list: free }])
            .with_compute(3, 0),
    );
    let scrub = b.kernel.add_loop(
        LoopSpec::new("card_scan", 300, vec![direct(cards, 32), store(cards, 32)])
            .with_compute(2, 0),
    );
    let bal1 = ballast(&mut b, "write_barrier", 30_000);
    let bal2 = ballast(&mut b, "finalizers", 30_000);
    let cold0 = cold_loop(&mut b, "gc_cold0");
    let cold0b = cold_loop(&mut b, "gc_cold0b");
    let cold1 = cold_loop(&mut b, "gc_cold1");
    let cold1b = cold_loop(&mut b, "gc_cold1b");
    b.kernel.add_phase(reps(scale, 120), vec![mark, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 120), vec![sweep, scrub, bal2, cold1, cold1b]);
    finish(b, "gc", WorkloadKind::Int)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_build_validate_and_stay_disjoint_from_the_suite() {
        let fams = families(0.1);
        assert_eq!(fams.len(), 3);
        let suite_names: std::collections::HashSet<_> =
            crate::suite(0.1).iter().map(|w| w.name).collect();
        for w in &fams {
            assert!(w.kernel.validate().is_ok(), "{} must validate", w.name);
            assert!(w.arena_bytes > 0);
            assert!(!suite_names.contains(w.name), "{} collides with the suite", w.name);
        }
        let names: std::collections::HashSet<_> = fams.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn families_match_their_scenario_shapes() {
        let fams = families(0.1);
        let by = |n: &str| fams.iter().find(|w| w.name == n).unwrap();
        // server: 3 phases (steady → spike → steady) with an indirect
        // Zipf lookup and a freelist chase.
        let server = by("server");
        assert_eq!(server.kernel.phases.len(), 3);
        assert!(server.kernel.lists.len() >= 1);
        assert!(server.kernel.loops.iter().any(|l| l.name == "req_burst"));
        // graph: indirect-dominated, two phases.
        let graph = by("graph");
        assert_eq!(graph.kernel.phases.len(), 2);
        let indirects = graph
            .kernel
            .loops
            .iter()
            .flat_map(|l| &l.refs)
            .filter(|r| matches!(r, RefSpec::Indirect { .. }))
            .count();
        assert!(indirects >= 2);
        // gc: the mark loop reads through a jump pointer.
        let gc = by("gc");
        assert!(gc
            .kernel
            .loops
            .iter()
            .flat_map(|l| &l.refs)
            .any(|r| matches!(r, RefSpec::JumpPointer { .. })));
    }

    #[test]
    fn family_lists_are_circular_and_jump_pointers_resolve() {
        for w in families(0.05) {
            let bin = compiler::compile(&w.kernel, &compiler::CompileOptions::o2()).unwrap();
            let m = w.prepare(&bin, sim::MachineConfig::default());
            for l in &w.kernel.lists {
                let mut p = l.head;
                for _ in 0..l.nodes {
                    p = m.mem().read(p + l.next_offset, 8);
                    assert!(p != 0, "{}: broken list", w.name);
                }
                assert_eq!(p, l.head, "{}: list not circular", w.name);
            }
            // Every jump pointer must land on a live node of its list.
            for loop_spec in &w.kernel.loops {
                for r in &loop_spec.refs {
                    if let RefSpec::JumpPointer { list, jump_offset } = *r {
                        let l = &w.kernel.lists[list];
                        let mut p = l.head;
                        for _ in 0..l.nodes.min(256) {
                            let jump = m.mem().read(p + jump_offset, 8);
                            assert!(jump != 0, "{}: null jump pointer", w.name);
                            p = m.mem().read(p + l.next_offset, 8);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn families_run_to_halt_on_both_exec_paths() {
        for w in families(0.02) {
            let bin = compiler::compile(&w.kernel, &compiler::CompileOptions::o2()).unwrap();
            for path in [sim::ExecPath::Fast, sim::ExecPath::Reference] {
                let mut config = sim::MachineConfig::default();
                config.exec_path = path;
                let mut m = w.prepare(&bin, config);
                m.run_to_halt();
                assert!(m.is_halted(), "{} must halt on {path}", w.name);
            }
        }
    }
}
