//! The 17 SPEC2000-shaped synthetic workloads.
//!
//! Each workload mimics the memory behaviour the paper attributes to
//! its SPEC counterpart (§4.3 and Table 2): which reference patterns
//! dominate, how many stable phases appear, whether the address
//! computation is analyzable, whether misses overlap, and roughly what
//! fraction of run time the delinquent loops account for (controlled by
//! cache-resident *ballast* loops sharing each phase — the Amdahl knob
//! that pins the end-to-end speedup near the paper's bar heights).
//! Trip counts are kept small enough that a phase repetition is much
//! shorter than a profile window, so the phase detector sees steady
//! statistics.

use compiler::{AddrComplexity, LoopSpec, RefSpec};

use crate::builder::WorkloadBuilder;
use crate::{Workload, WorkloadKind};

fn direct(array: usize, stride_elems: i64) -> RefSpec {
    RefSpec::Direct { array, stride_elems, write: false, alias_ambiguous: false }
}

fn direct_aliased(array: usize, stride_elems: i64) -> RefSpec {
    RefSpec::Direct { array, stride_elems, write: false, alias_ambiguous: true }
}

fn store(array: usize, stride_elems: i64) -> RefSpec {
    RefSpec::Direct { array, stride_elems, write: true, alias_ambiguous: false }
}

/// A cache-resident compute loop: hot code, no qualifying misses. Its
/// trip count sets how much of the phase the missy loops account for.
fn ballast(b: &mut WorkloadBuilder, name: &str, trip: u64) -> usize {
    b.kernel.add_loop(LoopSpec::new(name, trip, vec![]).with_compute(6, 0))
}

/// A *cold* strided loop: its 48 KB footprint exceeds the static
/// prefetcher's locality cutoff, so ORC's `O3` schedules prefetches for
/// it — yet at runtime it stays L2-resident and never produces a
/// qualifying miss. These are exactly the loops the paper's
/// profile-guided pass filters out (Table 1: 83 % of scheduled loops
/// carry no delinquent load).
fn cold_loop(b: &mut WorkloadBuilder, name: &str) -> usize {
    // Floating-point data: FP loads bypass the L1D on Itanium 2, so an
    // L2-resident walk gains nothing from prefetching — the scheduled
    // prefetches are genuinely useless, as the paper describes.
    let small = b.array(6 << 10, 8, true); // 48 KB, L2-resident
    // Two fragments: still a static-prefetch candidate, but no modulo
    // scheduler will pipeline a multi-block body, so `O2`-with-SWP does
    // not accelerate these (they are background code, not kernels).
    b.kernel.add_loop(
        LoopSpec::new(name, 2200, vec![direct(small, 1), direct(small, 1)])
            .with_compute(2, 0)
            .with_fragments(2),
    )
}

/// Finishes a suite workload, marking every loop with memory references
/// *resumable*: real benchmarks stream over their working sets instead
/// of re-touching one cache-resident slice per outer iteration.
fn finish(mut b: WorkloadBuilder, name: &'static str, kind: WorkloadKind) -> Workload {
    for l in &mut b.kernel.loops {
        if !l.refs.is_empty() {
            l.resume = true;
        }
    }
    Workload::from_builder(b, name, kind)
}

/// Builds every workload in the suite at the given scale (1.0 = the
/// default run length; tests use smaller scales).
pub fn suite(scale: f64) -> Vec<Workload> {
    vec![
        bzip2(scale),
        gzip(scale),
        mcf(scale),
        vpr(scale),
        parser(scale),
        gap(scale),
        vortex(scale),
        gcc(scale),
        ammp(scale),
        art(scale),
        applu(scale),
        equake(scale),
        facerec(scale),
        fma3d(scale),
        lucas(scale),
        mesa(scale),
        swim(scale),
    ]
}

fn reps(scale: f64, base: u64) -> u64 {
    ((base as f64 * scale) as u64).max(2)
}

/// 256.bzip2 — integer sort/Huffman phases: big strided integer arrays,
/// then an indirect (pointer-array) phase. Gains ~10 % in the paper.
fn bzip2(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("256.bzip2", 0x1b21);
    let buf = b.array(1 << 20, 4, false); // 4 MB
    let l1 = b.kernel.add_loop(
        LoopSpec::new("sort_sweep", 250, vec![direct(buf, 64), direct(buf, 96), direct(buf, 128)])
            .with_compute(3, 0)
            .with_batched_uses(),
    );
    let l2 = b.kernel.add_loop(
        LoopSpec::new("sort_merge", 200, vec![direct(buf, 80), store(buf, 80)]).with_compute(2, 0),
    );
    let bal1 = ballast(&mut b, "huffman_tables", 42_000);
    let idx = b.index_array(1 << 19, 1 << 20);
    let data = b.array(1 << 20, 4, false);
    let l3 = b.kernel.add_loop(
        LoopSpec::new("unbzip", 250, vec![RefSpec::Indirect { index_array: idx, data_array: data }])
            .with_compute(2, 0),
    );
    let bal2 = ballast(&mut b, "crc_pass", 42_000);
    let cold0 = cold_loop(&mut b, "bzip2_cold0");
    let cold0b = cold_loop(&mut b, "bzip2_cold0b");
    let cold1 = cold_loop(&mut b, "bzip2_cold1");
    let cold1b = cold_loop(&mut b, "bzip2_cold1b");
    b.kernel.add_phase(reps(scale, 100), vec![l1, l2, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 120), vec![l3, bal2, cold1, cold1b]);
    finish(b, "bzip2", WorkloadKind::Int)
}

/// 164.gzip — runs too briefly for ADORE to find a stable phase.
fn gzip(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("164.gzip", 0x6219);
    let buf = b.array(1 << 19, 4, false);
    let l = b.kernel.add_loop(
        LoopSpec::new("deflate", 2000, vec![direct(buf, 32), direct(buf, 48)]).with_compute(4, 0),
    );
    let bal = ballast(&mut b, "window_scan", 20_000);
    b.kernel.add_phase(reps(scale, 2), vec![l, bal]);
    finish(b, "gzip", WorkloadKind::Int)
}

/// 181.mcf — the pointer-chasing poster child: network-simplex arcs
/// allocated mostly in traversal order (long regular runs), so
/// induction-pointer prefetching pays off hugely (~55 % in the paper).
fn mcf(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("181.mcf", 0x3cf);
    let arcs = b.list(48_000, 192, 64); // ~9 MB, long regular runs
    let nodes = b.list(32_000, 128, 48); // ~4 MB
    let chase1 = b.kernel.add_loop(
        LoopSpec::new("arc_scan", 700, vec![RefSpec::PointerChase { list: arcs }])
            .with_compute(6, 0),
    );
    let chase2 = b.kernel.add_loop(
        LoopSpec::new("node_update", 700, vec![RefSpec::PointerChase { list: nodes }])
            .with_compute(5, 0),
    );
    let bal1 = ballast(&mut b, "price_out", 26_000);
    let bal2 = ballast(&mut b, "basket", 26_000);
    let cold0 = cold_loop(&mut b, "mcf_cold0");
    let cold0b = cold_loop(&mut b, "mcf_cold0b");
    let cold1 = cold_loop(&mut b, "mcf_cold1");
    let cold1b = cold_loop(&mut b, "mcf_cold1b");
    b.kernel.add_phase(reps(scale, 180), vec![chase1, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 180), vec![chase2, bal2, cold1, cold1b]);
    finish(b, "mcf", WorkloadKind::Int)
}

/// 175.vpr — placement/routing with fp↔int conversions in the address
/// computation of the dominant loops: the slicer cannot recover their
/// strides (§4.3), and the one analyzable loop barely misses.
fn vpr(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("175.vpr", 0x479);
    let grid = b.array(1 << 20, 8, false); // 8 MB
    let local = b.array(80 << 10, 8, false); // 640 KB: mostly L3 hits
    let route = b.kernel.add_loop(
        LoopSpec::new("route_cost", 400, vec![direct(grid, 128), direct(grid, 160)])
            .with_compute(4, 2)
            .with_complexity(AddrComplexity::FpConversion),
    );
    let tidy = b.kernel.add_loop(
        LoopSpec::new("tidy", 120, vec![direct(local, 8)]).with_compute(3, 0),
    );
    let bal = ballast(&mut b, "swap_eval", 30_000);
    let cold0 = cold_loop(&mut b, "vpr_cold0");
    let cold0b = cold_loop(&mut b, "vpr_cold0b");
    b.kernel.add_phase(reps(scale, 170), vec![route, tidy, bal, cold0, cold0b]);
    finish(b, "vpr", WorkloadKind::Int)
}

/// 197.parser — linked-dictionary walks over heavily shuffled,
/// L3-resident lists: induction-pointer prefetching applies but the
/// extrapolation is usually wrong, so the gain is small.
fn parser(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("197.parser", 0x9a55e5);
    let dict = b.list(8_000, 128, 4); // 1 MB, short runs
    let exprs = b.list(6_000, 128, 4);
    let c1 = b.kernel.add_loop(
        LoopSpec::new("dict_walk", 1000, vec![RefSpec::PointerChase { list: dict }])
            .with_compute(4, 0),
    );
    let c2 = b.kernel.add_loop(
        LoopSpec::new("expr_walk", 800, vec![RefSpec::PointerChase { list: exprs }])
            .with_compute(4, 0),
    );
    let bal = ballast(&mut b, "hash_words", 420_000);
    let cold0 = cold_loop(&mut b, "parser_cold0");
    let cold0b = cold_loop(&mut b, "parser_cold0b");
    b.kernel.add_phase(reps(scale, 70), vec![c1, c2, bal, cold0, cold0b]);
    finish(b, "parser", WorkloadKind::Int)
}

/// 254.gap — group theory: the dominant addresses come out of helper
/// calls (trace stop-points), so the big loops never form loop traces;
/// a few minor direct loops get prefetched with little effect.
fn gap(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("254.gap", 0x9a9);
    let heap = b.array(1 << 20, 8, false); // 8 MB
    let bags = b.array(96 << 10, 8, false); // 768 KB: L3 hits
    let main1 = b.kernel.add_loop(
        LoopSpec::new("collect", 400, vec![direct(heap, 96), direct(heap, 128)])
            .with_compute(4, 0)
            .with_complexity(AddrComplexity::Call),
    );
    let minor1 = b.kernel.add_loop(
        LoopSpec::new("scan_bags", 400, vec![direct(bags, 1)]).with_compute(3, 0),
    );
    let main2 = b.kernel.add_loop(
        LoopSpec::new("permute", 400, vec![direct(heap, 112)])
            .with_compute(4, 0)
            .with_complexity(AddrComplexity::Call),
    );
    let minor2 = b.kernel.add_loop(
        LoopSpec::new("unpack", 400, vec![direct(bags, 2)]).with_compute(2, 0),
    );
    let minor3 = b.kernel.add_loop(
        LoopSpec::new("copy_objs", 400, vec![direct(bags, 1)]).with_compute(2, 0),
    );
    let bal1 = ballast(&mut b, "small_mul", 25_000);
    let bal2 = ballast(&mut b, "vec_ops", 25_000);
    let bal3 = ballast(&mut b, "gc_mark", 25_000);
    let cold0 = cold_loop(&mut b, "gap_cold0");
    let cold0b = cold_loop(&mut b, "gap_cold0b");
    let cold1 = cold_loop(&mut b, "gap_cold1");
    let cold1b = cold_loop(&mut b, "gap_cold1b");
    let cold2 = cold_loop(&mut b, "gap_cold2");
    let cold2b = cold_loop(&mut b, "gap_cold2b");
    b.kernel.add_phase(reps(scale, 120), vec![main1, minor1, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 120), vec![main2, minor2, bal2, cold1, cold1b]);
    b.kernel.add_phase(reps(scale, 100), vec![main1, minor3, bal3, cold2, cold2b]);
    finish(b, "gap", WorkloadKind::Int)
}

/// 255.vortex — an object database whose hot code is scattered in
/// fragments; data is mostly cache-resident with a thin stream of L3
/// misses. The ~2 % gain comes partly from the I-cache locality of the
/// straightened trace (§4.3).
fn vortex(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("255.vortex", 0x40e7e);
    let objs = b.array(96 << 10, 8, false); // 768 KB: L3 hits
    let attrs = b.array(64 << 10, 8, false);
    let l1 = b.kernel.add_loop(
        LoopSpec::new("obj_lookup", 500, vec![direct(objs, 17), direct(attrs, 13)])
            .with_compute(6, 0)
            .with_fragments(6),
    );
    let l2 = b.kernel.add_loop(
        LoopSpec::new("obj_commit", 500, vec![direct(objs, 23)])
            .with_compute(5, 0)
            .with_fragments(5),
    );
    let bal1 = ballast(&mut b, "txn_bookkeeping", 60_000);
    let bal2 = ballast(&mut b, "index_walk", 60_000);
    let cold0 = cold_loop(&mut b, "vortex_cold0");
    let cold0b = cold_loop(&mut b, "vortex_cold0b");
    let cold1 = cold_loop(&mut b, "vortex_cold1");
    let cold1b = cold_loop(&mut b, "vortex_cold1b");
    b.kernel.add_phase(reps(scale, 110), vec![l1, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 110), vec![l2, bal2, cold1, cold1b]);
    finish(b, "vortex", WorkloadKind::Int)
}

/// 176.gcc — a large instruction footprint with misses spread thin and
/// amortized over long lines: the couple of streams ADORE does prefetch
/// buy almost nothing, so sampling + patch overhead and the extra
/// inserted bundles leave a small net loss (−3.8 % in the paper).
fn gcc(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("176.gcc", 0x6cc);
    // RTL expression nodes: allocation order bears no relation to
    // traversal order (fully shuffled), so induction-pointer
    // extrapolation lands on wrong (often unmapped) addresses and the
    // inserted chase prefetch buys nothing.
    let rtl = b.list(48_000, 128, 1); // 6 MB, memory-resident
    let sym = b.array(40 << 10, 8, false); // 320 KB: L3-resident
    let dfa = b.array(40 << 10, 8, false);
    let l1 = b.kernel.add_loop(
        LoopSpec::new("rtl_pass", 620, vec![RefSpec::PointerChase { list: rtl }])
            .with_compute(5, 0)
            .with_code_bloat(6),
    );
    let l2 = b.kernel.add_loop(
        LoopSpec::new("sym_pass", 80, vec![direct(sym, 8)]).with_compute(6, 0),
    );
    let l3 = b.kernel.add_loop(
        LoopSpec::new("flow_pass", 80, vec![direct(dfa, 8)]).with_compute(6, 0),
    );
    let bal1 = ballast(&mut b, "parse_tokens", 45_000);
    let bal2 = ballast(&mut b, "emit_asm", 45_000);
    let cold0 = cold_loop(&mut b, "gcc_cold0");
    let cold0b = cold_loop(&mut b, "gcc_cold0b");
    let cold1 = cold_loop(&mut b, "gcc_cold1");
    let cold1b = cold_loop(&mut b, "gcc_cold1b");
    b.kernel.add_phase(reps(scale, 110), vec![l1, l2, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 110), vec![l1, l3, bal2, cold1, cold1b]);
    finish(b, "gcc", WorkloadKind::Int)
}

/// 188.ammp — molecular dynamics mixing indirect neighbour-list access
/// with pointer-chased atom lists over three phases; moderate runs make
/// the chase prefetch partially effective.
fn ammp(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("188.ammp", 0xa339);
    let atoms = b.list(16_000, 192, 16); // ~3 MB
    let nbr_idx = b.index_array(1 << 18, 1 << 19);
    let coords = b.array(1 << 19, 8, true); // 4 MB fp
    let pairs = b.list(16_000, 128, 16);
    let chase1 = b.kernel.add_loop(
        LoopSpec::new("atom_walk", 400, vec![RefSpec::PointerChase { list: atoms }])
            .with_compute(3, 2),
    );
    let ind = b.kernel.add_loop(
        LoopSpec::new(
            "nonbon",
            400,
            vec![RefSpec::Indirect { index_array: nbr_idx, data_array: coords }],
        )
        .with_compute(2, 3),
    );
    let chase2 = b.kernel.add_loop(
        LoopSpec::new("pair_walk", 400, vec![RefSpec::PointerChase { list: pairs }])
            .with_compute(3, 1),
    );
    let bal1 = ballast(&mut b, "bond_forces", 110_000);
    let bal2 = ballast(&mut b, "integrate", 110_000);
    let bal3 = ballast(&mut b, "torsions", 110_000);
    let cold0 = cold_loop(&mut b, "ammp_cold0");
    let cold0b = cold_loop(&mut b, "ammp_cold0b");
    let cold1 = cold_loop(&mut b, "ammp_cold1");
    let cold1b = cold_loop(&mut b, "ammp_cold1b");
    let cold2 = cold_loop(&mut b, "ammp_cold2");
    let cold2b = cold_loop(&mut b, "ammp_cold2b");
    b.kernel.add_phase(reps(scale, 60), vec![chase1, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 60), vec![ind, bal2, cold1, cold1b]);
    b.kernel.add_phase(reps(scale, 60), vec![chase2, bal3, cold2, cold2b]);
    finish(b, "ammp", WorkloadKind::Fp)
}

/// 179.art — neural-network image recognition: two clear phases of
/// strided f64 scans plus indirect weight gathers; the second-biggest
/// win in the paper (Fig. 8 shows CPI halving).
fn art(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("179.art", 0xa47);
    let f1 = b.array(1 << 20, 8, true); // 8 MB f64
    let wt = b.array(1 << 20, 8, true);
    let idx = b.index_array(1 << 19, 1 << 20);
    let scan1 = b.kernel.add_loop(
        LoopSpec::new(
            "match_f1",
            600,
            vec![direct_aliased(f1, 48), direct_aliased(f1, 64), direct_aliased(wt, 48)],
        )
        .with_compute(1, 3)
        .with_batched_uses(),
    );
    let scan2 = b.kernel.add_loop(
        LoopSpec::new("train_pass", 600, vec![direct_aliased(wt, 56), direct_aliased(f1, 56)])
            .with_compute(1, 2)
            .with_batched_uses(),
    );
    let gather = b.kernel.add_loop(
        LoopSpec::new(
            "weight_gather",
            500,
            vec![RefSpec::Indirect { index_array: idx, data_array: wt }],
        )
        .with_compute(1, 2),
    );
    let update = b.kernel.add_loop(
        LoopSpec::new("f1_update", 500, vec![direct_aliased(f1, 40), direct_aliased(f1, 64)])
            .with_compute(1, 2)
            .with_batched_uses(),
    );
    let bal1 = ballast(&mut b, "winner_take_all", 15_000);
    let bal2 = ballast(&mut b, "normalize", 15_000);
    let cold0 = cold_loop(&mut b, "art_cold0");
    let cold0b = cold_loop(&mut b, "art_cold0b");
    let cold1 = cold_loop(&mut b, "art_cold1");
    let cold1b = cold_loop(&mut b, "art_cold1b");
    b.kernel.add_phase(reps(scale, 80), vec![scan1, scan2, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 110), vec![gather, update, bal2, cold1, cold1b]);
    finish(b, "art", WorkloadKind::Fp)
}

/// 173.applu — PDE solver whose misses spread over a dozen independent
/// streams per loop; the in-flight misses overlap, so the top-three
/// prefetch streams barely move the needle (§4.3's first failure mode).
fn applu(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("173.applu", 0xadd1);
    let refs1: Vec<RefSpec> = (0..12)
        .map(|_| {
            let a = b.array(192 << 10, 8, true); // each ~1.5 MB in f64
            direct(a, 32)
        })
        .collect();
    let refs2: Vec<RefSpec> = (0..10)
        .map(|_| {
            let a = b.array(160 << 10, 8, true);
            direct(a, 40)
        })
        .collect();
    let l1 = b.kernel.add_loop(
        LoopSpec::new("blts", 500, refs1).with_compute(2, 4).with_batched_uses(),
    );
    let l2 = b.kernel.add_loop(
        LoopSpec::new("buts", 500, refs2).with_compute(2, 4).with_batched_uses(),
    );
    let bal1 = ballast(&mut b, "jacld", 220_000);
    let bal2 = ballast(&mut b, "jacu", 220_000);
    let cold0 = cold_loop(&mut b, "applu_cold0");
    let cold0b = cold_loop(&mut b, "applu_cold0b");
    let cold1 = cold_loop(&mut b, "applu_cold1");
    let cold1b = cold_loop(&mut b, "applu_cold1b");
    b.kernel.add_phase(reps(scale, 140), vec![l1, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 140), vec![l2, bal2, cold1, cold1b]);
    finish(b, "applu", WorkloadKind::Fp)
}

/// 183.equake — sparse matrix-vector products: strided scans the static
/// prefetcher cannot prove safe (aliased parameters) plus one indirect
/// gather. Runtime prefetching keeps its ~20 % win even over O3.
fn equake(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("183.equake", 0xe9ae);
    let k = b.array(1 << 20, 8, true); // 8 MB stiffness
    let disp = b.array(1 << 19, 8, true);
    let col = b.index_array(1 << 18, 1 << 19);
    let smvp = b.kernel.add_loop(
        LoopSpec::new(
            "smvp",
            500,
            vec![
                direct_aliased(k, 40),
                direct_aliased(k, 56),
                RefSpec::Indirect { index_array: col, data_array: disp },
            ],
        )
        .with_compute(1, 3)
        .with_batched_uses(),
    );
    let time_int = b.kernel.add_loop(
        LoopSpec::new("time_integration", 400, vec![direct(disp, 24)]).with_compute(1, 2),
    );
    let bal = ballast(&mut b, "smvp_scalar", 60_000);
    let cold0 = cold_loop(&mut b, "equake_cold0");
    let cold0b = cold_loop(&mut b, "equake_cold0b");
    b.kernel.add_phase(reps(scale, 85), vec![smvp, time_int, bal, cold0, cold0b]);
    finish(b, "equake", WorkloadKind::Fp)
}

/// 187.facerec — image-graph matching: many strided f64 scans across
/// three phases; all analyzable, moderate win.
fn facerec(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("187.facerec", 0xface);
    let img = b.array(1 << 20, 8, true);
    let gabor = b.array(1 << 20, 8, true);
    let graph = b.array(1 << 19, 8, true);
    let p1a = b.kernel.add_loop(
        LoopSpec::new("gabor_conv", 250, vec![direct(img, 48), direct(gabor, 48), direct(gabor, 64)])
            .with_compute(1, 3)
            .with_batched_uses(),
    );
    let p1b = b.kernel.add_loop(
        LoopSpec::new("gabor_acc", 200, vec![direct(img, 64), store(gabor, 64)]).with_compute(1, 2),
    );
    let p2a = b.kernel.add_loop(
        LoopSpec::new("graph_sim", 250, vec![direct(graph, 32), direct(img, 56), direct(gabor, 56)])
            .with_compute(1, 3)
            .with_batched_uses(),
    );
    let p3a = b.kernel.add_loop(
        LoopSpec::new("match_face", 250, vec![direct(graph, 40), direct(img, 72)])
            .with_compute(1, 2)
            .with_batched_uses(),
    );
    let bal1 = ballast(&mut b, "fft_local", 42_000);
    let bal2 = ballast(&mut b, "sim_local", 42_000);
    let bal3 = ballast(&mut b, "decision", 42_000);
    let cold0 = cold_loop(&mut b, "facerec_cold0");
    let cold0b = cold_loop(&mut b, "facerec_cold0b");
    let cold1 = cold_loop(&mut b, "facerec_cold1");
    let cold1b = cold_loop(&mut b, "facerec_cold1b");
    let cold2 = cold_loop(&mut b, "facerec_cold2");
    let cold2b = cold_loop(&mut b, "facerec_cold2b");
    b.kernel.add_phase(reps(scale, 55), vec![p1a, p1b, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 55), vec![p2a, bal2, cold1, cold1b]);
    b.kernel.add_phase(reps(scale, 55), vec![p3a, bal3, cold2, cold2b]);
    finish(b, "facerec", WorkloadKind::Fp)
}

/// 191.fma3d — finite-element crash simulation: four phases of element
/// updates, two with indirect connectivity gathers.
fn fma3d(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("191.fma3d", 0xf3a3d);
    let elem = b.array(1 << 20, 8, true);
    let node = b.array(1 << 20, 8, true);
    let conn = b.index_array(1 << 18, 1 << 20);
    let p1 = b.kernel.add_loop(
        LoopSpec::new(
            "internal_forces",
            250,
            vec![direct(elem, 48), direct(elem, 64), direct(node, 48)],
        )
        .with_compute(1, 4)
        .with_batched_uses(),
    );
    let p2 = b.kernel.add_loop(
        LoopSpec::new(
            "gather_nodes",
            250,
            vec![RefSpec::Indirect { index_array: conn, data_array: node }, direct(elem, 56)],
        )
        .with_compute(1, 3),
    );
    let p3 = b.kernel.add_loop(
        LoopSpec::new("stress_update", 250, vec![direct(elem, 40), direct(elem, 72)])
            .with_compute(1, 3)
            .with_batched_uses(),
    );
    let p4 = b.kernel.add_loop(
        LoopSpec::new(
            "scatter_accel",
            250,
            vec![RefSpec::Indirect { index_array: conn, data_array: node }, direct(node, 64)],
        )
        .with_compute(1, 2),
    );
    let bal1 = ballast(&mut b, "material_model", 34_000);
    let bal2 = ballast(&mut b, "contact_search", 34_000);
    let bal3 = ballast(&mut b, "hourglass", 34_000);
    let bal4 = ballast(&mut b, "timestep", 34_000);
    let cold0 = cold_loop(&mut b, "fma3d_cold0");
    let cold0b = cold_loop(&mut b, "fma3d_cold0b");
    let cold1 = cold_loop(&mut b, "fma3d_cold1");
    let cold1b = cold_loop(&mut b, "fma3d_cold1b");
    let cold2 = cold_loop(&mut b, "fma3d_cold2");
    let cold2b = cold_loop(&mut b, "fma3d_cold2b");
    let cold3 = cold_loop(&mut b, "fma3d_cold3");
    let cold3b = cold_loop(&mut b, "fma3d_cold3b");
    b.kernel.add_phase(reps(scale, 55), vec![p1, bal1, cold0, cold0b]);
    b.kernel.add_phase(reps(scale, 55), vec![p2, bal2, cold1, cold1b]);
    b.kernel.add_phase(reps(scale, 55), vec![p3, bal3, cold2, cold2b]);
    b.kernel.add_phase(reps(scale, 55), vec![p4, bal4, cold3, cold3b]);
    finish(b, "fma3d", WorkloadKind::Fp)
}

/// 189.lucas — Lucas-Lehmer primality: FFT-style butterflies whose
/// index arithmetic round-trips through the FP unit; stride recovery
/// fails (§4.3's second failure mode).
fn lucas(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("189.lucas", 0x1ca5);
    let fft = b.array(1 << 20, 8, true); // 8 MB
    let l1 = b.kernel.add_loop(
        LoopSpec::new("fft_pass", 400, vec![direct(fft, 64), direct(fft, 96)])
            .with_compute(1, 4)
            .with_complexity(AddrComplexity::FpConversion),
    );
    let l2 = b.kernel.add_loop(
        LoopSpec::new("carry_pass", 400, vec![direct(fft, 80)])
            .with_compute(1, 3)
            .with_complexity(AddrComplexity::FpConversion),
    );
    let bal = ballast(&mut b, "mod_reduce", 60_000);
    let cold0 = cold_loop(&mut b, "lucas_cold0");
    let cold0b = cold_loop(&mut b, "lucas_cold0b");
    b.kernel.add_phase(reps(scale, 130), vec![l1, l2, bal, cold0, cold0b]);
    finish(b, "lucas", WorkloadKind::Fp)
}

/// 177.mesa — software rasterizer: compute-dominated with one strided
/// span walk whose misses amortize over long cache lines; marginal gain.
fn mesa(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("177.mesa", 0x3e5a);
    let fb = b.array(256 << 10, 4, false); // 1 MB touched sparsely: L3 hits
    let tex = b.array(48 << 10, 4, false); // L2-resident texture
    let l = b.kernel.add_loop(
        LoopSpec::new("span_fill", 800, vec![direct(fb, 96), direct(tex, 2)]).with_compute(6, 2),
    );
    let bal = ballast(&mut b, "vertex_shade", 110_000);
    let cold0 = cold_loop(&mut b, "mesa_cold0");
    let cold0b = cold_loop(&mut b, "mesa_cold0b");
    b.kernel.add_phase(reps(scale, 120), vec![l, bal, cold0, cold0b]);
    finish(b, "mesa", WorkloadKind::Fp)
}

/// 171.swim — shallow-water stencils: pure strided f64 streams, fully
/// analyzable; a solid runtime-prefetching win.
fn swim(scale: f64) -> Workload {
    let mut b = WorkloadBuilder::new("171.swim", 0x5713);
    let u = b.array(1 << 20, 8, true);
    let v = b.array(1 << 20, 8, true);
    let p = b.array(1 << 20, 8, true);
    let calc1 = b.kernel.add_loop(
        LoopSpec::new("calc1", 300, vec![direct(u, 33), direct(v, 33), direct(p, 33)])
            .with_compute(1, 3)
            .with_batched_uses(),
    );
    let calc2 = b.kernel.add_loop(
        LoopSpec::new("calc2", 300, vec![direct(u, 41), direct(v, 41), direct(p, 41)])
            .with_compute(1, 3)
            .with_batched_uses(),
    );
    let calc3 = b.kernel.add_loop(
        LoopSpec::new("calc3", 300, vec![direct(p, 49), direct(u, 49), store(v, 49)])
            .with_compute(1, 2)
            .with_batched_uses(),
    );
    let bal = ballast(&mut b, "boundary", 18_000);
    let cold0 = cold_loop(&mut b, "swim_cold0");
    let cold0b = cold_loop(&mut b, "swim_cold0b");
    b.kernel.add_phase(reps(scale, 50), vec![calc1, calc2, calc3, bal, cold0, cold0b]);
    finish(b, "swim", WorkloadKind::Fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seventeen_build_and_validate() {
        let all = suite(0.1);
        assert_eq!(all.len(), 17);
        for w in &all {
            assert!(w.kernel.validate().is_ok(), "{} must validate", w.name);
            assert!(w.arena_bytes > 0);
        }
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 17, "names must be unique");
    }

    #[test]
    fn suite_matches_paper_patterns() {
        let all = suite(0.1);
        let by = |n: &str| all.iter().find(|w| w.name == n).unwrap();
        // mcf is pointer-chasing only.
        assert!(by("mcf").kernel.lists.len() >= 2);
        // gzip has very few phase reps (too short to optimize).
        assert!(by("gzip").kernel.phases[0].reps < by("swim").kernel.phases[0].reps);
        // lucas/vpr use fp-conversion addressing; gap uses calls.
        let is_hot = |l: &&compiler::LoopSpec| {
            !l.refs.is_empty() && !l.name.contains("_cold")
        };
        assert!(by("lucas")
            .kernel
            .loops
            .iter()
            .filter(is_hot)
            .all(|l| l.complexity == AddrComplexity::FpConversion));
        assert!(by("gap")
            .kernel
            .loops
            .iter()
            .any(|l| l.complexity == AddrComplexity::Call));
        // applu batches its uses and has many refs per loop.
        assert!(by("applu")
            .kernel
            .loops
            .iter()
            .filter(is_hot)
            .all(|l| l.batch_uses && l.refs.len() >= 10));
        // fma3d has four phases; facerec/ammp three; art/bzip2/mcf two.
        assert_eq!(by("fma3d").kernel.phases.len(), 4);
        assert_eq!(by("facerec").kernel.phases.len(), 3);
        assert_eq!(by("art").kernel.phases.len(), 2);
    }

    #[test]
    fn every_workload_fits_its_arena_and_lists_are_circular() {
        for w in suite(0.1) {
            // All arrays and lists lie within the declared arena.
            for a in &w.kernel.arrays {
                assert!(
                    a.base + a.bytes() <= sim::DATA_BASE + w.arena_bytes,
                    "{}: array outside arena",
                    w.name
                );
            }
            // Lists are circular and complete after initialization.
            let bin = compiler::compile(&w.kernel, &compiler::CompileOptions::o2()).unwrap();
            let m = w.prepare(&bin, sim::MachineConfig::default());
            for l in &w.kernel.lists {
                let mut p = l.head;
                for _ in 0..l.nodes {
                    p = m.mem().read(p + l.next_offset, 8);
                    assert!(p != 0, "{}: broken list", w.name);
                }
                assert_eq!(p, l.head, "{}: list not circular", w.name);
            }
        }
    }

    #[test]
    fn cold_loops_are_prefetch_bait_not_swp_bait() {
        // Cold loops must be scheduled for static prefetching at O3 but
        // be ineligible for software pipelining (multi-fragment).
        let all = suite(0.1);
        let w = all.iter().find(|w| w.name == "swim").unwrap();
        let o3 = compiler::compile(&w.kernel, &compiler::CompileOptions::o3()).unwrap();
        let cold_names: Vec<_> = o3
            .loops
            .iter()
            .filter(|l| l.name.contains("_cold"))
            .collect();
        assert!(!cold_names.is_empty());
        assert!(cold_names.iter().all(|l| l.has_static_prefetch));
        let swp = compiler::compile(&w.kernel, &compiler::CompileOptions::o2_original()).unwrap();
        assert!(swp
            .loops
            .iter()
            .filter(|l| l.name.contains("_cold"))
            .all(|l| !l.software_pipelined));
    }

    #[test]
    fn scaling_changes_reps_only() {
        let small = suite(0.1);
        let big = suite(1.0);
        for (s, b) in small.iter().zip(big.iter()) {
            assert_eq!(s.kernel.loops.len(), b.kernel.loops.len());
            assert!(s.kernel.phases[0].reps <= b.kernel.phases[0].reps);
        }
    }
}
