//! Workload construction: data-layout planning and memory initialization.
//!
//! A [`WorkloadBuilder`] mirrors the simulator's bump allocator so the
//! kernel IR can carry concrete base addresses, and records the
//! initialization actions (index-array contents, linked-list layouts)
//! that [`crate::Workload::prepare`] replays into a machine's memory.

use compiler::{ArrayDecl, Kernel, ListDecl};
use sim::{Memory, DATA_BASE};

use crate::rng::{Rng64, Zipfian};

/// A deferred memory-initialization action.
#[derive(Debug, Clone)]
pub enum InitAction {
    /// Fill an index array with values uniform in `[0, range)`.
    IndexArray {
        /// Base address of the array.
        base: u64,
        /// Number of 4-byte entries.
        count: u64,
        /// Exclusive upper bound of index values.
        range: u64,
        /// Deterministic seed.
        seed: u64,
    },
    /// Lay out a circular singly-linked list.
    ///
    /// Nodes are placed at `base + slot * node_bytes` and traversed in
    /// *runs* of `run_length` consecutive slots; the runs themselves
    /// are visited in shuffled order. Long runs model allocation-order
    /// lists (mcf's arcs — "partially regular strides", §3.2.2) where
    /// induction-pointer extrapolation succeeds inside a run and fails
    /// only at run boundaries; `run_length = 1` is a fully shuffled
    /// list where extrapolation almost never helps.
    CircularList {
        /// Base address of the node pool.
        base: u64,
        /// Number of nodes.
        nodes: u64,
        /// Node size in bytes.
        node_bytes: u64,
        /// Byte offset of the `next` pointer within a node.
        next_offset: u64,
        /// Consecutive slots per regular run.
        run_length: u64,
        /// Deterministic seed.
        seed: u64,
    },
    /// Fill an index array with Zipfian-distributed keys scattered over
    /// `[0, range)` (the server-family request stream: few hot keys,
    /// long cold tail). Ranks are spread over the range by a fixed
    /// multiplicative hash so hot keys do not share cache lines.
    ZipfIndexArray {
        /// Base address of the array.
        base: u64,
        /// Number of 4-byte entries.
        count: u64,
        /// Exclusive upper bound of index values.
        range: u64,
        /// Zipfian skew in `(0, 1)`.
        theta: f64,
        /// Deterministic seed.
        seed: u64,
    },
    /// Lay out a circular list like [`InitAction::CircularList`] and
    /// additionally store, in each node, a *jump pointer* to the node
    /// `hops` positions ahead in traversal order (the jump-pointer
    /// prefetching shape: the payload dereference goes through this
    /// pointer, so its address never derives from the recurrent
    /// pointer alone).
    JumpList {
        /// Base address of the node pool.
        base: u64,
        /// Number of nodes.
        nodes: u64,
        /// Node size in bytes.
        node_bytes: u64,
        /// Byte offset of the `next` pointer within a node.
        next_offset: u64,
        /// Byte offset of the jump pointer within a node.
        jump_offset: u64,
        /// Traversal-order distance of the jump pointer.
        hops: u64,
        /// Consecutive slots per regular run.
        run_length: u64,
        /// Deterministic seed.
        seed: u64,
    },
}

/// Traversal order of a run-shuffled circular list.
fn list_order(nodes: u64, run_length: u64, seed: u64) -> Vec<u64> {
    let run = run_length.max(1);
    let n_runs = nodes.div_ceil(run);
    let mut runs: Vec<u64> = (0..n_runs).collect();
    Rng64::new(seed).shuffle(&mut runs);
    let mut order = Vec::with_capacity(nodes as usize);
    for r in runs {
        let start = r * run;
        let end = ((r + 1) * run).min(nodes);
        order.extend(start..end);
    }
    order
}

impl InitAction {
    /// Applies the action to a memory arena.
    pub fn apply(&self, mem: &mut Memory) {
        match *self {
            InitAction::IndexArray { base, count, range, seed } => {
                let mut rng = Rng64::new(seed);
                for i in 0..count {
                    let v = rng.below(range.max(1));
                    mem.write(base + 4 * i, 4, v);
                }
            }
            InitAction::CircularList {
                base,
                nodes,
                node_bytes,
                next_offset,
                run_length,
                seed,
            } => {
                let order = list_order(nodes, run_length, seed);
                for i in 0..nodes as usize {
                    let node = base + order[i] * node_bytes;
                    let next = base + order[(i + 1) % nodes as usize] * node_bytes;
                    mem.write(node + next_offset, 8, next);
                    // Payload: the slot number.
                    if next_offset != 8 {
                        mem.write(node + 8, 8, order[i]);
                    }
                }
            }
            InitAction::ZipfIndexArray { base, count, range, theta, seed } => {
                let z = Zipfian::new(range.max(1), theta);
                let mut rng = Rng64::new(seed);
                for i in 0..count {
                    let rank = z.next(&mut rng);
                    // Scatter ranks over the range (odd multiplier, so
                    // the map is a bijection modulo a power of two and
                    // near-uniform otherwise).
                    let key = rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) % range.max(1);
                    mem.write(base + 4 * i, 4, key);
                }
            }
            InitAction::JumpList {
                base,
                nodes,
                node_bytes,
                next_offset,
                jump_offset,
                hops,
                run_length,
                seed,
            } => {
                let order = list_order(nodes, run_length, seed);
                let n = nodes as usize;
                for i in 0..n {
                    let node = base + order[i] * node_bytes;
                    let next = base + order[(i + 1) % n] * node_bytes;
                    let jump = base + order[(i + hops as usize) % n] * node_bytes;
                    mem.write(node + next_offset, 8, next);
                    mem.write(node + jump_offset, 8, jump);
                    mem.write(node + 8, 8, order[i]);
                }
            }
        }
    }

    /// The address of the first node in traversal order (the list
    /// head), for `CircularList`; `base` otherwise.
    pub fn head(&self) -> u64 {
        match *self {
            InitAction::IndexArray { base, .. } => base,
            InitAction::ZipfIndexArray { base, .. } => base,
            InitAction::CircularList { base, nodes, node_bytes, run_length, seed, .. }
            | InitAction::JumpList { base, nodes, node_bytes, run_length, seed, .. } => {
                base + list_order(nodes, run_length, seed)[0] * node_bytes
            }
        }
    }
}

/// Incrementally builds a kernel plus its data plan.
#[derive(Debug)]
pub struct WorkloadBuilder {
    /// The kernel under construction.
    pub kernel: Kernel,
    cursor: u64,
    inits: Vec<InitAction>,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a builder for the named kernel.
    pub fn new(name: &str, seed: u64) -> WorkloadBuilder {
        WorkloadBuilder { kernel: Kernel::new(name), cursor: DATA_BASE, inits: Vec::new(), seed }
    }

    fn alloc(&mut self, bytes: u64) -> u64 {
        let base = (self.cursor + 63) & !63;
        self.cursor = base + bytes;
        base
    }

    fn next_seed(&mut self) -> u64 {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.seed
    }

    /// Adds a data array of `len` elements; returns its kernel index.
    pub fn array(&mut self, len: u64, elem_bytes: u64, fp: bool) -> usize {
        let base = self.alloc(len * elem_bytes + 256);
        self.kernel.add_array(ArrayDecl { base, elem_bytes, len, fp })
    }

    /// Adds a 4-byte index array with random contents in `[0, range)`.
    pub fn index_array(&mut self, len: u64, range: u64) -> usize {
        let base = self.alloc(len * 4 + 256);
        let seed = self.next_seed();
        self.inits.push(InitAction::IndexArray { base, count: len, range, seed });
        self.kernel.add_array(ArrayDecl { base, elem_bytes: 4, len, fp: false })
    }

    /// Adds a circular linked list traversed in shuffled runs of
    /// `run_length` consecutive nodes; returns its kernel index.
    pub fn list(&mut self, nodes: u64, node_bytes: u64, run_length: u64) -> usize {
        let base = self.alloc(nodes * node_bytes + 256);
        let seed = self.next_seed();
        let action = InitAction::CircularList {
            base,
            nodes,
            node_bytes,
            next_offset: 0,
            run_length,
            seed,
        };
        let head = action.head();
        self.inits.push(action);
        self.kernel.add_list(ListDecl {
            head,
            node_bytes,
            next_offset: 0,
            payload_offset: 8,
            nodes,
        })
    }

    /// Adds a 4-byte index array with Zipfian-distributed contents in
    /// `[0, range)` (skew `theta`); returns its kernel index.
    pub fn zipf_index_array(&mut self, len: u64, range: u64, theta: f64) -> usize {
        let base = self.alloc(len * 4 + 256);
        let seed = self.next_seed();
        self.inits.push(InitAction::ZipfIndexArray { base, count: len, range, theta, seed });
        self.kernel.add_array(ArrayDecl { base, elem_bytes: 4, len, fp: false })
    }

    /// Adds a circular list whose nodes also carry a jump pointer
    /// `hops` nodes ahead at byte offset 16 (layout: `next` at 0,
    /// payload at 8, jump at 16); returns its kernel index. Pair with
    /// [`compiler::RefSpec::JumpPointer`] and `jump_offset: 16`.
    pub fn jump_list(&mut self, nodes: u64, node_bytes: u64, run_length: u64, hops: u64) -> usize {
        assert!(node_bytes >= 24, "jump-list nodes need next+payload+jump fields");
        let base = self.alloc(nodes * node_bytes + 256);
        let seed = self.next_seed();
        let action = InitAction::JumpList {
            base,
            nodes,
            node_bytes,
            next_offset: 0,
            jump_offset: 16,
            hops,
            run_length,
            seed,
        };
        let head = action.head();
        self.inits.push(action);
        self.kernel.add_list(ListDecl {
            head,
            node_bytes,
            next_offset: 0,
            payload_offset: 8,
            nodes,
        })
    }

    /// Total arena bytes required.
    pub fn arena_bytes(&self) -> u64 {
        self.cursor - DATA_BASE + 4096
    }

    /// Finishes, returning the kernel, init actions, and arena size.
    pub fn finish(self) -> (Kernel, Vec<InitAction>, u64) {
        let arena = self.cursor - DATA_BASE + 4096;
        (self.kernel, self.inits, arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_disjoint_and_aligned() {
        let mut b = WorkloadBuilder::new("t", 1);
        let a1 = b.array(1000, 8, false);
        let a2 = b.array(1000, 4, true);
        let d1 = b.kernel.arrays[a1].clone();
        let d2 = b.kernel.arrays[a2].clone();
        assert_eq!(d1.base % 64, 0);
        assert_eq!(d2.base % 64, 0);
        assert!(d2.base >= d1.base + d1.bytes());
        assert!(b.arena_bytes() > d1.bytes() + d2.bytes());
    }

    #[test]
    fn index_array_values_in_range() {
        let mut b = WorkloadBuilder::new("t", 7);
        let a = b.index_array(512, 100);
        let decl = b.kernel.arrays[a].clone();
        let (_, inits, arena) = b.finish();
        let mut mem = Memory::new(arena as usize);
        for i in &inits {
            i.apply(&mut mem);
        }
        for i in 0..512 {
            let v = mem.read(decl.base + 4 * i, 4);
            assert!(v < 100);
        }
    }

    #[test]
    fn regular_list_has_constant_stride() {
        let mut b = WorkloadBuilder::new("t", 3);
        let l = b.list(64, 128, 64);
        let decl = b.kernel.lists[l].clone();
        let (_, inits, arena) = b.finish();
        let mut mem = Memory::new(arena as usize);
        for i in &inits {
            i.apply(&mut mem);
        }
        // Walk the list: every hop advances by exactly node_bytes.
        let mut p = decl.head;
        for _ in 0..63 {
            let next = mem.read(p + decl.next_offset, 8);
            assert_eq!(next, p + 128);
            p = next;
        }
        // …and the last hop closes the circle.
        assert_eq!(mem.read(p, 8), decl.head);
    }

    #[test]
    fn irregular_list_visits_every_node_once() {
        let mut b = WorkloadBuilder::new("t", 11);
        let l = b.list(256, 64, 4);
        let decl = b.kernel.lists[l].clone();
        let (_, inits, arena) = b.finish();
        let mut mem = Memory::new(arena as usize);
        for i in &inits {
            i.apply(&mut mem);
        }
        let mut p = decl.head;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            assert!(seen.insert(p), "node visited twice");
            p = mem.read(p + decl.next_offset, 8);
        }
        assert_eq!(p, decl.head, "list must be circular");
    }

    #[test]
    fn zipf_index_array_is_skewed_and_in_range() {
        let mut b = WorkloadBuilder::new("t", 17);
        let a = b.zipf_index_array(4096, 1 << 16, 0.9);
        let decl = b.kernel.arrays[a].clone();
        let (_, inits, arena) = b.finish();
        let mut mem = Memory::new(arena as usize);
        for i in &inits {
            i.apply(&mut mem);
        }
        let mut counts = std::collections::HashMap::new();
        for i in 0..4096 {
            let v = mem.read(decl.base + 4 * i, 4);
            assert!(v < 1 << 16);
            *counts.entry(v).or_insert(0u64) += 1;
        }
        // Skew: the hottest key must appear far more often than a
        // uniform draw over 64 K keys would allow (~1 expected).
        let hottest = counts.values().max().copied().unwrap();
        assert!(hottest > 100, "hottest key drawn only {hottest} times");
    }

    #[test]
    fn jump_list_jump_pointers_land_hops_ahead() {
        let mut b = WorkloadBuilder::new("t", 23);
        let hops = 6u64;
        let l = b.jump_list(256, 64, 8, hops);
        let decl = b.kernel.lists[l].clone();
        let (_, inits, arena) = b.finish();
        let mut mem = Memory::new(arena as usize);
        for i in &inits {
            i.apply(&mut mem);
        }
        // Walk the next chain; each jump pointer must equal the node
        // reached by `hops` further next-hops.
        let mut p = decl.head;
        for _ in 0..256 {
            let mut q = p;
            for _ in 0..hops {
                q = mem.read(q + decl.next_offset, 8);
            }
            assert_eq!(mem.read(p + 16, 8), q, "jump pointer must land {hops} hops ahead");
            p = mem.read(p + decl.next_offset, 8);
        }
        assert_eq!(p, decl.head, "list must be circular");
    }

    #[test]
    fn irregularity_degrades_stride_regularity() {
        let stride_accuracy = |run: u64| {
            let mut b = WorkloadBuilder::new("t", 5);
            let l = b.list(1024, 64, run);
            let decl = b.kernel.lists[l].clone();
            let (_, inits, arena) = b.finish();
            let mut mem = Memory::new(arena as usize);
            for i in &inits {
                i.apply(&mut mem);
            }
            let mut p = decl.head;
            let mut regular = 0;
            for _ in 0..1023 {
                let next = mem.read(p, 8);
                if next == p + 64 {
                    regular += 1;
                }
                p = next;
            }
            regular as f64 / 1023.0
        };
        assert!(stride_accuracy(1024) > 0.99);
        assert!(stride_accuracy(64) > 0.9, "long runs are mostly regular");
        let short = stride_accuracy(2);
        assert!(short < 0.6, "short runs should be mostly irregular: {short}");
    }
}
