//! SPEC2000-shaped synthetic workloads for the ADORE reproduction.
//!
//! The paper evaluates on seventeen SPEC CPU2000 benchmarks with
//! reference inputs. Those binaries (and an Itanium to run them) are
//! not available here, so this crate provides one synthetic kernel per
//! benchmark whose *memory behaviour* matches what the paper reports:
//! which reference patterns dominate (Table 2), how many stable phases
//! appear, whether address computation defeats the slicer, and whether
//! misses overlap (§4.3). See `DESIGN.md` for the substitution
//! rationale; [`suite::suite`] builds all seventeen, [`micro`] holds
//! the motivating kernels of §1 (matrix multiply, DAXPY, Gaussian
//! elimination, memcpy).
//!
//! # Example
//!
//! ```
//! use compiler::{compile, CompileOptions};
//! use sim::MachineConfig;
//!
//! let workloads = workloads::suite(0.05); // small scale for the example
//! let mcf = workloads.iter().find(|w| w.name == "mcf").unwrap();
//! let bin = compile(&mcf.kernel, &CompileOptions::o2()).unwrap();
//! let mut machine = mcf.prepare(&bin, MachineConfig::default());
//! machine.run_to_halt();
//! assert!(machine.is_halted());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod families;
pub mod micro;
pub mod rng;
pub mod suite;

use compiler::Kernel;
use sim::{Machine, MachineConfig};

pub use builder::{InitAction, WorkloadBuilder};
pub use families::families;
pub use rng::{Rng64, Zipfian};
pub use suite::suite;

/// Integer or floating-point benchmark (the paper groups results this
/// way in Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// SPECint-like.
    Int,
    /// SPECfp-like.
    Fp,
}

/// A complete synthetic workload: kernel IR plus its data plan.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name ("mcf").
    pub name: &'static str,
    /// Integer or floating-point suite.
    pub kind: WorkloadKind,
    /// The kernel IR (with concrete data addresses).
    pub kernel: Kernel,
    /// Required arena capacity in bytes.
    pub arena_bytes: u64,
    /// Memory-initialization actions.
    pub inits: Vec<InitAction>,
}

// Workers of the parallel experiment engine each hold references into
// one shared, immutable suite and clone nothing mutable — which only
// works while `Workload` stays `Send + Sync` (no interior mutability).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Workload>();
};

impl Workload {
    /// Builds a workload from a finished builder.
    pub fn from_builder(
        b: WorkloadBuilder,
        name: &'static str,
        kind: WorkloadKind,
    ) -> Workload {
        let (kernel, inits, arena_bytes) = b.finish();
        Workload { name, kind, kernel, arena_bytes, inits }
    }

    /// Creates a machine for a compiled binary of this workload:
    /// sizes the arena and replays the data initialization.
    pub fn prepare(&self, bin: &compiler::CompiledBinary, mut config: MachineConfig) -> Machine {
        config.mem_capacity = self.arena_bytes as usize;
        let mut m = Machine::new(bin.program.clone(), config);
        for init in &self.inits {
            init.apply(m.mem_mut());
        }
        m
    }
}

/// Every workload: the 17 paper-suite kernels followed by the
/// scenario families ([`families::families`]).
pub fn all(scale: f64) -> Vec<Workload> {
    let mut v = suite(scale);
    v.extend(families(scale));
    v
}

/// Looks a workload up by name (suite or family) at the given scale.
pub fn by_name(name: &str, scale: f64) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}
