//! Flat data memory with a bump allocator.
//!
//! Workloads allocate their arrays and linked structures from a single
//! arena so the simulator can service loads and stores with plain array
//! indexing. Addresses below [`Memory::base`] or beyond the arena are
//! *unmapped*: architectural loads to unmapped addresses are programming
//! errors, while speculative loads (`ld.s`) and `lfetch` are defined to
//! be non-faulting and simply read zero / do nothing, exactly the
//! property ADORE relies on when inserting prefetch code (paper §3.6).

use std::fmt;

/// Default base address of the data arena.
pub const DATA_BASE: u64 = 0x1000_0000;

/// A flat byte-addressable data arena.
#[derive(Clone)]
pub struct Memory {
    base: u64,
    data: Vec<u8>,
    brk: u64,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("base", &format_args!("{:#x}", self.base))
            .field("capacity", &self.data.len())
            .field("allocated", &(self.brk - self.base))
            .finish()
    }
}

impl Memory {
    /// Creates an arena of `capacity` bytes at the default base.
    pub fn new(capacity: usize) -> Memory {
        Memory::with_base(DATA_BASE, capacity)
    }

    /// Creates an arena of `capacity` bytes at `base`.
    pub fn with_base(base: u64, capacity: usize) -> Memory {
        Memory {
            base,
            data: vec![0; capacity],
            brk: base,
        }
    }

    /// Base address of the arena.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.brk - self.base
    }

    /// Bytes still available for allocation.
    pub fn remaining(&self) -> u64 {
        self.data.len() as u64 - (self.brk - self.base)
    }

    /// Allocates `size` bytes aligned to `align` and returns the address.
    ///
    /// # Panics
    ///
    /// Panics if the arena is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.brk + align - 1) & !(align - 1);
        let end = addr + size;
        assert!(
            end - self.base <= self.data.len() as u64,
            "arena exhausted: need {} bytes, capacity {}",
            end - self.base,
            self.data.len()
        );
        self.brk = end;
        addr
    }

    /// Returns the arena to its freshly-constructed state — every byte
    /// zero, nothing allocated — without giving up the backing
    /// allocation. The fuzzing campaign re-arms one arena per worker
    /// between cases instead of reallocating hundreds of KiB each time.
    pub fn reset(&mut self) {
        self.data.fill(0);
        self.brk = self.base;
    }

    /// True if `[addr, addr+len)` lies inside the arena.
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.saturating_add(len) <= self.base + self.data.len() as u64
    }

    fn offset(&self, addr: u64) -> usize {
        (addr - self.base) as usize
    }

    /// Reads `len` (1/2/4/8) bytes zero-extended.
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses; use [`Memory::read_spec`] for
    /// non-faulting semantics.
    pub fn read(&self, addr: u64, len: u64) -> u64 {
        assert!(
            self.contains(addr, len),
            "unmapped read of {len} bytes at {addr:#x}"
        );
        self.read_unchecked(addr, len)
    }

    /// Non-faulting read: unmapped addresses read as zero (`ld.s`).
    pub fn read_spec(&self, addr: u64, len: u64) -> u64 {
        if self.contains(addr, len) {
            self.read_unchecked(addr, len)
        } else {
            0
        }
    }

    fn read_unchecked(&self, addr: u64, len: u64) -> u64 {
        let off = self.offset(addr);
        let mut buf = [0u8; 8];
        buf[..len as usize].copy_from_slice(&self.data[off..off + len as usize]);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `len` bytes of `value`.
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses.
    pub fn write(&mut self, addr: u64, len: u64, value: u64) {
        assert!(
            self.contains(addr, len),
            "unmapped write of {len} bytes at {addr:#x}"
        );
        let off = self.offset(addr);
        self.data[off..off + len as usize].copy_from_slice(&value.to_le_bytes()[..len as usize]);
    }

    /// Reads an `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr, 8))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, 8, value.to_bits());
    }

    /// Writes a slice of `u64` words starting at `addr` (workload init).
    pub fn write_words(&mut self, addr: u64, words: &[u64]) {
        for (i, w) in words.iter().enumerate() {
            self.write(addr + 8 * i as u64, 8, *w);
        }
    }

    /// Writes a slice of `f64` values starting at `addr`.
    pub fn write_f64s(&mut self, addr: u64, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Memory::new(1 << 16);
        let a = m.alloc(100, 8);
        let b = m.alloc(100, 64);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(m.allocated() >= 200);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn alloc_exhaustion_panics() {
        let mut m = Memory::new(128);
        let _ = m.alloc(256, 8);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new(4096);
        let a = m.alloc(64, 8);
        m.write(a, 8, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(a, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(a, 4), 0xcafe_f00d);
        assert_eq!(m.read(a, 2), 0xf00d);
        assert_eq!(m.read(a, 1), 0x0d);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new(4096);
        let a = m.alloc(8, 8);
        m.write_f64(a, 2.5);
        assert_eq!(m.read_f64(a), 2.5);
    }

    #[test]
    fn speculative_read_does_not_fault() {
        let m = Memory::new(4096);
        assert_eq!(m.read_spec(0x10, 8), 0); // far below base
        assert_eq!(m.read_spec(u64::MAX - 4, 8), 0); // wraps
    }

    #[test]
    #[should_panic(expected = "unmapped read")]
    fn architectural_read_faults() {
        let m = Memory::new(4096);
        let _ = m.read(0x10, 8);
    }

    #[test]
    fn bulk_writers() {
        let mut m = Memory::new(4096);
        let a = m.alloc(32, 8);
        m.write_words(a, &[1, 2, 3]);
        assert_eq!(m.read(a + 16, 8), 3);
        m.write_f64s(a, &[1.0, -1.0]);
        assert_eq!(m.read_f64(a + 8), -1.0);
    }
}
