//! Set-associative caches and the Itanium-2-like hierarchy.
//!
//! The hierarchy reproduces the structure the paper's timing story
//! depends on: a small L1D that floating-point accesses bypass, a
//! unified L2, a large L3, and a long memory latency, so that loads with
//! latency ≥ 8 cycles (the DEAR qualification threshold) are exactly the
//! L2-or-worse misses runtime prefetching targets (paper §3.1).

use std::fmt;

use obs::{Json, ToJson};

/// One set-associative, true-LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    line_bytes: u64,
    /// `log2(line_bytes)`: line numbers come from a shift, not a
    /// hardware divide, on every lookup.
    line_shift: u32,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps, larger is more recent.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is divisible by `line_bytes * ways`
    /// and the set count is a power of two.
    pub fn new(name: &'static str, size_bytes: u64, line_bytes: u64, ways: usize) -> Cache {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = (size_bytes / (line_bytes * ways as u64)) as usize;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "set count must be a power of two"
        );
        Cache {
            name,
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Restores the just-constructed state in place — every way empty,
    /// all stamps and statistics zero — without touching the tag/stamp
    /// allocations (the snapshot-reset fast path between fuzz cases).
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    /// Cache name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line as usize) & (self.sets - 1), line)
    }

    /// Looks up `addr`; on hit refreshes LRU and returns `true`.
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.tick += 1;
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// [`Cache::access`] and, on a miss, [`Cache::fill`] in a single
    /// set scan. Equivalent to the two-call sequence: no other access
    /// can interleave between them, so the victim chosen during the
    /// scan is the victim `fill` would choose, and collapsing the two
    /// tick increments into one preserves relative LRU order (the
    /// filled line still gets its set's newest stamp).
    #[inline]
    pub fn access_fill(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.tick += 1;
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.miss_fill(base, tag);
        false
    }

    /// Out-of-line miss half of [`Cache::access_fill`]: keeps the
    /// inlined hit path small in the interpreter's hot loop.
    #[inline(never)]
    fn miss_fill(&mut self, base: usize, tag: u64) {
        self.misses += 1;
        // Empty ways carry stamp 0 and real stamps start at 1, so the
        // min-stamp scan picks the first empty way exactly as `fill`'s
        // explicit empty-way preference does.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            if self.stamps[base + way] < oldest {
                oldest = self.stamps[base + way];
                victim = way;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
    }

    /// Refreshes the line's LRU stamp if present (a single-scan
    /// equivalent of `probe` + `fill`-on-present); no statistics move.
    pub fn touch(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.tick += 1;
                self.stamps[base + way] = self.tick;
                return true;
            }
        }
        false
    }

    /// Checks for presence without touching LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.tags[base + w] == tag)
    }

    /// Fills the line containing `addr`, evicting the LRU way.
    pub fn fill(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        // Already present: just refresh.
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.tick += 1;
                self.stamps[base + way] = self.tick;
                return;
            }
        }
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            if self.tags[base + way] == u64::MAX {
                victim = way;
                break;
            }
            if self.stamps[base + way] < oldest {
                oldest = self.stamps[base + way];
                victim = way;
            }
        }
        self.tick += 1;
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

/// Which level serviced a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L2 hit (L1 miss).
    L2,
    /// L3 hit (L2 miss).
    L3,
    /// Main memory (all caches missed).
    Memory,
}

impl fmt::Display for HitLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::L3 => "L3",
            HitLevel::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// Geometry and latency configuration of the hierarchy.
///
/// Defaults approximate the 900 MHz Itanium 2 (McKinley) in the paper's
/// zx6000 testbed: 16 KB/64 B/4-way L1D with 1-cycle loads, 256 KB/
/// 128 B/8-way unified L2 at ~6 cycles, 1.5 MB/128 B/12-way L3 at ~13
/// cycles, and main memory >100 cycles away.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// L1D size in bytes.
    pub l1d_size: u64,
    /// L1D line size in bytes.
    pub l1d_line: u64,
    /// L1D associativity.
    pub l1d_ways: usize,
    /// L1D hit latency (cycles).
    pub l1_latency: u64,
    /// L1I size in bytes.
    pub l1i_size: u64,
    /// L1I line size in bytes.
    pub l1i_line: u64,
    /// L1I associativity.
    pub l1i_ways: usize,
    /// L2 size in bytes (unified).
    pub l2_size: u64,
    /// L2 line size in bytes.
    pub l2_line: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// L3 size in bytes.
    pub l3_size: u64,
    /// L3 line size in bytes.
    pub l3_line: u64,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L3 hit latency (cycles).
    pub l3_latency: u64,
    /// Main-memory latency (cycles).
    pub mem_latency: u64,
    /// Minimum cycles between successive main-memory line fills (the
    /// bus/bank bandwidth limit of §1.3; prefetching cannot stream
    /// faster than this).
    pub mem_service_interval: u64,
    /// Maximum in-flight misses; further demand misses queue behind the
    /// oldest and further `lfetch`es are dropped (hint semantics).
    pub mshrs: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            l1d_size: 16 * 1024,
            l1d_line: 64,
            l1d_ways: 4,
            l1_latency: 1,
            l1i_size: 16 * 1024,
            l1i_line: 64,
            l1i_ways: 4,
            l2_size: 256 * 1024,
            l2_line: 128,
            l2_ways: 8,
            l2_latency: 6,
            l3_size: 1536 * 1024,
            l3_line: 128,
            l3_ways: 12,
            l3_latency: 13,
            mem_latency: 160,
            mem_service_interval: 24,
            mshrs: 16,
        }
    }
}

/// The DEAR qualification threshold: the paper samples data-cache load
/// misses with latency ≥ 8 cycles, i.e. L2-or-worse misses.
pub const DEAR_LATENCY_THRESHOLD: u64 = 8;

/// The full cache hierarchy plus in-flight miss tracking.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: CacheConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    l3: Cache,
    /// Completion cycles of in-flight misses (demand and prefetch).
    inflight: Vec<u64>,
    /// Prefetch lines with a future fill-completion cycle; accesses that
    /// arrive before completion pay the remaining latency (partial
    /// prefetch coverage instead of all-or-nothing).
    pending_fills: Vec<(u64, u64)>, // (line address of L2, completion cycle)
    /// Earliest cycle the memory bus can start the next line fill.
    mem_next_free: u64,
    /// `!(l2_line - 1)`: masks an address down to its L2 line base
    /// without a hardware divide (line sizes are powers of two).
    l2_line_mask: u64,
    /// `log2(l1i_line)` for the ifetch memo's line number.
    l1i_line_shift: u32,
    /// Line of the most recent `ifetch` hit. L1I state changes only
    /// through `ifetch`, so consecutive fetches of the same line can
    /// skip the lookup exactly: no other L1I stamp can move in
    /// between, the memoized line already holds its set's newest
    /// stamp, and a hit touches no lower level.
    last_ifetch_line: u64,
    lfetch_issued: u64,
    lfetch_dropped: u64,
}

/// Outcome of a timed data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Which level serviced the access.
    pub level: HitLevel,
    /// Total load-to-use latency in cycles, including MSHR queueing and
    /// partial overlap with an in-flight prefetch of the same line.
    pub latency: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from a configuration.
    pub fn new(config: CacheConfig) -> Hierarchy {
        Hierarchy {
            l1d: Cache::new("L1D", config.l1d_size, config.l1d_line, config.l1d_ways),
            l1i: Cache::new("L1I", config.l1i_size, config.l1i_line, config.l1i_ways),
            l2: Cache::new("L2", config.l2_size, config.l2_line, config.l2_ways),
            l3: Cache::new("L3", config.l3_size, config.l3_line, config.l3_ways),
            inflight: Vec::new(),
            pending_fills: Vec::new(),
            mem_next_free: 0,
            l2_line_mask: !(config.l2_line - 1),
            l1i_line_shift: config.l1i_line.trailing_zeros(),
            // No code line can reach u64::MAX, so MAX means "no memo".
            last_ifetch_line: u64::MAX,
            config,
            lfetch_issued: 0,
            lfetch_dropped: 0,
        }
    }

    /// Restores the just-constructed state in place: all four caches
    /// emptied, in-flight misses and pending prefetch fills dropped,
    /// memo and statistics cleared. Equivalent to
    /// `Hierarchy::new(self.config().clone())` but reuses every
    /// allocation.
    pub fn reset(&mut self) {
        self.l1d.reset();
        self.l1i.reset();
        self.l2.reset();
        self.l3.reset();
        self.inflight.clear();
        self.pending_fills.clear();
        self.mem_next_free = 0;
        self.last_ifetch_line = u64::MAX;
        self.lfetch_issued = 0;
        self.lfetch_dropped = 0;
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// (issued, dropped) `lfetch` counts.
    pub fn lfetch_stats(&self) -> (u64, u64) {
        (self.lfetch_issued, self.lfetch_dropped)
    }

    /// Per-cache (hits, misses) as (l1d, l1i, l2, l3).
    pub fn cache_stats(&self) -> [(u64, u64); 4] {
        [
            self.l1d.stats(),
            self.l1i.stats(),
            self.l2.stats(),
            self.l3.stats(),
        ]
    }

    fn prune(&mut self, now: u64) {
        if !self.inflight.is_empty() {
            self.inflight.retain(|&c| c > now);
        }
        if !self.pending_fills.is_empty() {
            self.pending_fills.retain(|&(_, c)| c > now);
        }
    }

    fn mshr_wait(&self, now: u64) -> u64 {
        if self.inflight.len() < self.config.mshrs {
            return 0;
        }
        let earliest = self.inflight.iter().copied().min().unwrap_or(now);
        earliest.saturating_sub(now)
    }

    /// A timed data-side load at `addr` on cycle `now`.
    ///
    /// `fp` marks a floating-point access, which bypasses L1D as on
    /// Itanium 2 (so its best case is the L2 latency).
    #[inline]
    pub fn load(&mut self, addr: u64, now: u64, fp: bool) -> AccessResult {
        // Hot case: nothing in flight, nothing pending, plain integer
        // L1D hit. `prune` and the pending-fill lookup are no-ops on
        // empty lists, so skipping them is exact.
        if !fp && self.inflight.is_empty() && self.pending_fills.is_empty() {
            if self.l1d.access_fill(addr) {
                return AccessResult {
                    level: HitLevel::L1,
                    latency: self.config.l1_latency,
                };
            }
            // L1D already looked up (and the line filled); continue
            // from L2 exactly as the full path would.
            return self.load_beyond_l1(addr, now);
        }
        self.load_full(addr, now, fp)
    }

    /// Out-of-line general case of [`Hierarchy::load`]: in-flight or
    /// pending state to maintain, or an FP access.
    #[inline(never)]
    fn load_full(&mut self, addr: u64, now: u64, fp: bool) -> AccessResult {
        self.prune(now);

        // Overlap with an in-flight prefetch of the same line: pay only
        // the remaining fill latency (partial prefetch coverage). The
        // prune above removed completed fills, so any match is still in
        // flight even if the tag arrays were updated eagerly.
        if !self.pending_fills.is_empty() {
            let l2_line = addr & self.l2_line_mask;
            let pending = self
                .pending_fills
                .iter()
                .filter(|&&(l, _)| l == l2_line)
                .map(|&(_, c)| c)
                .min();
            if let Some(complete) = pending {
                let remaining = complete.saturating_sub(now).max(self.config.l1_latency);
                self.fill_all(addr, fp);
                let level = if remaining <= self.config.l2_latency {
                    HitLevel::L2
                } else if remaining <= self.config.l3_latency {
                    HitLevel::L3
                } else {
                    HitLevel::Memory
                };
                return AccessResult {
                    level,
                    latency: remaining,
                };
            }
        }
        // Each level is looked up with `access_fill`, which fills the
        // line on a miss in the same scan; by the time the servicing
        // level is known, every level above it is already filled, so no
        // trailing `fill_all` is needed (FP accesses still skip L1D).
        if !fp && self.l1d.access_fill(addr) {
            return AccessResult {
                level: HitLevel::L1,
                latency: self.config.l1_latency,
            };
        }
        self.load_beyond_l1(addr, now)
    }

    /// L2-and-below portion of a demand load; the L1D lookup (for
    /// integer accesses) has already happened and missed.
    #[inline(never)]
    fn load_beyond_l1(&mut self, addr: u64, now: u64) -> AccessResult {
        if self.l2.access_fill(addr) {
            return AccessResult {
                level: HitLevel::L2,
                latency: self.config.l2_latency,
            };
        }
        let queue = self.mshr_wait(now);
        let (level, latency) = if self.l3.access_fill(addr) {
            (HitLevel::L3, self.config.l3_latency + queue)
        } else {
            // Main memory: respect the bus bandwidth limit.
            let start = (now + queue).max(self.mem_next_free);
            self.mem_next_free = start + self.config.mem_service_interval;
            (HitLevel::Memory, start - now + self.config.mem_latency)
        };
        self.inflight.push(now + latency);
        AccessResult { level, latency }
    }

    fn fill_all(&mut self, addr: u64, fp: bool) {
        if !fp {
            self.l1d.fill(addr);
        }
        self.l2.fill(addr);
        self.l3.fill(addr);
    }

    /// A store at `addr`: updates whatever levels hold the line
    /// (write-through, no-allocate on miss, no stall — store buffers).
    pub fn store(&mut self, addr: u64) {
        self.l1d.touch(addr);
        self.l2.touch(addr);
        self.l3.touch(addr);
    }

    /// An `lfetch` hint at `addr` on cycle `now`: starts a non-blocking
    /// fill unless the line is already present or the MSHRs are full (in
    /// which case the hint is dropped, as hardware does).
    pub fn lfetch(&mut self, addr: u64, now: u64) {
        self.prune(now);
        self.lfetch_issued += 1;
        let l2_line = addr & self.l2_line_mask;
        if self.pending_fills.iter().any(|&(l, _)| l == l2_line) {
            return; // already being fetched
        }
        if self.l2.probe(addr) && self.l1d.probe(addr) {
            return; // already everywhere useful
        }
        if self.inflight.len() >= self.config.mshrs {
            self.lfetch_dropped += 1;
            return;
        }
        let latency = if self.l2.probe(addr) {
            self.config.l2_latency
        } else if self.l3.probe(addr) {
            self.config.l3_latency
        } else {
            let start = now.max(self.mem_next_free);
            self.mem_next_free = start + self.config.mem_service_interval;
            start - now + self.config.mem_latency
        };
        self.inflight.push(now + latency);
        self.pending_fills.push((l2_line, now + latency));
        // Tag arrays are updated eagerly; timing is handled by
        // `pending_fills` when a demand access arrives early.
        self.fill_all(addr, false);
    }

    /// A timed instruction fetch of the bundle at `addr`.
    ///
    /// Returns the stall in cycles (0 on an L1I hit).
    #[inline]
    pub fn ifetch(&mut self, addr: u64, _now: u64) -> u64 {
        let line = addr >> self.l1i_line_shift;
        if line == self.last_ifetch_line {
            // Repeat of the last fetched line: guaranteed L1I hit; only
            // the hit counter needs to move (see field docs).
            self.l1i.hits += 1;
            return 0;
        }
        self.ifetch_new_line(addr, line)
    }

    /// Out-of-line half of [`Hierarchy::ifetch`] for a line other than
    /// the memoized one; keeps the per-bundle inlined path to a shift
    /// and a compare.
    #[inline(never)]
    fn ifetch_new_line(&mut self, addr: u64, line: u64) -> u64 {
        self.last_ifetch_line = line;
        if self.l1i.access_fill(addr) {
            return 0;
        }
        if self.l2.access_fill(addr) {
            self.config.l2_latency
        } else if self.l3.access_fill(addr) {
            self.config.l3_latency
        } else {
            self.config.mem_latency
        }
    }

    /// Number of misses currently in flight.
    pub fn inflight_misses(&self) -> usize {
        self.inflight.len()
    }
}

impl ToJson for Hierarchy {
    /// Per-level hit/miss counts plus `lfetch` issue/drop statistics —
    /// the cache section of every experiment report.
    fn to_json(&self) -> Json {
        let level = |c: &Cache| {
            let (hits, misses) = c.stats();
            Json::object().with("hits", hits).with("misses", misses)
        };
        let (issued, dropped) = self.lfetch_stats();
        Json::object()
            .with("l1d", level(&self.l1d))
            .with("l1i", level(&self.l1i))
            .with("l2", level(&self.l2))
            .with("l3", level(&self.l3))
            .with(
                "lfetch",
                Json::object()
                    .with("issued", issued)
                    .with("dropped", dropped),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(CacheConfig::default())
    }

    #[test]
    fn cold_load_hits_memory_then_l1() {
        let mut h = small();
        let r1 = h.load(0x1000_0000, 0, false);
        assert_eq!(r1.level, HitLevel::Memory);
        assert_eq!(r1.latency, h.config().mem_latency);
        let r2 = h.load(0x1000_0000, 200, false);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, 1);
    }

    #[test]
    fn fp_loads_bypass_l1() {
        let mut h = small();
        h.load(0x1000_0000, 0, true);
        let r = h.load(0x1000_0000, 300, true);
        assert_eq!(r.level, HitLevel::L2);
        assert_eq!(r.latency, h.config().l2_latency);
        // An integer load of the same line also misses L1 (FP fill did
        // not populate L1D) but hits L2.
        let r = h.load(0x1000_0000, 600, false);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn lfetch_makes_future_load_fast() {
        let mut h = small();
        let mem = h.config().mem_latency;
        h.lfetch(0x2000_0000, 0);
        // Long after the fill completes: L1 hit.
        let r = h.load(0x2000_0000, mem + 10, false);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn early_demand_pays_partial_latency() {
        let mut h = small();
        h.lfetch(0x2000_0000, 0);
        // Arrive halfway through the fill: pay roughly the remainder.
        let half = h.config().mem_latency / 2;
        let r = h.load(0x2000_0000, half, false);
        assert!(r.latency < h.config().mem_latency);
        assert!(r.latency >= h.config().l2_latency);
    }

    #[test]
    fn lfetch_dropped_when_mshrs_full() {
        let mut h = small();
        for i in 0..h.config().mshrs as u64 {
            h.lfetch(0x3000_0000 + i * 4096, 0);
        }
        let before = h.lfetch_stats().1;
        h.lfetch(0x4000_0000, 0);
        assert_eq!(h.lfetch_stats().1, before + 1);
    }

    #[test]
    fn mshr_pressure_queues_demand_misses() {
        let mut h = small();
        let mut last = 0;
        for i in 0..(h.config().mshrs as u64 + 4) {
            let r = h.load(0x5000_0000 + i * 4096, 0, false);
            last = r.latency;
        }
        assert!(
            last > h.config().mem_latency,
            "queued miss should exceed raw latency"
        );
    }

    #[test]
    fn lru_eviction_works() {
        let mut c = Cache::new("t", 256, 64, 2); // 2 sets, 2 ways
                                                 // Three lines mapping to set 0 (line addresses 0, 128, 256).
        assert!(!c.access(0));
        c.fill(0);
        assert!(!c.access(128));
        c.fill(128);
        assert!(c.access(0)); // refresh 0, so 128 is now LRU
        assert!(!c.access(256));
        c.fill(256); // evicts 128
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn ifetch_misses_then_hits() {
        let mut h = small();
        let s1 = h.ifetch(0x4000_0000, 0);
        assert!(s1 > 0);
        let s2 = h.ifetch(0x4000_0000, 10);
        assert_eq!(s2, 0);
    }

    #[test]
    fn store_does_not_allocate() {
        let mut h = small();
        h.store(0x6000_0000);
        let r = h.load(0x6000_0000, 100, false);
        assert_eq!(r.level, HitLevel::Memory);
    }

    #[test]
    fn dear_threshold_separates_l2_hits() {
        let cfg = CacheConfig::default();
        assert!(cfg.l2_latency < DEAR_LATENCY_THRESHOLD);
        assert!(cfg.l3_latency >= DEAR_LATENCY_THRESHOLD);
        assert!(cfg.mem_latency >= DEAR_LATENCY_THRESHOLD);
    }

    #[test]
    fn memory_bandwidth_caps_streaming() {
        // Back-to-back memory misses must be spaced by at least the
        // service interval: the Nth fill completes no earlier than
        // N * interval after the first.
        let mut h = small();
        let cfg = h.config().clone();
        let n = 8u64;
        let mut last_latency = 0;
        for i in 0..n {
            let r = h.load(0x7_000_000 + i * 4096, 0, false); // all at cycle 0
            last_latency = r.latency;
        }
        assert!(
            last_latency >= cfg.mem_latency + (n - 1) * cfg.mem_service_interval,
            "8th concurrent miss must wait for bus slots: {last_latency}"
        );
    }

    #[test]
    fn l3_hits_are_not_bandwidth_capped() {
        let mut h = small();
        // Warm a line into L3 only (fill, then evict from L2 by filling
        // conflicting lines would be complex; instead check latency of
        // an L3 hit path via lfetch bookkeeping): simplest: a memory
        // load then re-load far later is an L1 hit; here we just check
        // two simultaneous L3-class hits don't queue. Warm two lines:
        let a = 0x900_0000u64;
        h.load(a, 0, false);
        let warm = h.config().mem_latency * 2;
        // Both lines now in caches; same-cycle re-loads at L1 cost 1.
        let r1 = h.load(a, warm, false);
        let r2 = h.load(a + 8, warm, false);
        assert_eq!(r1.latency, 1);
        assert_eq!(r2.latency, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new("bad", 100, 48, 2);
    }
}
