//! The pluggable execution-tier dispatch behind [`Machine::run`].
//!
//! [`Machine::run`](crate::Machine::run) used to hold two hand-copied
//! run loops (sampled and unsampled, once per execution path); the
//! loop now lives once in `Machine::drive`, generic over an
//! [`ExecTier`], and each tier contributes only its *step*: how one
//! bundle (or, for the threaded tier, one compiled region) executes.
//! The stop protocol — fault, cycle cap, sample-buffer overflow — is
//! shared, so a new tier cannot get it subtly wrong.
//!
//! Tier contract:
//!
//! | tier                  | step                              | timing |
//! |-----------------------|-----------------------------------|--------|
//! | [`Reference`]         | `Machine::step_bundle`            | cycle-exact |
//! | [`Fast`]              | `Machine::step_bundle_fast`       | cycle-exact (bit-identical to Reference) |
//! | [`Threaded`]          | `Machine::jit_step`               | architectural state only |
//!
//! `SAMPLING` is a compile-time split: the unsampled instantiation of
//! each step carries no sample checks at all. The reference step
//! ignores it (its shared retire path already no-ops when sampling is
//! off), which keeps the reference implementation maximally plain.

use crate::machine::Machine;

/// One execution tier: a strategy for advancing the machine by one
/// step under the shared stop protocol of `Machine::drive`.
///
/// A step must (a) make forward progress or set `fault`/`halted`, and
/// (b) leave the machine resumable: `ip`, registers and counters
/// consistent, so the next step (on any tier) continues correctly.
/// `cycle_limit` is advisory for single-bundle tiers (the drive loop
/// checks it between steps) but binding for multi-bundle steps, which
/// must return soon after `cycle` reaches it.
pub(crate) trait ExecTier {
    /// Advances the machine by one step.
    fn step<const SAMPLING: bool>(m: &mut Machine, cycle_limit: u64);
}

/// The straight-line reference implementation (cycle-exact).
pub(crate) struct Reference;

impl ExecTier for Reference {
    fn step<const SAMPLING: bool>(m: &mut Machine, _cycle_limit: u64) {
        m.step_bundle();
    }
}

/// The predecoded fast implementation (cycle-exact, bit-identical to
/// [`Reference`]).
pub(crate) struct Fast;

impl ExecTier for Fast {
    fn step<const SAMPLING: bool>(m: &mut Machine, _cycle_limit: u64) {
        m.step_bundle_fast::<SAMPLING>();
    }
}

/// The threaded-code compile tier (architectural state exact, timing
/// unmodeled); see [`crate::jit`].
pub(crate) struct Threaded;

impl ExecTier for Threaded {
    fn step<const SAMPLING: bool>(m: &mut Machine, cycle_limit: u64) {
        m.jit_step::<SAMPLING>(cycle_limit);
    }
}
