//! Performance monitoring unit: counters, branch trace buffer, DEAR.
//!
//! Models the Itanium 2 PMU features ADORE consumes (paper §2.1): the
//! accumulative counters (CPU cycles, retired instructions, data-cache
//! load misses), the 4-entry **Branch Trace Buffer** recording the most
//! recent branch outcomes with source/target addresses, and the **Data
//! Event Address Registers** holding the most recent qualifying cache
//! miss (pc, miss address, latency ≥ 8 cycles).

use isa::{Addr, Pc};
use obs::{Json, ToJson};

use crate::cache::DEAR_LATENCY_THRESHOLD;

/// Accumulative PMU counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// CPU cycles.
    pub cycles: u64,
    /// Retired instructions (all slots, including predicated-off and
    /// nops, as on Itanium).
    pub retired: u64,
    /// Loads that missed the L1D (any latency).
    pub l1d_misses: u64,
    /// Loads with latency ≥ 8 cycles (DEAR-qualifying; L2-or-worse).
    pub dear_misses: u64,
    /// Total latency of DEAR-qualifying misses.
    pub dear_latency: u64,
    /// Instruction-cache misses.
    pub l1i_misses: u64,
    /// Executed loads.
    pub loads: u64,
    /// Data TLB misses.
    pub dtlb_misses: u64,
    /// Executed branch-unit instructions.
    pub branches: u64,
    /// Cycles stalled waiting for data-memory results (stall-on-use).
    pub stall_mem: u64,
    /// Cycles stalled waiting for floating-point results.
    pub stall_fp: u64,
    /// Cycles lost to taken-branch bubbles.
    pub stall_branch: u64,
    /// Cycles lost to instruction-cache misses.
    pub stall_icache: u64,
    /// Cycles charged as runtime-system overhead (sampling handler,
    /// patch publication).
    pub overhead_cycles: u64,
}

impl ToJson for Counters {
    fn to_json(&self) -> Json {
        Json::object()
            .with("cycles", self.cycles)
            .with("retired", self.retired)
            .with("l1d_misses", self.l1d_misses)
            .with("dear_misses", self.dear_misses)
            .with("dear_latency", self.dear_latency)
            .with("l1i_misses", self.l1i_misses)
            .with("loads", self.loads)
            .with("dtlb_misses", self.dtlb_misses)
            .with("branches", self.branches)
            .with("stall_mem", self.stall_mem)
            .with("stall_fp", self.stall_fp)
            .with("stall_branch", self.stall_branch)
            .with("stall_icache", self.stall_icache)
            .with("overhead_cycles", self.overhead_cycles)
    }
}

/// One Branch Trace Buffer record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// Address of the branch instruction.
    pub source: Pc,
    /// Branch target (the fall-through address for not-taken branches).
    pub target: Addr,
    /// Whether the branch was taken.
    pub taken: bool,
}

/// The 4-entry circular branch trace buffer.
#[derive(Debug, Clone, Default)]
pub struct BranchTraceBuffer {
    entries: [Option<BtbEntry>; 4],
    next: usize,
}

impl BranchTraceBuffer {
    /// Records a branch outcome.
    pub fn record(&mut self, entry: BtbEntry) {
        self.entries[self.next] = Some(entry);
        self.next = (self.next + 1) % 4;
    }

    /// Snapshot in recording order, oldest first.
    pub fn snapshot(&self) -> Vec<BtbEntry> {
        let mut out = Vec::with_capacity(4);
        for i in 0..4 {
            if let Some(e) = self.entries[(self.next + i) % 4] {
                out.push(e);
            }
        }
        out
    }
}

/// Which event class a DEAR record describes. The hardware register
/// reports data-cache misses, DTLB misses and ALAT misses (paper §2.1);
/// ADORE's prefetcher only consumes the cache-miss events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DearKind {
    /// A data-cache load miss.
    #[default]
    CacheMiss,
    /// A data TLB miss serviced by the hardware walker.
    TlbMiss,
}

/// The Data Event Address Register contents: the most recent qualifying
/// data-side event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DearRecord {
    /// Address of the load instruction that missed.
    pub load_pc: Pc,
    /// The data address that missed.
    pub miss_addr: u64,
    /// Observed load latency in cycles.
    pub latency: u64,
    /// Event class.
    pub kind: DearKind,
}

/// The complete PMU state.
///
/// The DEAR follows the IA-64 event-address-register protocol: it
/// *latches* one qualifying event and holds it until the sampling read
/// re-arms it. (A naive most-recent-overwrite model would make samples
/// observe almost exclusively the last load of each miss burst, hiding
/// the other delinquent loads from the optimizer.)
#[derive(Debug, Clone)]
pub struct Pmu {
    /// Accumulative counters.
    pub counters: Counters,
    /// Branch trace buffer.
    pub btb: BranchTraceBuffer,
    /// Most recently latched DEAR record, if any.
    pub dear: Option<DearRecord>,
    dear_armed: bool,
}

impl Default for Pmu {
    fn default() -> Pmu {
        Pmu {
            counters: Counters::default(),
            btb: BranchTraceBuffer::default(),
            dear: None,
            dear_armed: true,
        }
    }
}

impl Pmu {
    /// Creates a PMU with zeroed counters.
    pub fn new() -> Pmu {
        Pmu::default()
    }

    /// Records a load with its observed latency; updates miss counters,
    /// and latches the DEAR when it is armed and the latency qualifies.
    pub fn record_load(&mut self, pc: Pc, addr: u64, latency: u64, l1_hit: bool) {
        self.counters.loads += 1;
        if !l1_hit {
            self.counters.l1d_misses += 1;
        }
        if latency >= DEAR_LATENCY_THRESHOLD {
            self.counters.dear_misses += 1;
            self.counters.dear_latency += latency;
            if self.dear_armed {
                self.dear = Some(DearRecord {
                    load_pc: pc,
                    miss_addr: addr,
                    latency,
                    kind: DearKind::CacheMiss,
                });
                self.dear_armed = false;
            }
        }
    }

    /// Records a DTLB miss; latched into the DEAR (as a TLB event) when
    /// armed, exactly like cache-miss events.
    pub fn record_tlb_miss(&mut self, pc: Pc, addr: u64, latency: u64) {
        self.counters.dtlb_misses += 1;
        if self.dear_armed {
            self.dear = Some(DearRecord {
                load_pc: pc,
                miss_addr: addr,
                latency,
                kind: DearKind::TlbMiss,
            });
            self.dear_armed = false;
        }
    }

    /// Re-arms the DEAR after a sample read it. The held record stays
    /// visible until the next qualifying miss replaces it.
    pub fn rearm_dear(&mut self) {
        self.dear_armed = true;
    }

    /// Records a branch outcome in the BTB.
    pub fn record_branch(&mut self, source: Pc, target: Addr, taken: bool) {
        self.counters.branches += 1;
        self.btb.record(BtbEntry {
            source,
            target,
            taken,
        });
    }
}

/// One PMU sample: the n-tuple ADORE receives from perfmon
/// (paper §2.1): `<sample index, pc, cycles, d-cache miss count,
/// retired count, BTB values, DEAR values>`.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Monotonically increasing sample index.
    pub index: u64,
    /// Program counter at sample time.
    pub pc: Pc,
    /// Accumulative cycle counter.
    pub cycles: u64,
    /// Accumulative retired-instruction counter.
    pub retired: u64,
    /// Accumulative DEAR-qualifying miss counter.
    pub dcache_misses: u64,
    /// Branch trace buffer snapshot (up to 4 entries, oldest first).
    pub btb: Vec<BtbEntry>,
    /// DEAR contents at sample time.
    pub dear: Option<DearRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(a: u64, slot: u8) -> Pc {
        Pc::new(Addr(a), slot)
    }

    #[test]
    fn btb_keeps_last_four_in_order() {
        let mut btb = BranchTraceBuffer::default();
        for i in 0..6u64 {
            btb.record(BtbEntry {
                source: pc(0x4000_0000 + i * 16, 2),
                target: Addr(0x5000_0000),
                taken: i % 2 == 0,
            });
        }
        let snap = btb.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].source, pc(0x4000_0020, 2)); // entries 2..5 remain
        assert_eq!(snap[3].source, pc(0x4000_0050, 2));
    }

    #[test]
    fn dear_updates_only_on_qualifying_misses() {
        let mut pmu = Pmu::new();
        pmu.record_load(pc(0x4000_0000, 0), 0x1000_0000, 6, false);
        assert!(pmu.dear.is_none());
        assert_eq!(pmu.counters.l1d_misses, 1);
        assert_eq!(pmu.counters.dear_misses, 0);

        pmu.record_load(pc(0x4000_0010, 0), 0x1000_0040, 160, false);
        let d = pmu.dear.unwrap();
        assert_eq!(d.miss_addr, 0x1000_0040);
        assert_eq!(d.latency, 160);
        assert_eq!(d.kind, DearKind::CacheMiss);
        assert_eq!(pmu.counters.dear_misses, 1);
        assert_eq!(pmu.counters.dear_latency, 160);
    }

    #[test]
    fn l1_hits_do_not_count_as_misses() {
        let mut pmu = Pmu::new();
        pmu.record_load(pc(0x4000_0000, 0), 0x1000_0000, 1, true);
        assert_eq!(pmu.counters.loads, 1);
        assert_eq!(pmu.counters.l1d_misses, 0);
        assert!(pmu.dear.is_none());
    }

    #[test]
    fn dear_latches_until_rearmed() {
        let mut pmu = Pmu::new();
        pmu.record_load(pc(0x4000_0000, 0), 0x1000_0000, 160, false);
        // A second qualifying miss does NOT overwrite the latched record.
        pmu.record_load(pc(0x4000_0010, 1), 0x1000_0040, 160, false);
        assert_eq!(pmu.dear.unwrap().load_pc, pc(0x4000_0000, 0));
        assert_eq!(
            pmu.counters.dear_misses, 2,
            "counters still count everything"
        );
        // After re-arming, the next qualifying miss is captured.
        pmu.rearm_dear();
        pmu.record_load(pc(0x4000_0020, 2), 0x1000_0080, 13, false);
        assert_eq!(pmu.dear.unwrap().load_pc, pc(0x4000_0020, 2));
    }

    #[test]
    fn tlb_events_are_latched_with_their_kind() {
        let mut pmu = Pmu::new();
        pmu.record_tlb_miss(pc(0x4000_0000, 0), 0x1000_0000, 25);
        assert_eq!(pmu.dear.unwrap().kind, DearKind::TlbMiss);
        assert_eq!(pmu.counters.dtlb_misses, 1);
        // Latched: a subsequent cache miss does not replace it.
        pmu.record_load(pc(0x4000_0010, 0), 0x1000_0040, 160, false);
        assert_eq!(pmu.dear.unwrap().kind, DearKind::TlbMiss);
    }

    #[test]
    fn branch_recording_counts() {
        let mut pmu = Pmu::new();
        pmu.record_branch(pc(0x4000_0000, 2), Addr(0x4000_0100), true);
        assert_eq!(pmu.counters.branches, 1);
        assert_eq!(pmu.btb.snapshot().len(), 1);
    }
}
