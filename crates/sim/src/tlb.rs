//! Data TLB model.
//!
//! The Itanium 2 DEAR reports data-cache misses, **TLB misses** and ALAT
//! misses (paper §2.1); ADORE programs it for cache misses, so the
//! runtime must be able to tell the event kinds apart. The TLB also
//! constrains prefetching the way real hardware does: a non-faulting
//! `lfetch` that misses the DTLB is silently dropped rather than walking
//! the page table.

/// DTLB configuration. Defaults approximate the Itanium 2 L2 DTLB with
/// 16 KB pages.
#[derive(Debug, Clone)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (must be a power of two).
    pub page_bytes: u64,
    /// Hardware-walker latency added to a demand access that misses.
    pub miss_latency: u64,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig {
            entries: 128,
            page_bytes: 16 * 1024,
            miss_latency: 25,
        }
    }
}

/// A fully associative, true-LRU translation buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// (page number, LRU stamp); linear scan — entry counts are small.
    entries: Vec<(u64, u64)>,
    /// Page of the most recent `access`, short-circuiting the scan for
    /// consecutive same-page translations. Exact: between two
    /// consecutive accesses to the same page no other entry's stamp can
    /// change, so skipping the refresh preserves relative LRU order
    /// (the memoized page already holds the newest stamp).
    last_page: u64,
    /// `log2(page_bytes)`: page numbers via shift, not hardware divide.
    page_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics unless the page size is a power of two and there is at
    /// least one entry.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(config.entries > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(config.entries),
            // No page number can reach u64::MAX (pages are addresses
            // divided by the page size), so MAX means "no memo".
            last_page: u64::MAX,
            page_shift: config.page_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
            config,
        }
    }

    /// Restores the just-constructed state in place — no mapped pages,
    /// no memo, zeroed statistics — while keeping the entry allocation
    /// (the snapshot-reset fast path between fuzz cases).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.last_page = u64::MAX;
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// The configuration in use.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn page(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Translates a demand access: returns the added latency (0 on a
    /// hit, the walker latency on a miss) and fills the entry.
    #[inline]
    pub fn access(&mut self, addr: u64) -> u64 {
        let page = self.page(addr);
        if page == self.last_page {
            self.hits += 1;
            return 0;
        }
        self.access_new_page(page)
    }

    /// Out-of-line half of [`Tlb::access`] for a page other than the
    /// memoized one; keeps the per-load inlined path to a shift and a
    /// compare.
    #[inline(never)]
    fn access_new_page(&mut self, page: u64) -> u64 {
        self.last_page = page;
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.tick;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() == self.config.entries {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push((page, self.tick));
        self.config.miss_latency
    }

    /// Probes without filling (the `lfetch` path: hints that miss the
    /// TLB are dropped, they never walk the page table).
    pub fn probe(&self, addr: u64) -> bool {
        let page = self.page(addr);
        self.entries.iter().any(|(p, _)| *p == page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(TlbConfig::default());
        assert_eq!(t.access(0x1000_0000), 25);
        assert_eq!(t.access(0x1000_0008), 0, "same page");
        assert_eq!(t.access(0x1000_4000), 25, "next 16K page");
        assert_eq!(t.stats(), (1, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_latency: 10,
        });
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0008); // refresh page 0
        t.access(0x2000); // page 2 evicts page 1
        assert!(t.probe(0x0000));
        assert!(!t.probe(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn probe_does_not_fill() {
        let t = Tlb::new(TlbConfig::default());
        assert!(!t.probe(0x5000_0000));
    }

    #[test]
    fn reach_is_entries_times_page() {
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 4096,
            miss_latency: 10,
        });
        for i in 0..4u64 {
            t.access(i * 4096);
        }
        // All four still resident.
        for i in 0..4u64 {
            assert!(t.probe(i * 4096));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 3000,
            miss_latency: 10,
        });
    }
}
