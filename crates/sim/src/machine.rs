//! The simulated machine: an in-order, 2-bundles-per-cycle core in the
//! style of Itanium 2, wired to the cache hierarchy and the PMU.
//!
//! The timing model is deliberately simple but captures everything the
//! paper's results hinge on:
//!
//! - **issue width**: two bundles per cycle (the "two bundles per cycle"
//!   constraint of §1.3 that makes prefetch scheduling into free slots
//!   matter);
//! - **stall-on-use**: loads complete in the background and only stall
//!   the pipeline when a consumer reads the destination register before
//!   it is ready, so prefetches and far-ahead loads overlap misses;
//! - **non-blocking caches** with a bounded number of in-flight misses;
//! - **taken-branch bubble**, making inserted bundles genuinely costly;
//! - a **trace pool** address range from which patched traces execute.

use isa::{Addr, Bundle, Insn, Op, Pc, Program, SlotKind, TRACE_POOL_BASE};

use crate::cache::{CacheConfig, Hierarchy, HitLevel};
use crate::code::CodeStore;
use crate::mem::Memory;
use crate::pmu::{Pmu, Sample};
use crate::tlb::{Tlb, TlbConfig};

/// PMU sampling configuration (perfmon-style).
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Cycles between samples (paper: ≥ 100,000 on real hardware; the
    /// simulated runs are shorter so the default is scaled down).
    pub interval_cycles: u64,
    /// System Sample Buffer capacity in samples; the run loop stops with
    /// [`StopReason::SampleBufferOverflow`] when it fills.
    pub buffer_capacity: usize,
    /// Cycles charged to the main thread per sample taken (the PMU
    /// interrupt cost; this is where ADORE's 1–2 % overhead comes from).
    pub per_sample_cost: u64,
    /// Fractional randomization of the sampling period (perfmon's
    /// period randomization): each interval is drawn uniformly from
    /// `interval * (1 ± jitter)`. Without it, samples alias onto loop
    /// structure and the DEAR only ever observes one load per loop.
    pub jitter: f64,
    /// Seed for the period-randomization LCG. Deterministic for a given
    /// configuration: two machines with the same seed draw identical
    /// jitter sequences, which is what lets the parallel experiment
    /// engine reproduce serial results cell for cell regardless of
    /// worker count or scheduling order.
    pub seed: u64,
}

/// Default LCG seed (golden-ratio constant, the historical hardwired
/// value — kept so runs without an explicit seed reproduce old reports).
pub const DEFAULT_SAMPLING_SEED: u64 = 0x9e3779b97f4a7c15;

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            interval_cycles: 20_000,
            buffer_capacity: 100,
            per_sample_cost: 150,
            jitter: 0.3,
            seed: DEFAULT_SAMPLING_SEED,
        }
    }
}

/// Which execution tier [`Machine::run`] uses.
///
/// The reference and fast tiers are cycle-exact with respect to each
/// other: identical architectural state, identical PMU counters,
/// identical sample streams. The reference tier is the straightforward
/// implementation kept for differential testing; the fast tier executes
/// from the predecoded [`CodeStore`] and skips per-step allocations and
/// sampling checks. The threaded tier trades the timing model away for
/// raw throughput: hot regions compile to chains of closures
/// (see [`crate::jit`]), architectural state stays exact, cycle counts
/// and cache statistics do not — [`ExecPath::is_cycle_exact`] is the
/// contract flag timing-sensitive harnesses must check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPath {
    /// Straight-line implementation: resolve and clone the `Bundle` at
    /// `ip` every step, derive scoreboard read sets on the fly.
    Reference,
    /// Predecoded implementation (the default): index into the
    /// [`CodeStore`] arena, walk fixed-size precomputed read sets,
    /// skip nops and sampling checks in the common path.
    #[default]
    Fast,
    /// Threaded-code compile tier: interprets cold code on the fast
    /// tier while counting entries, compiles hot regions into direct-
    /// threaded closure chains, and deopts back to interpretation when
    /// a live patch bumps the code-store generation. Architectural
    /// state is exact; timing is **not** modeled.
    Threaded,
}

impl ExecPath {
    /// Every tier, in declaration order.
    pub const ALL: [ExecPath; 3] = [ExecPath::Reference, ExecPath::Fast, ExecPath::Threaded];

    /// The `|`-joined list of every parseable tier name — the single
    /// value list shared by [`FromStr`](std::str::FromStr) errors and
    /// CLI `--help` text, so the two can never drift apart.
    pub const VALUE_LIST: &'static str = "reference|fast|threaded";

    /// The tier's canonical lowercase name (what [`FromStr`]
    /// accepts and [`Display`](std::fmt::Display) prints).
    pub fn name(self) -> &'static str {
        match self {
            ExecPath::Reference => "reference",
            ExecPath::Fast => "fast",
            ExecPath::Threaded => "threaded",
        }
    }

    /// Whether this tier models timing exactly. The reference and fast
    /// tiers agree cycle for cycle and counter for counter; the
    /// threaded tier only guarantees architectural state. Timing-
    /// sensitive harnesses (golden cycles, figure/table grids, policy
    /// replay) assert this before trusting a machine's cycle counts.
    pub fn is_cycle_exact(self) -> bool {
        !matches!(self, ExecPath::Threaded)
    }
}

impl std::str::FromStr for ExecPath {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecPath, String> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Ok(ExecPath::Reference),
            "fast" => Ok(ExecPath::Fast),
            "threaded" => Ok(ExecPath::Threaded),
            other => Err(format!(
                "unknown exec path {other:?} (expected one of: {})",
                ExecPath::VALUE_LIST
            )),
        }
    }
}

impl std::fmt::Display for ExecPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cache hierarchy geometry and latencies.
    pub cache: CacheConfig,
    /// Data arena capacity in bytes.
    pub mem_capacity: usize,
    /// Bubble cycles on a taken branch.
    pub taken_branch_penalty: u64,
    /// Latency of floating-point arithmetic (`fma` etc.).
    pub fp_latency: u64,
    /// Latency of cross-unit moves (`getf`/`setf`), part of what makes
    /// fp↔int address computations hostile to stride detection.
    pub xfer_latency: u64,
    /// PMU sampling; `None` disables sampling entirely.
    pub sampling: Option<SamplingConfig>,
    /// Data TLB geometry and walker latency.
    pub tlb: TlbConfig,
    /// Trace-pool capacity in bundles (the shared-memory block
    /// `dyn_open` allocates once, paper §2.2).
    pub trace_pool_bundles: usize,
    /// Execution engine; [`ExecPath::Fast`] unless overridden.
    pub exec_path: ExecPath,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            cache: CacheConfig::default(),
            mem_capacity: 64 << 20,
            taken_branch_penalty: 1,
            fp_latency: 4,
            xfer_latency: 5,
            sampling: None,
            tlb: TlbConfig::default(),
            trace_pool_bundles: 16 * 1024,
            exec_path: ExecPath::default(),
        }
    }
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `Halt`.
    Halted,
    /// The sample buffer filled; drain it with [`Machine::drain_samples`].
    SampleBufferOverflow,
    /// The requested cycle limit was reached.
    CycleLimit,
    /// The program performed an unrecoverable architectural fault
    /// (wild branch, unmapped data access, return-stack underflow).
    /// The machine stays faulted: further `run` calls return the same
    /// reason without executing anything.
    Faulted(Fault),
}

/// An architectural fault raised by the executing program.
///
/// Faults are defined outcomes, not harness crashes: a generated or
/// adversarial program that branches into the void or dereferences a
/// wild pointer stops with a precise fault instead of panicking the
/// simulator. Earlier slots of the faulting bundle keep their effects;
/// the faulting instruction has none (no destination write, no
/// post-increment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Instruction fetch from an address with no bundle behind it.
    UnmappedFetch(Addr),
    /// Non-speculative load outside the data arena.
    UnmappedLoad {
        /// Faulting data address.
        addr: u64,
        /// Access width in bytes.
        len: u64,
    },
    /// Store outside the data arena.
    UnmappedStore {
        /// Faulting data address.
        addr: u64,
        /// Access width in bytes.
        len: u64,
    },
    /// `br.ret` with an empty return stack.
    ReturnUnderflow,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::UnmappedFetch(a) => write!(f, "instruction fetch from unmapped address {a}"),
            Fault::UnmappedLoad { addr, len } => {
                write!(f, "{len}-byte load from unmapped address {addr:#x}")
            }
            Fault::UnmappedStore { addr, len } => {
                write!(f, "{len}-byte store to unmapped address {addr:#x}")
            }
            Fault::ReturnUnderflow => write!(f, "br.ret with empty return stack"),
        }
    }
}

/// Error returned by patching operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The address does not map to a bundle.
    BadAddress(Addr),
    /// The trace pool is full (its size is fixed at `dyn_open` time).
    PoolFull,
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::BadAddress(a) => write!(f, "no bundle at address {a}"),
            PatchError::PoolFull => write!(f, "trace pool exhausted"),
        }
    }
}

impl std::error::Error for PatchError {}

/// What a pending register value is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum StallSource {
    #[default]
    None,
    Memory,
    Fp,
}

#[derive(Debug)]
pub(crate) struct SampleState {
    next_at: u64,
    index: u64,
    pub(crate) buffer: Vec<Sample>,
    /// LCG state for deterministic period randomization.
    rng: u64,
}

/// The simulated machine.
///
/// Fields are crate-visible so the predecoded fast path in
/// [`crate::exec`] can drive the same state; everything outside the
/// crate goes through the accessor methods.
#[derive(Debug)]
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) program: Program,
    pub(crate) pool: Vec<Bundle>,
    pub(crate) store: CodeStore,
    pub(crate) mem: Memory,
    pub(crate) caches: Hierarchy,
    pub(crate) tlb: Tlb,
    pub(crate) pmu: Pmu,
    pub(crate) gr: [i64; 128],
    pub(crate) fr: [f64; 128],
    pub(crate) pr: [bool; 64],
    pub(crate) gr_ready: [u64; 128],
    pub(crate) fr_ready: [u64; 128],
    /// What produced each register's pending value (stall attribution
    /// for the PMU's cycle-breakdown counters).
    pub(crate) gr_source: [StallSource; 128],
    pub(crate) fr_source: [StallSource; 128],
    pub(crate) ip: Addr,
    pub(crate) ret_stack: Vec<Addr>,
    pub(crate) cycle: u64,
    pub(crate) half_bundle: bool,
    pub(crate) halted: bool,
    pub(crate) fault: Option<Fault>,
    pub(crate) samples: Option<SampleState>,
    /// Threaded-tier compile state; `Some` iff
    /// `config.exec_path == ExecPath::Threaded`.
    pub(crate) jit: Option<Box<crate::jit::JitState>>,
}

// The parallel experiment engine runs one full simulation per worker
// thread, so every piece of run state must stay `Send`. Assert it at
// compile time: adding an `Rc`/raw pointer to any field breaks the
// build here rather than in a downstream crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
    assert_send::<MachineConfig>();
    assert_send::<SamplingConfig>();
};

impl Machine {
    /// Creates a machine ready to run `program`.
    pub fn new(program: Program, config: MachineConfig) -> Machine {
        let mut pr = [false; 64];
        pr[0] = true;
        let mut fr = [0.0; 128];
        fr[1] = 1.0;
        let samples = config.sampling.as_ref().map(|s| SampleState {
            next_at: s.interval_cycles,
            index: 0,
            buffer: Vec::with_capacity(s.buffer_capacity),
            rng: s.seed,
        });
        Machine {
            mem: Memory::new(config.mem_capacity),
            caches: Hierarchy::new(config.cache.clone()),
            tlb: Tlb::new(config.tlb.clone()),
            pmu: Pmu::new(),
            gr: [0; 128],
            fr,
            pr,
            gr_ready: [0; 128],
            fr_ready: [0; 128],
            gr_source: [StallSource::None; 128],
            fr_source: [StallSource::None; 128],
            ip: program.entry(),
            ret_stack: Vec::new(),
            cycle: 0,
            half_bundle: false,
            halted: false,
            fault: None,
            samples,
            jit: crate::jit::JitState::for_path(config.exec_path),
            pool: Vec::new(),
            store: CodeStore::new(&program),
            program,
            config,
        }
    }

    /// Re-arms the machine to power-on state for a fresh run of
    /// `program`, keeping the data arena's allocation and the code
    /// store's decoded-bundle buffers instead of reallocating them —
    /// the per-case setup cost the fuzzing campaign's snapshot/restore
    /// path avoids. `sampling` replaces the sampling configuration
    /// (each fuzz case derives its own PMU seed); every other config
    /// field — cache geometry, memory capacity, execution path —
    /// stays as constructed, so a reset machine is only valid for
    /// programs that fit the same geometry.
    ///
    /// Equivalent, cycle for cycle and bit for bit, to building a
    /// fresh `Machine::new(program, config)` with the swapped sampling
    /// — pinned by `reset_machine_is_bit_identical_to_fresh_machine` —
    /// with one deliberate exception: the code-store generation keeps
    /// counting up across resets (it never restarts at 0), so decoded
    /// entries from a previous program can never alias entries of the
    /// new one.
    pub fn reset(&mut self, program: Program, sampling: Option<SamplingConfig>) {
        self.config.sampling = sampling;
        self.mem.reset();
        self.caches.reset();
        self.tlb.reset();
        self.pmu = Pmu::new();
        self.gr = [0; 128];
        self.fr = [0.0; 128];
        self.fr[1] = 1.0;
        self.pr = [false; 64];
        self.pr[0] = true;
        self.gr_ready = [0; 128];
        self.fr_ready = [0; 128];
        self.gr_source = [StallSource::None; 128];
        self.fr_source = [StallSource::None; 128];
        self.ip = program.entry();
        self.ret_stack.clear();
        self.cycle = 0;
        self.half_bundle = false;
        self.halted = false;
        self.fault = None;
        self.samples = self.config.sampling.as_ref().map(|s| SampleState {
            next_at: s.interval_cycles,
            index: 0,
            buffer: Vec::with_capacity(s.buffer_capacity),
            rng: s.seed,
        });
        self.jit = crate::jit::JitState::for_path(self.config.exec_path);
        self.pool.clear();
        self.store.reset(&program);
        self.program = program;
    }

    // ---- accessors -------------------------------------------------

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Retired instruction count.
    pub fn retired(&self) -> u64 {
        self.pmu.counters.retired
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The architectural fault the program raised, if any.
    pub fn fault(&self) -> Option<Fault> {
        self.fault
    }

    /// The PMU state.
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// The cache hierarchy (statistics).
    pub fn caches(&self) -> &Hierarchy {
        &self.caches
    }

    /// The data TLB (statistics).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory (workload initialization).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The static program image.
    pub fn code(&self) -> &Program {
        &self.program
    }

    /// Current instruction pointer.
    pub fn ip(&self) -> Addr {
        self.ip
    }

    /// Reads a general register.
    pub fn gr(&self, r: isa::Gr) -> i64 {
        self.gr[r.index()]
    }

    /// Writes a general register (test and workload setup).
    pub fn set_gr(&mut self, r: isa::Gr, v: i64) {
        if r.index() != 0 {
            self.gr[r.index()] = v;
        }
    }

    /// Reads a predicate register.
    pub fn pr(&self, p: isa::Pr) -> bool {
        self.pr[p.index()]
    }

    /// Reads a floating-point register.
    pub fn fr(&self, r: isa::Fr) -> f64 {
        self.fr[r.index()]
    }

    /// Writes a floating-point register.
    pub fn set_fr(&mut self, r: isa::Fr, v: f64) {
        if r.index() > 1 {
            self.fr[r.index()] = v;
        }
    }

    /// The bundle at `addr`, resolving both static code and trace pool.
    pub fn bundle_at(&self, addr: Addr) -> Option<&Bundle> {
        if addr.0 >= TRACE_POOL_BASE {
            let idx = ((addr.0 - TRACE_POOL_BASE) / Addr::BUNDLE_BYTES) as usize;
            self.pool.get(idx)
        } else {
            self.program.bundle_at(addr)
        }
    }

    /// Number of bundles currently in the trace pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Generation counter of the predecoded code store. Every code
    /// mutation ([`Machine::install_trace`], [`Machine::replace_bundle`])
    /// bumps it and re-decodes the touched entries; patchers use it to
    /// assert their fixups actually invalidated stale decodes.
    pub fn code_generation(&self) -> u64 {
        self.store.generation()
    }

    /// The configured execution engine.
    pub fn exec_path(&self) -> ExecPath {
        self.config.exec_path
    }

    /// Threaded-tier compile statistics: `None` unless the machine runs
    /// on [`ExecPath::Threaded`]. Tests and the differential oracle use
    /// this to observe region compiles and patch-boundary deopts.
    pub fn jit_stats(&self) -> Option<crate::jit::JitStats> {
        self.jit.as_ref().map(|j| j.stats)
    }

    // ---- patching (used by ADORE's trace patcher) -------------------

    /// Appends a trace to the trace pool, returning its start address.
    ///
    /// # Errors
    ///
    /// Fails with [`PatchError::PoolFull`] when the fixed-size pool
    /// cannot hold the trace.
    pub fn install_trace(&mut self, bundles: Vec<Bundle>) -> Result<Addr, PatchError> {
        if self.pool.len() + bundles.len() > self.config.trace_pool_bundles {
            return Err(PatchError::PoolFull);
        }
        let addr = Addr(TRACE_POOL_BASE + self.pool.len() as u64 * Addr::BUNDLE_BYTES);
        self.store.install_pool(&bundles);
        self.pool.extend(bundles);
        Ok(addr)
    }

    /// Remaining trace-pool capacity in bundles.
    pub fn pool_remaining(&self) -> usize {
        self.config.trace_pool_bundles - self.pool.len()
    }

    /// Replaces the bundle at `addr` (static code or trace pool),
    /// returning the original so the caller can unpatch later.
    ///
    /// # Errors
    ///
    /// Fails when `addr` does not map to a code bundle.
    pub fn replace_bundle(&mut self, addr: Addr, bundle: Bundle) -> Result<Bundle, PatchError> {
        if addr.0 >= TRACE_POOL_BASE {
            let idx = ((addr.0 - TRACE_POOL_BASE) / Addr::BUNDLE_BYTES) as usize;
            let slot = self.pool.get_mut(idx).ok_or(PatchError::BadAddress(addr))?;
            let old = std::mem::replace(slot, bundle.clone());
            let fixed = self.store.replace(addr, &bundle);
            debug_assert!(fixed, "code store out of sync with trace pool");
            return Ok(old);
        }
        let slot = self
            .program
            .bundle_at_mut(addr)
            .ok_or(PatchError::BadAddress(addr))?;
        let old = std::mem::replace(slot, bundle.clone());
        let fixed = self.store.replace(addr, &bundle);
        debug_assert!(fixed, "code store out of sync with program image");
        Ok(old)
    }

    /// Charges `n` cycles of overhead to the main thread (sampling
    /// signal handler, patch publication, …).
    pub fn charge_cycles(&mut self, n: u64) {
        self.cycle += n;
        self.pmu.counters.cycles = self.cycle;
        self.pmu.counters.overhead_cycles += n;
        self.half_bundle = false;
    }

    /// Drains the System Sample Buffer.
    pub fn drain_samples(&mut self) -> Vec<Sample> {
        match &mut self.samples {
            Some(s) => std::mem::take(&mut s.buffer),
            None => Vec::new(),
        }
    }

    // ---- execution ---------------------------------------------------

    /// Runs until halt, fault, sample-buffer overflow, or `cycle_limit`
    /// (absolute cycle count) is reached, on the configured
    /// [`ExecPath`]. The reference and fast tiers produce identical
    /// results; the threaded tier produces identical architectural
    /// state. Resuming after any stop (on any tier) continues exactly
    /// where the previous call left off.
    pub fn run(&mut self, cycle_limit: u64) -> StopReason {
        match self.config.exec_path {
            ExecPath::Reference => self.drive::<crate::tier::Reference>(cycle_limit),
            ExecPath::Fast => self.drive::<crate::tier::Fast>(cycle_limit),
            ExecPath::Threaded => self.drive::<crate::tier::Threaded>(cycle_limit),
        }
    }

    /// The shared run loop over any [`crate::tier::ExecTier`]: stop
    /// checks (fault, cycle cap, sample-buffer overflow) live here,
    /// once, so every tier observes the identical stop protocol. The
    /// sampling split is hoisted out of the loop: when sampling is off,
    /// the loop carries no buffer check and the tier's step runs its
    /// `SAMPLING = false` instantiation.
    fn drive<T: crate::tier::ExecTier>(&mut self, cycle_limit: u64) -> StopReason {
        match self.config.sampling.as_ref().map(|s| s.buffer_capacity) {
            None => {
                while !self.halted {
                    if let Some(f) = self.fault {
                        return StopReason::Faulted(f);
                    }
                    if self.cycle >= cycle_limit {
                        return StopReason::CycleLimit;
                    }
                    T::step::<false>(self, cycle_limit);
                }
                StopReason::Halted
            }
            Some(capacity) => {
                while !self.halted {
                    if let Some(f) = self.fault {
                        return StopReason::Faulted(f);
                    }
                    if self.cycle >= cycle_limit {
                        return StopReason::CycleLimit;
                    }
                    T::step::<true>(self, cycle_limit);
                    if self
                        .samples
                        .as_ref()
                        .is_some_and(|s| s.buffer.len() >= capacity)
                    {
                        return StopReason::SampleBufferOverflow;
                    }
                }
                StopReason::Halted
            }
        }
    }

    /// Runs to completion (halt or fault), ignoring samples (drains
    /// them on overflow).
    pub fn run_to_halt(&mut self) -> u64 {
        loop {
            match self.run(u64::MAX) {
                StopReason::SampleBufferOverflow => {
                    self.drain_samples();
                }
                _ => return self.cycle, // Halted or Faulted
            }
        }
    }

    pub(crate) fn stall_until(&mut self, ready: u64, source: StallSource) {
        if ready > self.cycle {
            let stall = ready - self.cycle;
            match source {
                StallSource::Memory => self.pmu.counters.stall_mem += stall,
                StallSource::Fp => self.pmu.counters.stall_fp += stall,
                StallSource::None => {}
            }
            self.cycle = ready;
            self.half_bundle = false;
        }
    }

    fn write_gr(&mut self, r: isa::Gr, v: i64, ready: u64) {
        self.write_gr_src(r, v, ready, StallSource::None)
    }

    fn write_gr_src(&mut self, r: isa::Gr, v: i64, ready: u64, source: StallSource) {
        if r.index() != 0 {
            self.gr[r.index()] = v;
            self.gr_ready[r.index()] = ready;
            self.gr_source[r.index()] = if ready > self.cycle {
                source
            } else {
                StallSource::None
            };
        }
    }

    fn write_fr(&mut self, r: isa::Fr, v: f64, ready: u64) {
        self.write_fr_src(r, v, ready, StallSource::Fp)
    }

    fn write_fr_src(&mut self, r: isa::Fr, v: f64, ready: u64, source: StallSource) {
        if r.index() > 1 {
            self.fr[r.index()] = v;
            self.fr_ready[r.index()] = ready;
            self.fr_source[r.index()] = if ready > self.cycle {
                source
            } else {
                StallSource::None
            };
        }
    }

    fn write_pr(&mut self, r: isa::Pr, v: bool) {
        if r.index() != 0 {
            self.pr[r.index()] = v;
        }
    }

    pub(crate) fn take_sample(&mut self, pc: Pc) {
        let (Some(ss), Some(cfg)) = (&mut self.samples, &self.config.sampling) else {
            return;
        };
        if self.cycle < ss.next_at {
            return;
        }
        self.cycle += cfg.per_sample_cost;
        self.pmu.counters.cycles = self.cycle;
        ss.buffer.push(Sample {
            index: ss.index,
            pc,
            cycles: self.cycle,
            retired: self.pmu.counters.retired,
            dcache_misses: self.pmu.counters.dear_misses,
            btb: self.pmu.btb.snapshot(),
            dear: self.pmu.dear,
        });
        ss.index += 1;
        ss.rng = ss
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (ss.rng >> 33) as f64 / (1u64 << 31) as f64; // [0, 1)
        let factor = 1.0 - cfg.jitter + 2.0 * cfg.jitter * u;
        let interval = (cfg.interval_cycles as f64 * factor).max(1.0) as u64;
        ss.next_at = self.cycle + interval;
        self.pmu.rearm_dear();
    }

    /// Executes one bundle, updating all timing state. The reference
    /// tier's step; [`crate::tier::Reference`] dispatches here.
    pub(crate) fn step_bundle(&mut self) {
        let bundle_addr = self.ip;
        let Some(bundle) = self.bundle_at(bundle_addr).cloned() else {
            self.fault = Some(Fault::UnmappedFetch(bundle_addr));
            return;
        };

        // Instruction fetch.
        let istall = self.caches.ifetch(bundle_addr.0, self.cycle);
        if istall > 0 {
            self.pmu.counters.l1i_misses += 1;
            self.pmu.counters.stall_icache += istall;
            self.cycle += istall;
            self.half_bundle = false;
        }

        let mut taken: Option<Addr> = None;
        let fall_through = bundle_addr.offset_bundles(1);

        for slot in 0..3u8 {
            let insn = bundle.slots[slot as usize];
            let pc = Pc::new(bundle_addr, slot);
            self.pmu.counters.retired += 1;

            // Qualifying predicate.
            if let Some(qp) = insn.qp {
                if !self.pr[qp.index()] {
                    continue;
                }
            }

            // Scoreboard: stall on unready sources, attributing the
            // wait to the producer (memory vs. floating point).
            for r in insn.op.gr_reads() {
                let ready = self.gr_ready[r.index()];
                let src = self.gr_source[r.index()];
                self.stall_until(ready, src);
            }
            match insn.op {
                Op::Fma { a, b, c, .. } => {
                    for f in [a, b, c] {
                        let ready = self.fr_ready[f.index()];
                        let src = self.fr_source[f.index()];
                        self.stall_until(ready, src);
                    }
                }
                Op::Fadd { a, b, .. } | Op::Fmul { a, b, .. } => {
                    for f in [a, b] {
                        let ready = self.fr_ready[f.index()];
                        let src = self.fr_source[f.index()];
                        self.stall_until(ready, src);
                    }
                }
                Op::Stf { s, .. } | Op::Getf { s, .. } => {
                    let ready = self.fr_ready[s.index()];
                    let src = self.fr_source[s.index()];
                    self.stall_until(ready, src);
                }
                _ => {}
            }

            self.exec_slot_op(insn, pc, fall_through, &mut taken);
            if self.fault.is_some() || taken.is_some() || self.halted {
                break;
            }
        }

        // A fault freezes the machine at the faulting instruction:
        // earlier slots keep their effects, the ip does not advance,
        // and no sample is taken.
        if self.fault.is_some() {
            self.pmu.counters.cycles = self.cycle;
            return;
        }

        // Record fall-through outcomes of predicated-off conditional
        // branches in the bundle (outcome = not taken).
        if taken.is_none() {
            self.record_off_cond_branches(&bundle.slots, bundle_addr, fall_through);
        }

        self.retire_bundle(bundle_addr, fall_through, taken);
    }

    /// Records the not-taken outcome of every predicated-off
    /// conditional branch in the bundle, so the BTB carries path
    /// information even for branches that did not issue.
    pub(crate) fn record_off_cond_branches(
        &mut self,
        slots: &[Insn; 3],
        bundle_addr: Addr,
        fall_through: Addr,
    ) {
        for slot in 0..3u8 {
            let insn = slots[slot as usize];
            if let Op::BrCond { .. } = insn.op {
                let off = insn.qp.map(|q| !self.pr[q.index()]).unwrap_or(false);
                if off {
                    self.pmu
                        .record_branch(Pc::new(bundle_addr, slot), fall_through, false);
                }
            }
        }
    }

    /// Advances `ip`, applies the taken-branch bubble or the
    /// 2-bundles-per-cycle pairing rule, publishes the cycle counter,
    /// and takes a pending sample. Shared tail of both execution paths.
    pub(crate) fn retire_bundle(
        &mut self,
        bundle_addr: Addr,
        fall_through: Addr,
        taken: Option<Addr>,
    ) {
        self.advance_after_bundle(fall_through, taken);
        self.take_sample(Pc::new(bundle_addr, 0));
    }

    /// The sampling-free part of [`Machine::retire_bundle`]; the fast
    /// path calls it directly when sampling is off so the common path
    /// carries no sample checks at all.
    pub(crate) fn advance_after_bundle(&mut self, fall_through: Addr, taken: Option<Addr>) {
        match taken {
            Some(t) => {
                self.ip = t.bundle_align();
                self.cycle += self.config.taken_branch_penalty;
                self.pmu.counters.stall_branch += self.config.taken_branch_penalty;
                self.half_bundle = false;
            }
            None => {
                self.ip = fall_through;
                if self.half_bundle {
                    self.cycle += 1;
                    self.half_bundle = false;
                } else {
                    self.half_bundle = true;
                }
            }
        }
        self.pmu.counters.cycles = self.cycle;
    }

    /// Executes one issued (predicate-true, scoreboard-clear)
    /// instruction. Shared by the reference and fast paths: every
    /// architectural and timing effect of an instruction lives here,
    /// so the paths cannot diverge on op semantics. On a fault the
    /// machine freezes (`self.fault` set, no destination writes) and
    /// the caller must stop the bundle.
    #[inline]
    pub(crate) fn exec_slot_op(
        &mut self,
        insn: Insn,
        pc: Pc,
        fall_through: Addr,
        taken: &mut Option<Addr>,
    ) {
        let now = self.cycle;
        match insn.op {
            Op::Nop(_) | Op::Alloc => {}
            Op::Add { d, a, b } => {
                let v = self.gr[a.index()].wrapping_add(self.gr[b.index()]);
                self.write_gr(d, v, now);
            }
            Op::AddI { d, a, imm } => {
                let v = self.gr[a.index()].wrapping_add(imm);
                self.write_gr(d, v, now);
            }
            Op::Sub { d, a, b } => {
                let v = self.gr[a.index()].wrapping_sub(self.gr[b.index()]);
                self.write_gr(d, v, now);
            }
            Op::Shladd { d, a, count, b } => {
                let v = (self.gr[a.index()] << count).wrapping_add(self.gr[b.index()]);
                self.write_gr(d, v, now);
            }
            Op::And { d, a, b } => {
                self.write_gr(d, self.gr[a.index()] & self.gr[b.index()], now);
            }
            Op::Or { d, a, b } => {
                self.write_gr(d, self.gr[a.index()] | self.gr[b.index()], now);
            }
            Op::Xor { d, a, b } => {
                self.write_gr(d, self.gr[a.index()] ^ self.gr[b.index()], now);
            }
            Op::MovL { d, imm } => self.write_gr(d, imm, now),
            Op::Mov { d, s } => {
                let v = self.gr[s.index()];
                self.write_gr(d, v, now);
            }
            Op::Cmp { op, pt, pf, a, b } => {
                let r = op.eval(self.gr[a.index()], self.gr[b.index()]);
                self.write_pr(pt, r);
                self.write_pr(pf, !r);
            }
            Op::CmpI { op, pt, pf, a, imm } => {
                let r = op.eval(self.gr[a.index()], imm);
                self.write_pr(pt, r);
                self.write_pr(pf, !r);
            }
            Op::Ld {
                d,
                base,
                post_inc,
                size,
                spec,
            } => {
                let addr = self.gr[base.index()] as u64;
                let value = if spec {
                    self.mem.read_spec(addr, size.bytes())
                } else if self.mem.contains(addr, size.bytes()) {
                    self.mem.read(addr, size.bytes())
                } else {
                    self.fault = Some(Fault::UnmappedLoad {
                        addr,
                        len: size.bytes(),
                    });
                    return;
                };
                let tlb_lat = self.tlb.access(addr);
                if tlb_lat > 0 {
                    self.pmu.record_tlb_miss(pc, addr, tlb_lat);
                }
                let res = self.caches.load(addr, now + tlb_lat, false);
                self.pmu
                    .record_load(pc, addr, res.latency, res.level == HitLevel::L1);
                self.write_gr_src(
                    d,
                    value as i64,
                    now + tlb_lat + res.latency,
                    StallSource::Memory,
                );
                if post_inc != 0 {
                    let nb = self.gr[base.index()].wrapping_add(post_inc);
                    self.write_gr(base, nb, now);
                }
            }
            Op::St {
                s,
                base,
                post_inc,
                size,
            } => {
                let addr = self.gr[base.index()] as u64;
                if !self.mem.contains(addr, size.bytes()) {
                    self.fault = Some(Fault::UnmappedStore {
                        addr,
                        len: size.bytes(),
                    });
                    return;
                }
                self.mem
                    .write(addr, size.bytes(), self.gr[s.index()] as u64);
                let _ = self.tlb.access(addr); // stores fill but don't stall
                self.caches.store(addr);
                if post_inc != 0 {
                    let nb = self.gr[base.index()].wrapping_add(post_inc);
                    self.write_gr(base, nb, now);
                }
            }
            Op::Ldf { d, base, post_inc } => {
                let addr = self.gr[base.index()] as u64;
                if !self.mem.contains(addr, 8) {
                    self.fault = Some(Fault::UnmappedLoad { addr, len: 8 });
                    return;
                }
                let value = self.mem.read_f64(addr);
                let tlb_lat = self.tlb.access(addr);
                if tlb_lat > 0 {
                    self.pmu.record_tlb_miss(pc, addr, tlb_lat);
                }
                let res = self.caches.load(addr, now + tlb_lat, true);
                self.pmu.record_load(pc, addr, res.latency, false);
                self.write_fr_src(d, value, now + tlb_lat + res.latency, StallSource::Memory);
                if post_inc != 0 {
                    let nb = self.gr[base.index()].wrapping_add(post_inc);
                    self.write_gr(base, nb, now);
                }
            }
            Op::Stf { s, base, post_inc } => {
                let addr = self.gr[base.index()] as u64;
                if !self.mem.contains(addr, 8) {
                    self.fault = Some(Fault::UnmappedStore { addr, len: 8 });
                    return;
                }
                self.mem.write_f64(addr, self.fr[s.index()]);
                self.caches.store(addr);
                if post_inc != 0 {
                    let nb = self.gr[base.index()].wrapping_add(post_inc);
                    self.write_gr(base, nb, now);
                }
            }
            Op::Lfetch { base, post_inc } => {
                let addr = self.gr[base.index()] as u64;
                // lfetch engages the hardware page walker on a DTLB
                // miss (warming the TLB ahead of the demand stream)
                // and is dropped only when the translation would
                // fault — e.g. the wild addresses an extrapolated
                // pointer-chase prefetch can produce.
                if self.mem.contains(addr, 1) {
                    let _ = self.tlb.access(addr);
                    self.caches.lfetch(addr, now);
                }
                if post_inc != 0 {
                    let nb = self.gr[base.index()].wrapping_add(post_inc);
                    self.write_gr(base, nb, now);
                }
            }
            Op::Fma { d, a, b, c } => {
                let v = self.fr[a.index()].mul_add(self.fr[b.index()], self.fr[c.index()]);
                self.write_fr(d, v, now + self.config.fp_latency);
            }
            Op::Fadd { d, a, b } => {
                let v = self.fr[a.index()] + self.fr[b.index()];
                self.write_fr(d, v, now + self.config.fp_latency);
            }
            Op::Fmul { d, a, b } => {
                let v = self.fr[a.index()] * self.fr[b.index()];
                self.write_fr(d, v, now + self.config.fp_latency);
            }
            Op::Getf { d, s } => {
                let v = self.fr[s.index()] as i64;
                self.write_gr(d, v, now + self.config.xfer_latency);
            }
            Op::Setf { d, s } => {
                let v = self.gr[s.index()] as f64;
                self.write_fr(d, v, now + self.config.xfer_latency);
            }
            Op::Br { target } => {
                self.pmu.record_branch(pc, target, true);
                *taken = Some(target);
            }
            Op::BrCond { target } => {
                // Reached only when the qualifying predicate held.
                self.pmu.record_branch(pc, target, true);
                *taken = Some(target);
            }
            Op::BrCall { target } => {
                self.pmu.record_branch(pc, target, true);
                self.ret_stack.push(fall_through);
                *taken = Some(target);
            }
            Op::BrRet => {
                let Some(target) = self.ret_stack.pop() else {
                    self.fault = Some(Fault::ReturnUnderflow);
                    return;
                };
                self.pmu.record_branch(pc, target, true);
                *taken = Some(target);
            }
            Op::Halt => {
                self.halted = true;
            }
        }
    }
}

/// Convenience: count free memory slots in a trace (used in tests and by
/// the prefetch scheduler's cost estimate).
pub fn free_m_slots(bundles: &[Bundle]) -> usize {
    bundles
        .iter()
        .filter_map(|b| b.free_slot(SlotKind::M))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{AccessSize, Asm, CmpOp, Fr, Gr, Pr, CODE_BASE};

    fn machine_for(asm_body: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        asm_body(&mut a);
        let p = a.finish(CODE_BASE).unwrap();
        Machine::new(p, MachineConfig::default())
    }

    #[test]
    fn arithmetic_executes() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 5);
            a.movl(Gr(11), 7);
            a.add(Gr(12), Gr(10), Gr(11));
            a.shladd(Gr(13), Gr(10), 2, Gr(11)); // 5*4+7
            a.sub(Gr(14), Gr(11), Gr(10));
            a.halt();
        });
        assert_eq!(m.run(u64::MAX), StopReason::Halted);
        assert_eq!(m.gr(Gr(12)), 12);
        assert_eq!(m.gr(Gr(13)), 27);
        assert_eq!(m.gr(Gr(14)), 2);
    }

    #[test]
    fn wild_fetch_faults_instead_of_panicking() {
        // Overwrite the final halt with nops so execution runs off the
        // end of the image: the fetch must fault, not panic.
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 7);
            a.halt();
        });
        let nop_bundle = isa::Bundle::pack(&[
            isa::Insn::nop(SlotKind::M),
            isa::Insn::nop(SlotKind::I),
            isa::Insn::nop(SlotKind::I),
        ])
        .unwrap();
        m.replace_bundle(Addr(CODE_BASE + 16), nop_bundle).unwrap();
        let wild = Addr(CODE_BASE + 32);
        assert_eq!(
            m.run(u64::MAX),
            StopReason::Faulted(Fault::UnmappedFetch(wild))
        );
        assert!(!m.is_halted());
        assert_eq!(m.fault(), Some(Fault::UnmappedFetch(wild)));
        // The machine stays faulted; re-running returns the same reason.
        assert_eq!(
            m.run(u64::MAX),
            StopReason::Faulted(Fault::UnmappedFetch(wild))
        );
        // Architectural state before the fault is preserved.
        assert_eq!(m.gr(Gr(10)), 7);
    }

    #[test]
    fn unmapped_load_faults_with_address() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 0x123);
            a.ld(AccessSize::U8, Gr(11), Gr(10), 16);
            a.halt();
        });
        let r = m.run(u64::MAX);
        assert_eq!(
            r,
            StopReason::Faulted(Fault::UnmappedLoad {
                addr: 0x123,
                len: 8
            })
        );
        // No destination write, no post-increment.
        assert_eq!(m.gr(Gr(11)), 0);
        assert_eq!(m.gr(Gr(10)), 0x123);
    }

    #[test]
    fn unmapped_store_faults_with_address() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 64);
            a.st(AccessSize::U4, Gr(10), Gr(11), 0);
            a.halt();
        });
        let r = m.run(u64::MAX);
        assert_eq!(
            r,
            StopReason::Faulted(Fault::UnmappedStore { addr: 64, len: 4 })
        );
    }

    #[test]
    fn speculative_load_never_faults() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 0x123);
            a.ld_s(AccessSize::U8, Gr(11), Gr(10), 0);
            a.halt();
        });
        assert_eq!(m.run(u64::MAX), StopReason::Halted);
        assert_eq!(m.gr(Gr(11)), 0); // deferred NaT → zero
    }

    #[test]
    fn return_underflow_faults() {
        let mut m = machine_for(|a| {
            a.ret();
            a.halt();
        });
        assert_eq!(m.run(u64::MAX), StopReason::Faulted(Fault::ReturnUnderflow));
    }

    #[test]
    fn run_to_halt_terminates_on_fault() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 0x40);
            a.ld(AccessSize::U8, Gr(11), Gr(10), 0);
            a.halt();
        });
        let cycles = m.run_to_halt();
        assert!(cycles > 0);
        assert!(matches!(m.fault(), Some(Fault::UnmappedLoad { .. })));
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut m = machine_for(|a| {
            a.movl(Gr(0), 99);
            a.addi(Gr(10), Gr(0), 3);
            a.halt();
        });
        m.run(u64::MAX);
        assert_eq!(m.gr(Gr(0)), 0);
        assert_eq!(m.gr(Gr(10)), 3);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 0x1000_0000);
            a.movl(Gr(11), 1234);
            a.st(AccessSize::U8, Gr(10), Gr(11), 8);
            a.addi(Gr(10), Gr(10), -8);
            a.ld(AccessSize::U8, Gr(12), Gr(10), 0);
            a.halt();
        });
        m.mem_mut().alloc(64, 8);
        m.run(u64::MAX);
        assert_eq!(m.gr(Gr(12)), 1234);
        // Post-increment happened before the manual decrement.
        assert_eq!(m.gr(Gr(10)), 0x1000_0000);
    }

    #[test]
    fn loop_with_predicated_backedge() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 0);
            a.label("loop");
            a.addi(Gr(10), Gr(10), 1);
            a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 100);
            a.br_cond(Pr(1), "loop");
            a.halt();
        });
        m.run(u64::MAX);
        assert_eq!(m.gr(Gr(10)), 100);
        assert!(m.pmu().counters.branches >= 100);
    }

    #[test]
    fn miss_then_use_stalls_but_overlap_hides() {
        // Two variants of a pointless loop over a large array: one uses
        // the loaded value immediately, the other never uses it. The
        // stall-on-use model must make the first slower.
        let build = |use_value: bool| {
            let mut m = machine_for(|a| {
                a.movl(Gr(10), 0x1000_0000);
                a.movl(Gr(11), 0);
                a.label("loop");
                a.ld(AccessSize::U8, Gr(12), Gr(10), 64);
                if use_value {
                    a.add(Gr(13), Gr(12), Gr(12));
                }
                a.addi(Gr(11), Gr(11), 1);
                a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(11), 4096);
                a.br_cond(Pr(1), "loop");
                a.halt();
            });
            m.mem_mut().alloc(64 * 4200, 64);
            m.run(u64::MAX);
            m.cycles()
        };
        let with_use = build(true);
        let without_use = build(false);
        assert!(
            with_use > without_use + 1000,
            "stall-on-use should cost: {with_use} vs {without_use}"
        );
    }

    #[test]
    fn lfetch_speeds_up_strided_loop() {
        let build = |prefetch: bool| {
            let mut m = machine_for(|a| {
                a.movl(Gr(10), 0x1000_0000);
                a.movl(Gr(27), 0x1000_0000 + 1024);
                a.movl(Gr(11), 0);
                a.label("loop");
                if prefetch {
                    a.lfetch(Gr(27), 64);
                }
                a.ld(AccessSize::U8, Gr(12), Gr(10), 64);
                a.add(Gr(13), Gr(12), Gr(13));
                a.addi(Gr(11), Gr(11), 1);
                a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(11), 8192);
                a.br_cond(Pr(1), "loop");
                a.halt();
            });
            m.mem_mut().alloc(64 * 8300, 64);
            m.run(u64::MAX);
            m.cycles()
        };
        let plain = build(false);
        let prefetched = build(true);
        assert!(
            prefetched * 10 < plain * 9,
            "prefetching should win ≥10%: {prefetched} vs {plain}"
        );
    }

    #[test]
    fn fp_pipeline_works() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 0x1000_0000);
            a.ldf(Fr(8), Gr(10), 0);
            a.fma(Fr(9), Fr(8), Fr(8), Fr(1)); // x*x + 1
            a.stf(Gr(10), Fr(9), 0);
            a.halt();
        });
        m.mem_mut().alloc(64, 8);
        m.mem_mut().write_f64(0x1000_0000, 3.0);
        m.run(u64::MAX);
        assert_eq!(m.mem().read_f64(0x1000_0000), 10.0);
    }

    #[test]
    fn call_and_return() {
        let mut m = machine_for(|a| {
            a.br_call("callee");
            a.addi(Gr(10), Gr(10), 100);
            a.halt();
            a.global("callee");
            a.addi(Gr(10), Gr(10), 1);
            a.ret();
        });
        m.run(u64::MAX);
        assert_eq!(m.gr(Gr(10)), 101);
    }

    #[test]
    fn sampling_fills_buffer_and_overflows() {
        let mut a = Asm::new();
        a.movl(Gr(10), 0);
        a.label("loop");
        a.addi(Gr(10), Gr(10), 1);
        a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 1_000_000);
        a.br_cond(Pr(1), "loop");
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        let mut cfg = MachineConfig::default();
        cfg.sampling = Some(SamplingConfig {
            interval_cycles: 1000,
            buffer_capacity: 16,
            per_sample_cost: 0,
            jitter: 0.3,
            ..Default::default()
        });
        let mut m = Machine::new(p, cfg);
        assert_eq!(m.run(u64::MAX), StopReason::SampleBufferOverflow);
        let samples = m.drain_samples();
        assert_eq!(samples.len(), 16);
        // Samples carry monotone counters and BTB content.
        for w in samples.windows(2) {
            assert!(w[1].cycles > w[0].cycles);
            assert!(w[1].retired >= w[0].retired);
        }
        assert!(!samples.last().unwrap().btb.is_empty());
    }

    #[test]
    fn predicated_off_instructions_have_no_side_effects() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 0x1000_0000);
            a.movl(Gr(11), 7);
            a.cmpi(CmpOp::Eq, Pr(4), Pr(5), Gr(11), 8); // p4 = false, p5 = true
            a.emit(isa::Insn::predicated(
                Pr(4),
                Op::St {
                    s: Gr(11),
                    base: Gr(10),
                    post_inc: 8,
                    size: AccessSize::U8,
                },
            ));
            a.emit(isa::Insn::predicated(
                Pr(4),
                Op::AddI {
                    d: Gr(12),
                    a: Gr(12),
                    imm: 99,
                },
            ));
            a.emit(isa::Insn::predicated(
                Pr(5),
                Op::AddI {
                    d: Gr(13),
                    a: Gr(13),
                    imm: 1,
                },
            ));
            a.halt();
        });
        m.mem_mut().alloc(64, 8);
        m.run(u64::MAX);
        // The store was squashed (memory untouched, no post-increment).
        assert_eq!(m.mem().read(0x1000_0000, 8), 0);
        assert_eq!(m.gr(Gr(10)), 0x1000_0000);
        assert_eq!(m.gr(Gr(12)), 0);
        assert_eq!(m.gr(Gr(13)), 1);
    }

    #[test]
    fn getf_setf_round_trip_with_latency() {
        let mut m = machine_for(|a| {
            a.movl(Gr(10), 42);
            a.emit(Op::Setf {
                d: isa::Fr(8),
                s: Gr(10),
            });
            a.emit(Op::Getf {
                d: Gr(11),
                s: isa::Fr(8),
            });
            a.add(Gr(12), Gr(11), Gr(11));
            a.halt();
        });
        m.run(u64::MAX);
        assert_eq!(m.gr(Gr(11)), 42);
        assert_eq!(m.gr(Gr(12)), 84);
        // Two cross-unit transfers cost at least 2 × xfer latency.
        assert!(m.cycles() >= 10);
    }

    #[test]
    fn nested_calls_return_correctly() {
        let mut m = machine_for(|a| {
            a.br_call("outer");
            a.halt();
            a.global("outer");
            a.addi(Gr(10), Gr(10), 1);
            a.br_call("inner");
            a.addi(Gr(10), Gr(10), 4);
            a.ret();
            a.global("inner");
            a.addi(Gr(10), Gr(10), 2);
            a.ret();
        });
        m.run(u64::MAX);
        assert_eq!(m.gr(Gr(10)), 7);
    }

    #[test]
    fn stall_attribution_separates_memory_and_fp() {
        // Memory-stall-bound loop.
        let mut m = machine_for(|a| {
            a.movl(Gr(14), 0x1000_0000);
            a.movl(Gr(9), 2000);
            a.label("loop");
            a.ld(AccessSize::U8, Gr(20), Gr(14), 256);
            a.add(Gr(21), Gr(20), Gr(21));
            a.addi(Gr(9), Gr(9), -1);
            a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
            a.br_cond(Pr(1), "loop");
            a.halt();
        });
        m.mem_mut().alloc(2_016 * 256, 64);
        m.run(u64::MAX);
        let c = m.pmu().counters;
        assert!(
            c.stall_mem > c.cycles / 2,
            "memory stalls should dominate: {c:?}"
        );
        assert_eq!(c.stall_fp, 0);

        // FP-latency-bound chain.
        let mut m = machine_for(|a| {
            a.movl(Gr(9), 2000);
            a.label("loop");
            a.fma(isa::Fr(8), isa::Fr(8), isa::Fr(1), isa::Fr(8));
            a.fma(isa::Fr(8), isa::Fr(8), isa::Fr(1), isa::Fr(8));
            a.addi(Gr(9), Gr(9), -1);
            a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
            a.br_cond(Pr(1), "loop");
            a.halt();
        });
        m.run(u64::MAX);
        let c = m.pmu().counters;
        assert!(
            c.stall_fp > c.cycles / 3,
            "fp stalls should dominate: {c:?}"
        );
        assert_eq!(c.stall_mem, 0);
    }

    #[test]
    fn sampling_jitter_stays_in_band() {
        let mut a = Asm::new();
        a.movl(Gr(10), 0);
        a.label("loop");
        a.addi(Gr(10), Gr(10), 1);
        a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 3_000_000);
        a.br_cond(Pr(1), "loop");
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        let mut cfg = MachineConfig::default();
        let interval = 10_000u64;
        cfg.sampling = Some(SamplingConfig {
            interval_cycles: interval,
            buffer_capacity: 64,
            per_sample_cost: 0,
            jitter: 0.25,
            ..Default::default()
        });
        let mut m = Machine::new(p, cfg);
        let mut stamps = Vec::new();
        loop {
            match m.run(u64::MAX) {
                StopReason::SampleBufferOverflow => {
                    stamps.extend(m.drain_samples().into_iter().map(|s| s.cycles));
                }
                _ => break,
            }
        }
        assert!(stamps.len() > 100);
        let mut distinct = std::collections::HashSet::new();
        for w in stamps.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                gap >= (interval as f64 * 0.74) as u64,
                "gap {gap} below band"
            );
            assert!(
                gap <= (interval as f64 * 1.26) as u64 + 16,
                "gap {gap} above band"
            );
            distinct.insert(gap / 100);
        }
        assert!(distinct.len() > 5, "jitter must actually vary the period");
    }

    #[test]
    fn sampling_seed_is_deterministic_per_machine() {
        let stamps_with = |seed: u64| {
            let mut a = Asm::new();
            a.movl(Gr(10), 0);
            a.label("loop");
            a.addi(Gr(10), Gr(10), 1);
            a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 400_000);
            a.br_cond(Pr(1), "loop");
            a.halt();
            let mut cfg = MachineConfig::default();
            cfg.sampling = Some(SamplingConfig {
                interval_cycles: 1_000,
                buffer_capacity: 32,
                per_sample_cost: 0,
                jitter: 0.3,
                seed,
            });
            let mut m = Machine::new(a.finish(CODE_BASE).unwrap(), cfg);
            let mut stamps = Vec::new();
            while m.run(u64::MAX) == StopReason::SampleBufferOverflow {
                stamps.extend(m.drain_samples().into_iter().map(|s| s.cycles));
            }
            stamps
        };
        assert_eq!(stamps_with(7), stamps_with(7), "same seed, same samples");
        assert_ne!(stamps_with(7), stamps_with(8), "seed must steer the jitter");
    }

    #[test]
    fn pool_bundles_can_be_replaced() {
        let mut m = machine_for(|a| {
            a.halt();
        });
        let addr = m
            .install_trace(vec![Bundle::branch_only(isa::Insn::new(Op::BrRet))])
            .unwrap();
        let saved = m
            .replace_bundle(addr, Bundle::branch_only(isa::Insn::new(Op::Halt)))
            .unwrap();
        assert!(saved.has_branch());
        assert!(matches!(m.bundle_at(addr).unwrap().slots[2].op, Op::Halt));
    }

    #[test]
    fn trace_pool_executes() {
        // Patch a loop head to jump into the trace pool; the pool trace
        // adds 2 per iteration instead of 1 and jumps back.
        let mut a = Asm::new();
        a.movl(Gr(10), 0);
        a.label("loop");
        a.addi(Gr(10), Gr(10), 1);
        a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 10);
        a.br_cond(Pr(1), "loop");
        a.halt();
        let p = a.finish(CODE_BASE).unwrap();
        let mut m = Machine::new(p, MachineConfig::default());

        // Build the replacement trace with a second assembler.
        let mut t = Asm::new();
        t.label("t");
        t.addi(Gr(10), Gr(10), 2);
        t.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 10);
        t.br_cond(Pr(1), "t");
        t.halt();
        let tp = t.finish(TRACE_POOL_BASE).unwrap();
        let trace_addr = m.install_trace(tp.bundles().to_vec()).unwrap();
        assert_eq!(trace_addr, Addr(TRACE_POOL_BASE));

        // Find the loop-head bundle (second bundle: after movl).
        let head = Addr(CODE_BASE + 16);
        let saved = m
            .replace_bundle(
                head,
                Bundle::branch_only(isa::Insn::new(Op::Br { target: trace_addr })),
            )
            .unwrap();
        assert!(!saved.has_branch() || saved.has_branch()); // saved original

        m.run(u64::MAX);
        assert_eq!(m.gr(Gr(10)), 10); // 0 -> 2 -> ... -> 10 via pool
        assert!(m.pool_len() > 0);
    }

    #[test]
    fn trace_pool_capacity_is_enforced() {
        let mut m = machine_for(|a| {
            a.halt();
        });
        let cap = 16 * 1024;
        let chunk = vec![Bundle::branch_only(isa::Insn::new(Op::BrRet)); cap];
        assert!(m.install_trace(chunk).is_ok());
        assert_eq!(m.pool_remaining(), 0);
        let more = vec![Bundle::branch_only(isa::Insn::new(Op::BrRet))];
        assert_eq!(m.install_trace(more), Err(PatchError::PoolFull));
    }

    #[test]
    fn charge_cycles_advances_clock() {
        let mut m = machine_for(|a| {
            a.halt();
        });
        let c0 = m.cycles();
        m.charge_cycles(5000);
        assert_eq!(m.cycles(), c0 + 5000);
    }

    #[test]
    fn reset_machine_is_bit_identical_to_fresh_machine() {
        // Warm-up program: a short loop with memory traffic, plus a
        // live patch and an installed trace so the code store, pool,
        // caches, TLB, PMU, sampler and return stack all leave their
        // power-on state before the reset.
        let warm = {
            let mut a = Asm::new();
            a.movl(Gr(10), crate::DATA_BASE as i64);
            a.movl(Gr(21), 40);
            a.label("spin");
            a.ld(AccessSize::U8, Gr(11), Gr(10), 8);
            a.st(AccessSize::U8, Gr(10), Gr(11), 0);
            a.addi(Gr(21), Gr(21), -1);
            a.cmpi(CmpOp::Gt, Pr(7), Pr(8), Gr(21), 0);
            a.br_cond(Pr(7), "spin");
            a.halt();
            a.finish(CODE_BASE).unwrap()
        };
        let target = {
            let mut a = Asm::new();
            a.movl(Gr(12), 9);
            a.movl(Gr(13), crate::DATA_BASE as i64 + 64);
            a.ld(AccessSize::U8, Gr(14), Gr(13), 0);
            a.ldf(Fr(4), Gr(13), 0);
            a.fma(Fr(5), Fr(4), Fr(4), Fr(1));
            a.halt();
            a.finish(CODE_BASE).unwrap()
        };
        let sampling = |seed| SamplingConfig {
            interval_cycles: 16,
            buffer_capacity: 64,
            per_sample_cost: 0,
            jitter: 0.25,
            seed,
        };
        let config = MachineConfig {
            mem_capacity: 4096,
            sampling: Some(sampling(3)),
            ..MachineConfig::default()
        };

        let mut reused = Machine::new(warm, config.clone());
        reused.mem_mut().alloc(128, 64);
        assert_eq!(reused.run(u64::MAX), StopReason::Halted);
        reused
            .install_trace(vec![Bundle::branch_only(isa::Insn::new(Op::BrRet))])
            .unwrap();
        reused
            .replace_bundle(Addr(CODE_BASE), Bundle::branch_only(isa::Insn::new(Op::Halt)))
            .unwrap();
        let gen_before = reused.code_generation();

        // Re-arm for `target` (with a different sampling seed, as every
        // fuzz case supplies its own) and compare against a from-scratch
        // machine on every observable.
        reused.reset(target.clone(), Some(sampling(11)));
        assert!(
            reused.code_generation() > gen_before,
            "reset keeps the code-store generation counting up"
        );
        let mut fresh = Machine::new(
            target,
            MachineConfig { sampling: Some(sampling(11)), ..config },
        );
        assert_eq!(reused.run(u64::MAX), fresh.run(u64::MAX));
        assert_eq!(reused.cycles(), fresh.cycles(), "cycle-exact across reset reuse");
        assert_eq!(reused.pmu().counters, fresh.pmu().counters);
        assert_eq!(reused.gr, fresh.gr);
        assert_eq!(reused.pr, fresh.pr);
        assert!(reused
            .fr
            .iter()
            .zip(fresh.fr.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        for addr in (0..4096u64).step_by(8) {
            assert_eq!(
                reused.mem().read(crate::DATA_BASE + addr, 8),
                fresh.mem().read(crate::DATA_BASE + addr, 8),
                "memory differs at +{addr}"
            );
        }
        let a: Vec<_> = reused.drain_samples();
        let b: Vec<_> = fresh.drain_samples();
        assert_eq!(a.len(), b.len(), "sampler state must be rebuilt from the new seed");
    }

    #[test]
    fn patch_bad_address_errors() {
        let mut m = machine_for(|a| {
            a.halt();
        });
        let err = m
            .replace_bundle(
                Addr(0x123_4560),
                Bundle::branch_only(isa::Insn::new(Op::BrRet)),
            )
            .unwrap_err();
        assert!(matches!(err, PatchError::BadAddress(_)));
    }
}
