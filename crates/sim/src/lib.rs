//! An Itanium-2-like machine simulator for the ADORE reproduction.
//!
//! The MICRO-36 paper measures runtime prefetching on a 900 MHz Itanium 2
//! zx6000; this crate supplies the equivalent substrate: a flat data
//! [`Memory`], an L1D/L1I/L2/L3 [`cache
//! hierarchy`](cache::Hierarchy) with non-blocking misses and `lfetch`
//! support, a [`PMU`](pmu::Pmu) exposing the counters / branch trace
//! buffer / DEAR that ADORE samples, and an in-order, two-bundle-wide
//! [`Machine`] with stall-on-use timing and a
//! patchable trace pool.
//!
//! # Example
//!
//! ```
//! use isa::{Asm, CmpOp, Gr, Pr, CODE_BASE};
//! use sim::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), isa::AsmError> {
//! let mut a = Asm::new();
//! a.movl(Gr(10), 0);
//! a.label("loop");
//! a.addi(Gr(10), Gr(10), 1);
//! a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(10), 1000);
//! a.br_cond(Pr(1), "loop");
//! a.halt();
//!
//! let mut m = Machine::new(a.finish(CODE_BASE)?, MachineConfig::default());
//! m.run(u64::MAX);
//! assert_eq!(m.gr(Gr(10)), 1000);
//! assert!(m.cycles() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod code;
pub mod exec;
pub mod jit;
pub mod machine;
pub mod mem;
pub mod pmu;
pub(crate) mod tier;
pub mod tlb;

pub use cache::{AccessResult, Cache, CacheConfig, Hierarchy, HitLevel, DEAR_LATENCY_THRESHOLD};
pub use code::{CodeLoc, CodeStore, DecodedBundle, DecodedSlot};
pub use jit::JitStats;
pub use machine::{
    ExecPath, Fault, Machine, MachineConfig, PatchError, SamplingConfig, StopReason,
    DEFAULT_SAMPLING_SEED,
};
pub use mem::{Memory, DATA_BASE};
pub use pmu::{BranchTraceBuffer, BtbEntry, Counters, DearKind, DearRecord, Pmu, Sample};
pub use tlb::{Tlb, TlbConfig};
