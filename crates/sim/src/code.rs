//! The predecoded code store backing the execution fast path.
//!
//! [`Machine::step_bundle`](crate::Machine) (the reference path)
//! re-resolves and clones a [`Bundle`] from the program image on every
//! executed bundle, and re-derives each slot's scoreboard sources with
//! heap-allocating [`Op::gr_reads`](isa::Op::gr_reads) calls. The
//! [`CodeStore`] removes all of that from the hot loop: every mapped
//! bundle address is resolved **once** into a dense arena of
//! [`DecodedBundle`]s — one flat vector for the static code segment,
//! one for the trace pool — so execution indexes by slot number and
//! reads precomputed, fixed-size register-read lists.
//!
//! Patching keeps the store coherent via **generation-tagged
//! invalidation**: every mutation ([`CodeStore::replace`],
//! [`CodeStore::install_pool`]) bumps the store generation and
//! re-decodes exactly the touched entries, tagging them with the new
//! generation. The hot loop therefore needs no validity check at all —
//! a decoded entry is stale only in the window *inside* a patch
//! operation, never between steps — while tests can assert that a
//! patch really did fix up its entry by comparing tags.

use isa::{Addr, Bundle, Insn, Op, Program, TRACE_POOL_BASE};

/// Slot flag: the instruction is a no-op (of any slot kind) and can be
/// retired without predicate, scoreboard, or execute work.
pub const FLAG_NOP: u8 = 1 << 0;
/// Slot flag: the instruction reads floating-point registers and needs
/// the FP scoreboard walk.
pub const FLAG_FR_READS: u8 = 1 << 1;

/// One predecoded instruction slot: the instruction plus its scoreboard
/// read sets, resolved to plain register indices.
///
/// Read lists are padded with always-ready registers (`r0` for general
/// registers, `f0` for floating point: neither is ever written, so
/// their ready cycle stays 0 forever). Padding lets the fast path walk
/// a fixed-size array with no length branch, and a padded entry is a
/// guaranteed no-op in the stall check.
#[derive(Debug, Clone, Copy)]
pub struct DecodedSlot {
    /// The instruction itself.
    pub insn: Insn,
    /// General registers read (scoreboard sources), `r0`-padded.
    /// No operation reads more than two general registers.
    pub gr_reads: [u8; 2],
    /// Floating-point registers read, `f0`-padded (`fma` reads three).
    pub fr_reads: [u8; 3],
    /// `FLAG_*` bits.
    pub flags: u8,
}

impl DecodedSlot {
    fn decode(insn: Insn) -> DecodedSlot {
        let mut gr_reads = [0u8; 2];
        let reads = insn.op.gr_reads();
        debug_assert!(reads.len() <= 2, "no op reads more than two GRs");
        for (i, r) in reads.iter().take(2).enumerate() {
            gr_reads[i] = r.index() as u8;
        }
        let fr_reads = match insn.op {
            Op::Fma { a, b, c, .. } => [a.index() as u8, b.index() as u8, c.index() as u8],
            Op::Fadd { a, b, .. } | Op::Fmul { a, b, .. } => [a.index() as u8, b.index() as u8, 0],
            Op::Stf { s, .. } | Op::Getf { s, .. } => [s.index() as u8, 0, 0],
            _ => [0u8; 3],
        };
        let mut flags = 0u8;
        if insn.is_nop() {
            flags |= FLAG_NOP;
        }
        if fr_reads != [0u8; 3] {
            flags |= FLAG_FR_READS;
        }
        DecodedSlot {
            insn,
            gr_reads,
            fr_reads,
            flags,
        }
    }
}

/// One predecoded bundle: three decoded slots plus bundle-level
/// metadata the fast path would otherwise re-derive per step.
#[derive(Debug, Clone, Copy)]
pub struct DecodedBundle {
    /// The three decoded slots.
    pub slots: [DecodedSlot; 3],
    /// Bit `s` set when slot `s` holds a conditional branch
    /// (`br.cond`); drives the predicated-off fall-through recording
    /// without rescanning the bundle.
    pub cond_branch_mask: u8,
    /// Bit `s` set when slot `s` is a no-op ([`FLAG_NOP`] hoisted to
    /// bundle level): lets the fast path retire padding slots without
    /// even copying them out of the arena.
    pub nop_mask: u8,
    /// Store generation at which this entry was (re)decoded.
    pub generation: u64,
}

impl DecodedBundle {
    fn decode(bundle: &Bundle, generation: u64) -> DecodedBundle {
        let slots = [
            DecodedSlot::decode(bundle.slots[0]),
            DecodedSlot::decode(bundle.slots[1]),
            DecodedSlot::decode(bundle.slots[2]),
        ];
        let mut cond_branch_mask = 0u8;
        let mut nop_mask = 0u8;
        for (s, insn) in bundle.slots.iter().enumerate() {
            if matches!(insn.op, Op::BrCond { .. }) {
                cond_branch_mask |= 1 << s;
            }
            if slots[s].flags & FLAG_NOP != 0 {
                nop_mask |= 1 << s;
            }
        }
        DecodedBundle {
            slots,
            cond_branch_mask,
            nop_mask,
            generation,
        }
    }
}

/// Location of a decoded bundle inside the store: segment plus index.
/// Resolved once per executed bundle, then used for direct indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeLoc {
    /// True when the bundle lives in the trace-pool segment.
    pub pool: bool,
    /// Index within the segment.
    pub index: u32,
}

/// A dense arena of predecoded bundles mirroring the static program
/// image and the trace pool. See the module docs for the coherence
/// protocol.
#[derive(Debug)]
pub struct CodeStore {
    code_base: u64,
    static_bundles: Vec<DecodedBundle>,
    pool: Vec<DecodedBundle>,
    generation: u64,
}

impl CodeStore {
    /// Predecodes every bundle of `program` (generation 0, empty pool).
    pub fn new(program: &Program) -> CodeStore {
        let static_bundles = program
            .bundles()
            .iter()
            .map(|b| DecodedBundle::decode(b, 0))
            .collect();
        CodeStore {
            code_base: program.code_base(),
            static_bundles,
            pool: Vec::new(),
            generation: 0,
        }
    }

    /// Re-targets the store at a fresh `program`, reusing the static
    /// arena's allocation and emptying the trace pool. A reset counts
    /// as a mutation: the generation keeps increasing rather than
    /// restarting at 0, so decoded entries cached for the previous
    /// program can never be mistaken for entries of the new one — the
    /// same tag discipline that keeps live patching coherent keeps
    /// machine reuse coherent.
    pub fn reset(&mut self, program: &Program) {
        self.generation += 1;
        let generation = self.generation;
        self.code_base = program.code_base();
        self.static_bundles.clear();
        self.static_bundles
            .extend(program.bundles().iter().map(|b| DecodedBundle::decode(b, generation)));
        self.pool.clear();
    }

    /// Current store generation; bumped by every mutation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Resolves a code address to a store location, mirroring
    /// [`Machine::bundle_at`](crate::Machine::bundle_at) exactly:
    /// addresses resolve to their containing bundle; unmapped addresses
    /// return `None`.
    #[inline]
    pub fn locate(&self, addr: Addr) -> Option<CodeLoc> {
        let a = addr.bundle_align().0;
        if a >= TRACE_POOL_BASE {
            let idx = ((a - TRACE_POOL_BASE) / Addr::BUNDLE_BYTES) as usize;
            (idx < self.pool.len()).then_some(CodeLoc {
                pool: true,
                index: idx as u32,
            })
        } else {
            if a < self.code_base {
                return None;
            }
            let idx = ((a - self.code_base) / Addr::BUNDLE_BYTES) as usize;
            (idx < self.static_bundles.len()).then_some(CodeLoc {
                pool: false,
                index: idx as u32,
            })
        }
    }

    /// The decoded bundle at `loc`.
    #[inline]
    pub fn decoded(&self, loc: CodeLoc) -> &DecodedBundle {
        if loc.pool {
            &self.pool[loc.index as usize]
        } else {
            &self.static_bundles[loc.index as usize]
        }
    }

    /// The decoded slot `slot` of the bundle at `loc`, by value.
    #[inline]
    pub fn slot(&self, loc: CodeLoc, slot: u8) -> DecodedSlot {
        self.decoded(loc).slots[slot as usize]
    }

    /// Predecodes and appends freshly installed trace-pool bundles.
    pub fn install_pool(&mut self, bundles: &[Bundle]) {
        self.generation += 1;
        let generation = self.generation;
        self.pool
            .extend(bundles.iter().map(|b| DecodedBundle::decode(b, generation)));
    }

    /// Re-decodes the entry at `addr` after a patch replaced its
    /// bundle, tagging it with a fresh generation. Returns `false`
    /// (and changes nothing) when `addr` does not map to an entry —
    /// the caller's address check failed first in that case.
    pub fn replace(&mut self, addr: Addr, bundle: &Bundle) -> bool {
        let Some(loc) = self.locate(addr) else {
            return false;
        };
        self.generation += 1;
        let decoded = DecodedBundle::decode(bundle, self.generation);
        if loc.pool {
            self.pool[loc.index as usize] = decoded;
        } else {
            self.static_bundles[loc.index as usize] = decoded;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{AccessSize, Fr, Gr, Pr, SlotKind, CODE_BASE};

    fn prog(bundles: Vec<Bundle>) -> Program {
        Program::new(CODE_BASE, bundles)
    }

    fn nop_bundle() -> Bundle {
        Bundle::pack(&[Insn::nop(SlotKind::M)]).unwrap()
    }

    #[test]
    fn decode_extracts_read_sets_and_flags() {
        let ld = Insn::new(Op::Ld {
            d: Gr(20),
            base: Gr(14),
            post_inc: 8,
            size: AccessSize::U8,
            spec: false,
        });
        let st = Insn::new(Op::St {
            s: Gr(20),
            base: Gr(15),
            post_inc: 0,
            size: AccessSize::U8,
        });
        let fma = Insn::new(Op::Fma {
            d: Fr(9),
            a: Fr(8),
            b: Fr(7),
            c: Fr(9),
        });
        let b = Bundle::pack(&[ld, st, fma]).unwrap();
        let d = DecodedBundle::decode(&b, 3);
        assert_eq!(d.slots[0].gr_reads, [14, 0]);
        assert_eq!(d.slots[1].gr_reads, [20, 15]);
        assert_eq!(d.slots[2].fr_reads, [8, 7, 9]);
        assert_eq!(d.slots[0].flags & FLAG_NOP, 0);
        assert_ne!(d.slots[2].flags & FLAG_FR_READS, 0);
        assert_eq!(d.cond_branch_mask, 0);
        assert_eq!(d.generation, 3);
    }

    #[test]
    fn nops_and_cond_branches_are_flagged() {
        let br = Insn::predicated(
            Pr(1),
            Op::BrCond {
                target: Addr(CODE_BASE),
            },
        );
        let b = Bundle::pack(&[br]).unwrap();
        let d = DecodedBundle::decode(&b, 0);
        let br_slot = b.slots.iter().position(|i| i.op.is_branch()).unwrap();
        assert_eq!(d.cond_branch_mask, 1 << br_slot);
        for (s, slot) in d.slots.iter().enumerate() {
            if s != br_slot {
                assert_ne!(slot.flags & FLAG_NOP, 0);
            }
        }
    }

    #[test]
    fn locate_mirrors_bundle_addressing() {
        let store = CodeStore::new(&prog(vec![nop_bundle(), nop_bundle()]));
        assert_eq!(
            store.locate(Addr(CODE_BASE)),
            Some(CodeLoc {
                pool: false,
                index: 0
            })
        );
        // Mid-bundle addresses resolve to the containing bundle.
        assert_eq!(
            store.locate(Addr(CODE_BASE + 17)),
            Some(CodeLoc {
                pool: false,
                index: 1
            })
        );
        assert_eq!(store.locate(Addr(CODE_BASE + 32)), None);
        assert_eq!(store.locate(Addr(CODE_BASE - 16)), None);
        assert_eq!(store.locate(Addr(TRACE_POOL_BASE)), None, "empty pool");
    }

    #[test]
    fn mutations_bump_and_tag_generations() {
        let mut store = CodeStore::new(&prog(vec![nop_bundle()]));
        assert_eq!(store.generation(), 0);

        store.install_pool(&[nop_bundle(), nop_bundle()]);
        assert_eq!(store.generation(), 1);
        let loc = store.locate(Addr(TRACE_POOL_BASE + 16)).unwrap();
        assert!(loc.pool);
        assert_eq!(store.decoded(loc).generation, 1);

        let halt = Bundle::branch_only(Insn::new(Op::Halt));
        assert!(store.replace(Addr(CODE_BASE), &halt));
        assert_eq!(store.generation(), 2);
        let loc = store.locate(Addr(CODE_BASE)).unwrap();
        assert_eq!(store.decoded(loc).generation, 2);
        assert!(matches!(store.slot(loc, 2).insn.op, Op::Halt));

        assert!(!store.replace(Addr(CODE_BASE + 0x1000), &halt));
        assert_eq!(store.generation(), 2, "failed replace must not bump");
    }

    #[test]
    fn reset_retargets_and_keeps_generation_monotone() {
        let mut store = CodeStore::new(&prog(vec![nop_bundle()]));
        store.install_pool(&[nop_bundle()]);
        let before = store.generation();

        let halt = Bundle::branch_only(Insn::new(Op::Halt));
        store.reset(&prog(vec![halt, nop_bundle(), nop_bundle()]));
        assert!(
            store.generation() > before,
            "reset is a mutation: stale decoded entries must never share a tag with fresh ones"
        );
        assert_eq!(store.locate(Addr(TRACE_POOL_BASE)), None, "pool emptied");
        let loc = store.locate(Addr(CODE_BASE)).unwrap();
        assert_eq!(store.decoded(loc).generation, store.generation());
        assert!(matches!(store.slot(loc, 2).insn.op, Op::Halt));
        assert!(store.locate(Addr(CODE_BASE + 32)).is_some(), "new program fully decoded");
    }
}
