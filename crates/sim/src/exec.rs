//! The predecoded execution fast path.
//!
//! [`Machine::run`]'s tier dispatch (see [`crate::tier`]) steps here
//! when [`ExecPath::Fast`](crate::ExecPath::Fast) is configured (the
//! default). The fast path is **cycle-exact** with the reference
//! implementation in `machine.rs` — same architectural state, same PMU
//! counters, same sample stream, bundle for bundle — but removes the
//! per-step costs that dominate the reference loop:
//!
//! - **no `Bundle` clone per step**: the bundle address resolves to a
//!   [`CodeLoc`](crate::code::CodeLoc) (two compares and an index
//!   computation) and slots are copied out of the dense
//!   [`CodeStore`](crate::CodeStore) arena on demand;
//! - **no per-slot heap allocation**: scoreboard read sets are
//!   predecoded into fixed-size arrays padded with always-ready
//!   registers, so the stall walk is a fixed-trip loop over plain
//!   indices instead of a fresh `Vec<Gr>` per instruction;
//! - **nop fast-skip**: a predecoded flag retires nops without
//!   predicate, scoreboard, or execute work (predication of a nop has
//!   no architectural or timing effect, so the skip is exact);
//! - **sampling checks hoisted**: when sampling is off, the run loop
//!   contains no sample-buffer or sample-due checks at all.
//!
//! Instruction semantics are not duplicated: both paths call the same
//! `Machine::exec_slot_op` / `retire_bundle` helpers, so the fast path
//! cannot drift on what an instruction *does* — only on how the bundle
//! is fetched and scheduled, which is exactly what the golden
//! cycle-exactness tests and the per-path differential fuzz smoke pin
//! down.

use isa::{Addr, Insn, Pc};

use crate::code::FLAG_FR_READS;
use crate::machine::{Fault, Machine};

impl Machine {
    /// Executes one bundle from the predecoded store. `SAMPLING` is a
    /// compile-time split so the common (unsampled) instantiation is
    /// branchless with respect to sampling. The fast tier's step
    /// ([`crate::tier::Fast`] dispatches here); the threaded tier also
    /// calls it for cold code while regions warm up toward compilation.
    pub(crate) fn step_bundle_fast<const SAMPLING: bool>(&mut self) {
        let bundle_addr = self.ip;
        let Some(loc) = self.store.locate(bundle_addr) else {
            self.fault = Some(Fault::UnmappedFetch(bundle_addr));
            return;
        };

        // Instruction fetch.
        let istall = self.caches.ifetch(bundle_addr.0, self.cycle);
        if istall > 0 {
            self.pmu.counters.l1i_misses += 1;
            self.pmu.counters.stall_icache += istall;
            self.cycle += istall;
            self.half_bundle = false;
        }

        let mut taken: Option<Addr> = None;
        let fall_through = bundle_addr.offset_bundles(1);
        // One arena lookup and one copy of the executable payload per
        // step (slots + masks, not the generation tag): slot accesses
        // below are plain stack reads with no pool/static dispatch or
        // bounds checks.
        let (slots, cond_branch_mask, nop_mask) = {
            let db = self.store.decoded(loc);
            (db.slots, db.cond_branch_mask, db.nop_mask)
        };

        for slot in 0..3u8 {
            self.pmu.counters.retired += 1;

            if nop_mask & (1 << slot) != 0 {
                continue;
            }
            let ds = &slots[slot as usize];

            // Qualifying predicate.
            if let Some(qp) = ds.insn.qp {
                if !self.pr[qp.index()] {
                    continue;
                }
            }

            // Scoreboard: identical stall order to the reference path
            // (GR reads in `gr_reads()` order, then FR reads in op
            // order); padded entries index always-ready registers and
            // are guaranteed no-ops.
            for r in ds.gr_reads {
                let ready = self.gr_ready[r as usize];
                if ready > self.cycle {
                    self.stall_until(ready, self.gr_source[r as usize]);
                }
            }
            if ds.flags & FLAG_FR_READS != 0 {
                for f in ds.fr_reads {
                    let ready = self.fr_ready[f as usize];
                    if ready > self.cycle {
                        self.stall_until(ready, self.fr_source[f as usize]);
                    }
                }
            }

            self.exec_slot_op(
                ds.insn,
                Pc::new(bundle_addr, slot),
                fall_through,
                &mut taken,
            );
            if self.fault.is_some() || taken.is_some() || self.halted {
                break;
            }
        }

        // A fault freezes the machine at the faulting instruction:
        // earlier slots keep their effects, the ip does not advance,
        // and no sample is taken.
        if self.fault.is_some() {
            self.pmu.counters.cycles = self.cycle;
            return;
        }

        // Record fall-through outcomes of predicated-off conditional
        // branches; the predecoded mask skips the scan for the common
        // branch-free bundle.
        if taken.is_none() && cond_branch_mask != 0 {
            let insns: [Insn; 3] = [slots[0].insn, slots[1].insn, slots[2].insn];
            self.record_off_cond_branches(&insns, bundle_addr, fall_through);
        }

        if SAMPLING {
            self.retire_bundle(bundle_addr, fall_through, taken);
        } else {
            // No sampling configured: `take_sample` would be a
            // guaranteed no-op, so skip straight to the shared advance.
            self.advance_after_bundle(fall_through, taken);
        }
    }
}
