//! The threaded-code compile tier behind [`ExecPath::Threaded`].
//!
//! The fast path (PR 4) removed per-step decode costs; this tier
//! removes the *dispatch* itself for hot code. Cold code is stepped on
//! the fast path while per-bundle entry counts accumulate; once a
//! bundle has been entered [`HOT_THRESHOLD`] times it becomes the head
//! of a **compiled region**: a contiguous run of bundles translated
//! into chains of block closures ([`OpFn`]) executed with
//! direct-threaded dispatch — no fetch, no scoreboard walk, no
//! per-slot decode.
//!
//! Branch binding uses the pending-fixup idiom: every static branch
//! target is recorded as an unresolved [`Dest::External`] while the
//! region is laid out, then a single resolution pass rewrites targets
//! that landed inside the region to [`Dest::Local`] bundle indices, so
//! loop backedges dispatch straight to a closure index without an
//! address lookup.
//!
//! # The tier contract
//!
//! **Architectural state is exact; timing is not modeled.** Compiled
//! bundles charge a flat cycle each (no stall-on-use, no icache, no
//! taken-branch bubble), so cycle counts and stall breakdowns are
//! meaningless on this tier — [`ExecPath::is_cycle_exact`] is the flag
//! harnesses must check. Retired-instruction counts *are* exact: the
//! region executor reproduces the interpreters' slot-accounting rules,
//! so `retired` agrees with the cycle-exact tiers bundle for bundle.
//!
//! Two compile modes, chosen by whether the machine samples:
//!
//! - **lean** (no sampling configured): pure architectural semantics.
//!   Loads and stores skip the cache hierarchy, TLB, and PMU entirely;
//!   this is the mode the throughput benchmark measures.
//! - **profile** (sampling configured, i.e. the machine runs under
//!   ADORE): memory closures still drive the caches, DTLB, and PMU
//!   event capture (DEAR, BTB, miss counters), and branch closures
//!   record outcomes, so sampling keeps observing real events and the
//!   optimizer keeps finding delinquent loads while hot code runs
//!   compiled.
//!
//! # Deopt at patch boundaries
//!
//! Every compiled region is stamped with the [`CodeStore`] generation
//! it was translated from. ADORE's patcher mutates code exclusively
//! through store-coherent operations (`install_trace`,
//! `replace_bundle`), each of which bumps the store generation — so on
//! region entry a single integer compare detects *any* intervening
//! patch. A stale region is discarded (a **deopt**, counted in
//! [`JitStats::deopts`]) and execution falls back to the fast
//! interpreter until the rewritten code re-warms. Patches can only
//! happen between `run` calls (they take `&mut Machine`), so a region
//! can never be invalidated mid-execution.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use isa::{Addr, Insn, Op, Pc};

use crate::cache::HitLevel;
use crate::code::CodeStore;
use crate::machine::{ExecPath, Fault, Machine, StallSource};

/// Fast-path entries of a bundle address before it is compiled as a
/// region head. Low enough that loops compile early, high enough that
/// straight-line startup code never pays a translation.
pub const HOT_THRESHOLD: u32 = 32;

/// Upper bound on bundles translated into one region.
pub const REGION_MAX_BUNDLES: usize = 512;

/// Per-machine statistics of the threaded tier, exposed through
/// [`Machine::jit_stats`](crate::Machine::jit_stats). Tests and the
/// differential oracle use these to observe that compilation and
/// patch-boundary deopts actually happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// Regions translated to closure chains.
    pub regions_compiled: u64,
    /// Total bundles across all translated regions.
    pub compiled_bundles: u64,
    /// Stale regions discarded because the code-store generation moved
    /// (a live patch landed since translation).
    pub deopts: u64,
    /// Times execution entered a compiled region.
    pub region_entries: u64,
}

/// Threaded-tier state carried by a machine configured with
/// [`ExecPath::Threaded`] (and only then — the other tiers carry
/// `None` and pay nothing).
pub struct JitState {
    /// Compiled regions keyed by head bundle address.
    regions: HashMap<u64, Arc<CompiledRegion>>,
    /// Fast-path entry counts per bundle address (hotness).
    counts: HashMap<u64, u32>,
    pub(crate) stats: JitStats,
}

impl fmt::Debug for JitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JitState")
            .field("regions", &self.regions.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl JitState {
    /// The jit state a machine on `path` starts with: `Some` state for
    /// the threaded tier, `None` (no memory, no per-step cost) for the
    /// cycle-exact tiers.
    pub(crate) fn for_path(path: ExecPath) -> Option<Box<JitState>> {
        (path == ExecPath::Threaded).then(|| {
            Box::new(JitState {
                regions: HashMap::new(),
                counts: HashMap::new(),
                stats: JitStats::default(),
            })
        })
    }
}

/// Outcome of one compiled op closure.
enum OpOutcome {
    /// Continue with the next op (or fall through the bundle).
    Next,
    /// Static branch taken: dispatch through `CompiledRegion::dests`.
    Branch(u32),
    /// Dynamic branch taken (`br.ret`): resolve the target at runtime.
    Jump(Addr),
    /// `Halt` executed (`machine.halted` already set).
    Halt,
    /// The op faulted (`machine.fault` already set); the machine is
    /// frozen at this bundle.
    Fault,
}

/// One translated instruction: a block closure over the machine.
type OpFn = Box<dyn Fn(&mut Machine) -> OpOutcome + Send + Sync>;

/// A translated (non-nop) slot. `slot` preserves the source position
/// for exact retired-count accounting.
struct CompiledOp {
    slot: u8,
    f: OpFn,
}

/// One translated bundle: its source address plus its op chain (nops
/// compile to nothing).
struct CompiledBundle {
    addr: Addr,
    ops: Vec<CompiledOp>,
}

/// A branch destination, bound after region layout (pending-fixup):
/// targets inside the region become direct bundle indices.
#[derive(Debug, Clone, Copy)]
enum Dest {
    /// Bundle index within the same region.
    Local(u32),
    /// Bundle-aligned address outside the region (region exit).
    External(Addr),
}

/// A contiguous run of bundles compiled to closure chains, valid for
/// exactly one code-store generation.
struct CompiledRegion {
    start: Addr,
    generation: u64,
    bundles: Vec<CompiledBundle>,
    dests: Vec<Dest>,
}

impl Machine {
    /// The threaded tier's step ([`crate::tier::Threaded`] dispatches
    /// here): enter a valid compiled region at `ip` if one exists,
    /// deopt it if a patch made it stale, compile one if `ip` just
    /// crossed the hotness threshold, and otherwise interpret one
    /// bundle on the fast path (full timing/PMU, so sampling and ADORE
    /// patching keep working while code warms up).
    pub(crate) fn jit_step<const SAMPLING: bool>(&mut self, cycle_limit: u64) {
        let ip = self.ip.bundle_align();
        let generation = self.store.generation();
        let mut jit = self.jit.take().expect("threaded tier requires jit state");

        let mut region: Option<Arc<CompiledRegion>> = None;
        match jit.regions.get(&ip.0) {
            Some(r) if r.generation == generation => {
                jit.stats.region_entries += 1;
                region = Some(Arc::clone(r));
            }
            Some(_) => {
                // Patch boundary: the store generation moved since this
                // region was translated. Discard and re-warm.
                jit.regions.remove(&ip.0);
                jit.stats.deopts += 1;
            }
            None => {}
        }

        if region.is_none() {
            let count = jit.counts.entry(ip.0).or_insert(0);
            *count += 1;
            if *count >= HOT_THRESHOLD {
                *count = 0;
                let profile = self.config.sampling.is_some();
                if let Some(r) = compile_region(&self.store, ip, generation, profile) {
                    jit.stats.regions_compiled += 1;
                    jit.stats.compiled_bundles += r.bundles.len() as u64;
                    jit.stats.region_entries += 1;
                    let r = Arc::new(r);
                    jit.regions.insert(ip.0, Arc::clone(&r));
                    region = Some(r);
                }
            }
        }

        self.jit = Some(jit);
        match region {
            Some(r) => self.run_region::<SAMPLING>(&r, cycle_limit),
            None => self.step_bundle_fast::<SAMPLING>(),
        }
    }

    /// Executes a compiled region until it exits (fall-through past the
    /// end, branch to an external target, halt, fault), the cycle limit
    /// is reached, or — under sampling — the sample buffer fills.
    /// Always leaves `ip` pointing at the next bundle to execute, so a
    /// stopped machine resumes exactly where it left off on any tier.
    ///
    /// Retired accounting reproduces the interpreters' rule: every slot
    /// up to and including the exiting one counts (nops and
    /// predicated-off slots included), a fully fallen-through bundle
    /// counts all three. Timing is a flat cycle per bundle.
    fn run_region<const SAMPLING: bool>(&mut self, region: &CompiledRegion, cycle_limit: u64) {
        let cap = self.config.sampling.as_ref().map(|s| s.buffer_capacity);
        let len = region.bundles.len();
        let mut idx = 0usize;
        loop {
            let Some(cb) = region.bundles.get(idx) else {
                // Fell through the end of the region.
                self.ip = region.start.offset_bundles(len as i64);
                break;
            };
            if self.cycle >= cycle_limit {
                self.ip = cb.addr;
                break;
            }

            let mut exit: Option<(u8, OpOutcome)> = None;
            for op in &cb.ops {
                match (op.f)(self) {
                    OpOutcome::Next => {}
                    out => {
                        exit = Some((op.slot, out));
                        break;
                    }
                }
            }
            let (retired, outcome) = match exit {
                Some((slot, out)) => (u64::from(slot) + 1, out),
                None => (3, OpOutcome::Next),
            };
            self.pmu.counters.retired += retired;

            if matches!(outcome, OpOutcome::Fault) {
                // Freeze at the faulting bundle, like the interpreters:
                // no ip advance, no cycle charge, no sample.
                self.ip = cb.addr;
                break;
            }

            self.cycle += 1;
            self.half_bundle = false;

            let next = match outcome {
                OpOutcome::Next => Some(idx + 1),
                OpOutcome::Branch(di) => match region.dests[di as usize] {
                    Dest::Local(i) => Some(i as usize),
                    Dest::External(a) => {
                        self.ip = a;
                        None
                    }
                },
                OpOutcome::Jump(a) => {
                    let a = a.bundle_align();
                    let off = a.0.wrapping_sub(region.start.0) / Addr::BUNDLE_BYTES;
                    if a.0 >= region.start.0 && (off as usize) < len {
                        Some(off as usize)
                    } else {
                        self.ip = a;
                        None
                    }
                }
                OpOutcome::Halt => {
                    self.ip = cb.addr.offset_bundles(1);
                    None
                }
                OpOutcome::Fault => unreachable!("fault handled above"),
            };

            if SAMPLING {
                self.take_sample(Pc::new(cb.addr, 0));
            }

            match next {
                Some(i) => {
                    idx = i;
                    if SAMPLING
                        && cap.is_some_and(|c| {
                            self.samples.as_ref().is_some_and(|s| s.buffer.len() >= c)
                        })
                    {
                        // Let the drive loop report the overflow; resume
                        // at the next bundle (which may be the region's
                        // fall-through when `i == len`).
                        self.ip = region.start.offset_bundles(idx as i64);
                        break;
                    }
                }
                None => break,
            }
        }
        self.pmu.counters.cycles = self.cycle;
    }
}

/// Writes a general register from compiled code: architectural value
/// plus a "ready now" scoreboard entry, so a later deopt to the
/// cycle-exact interpreters never observes a stale pending latency.
#[inline]
fn set_gr(m: &mut Machine, r: usize, v: i64) {
    if r != 0 {
        m.gr[r] = v;
        m.gr_ready[r] = m.cycle;
        m.gr_source[r] = StallSource::None;
    }
}

/// Writes a floating-point register from compiled code (`f0`/`f1` are
/// architecturally fixed).
#[inline]
fn set_fr(m: &mut Machine, r: usize, v: f64) {
    if r > 1 {
        m.fr[r] = v;
        m.fr_ready[r] = m.cycle;
        m.fr_source[r] = StallSource::None;
    }
}

/// Writes a predicate register from compiled code (`p0` is hardwired).
#[inline]
fn set_pr(m: &mut Machine, r: usize, v: bool) {
    if r != 0 {
        m.pr[r] = v;
    }
}

/// Translates the contiguous bundle run starting at `start` (bounded by
/// [`REGION_MAX_BUNDLES`], the end of the code segment, or the first
/// unconditional control transfer) into a compiled region stamped with
/// `generation`. Returns `None` when `start` maps to no bundle — the
/// cold path then raises the fetch fault.
fn compile_region(
    store: &CodeStore,
    start: Addr,
    generation: u64,
    profile: bool,
) -> Option<CompiledRegion> {
    let start = start.bundle_align();
    store.locate(start)?;

    let mut bundles = Vec::new();
    let mut dests: Vec<Dest> = Vec::new();
    for i in 0..REGION_MAX_BUNDLES {
        let addr = start.offset_bundles(i as i64);
        let Some(loc) = store.locate(addr) else {
            break;
        };
        let db = *store.decoded(loc);
        let fall_through = addr.offset_bundles(1);
        let mut ops = Vec::new();
        let mut region_ends = false;
        for slot in 0..3u8 {
            if db.nop_mask & (1 << slot) != 0 {
                continue;
            }
            let insn = db.slots[slot as usize].insn;
            if insn.qp.is_none()
                && matches!(insn.op, Op::Br { .. } | Op::BrRet | Op::Halt)
            {
                // Execution can never fall past an unconditional
                // transfer, so the region need not extend further.
                region_ends = true;
            }
            if let Some(f) = compile_op(insn, Pc::new(addr, slot), fall_through, profile, &mut dests)
            {
                ops.push(CompiledOp { slot, f });
            }
        }
        bundles.push(CompiledBundle { addr, ops });
        if region_ends {
            break;
        }
    }
    if bundles.is_empty() {
        return None;
    }

    // Pending-fixup resolution: branch targets that landed inside the
    // region bind to direct bundle indices.
    let len = bundles.len() as u64;
    for d in &mut dests {
        if let Dest::External(a) = *d {
            if a.0 >= start.0 {
                let off = (a.0 - start.0) / Addr::BUNDLE_BYTES;
                if off < len {
                    *d = Dest::Local(off as u32);
                }
            }
        }
    }

    Some(CompiledRegion {
        start,
        generation,
        bundles,
        dests,
    })
}

/// Translates one instruction into a block closure with exactly the
/// architectural semantics of `Machine::exec_slot_op` (fault-before-
/// write ordering, post-increment after the destination write,
/// speculative loads deferring to zero). In profile mode, memory and
/// branch closures additionally drive the caches, DTLB, and PMU so
/// sampling keeps observing real events. Returns `None` for slots with
/// no translation (nops, `alloc`, lean-mode `lfetch` without
/// post-increment).
fn compile_op(
    insn: Insn,
    pc: Pc,
    fall_through: Addr,
    profile: bool,
    dests: &mut Vec<Dest>,
) -> Option<OpFn> {
    // A lean-mode lfetch with no post-increment has no architectural
    // effect at all.
    if let Op::Lfetch { post_inc: 0, .. } = insn.op {
        if !profile {
            return None;
        }
    }

    // Conditional branches fold their own predicate so the profile
    // variant can record the fall-through outcome of an off branch,
    // mirroring `record_off_cond_branches`.
    if let Op::BrCond { target } = insn.op {
        dests.push(Dest::External(target.bundle_align()));
        let di = (dests.len() - 1) as u32;
        let qp = insn.qp.map(|q| q.index());
        return Some(Box::new(move |m| {
            if let Some(q) = qp {
                if !m.pr[q] {
                    if profile {
                        m.pmu.record_branch(pc, fall_through, false);
                    }
                    return OpOutcome::Next;
                }
            }
            if profile {
                m.pmu.record_branch(pc, target, true);
            }
            OpOutcome::Branch(di)
        }));
    }

    let body: OpFn = match insn.op {
        Op::Nop(_) | Op::Alloc => return None,
        Op::BrCond { .. } => unreachable!("handled above"),
        Op::Add { d, a, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = m.gr[a].wrapping_add(m.gr[b]);
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::AddI { d, a, imm } => {
            let (d, a) = (d.index(), a.index());
            Box::new(move |m| {
                let v = m.gr[a].wrapping_add(imm);
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Sub { d, a, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = m.gr[a].wrapping_sub(m.gr[b]);
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Shladd { d, a, count, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = (m.gr[a] << count).wrapping_add(m.gr[b]);
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::And { d, a, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = m.gr[a] & m.gr[b];
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Or { d, a, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = m.gr[a] | m.gr[b];
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Xor { d, a, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = m.gr[a] ^ m.gr[b];
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::MovL { d, imm } => {
            let d = d.index();
            Box::new(move |m| {
                set_gr(m, d, imm);
                OpOutcome::Next
            })
        }
        Op::Mov { d, s } => {
            let (d, s) = (d.index(), s.index());
            Box::new(move |m| {
                let v = m.gr[s];
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Cmp { op, pt, pf, a, b } => {
            let (pt, pf, a, b) = (pt.index(), pf.index(), a.index(), b.index());
            Box::new(move |m| {
                let r = op.eval(m.gr[a], m.gr[b]);
                set_pr(m, pt, r);
                set_pr(m, pf, !r);
                OpOutcome::Next
            })
        }
        Op::CmpI { op, pt, pf, a, imm } => {
            let (pt, pf, a) = (pt.index(), pf.index(), a.index());
            Box::new(move |m| {
                let r = op.eval(m.gr[a], imm);
                set_pr(m, pt, r);
                set_pr(m, pf, !r);
                OpOutcome::Next
            })
        }
        Op::Ld {
            d,
            base,
            post_inc,
            size,
            spec,
        } => {
            let (d, base) = (d.index(), base.index());
            let bytes = size.bytes();
            Box::new(move |m| {
                let addr = m.gr[base] as u64;
                let value = if spec {
                    m.mem.read_spec(addr, bytes)
                } else if m.mem.contains(addr, bytes) {
                    m.mem.read(addr, bytes)
                } else {
                    m.fault = Some(Fault::UnmappedLoad { addr, len: bytes });
                    return OpOutcome::Fault;
                };
                if profile {
                    let tlb_lat = m.tlb.access(addr);
                    if tlb_lat > 0 {
                        m.pmu.record_tlb_miss(pc, addr, tlb_lat);
                    }
                    let res = m.caches.load(addr, m.cycle + tlb_lat, false);
                    m.pmu
                        .record_load(pc, addr, res.latency, res.level == HitLevel::L1);
                }
                set_gr(m, d, value as i64);
                if post_inc != 0 {
                    let nb = m.gr[base].wrapping_add(post_inc);
                    set_gr(m, base, nb);
                }
                OpOutcome::Next
            })
        }
        Op::St {
            s,
            base,
            post_inc,
            size,
        } => {
            let (s, base) = (s.index(), base.index());
            let bytes = size.bytes();
            Box::new(move |m| {
                let addr = m.gr[base] as u64;
                if !m.mem.contains(addr, bytes) {
                    m.fault = Some(Fault::UnmappedStore { addr, len: bytes });
                    return OpOutcome::Fault;
                }
                m.mem.write(addr, bytes, m.gr[s] as u64);
                if profile {
                    let _ = m.tlb.access(addr);
                    m.caches.store(addr);
                }
                if post_inc != 0 {
                    let nb = m.gr[base].wrapping_add(post_inc);
                    set_gr(m, base, nb);
                }
                OpOutcome::Next
            })
        }
        Op::Ldf { d, base, post_inc } => {
            let (d, base) = (d.index(), base.index());
            Box::new(move |m| {
                let addr = m.gr[base] as u64;
                if !m.mem.contains(addr, 8) {
                    m.fault = Some(Fault::UnmappedLoad { addr, len: 8 });
                    return OpOutcome::Fault;
                }
                let value = m.mem.read_f64(addr);
                if profile {
                    let tlb_lat = m.tlb.access(addr);
                    if tlb_lat > 0 {
                        m.pmu.record_tlb_miss(pc, addr, tlb_lat);
                    }
                    let res = m.caches.load(addr, m.cycle + tlb_lat, true);
                    m.pmu.record_load(pc, addr, res.latency, false);
                }
                set_fr(m, d, value);
                if post_inc != 0 {
                    let nb = m.gr[base].wrapping_add(post_inc);
                    set_gr(m, base, nb);
                }
                OpOutcome::Next
            })
        }
        Op::Stf { s, base, post_inc } => {
            let (s, base) = (s.index(), base.index());
            Box::new(move |m| {
                let addr = m.gr[base] as u64;
                if !m.mem.contains(addr, 8) {
                    m.fault = Some(Fault::UnmappedStore { addr, len: 8 });
                    return OpOutcome::Fault;
                }
                m.mem.write_f64(addr, m.fr[s]);
                if profile {
                    m.caches.store(addr);
                }
                if post_inc != 0 {
                    let nb = m.gr[base].wrapping_add(post_inc);
                    set_gr(m, base, nb);
                }
                OpOutcome::Next
            })
        }
        Op::Lfetch { base, post_inc } => {
            let base = base.index();
            Box::new(move |m| {
                if profile {
                    let addr = m.gr[base] as u64;
                    if m.mem.contains(addr, 1) {
                        let _ = m.tlb.access(addr);
                        m.caches.lfetch(addr, m.cycle);
                    }
                }
                if post_inc != 0 {
                    let nb = m.gr[base].wrapping_add(post_inc);
                    set_gr(m, base, nb);
                }
                OpOutcome::Next
            })
        }
        Op::Fma { d, a, b, c } => {
            let (d, a, b, c) = (d.index(), a.index(), b.index(), c.index());
            Box::new(move |m| {
                let v = m.fr[a].mul_add(m.fr[b], m.fr[c]);
                set_fr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Fadd { d, a, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = m.fr[a] + m.fr[b];
                set_fr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Fmul { d, a, b } => {
            let (d, a, b) = (d.index(), a.index(), b.index());
            Box::new(move |m| {
                let v = m.fr[a] * m.fr[b];
                set_fr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Getf { d, s } => {
            let (d, s) = (d.index(), s.index());
            Box::new(move |m| {
                let v = m.fr[s] as i64;
                set_gr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Setf { d, s } => {
            let (d, s) = (d.index(), s.index());
            Box::new(move |m| {
                let v = m.gr[s] as f64;
                set_fr(m, d, v);
                OpOutcome::Next
            })
        }
        Op::Br { target } => {
            dests.push(Dest::External(target.bundle_align()));
            let di = (dests.len() - 1) as u32;
            Box::new(move |m| {
                if profile {
                    m.pmu.record_branch(pc, target, true);
                }
                OpOutcome::Branch(di)
            })
        }
        Op::BrCall { target } => {
            dests.push(Dest::External(target.bundle_align()));
            let di = (dests.len() - 1) as u32;
            Box::new(move |m| {
                if profile {
                    m.pmu.record_branch(pc, target, true);
                }
                m.ret_stack.push(fall_through);
                OpOutcome::Branch(di)
            })
        }
        Op::BrRet => Box::new(move |m| {
            let Some(target) = m.ret_stack.pop() else {
                m.fault = Some(Fault::ReturnUnderflow);
                return OpOutcome::Fault;
            };
            if profile {
                m.pmu.record_branch(pc, target, true);
            }
            OpOutcome::Jump(target)
        }),
        Op::Halt => Box::new(move |m| {
            m.halted = true;
            OpOutcome::Halt
        }),
    };

    match insn.qp {
        Some(q) => {
            let q = q.index();
            Some(Box::new(move |m| {
                if m.pr[q] {
                    body(m)
                } else {
                    OpOutcome::Next
                }
            }))
        }
        None => Some(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineConfig, SamplingConfig, StopReason};
    use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};

    fn sum_loop_program(iters: i64) -> isa::Program {
        let mut a = Asm::new();
        a.movl(Gr(10), 0x1000_0000);
        a.movl(Gr(11), 0);
        a.movl(Gr(12), 0);
        a.label("loop");
        a.ld(AccessSize::U8, Gr(13), Gr(10), 8);
        a.add(Gr(12), Gr(12), Gr(13));
        a.addi(Gr(11), Gr(11), 1);
        a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(11), iters);
        a.br_cond(Pr(1), "loop");
        a.halt();
        a.finish(CODE_BASE).unwrap()
    }

    /// Machine running the sum loop with `mapped` elements backing it;
    /// faults mid-loop when `mapped < iters`.
    fn sum_loop_machine(path: ExecPath, iters: i64, mapped: i64) -> Machine {
        let mut cfg = MachineConfig::default();
        cfg.exec_path = path;
        let mut m = Machine::new(sum_loop_program(iters), cfg);
        m.mem_mut().alloc(mapped as u64 * 8, 8);
        for i in 0..mapped {
            m.mem_mut()
                .write(0x1000_0000 + i as u64 * 8, 8, (i * 3) as u64);
        }
        m
    }

    #[test]
    fn threaded_matches_fast_architecturally() {
        let mut fast = sum_loop_machine(ExecPath::Fast, 4000, 4004);
        let mut thr = sum_loop_machine(ExecPath::Threaded, 4000, 4004);
        assert_eq!(fast.run(u64::MAX), StopReason::Halted);
        assert_eq!(thr.run(u64::MAX), StopReason::Halted);
        assert_eq!(fast.gr(Gr(11)), thr.gr(Gr(11)));
        assert_eq!(fast.gr(Gr(12)), thr.gr(Gr(12)));
        assert_eq!(fast.gr(Gr(13)), thr.gr(Gr(13)));
        assert_eq!(fast.retired(), thr.retired(), "retired counting is exact");

        let stats = thr.jit_stats().expect("threaded machines expose stats");
        assert!(stats.regions_compiled >= 1, "hot loop must compile");
        assert!(stats.region_entries >= 1);
        assert!(stats.compiled_bundles >= 1);
        assert_eq!(stats.deopts, 0, "nothing patched, nothing deopts");
        assert_eq!(fast.jit_stats(), None, "cycle-exact tiers carry no jit");
    }

    #[test]
    fn chunked_threaded_run_matches_uninterrupted() {
        let mut one = sum_loop_machine(ExecPath::Threaded, 3000, 3004);
        assert_eq!(one.run(u64::MAX), StopReason::Halted);
        let mut chunked = sum_loop_machine(ExecPath::Threaded, 3000, 3004);
        let mut limit = 0;
        while !chunked.is_halted() {
            limit += 100;
            chunked.run(limit);
        }
        assert_eq!(one.gr(Gr(11)), chunked.gr(Gr(11)));
        assert_eq!(one.gr(Gr(12)), chunked.gr(Gr(12)));
        assert_eq!(one.retired(), chunked.retired());
    }

    #[test]
    fn live_patch_deopts_compiled_region() {
        let mut m = sum_loop_machine(ExecPath::Threaded, 50_000, 50_004);
        // Run in small chunks until the hot loop has compiled.
        let mut limit = 0;
        while m.jit_stats().unwrap().regions_compiled == 0 {
            limit += 50;
            assert_eq!(m.run(limit), StopReason::CycleLimit, "loop must still be running");
        }
        // Live-patch the bundle the machine is stopped at (inside the
        // compiled loop) with an identical copy: architectural no-op,
        // but the store generation moves.
        let target = m.ip().bundle_align();
        let generation = m.code_generation();
        let bundle = m.bundle_at(target).unwrap().clone();
        m.replace_bundle(target, bundle).unwrap();
        assert!(m.code_generation() > generation);

        assert_eq!(m.run(u64::MAX), StopReason::Halted);
        let stats = m.jit_stats().unwrap();
        assert!(stats.deopts >= 1, "stale region must deopt: {stats:?}");
        assert!(
            stats.regions_compiled >= 2,
            "patched loop must re-warm and recompile: {stats:?}"
        );
        // Architectural result unchanged by the whole episode.
        let mut fast = sum_loop_machine(ExecPath::Fast, 50_000, 50_004);
        fast.run(u64::MAX);
        assert_eq!(m.gr(Gr(12)), fast.gr(Gr(12)));
        assert_eq!(m.retired(), fast.retired());
    }

    #[test]
    fn threaded_fault_matches_fast() {
        // The arena holds 1000 elements but the loop wants 100k: both
        // tiers must fault at the same load with the same state.
        let build = |path| {
            let mut cfg = MachineConfig::default();
            cfg.exec_path = path;
            cfg.mem_capacity = 1000 * 8;
            let mut m = Machine::new(sum_loop_program(100_000), cfg);
            m.mem_mut().alloc(1000 * 8, 8);
            for i in 0..1000u64 {
                m.mem_mut().write(0x1000_0000 + i * 8, 8, i * 3);
            }
            m
        };
        let mut fast = build(ExecPath::Fast);
        let mut thr = build(ExecPath::Threaded);
        let rf = fast.run(u64::MAX);
        let rt = thr.run(u64::MAX);
        assert_eq!(rf, rt);
        assert!(
            matches!(rf, StopReason::Faulted(Fault::UnmappedLoad { .. })),
            "expected an unmapped-load fault, got {rf:?}"
        );
        assert_eq!(fast.fault(), thr.fault());
        assert_eq!(fast.gr(Gr(10)), thr.gr(Gr(10)), "no write on faulting load");
        assert_eq!(fast.gr(Gr(11)), thr.gr(Gr(11)));
        assert_eq!(fast.gr(Gr(12)), thr.gr(Gr(12)));
        assert_eq!(fast.retired(), thr.retired());
        assert_eq!(fast.ip(), thr.ip(), "both freeze at the faulting bundle");
    }

    #[test]
    fn calls_and_returns_cross_region_boundaries() {
        let build = |path| {
            let mut a = Asm::new();
            a.movl(Gr(11), 0);
            a.label("loop");
            a.br_call("bump");
            a.addi(Gr(11), Gr(11), 1);
            a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(11), 2000);
            a.br_cond(Pr(1), "loop");
            a.halt();
            a.global("bump");
            a.addi(Gr(20), Gr(20), 3);
            a.ret();
            let mut cfg = MachineConfig::default();
            cfg.exec_path = path;
            let mut m = Machine::new(a.finish(CODE_BASE).unwrap(), cfg);
            assert_eq!(m.run(u64::MAX), StopReason::Halted);
            m
        };
        let fast = build(ExecPath::Fast);
        let thr = build(ExecPath::Threaded);
        assert_eq!(fast.gr(Gr(20)), thr.gr(Gr(20)));
        assert_eq!(fast.gr(Gr(11)), thr.gr(Gr(11)));
        assert_eq!(fast.retired(), thr.retired());
        assert!(thr.jit_stats().unwrap().regions_compiled >= 1);
    }

    #[test]
    fn profile_mode_keeps_sampling_and_pmu_alive() {
        let mut cfg = MachineConfig::default();
        cfg.exec_path = ExecPath::Threaded;
        cfg.sampling = Some(SamplingConfig {
            interval_cycles: 400,
            buffer_capacity: 32,
            per_sample_cost: 0,
            jitter: 0.3,
            ..Default::default()
        });
        let mut m = Machine::new(sum_loop_program(200_000), cfg);
        m.mem_mut().alloc(200_004 * 8, 8);
        assert_eq!(m.run(u64::MAX), StopReason::SampleBufferOverflow);
        let samples = m.drain_samples();
        assert_eq!(samples.len(), 32);
        // Compiled-mode branches and loads still feed the PMU: the BTB
        // carries entries and the miss counters move.
        assert!(!samples.last().unwrap().btb.is_empty());
        assert!(m.pmu().counters.branches > 0);
        assert!(
            m.jit_stats().unwrap().regions_compiled >= 1,
            "sampling machines still compile (profile mode)"
        );
        // And the run still finishes with the right architectural state.
        loop {
            match m.run(u64::MAX) {
                StopReason::SampleBufferOverflow => {
                    m.drain_samples();
                }
                r => {
                    assert_eq!(r, StopReason::Halted);
                    break;
                }
            }
        }
        assert_eq!(m.gr(Gr(11)), 200_000);
    }

    #[test]
    fn wild_branch_out_of_compiled_region_faults_identically() {
        // A hot loop whose exit is an unconditional branch into the
        // void: the compiled region leaves to an unmapped address and
        // the next (cold) step must raise the same fetch fault the
        // cycle-exact tiers raise.
        let wild = isa::Addr(CODE_BASE + 0x10_000);
        let build = |path| {
            let mut a = Asm::new();
            a.movl(Gr(11), 0);
            a.label("loop");
            a.addi(Gr(11), Gr(11), 1);
            a.cmpi(CmpOp::Lt, Pr(1), Pr(2), Gr(11), 300);
            a.br_cond(Pr(1), "loop");
            a.emit(isa::Insn::new(isa::Op::Br { target: wild }));
            a.halt();
            let mut cfg = MachineConfig::default();
            cfg.exec_path = path;
            Machine::new(a.finish(CODE_BASE).unwrap(), cfg)
        };
        let mut fast = build(ExecPath::Fast);
        let mut thr = build(ExecPath::Threaded);
        let rf = fast.run(u64::MAX);
        assert_eq!(rf, thr.run(u64::MAX));
        assert_eq!(rf, StopReason::Faulted(Fault::UnmappedFetch(wild)));
        assert_eq!(fast.gr(Gr(11)), thr.gr(Gr(11)));
        assert_eq!(fast.retired(), thr.retired());
        assert!(thr.jit_stats().unwrap().regions_compiled >= 1);
    }
}
