//! ADORE — ADaptive Object code RE-optimization — with runtime data
//! cache prefetching.
//!
//! A from-scratch reproduction of the dynamic optimization system of
//! *"The Performance of Runtime Data Cache Prefetching in a Dynamic
//! Optimization System"* (Lu et al., MICRO-36, 2003), running on the
//! IA-64-like simulator in the [`sim`] crate:
//!
//! - [`phase`] — coarse-grain phase detection over profile windows
//!   (CPI / DPI / PCcenter standard deviations, §2.3);
//! - [`trace`] — trace selection from Branch Trace Buffer path
//!   profiles, with bundle splitting, branch flipping and layout
//!   straightening (§2.4);
//! - [`delinq`] — delinquent-load tracking from DEAR miss samples,
//!   top three per loop trace (§3.1);
//! - [`pattern`] — reference-pattern detection by dependence slicing:
//!   direct array, indirect array, pointer chasing (§3.2, Fig. 5);
//! - [`prefetch`] — prefetch generation, optimization and free-slot
//!   scheduling using the reserved registers `r27`–`r30` (§3.3–3.5,
//!   Fig. 6);
//! - [`patch`] — trace-pool publication and unpatching (§2.5);
//! - [`reject`] — the unified [`Rejection`] taxonomy every stage
//!   reports declined work through (§4.3's failure analysis);
//! - [`pipeline`] — the optimizer decomposed into instrumented
//!   [`pipeline::Pass`]es over a shared [`pipeline::OptContext`], with
//!   a per-pass overhead ledger and structured event stream;
//! - [`policy`] — adaptive per-phase policy selection: a discrete
//!   policy space over the optimizer's tunables and a deterministic
//!   online controller that trials, scores and commits arms per phase
//!   (off by default — the paper's static policy);
//! - [`runtime`] — the dynamic-optimization loop tying it together.
//!
//! # Example
//!
//! ```
//! use isa::{AccessSize, Asm, CmpOp, Gr, Pr, CODE_BASE};
//! use sim::{Machine, MachineConfig};
//! use adore::{run, AdoreConfig};
//!
//! # fn main() -> Result<(), isa::AsmError> {
//! // A hot loop streaming through memory with heavy misses.
//! let mut a = Asm::new();
//! a.movl(Gr(8), 30);
//! a.label("outer");
//! a.movl(Gr(14), 0x1000_0000);
//! a.movl(Gr(9), 40_000);
//! a.label("loop");
//! a.ld(AccessSize::U8, Gr(20), Gr(14), 64);
//! a.add(Gr(21), Gr(20), Gr(21));
//! a.addi(Gr(9), Gr(9), -1);
//! a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(9), 0);
//! a.br_cond(Pr(1), "loop");
//! a.addi(Gr(8), Gr(8), -1);
//! a.cmpi(CmpOp::Gt, Pr(1), Pr(2), Gr(8), 0);
//! a.br_cond(Pr(1), "outer");
//! a.halt();
//!
//! let mut config = AdoreConfig::enabled();
//! config.sampling.interval_cycles = 2_000;
//! let mut machine = Machine::new(
//!     a.finish(CODE_BASE)?,
//!     config.machine_config(MachineConfig::default()),
//! );
//! machine.mem_mut().alloc(40_016 * 64, 64);
//!
//! let report = run(&mut machine, &config);
//! assert!(report.traces_patched >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod delinq;
pub mod instrument;
pub mod patch;
pub mod pattern;
pub mod phase;
pub mod pipeline;
pub mod policy;
pub mod prefetch;
pub mod reject;
pub mod runtime;
pub mod trace;

pub use delinq::{find_delinquent_loads, loads_for_trace, DelinquentLoad, MAX_LOADS_PER_TRACE};
pub use instrument::{dominant_stride, instrument_trace, promote, InstrumentConfig, Instrumentation};
pub use patch::{install, unpatch, PatchedTrace};
pub use pattern::{classify, Pattern};
pub use phase::{PhaseConfig, PhaseDecision, PhaseDetector, PhaseSignature};
pub use pipeline::{PassKind, PassLedger, Pipeline, PipelineConfig, PipelineLedger};
pub use policy::{
    AcceptTier, DistMult, LfetchTarget, Policy, PolicyConfig, PolicyController, PolicyDecision,
    PolicyReport, TraceAggr,
};
pub use prefetch::{optimize_trace, InsertionStats, OptimizedTrace, PrefetchConfig};
pub use reject::Rejection;
pub use runtime::{run, run_with_limit, AdoreConfig, RunReport, TimePoint};
pub use trace::{select_traces, select_traces_with_drops, PathProfile, Trace, TraceConfig};
